# Convenience targets for CI and local development.
# The repo is pure Python; PYTHONPATH=src avoids needing an install.

PYTHON ?= python
JOBS ?= 4

.PHONY: test tier1 smoke fig2 fig8-smoke fuzz-smoke bench clean-cache analyze analyze-all model-deep lint docs-check

# Tier-1 gate: the full unit/integration/property suite, then the
# protocol verifier (static + dispatch + exhaustive small model).
test tier1:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(MAKE) analyze
	$(MAKE) lint

# Protocol verifier: static handler analysis, dispatch completeness,
# and the exhaustive 2-node small-model check. Exit 1 = findings.
analyze:
	PYTHONPATH=src $(PYTHON) -m repro analyze --jobs $(JOBS)

# Per-protocol verifier: every registered coherence bundle must pass
# all three passes (see docs/protocols.md).  The MSI baseline is
# model-checked exhaustively at both 2 and 3 nodes (the 3-node run
# uses the store-only issue alphabet, like `model-deep`, to stay
# CI-affordable under the reduced search).
analyze-all:
	PYTHONPATH=src $(PYTHON) -m repro analyze --jobs $(JOBS) \
		--protocol smtp-bitvector
	PYTHONPATH=src $(PYTHON) -m repro analyze --jobs $(JOBS) \
		--protocol msi
	PYTHONPATH=src $(PYTHON) -m repro analyze --jobs $(JOBS) \
		--protocol msi --nodes 3 --loads 0 --stores 1
	PYTHONPATH=src $(PYTHON) -m repro analyze --jobs $(JOBS) \
		--protocol migratory

# Deep model-checking sweep: the larger machines the reduced checker
# (symmetry + ample sets, docs/analyze.md) makes CI-affordable.
# Regenerates BENCH_model.json — the committed state-space trajectory
# (states, canonical orbit coverage, reduction ratios, wall time per
# config) — which tests/test_model_bench.py gates in tier-1.  Runs
# --jobs 1 so the counts are the deterministic sequential ones.
model-deep:
	PYTHONPATH=src $(PYTHON) -m repro analyze --jobs 1 \
		--bench-model BENCH_model.json
	PYTHONPATH=src $(PYTHON) -m repro analyze --jobs 1 \
		--nodes 4 --loads 0 --stores 1 --bench-model BENCH_model.json
	PYTHONPATH=src $(PYTHON) -m repro analyze --jobs 1 \
		--nodes 3 --lines 2 --loads 0 --stores 1 \
		--bench-model BENCH_model.json
	PYTHONPATH=src $(PYTHON) -m repro analyze --jobs 1 \
		--lines 2 --bench-model BENCH_model.json

# Style + types. ruff/mypy are optional (pip install -e .[lint]);
# when absent the target reports and succeeds so offline CI images
# without the linters still pass tier-1.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		PYTHONPATH=src $(PYTHON) -m ruff check src tests; \
	else echo "lint: ruff not installed, skipping"; fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		PYTHONPATH=src $(PYTHON) -m mypy -p repro.protocol -p repro.isa \
			-p repro.analyze -p repro.core -p repro.common -p repro.pipeline \
			-p repro.memctrl -p repro.apps; \
	else echo "lint: mypy not installed, skipping"; fi

# CI-sized sweep (2 apps x 2 models + two n=2 cells + one
# protocol-heavy n=16 cell, tiny preset).  Writes BENCH_smoke.json —
# one perf-trajectory point per commit — and gates fresh per-cell CPU
# time against the committed trajectory: >25% slowdown on any cell
# fails the target; speedups simply become the new baseline once the
# refreshed file is committed.  The n=16 cell additionally enforces a
# >=1.5x cycles/sec floor over the recorded pre-compilation
# interpreter build (the BENCH file's pre_compile block), and the
# protocol-heavy SMTp 2-way n=4 cell a >=1.1x floor over the
# pre-SMT-compile build (the pre_smt_compile block — see
# benchmarks/README.md for why the floor is 1.1x, not the 2x the
# fused path originally targeted).  Cells are timed in CPU seconds,
# best-of-5 (min = contention-free cost), and the gate normalizes by
# a box-speed calibration loop recorded in the BENCH file; --refresh
# forces fresh timings (cache hits carry none); --jobs 0 runs the
# cells inline so timings stay comparable.
smoke:
	REPRO_BENCH_BEST_OF=5 PYTHONPATH=src $(PYTHON) -m repro sweep \
		--grid smoke --name smoke --jobs 0 --timeout 120 \
		--refresh --gate BENCH_smoke.json

# Full Figure 2 grid (6 apps x 5 models, bench preset): regenerates
# BENCH_fig2.json — the committed per-figure perf trajectory — and
# gates it exactly like `make smoke` does for the CI grid.  ~5 min
# wall clock on one core at best-of-5; commit the refreshed file when
# the cells legitimately got faster.
fig2:
	REPRO_BENCH_BEST_OF=5 PYTHONPATH=src $(PYTHON) -m repro sweep \
		--grid fig2 --name fig2 --jobs 0 --timeout 300 \
		--refresh --gate BENCH_fig2.json

# Reduced Figure 8 slice: the 16-node SMTp cells (3 apps 2-way + the
# 1-way contrast point, tiny preset) that make the paper's scaling
# grid affordable under the fused multi-threaded fast path.  Runs the
# fig8 grid gated against the committed BENCH_fig8.json (same >25%
# rule + pre_smt_compile speedup floors as `make smoke`), then holds
# the freshly written trajectory against a snapshot of the committed
# one with tools/perf_delta.py, so the A/B survives as two artifacts.
fig8-smoke:
	@cp BENCH_fig8.json BENCH_fig8.baseline.json
	REPRO_BENCH_BEST_OF=5 PYTHONPATH=src $(PYTHON) -m repro sweep \
		--grid fig8 --name fig8 --jobs 0 --timeout 600 \
		--refresh --gate BENCH_fig8.json || \
		{ rm -f BENCH_fig8.baseline.json; exit 1; }
	$(PYTHON) tools/perf_delta.py BENCH_fig8.baseline.json \
		BENCH_fig8.json; status=$$?; \
		rm -f BENCH_fig8.baseline.json; exit $$status

# Docs-staleness gate: every --flag a doc mentions must exist in the
# live --help of the commands it covers, and every sweep/fuzz flag
# must be documented in docs/sweep-service.md.  Also enforced in
# tier-1 via tests/test_docs.py.
docs-check:
	PYTHONPATH=src $(PYTHON) tools/check_docs.py

# Small seeded coherence-fuzzing campaign with fault injection
# (delayed/reordered messages). Must exit 0: any failure writes a
# replayable artifact under fuzz_artifacts/.
fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seeds 24 --faults on \
		--jobs $(JOBS) --timeout 120 --name fuzz-smoke

# Regenerate every paper table/figure (cache-warm after first run).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

clean-cache:
	rm -rf benchmarks/.sweep_cache .sweep_cache
