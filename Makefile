# Convenience targets for CI and local development.
# The repo is pure Python; PYTHONPATH=src avoids needing an install.

PYTHON ?= python
JOBS ?= 4

.PHONY: test tier1 smoke fuzz-smoke bench clean-cache

# Tier-1 gate: the full unit/integration/property suite.
test tier1:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# CI-sized sweep (2 apps x 2 models, tiny preset). Writes
# BENCH_smoke.json — one perf-trajectory point per commit.
smoke:
	PYTHONPATH=src $(PYTHON) -m repro sweep --grid smoke --name smoke \
		--jobs $(JOBS) --timeout 120

# Small seeded coherence-fuzzing campaign with fault injection
# (delayed/reordered messages). Must exit 0: any failure writes a
# replayable artifact under fuzz_artifacts/.
fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seeds 24 --faults on \
		--jobs $(JOBS) --timeout 120 --name fuzz-smoke

# Regenerate every paper table/figure (cache-warm after first run).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

clean-cache:
	rm -rf benchmarks/.sweep_cache .sweep_cache
