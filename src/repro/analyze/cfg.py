"""Control-flow graphs over protocol-ISA handler programs.

A handler is a short straight-line program with forward branches and —
in exactly one sanctioned pattern, the sharer-vector ``inval_loop`` —
a backward jump.  The CFG here is instruction-granular (handlers are
tens of instructions, block formation would obscure more than it
saves): node ``i`` is ``handler.instrs[i]``, edges follow fallthrough
and resolved branch targets.

``TRAP`` terminates the program (the functional semantics raise), so a
trap instruction has no successors; the ``SWITCH``/``LDCTXT`` epilogue
the assembler requires after a trap is *not* reported as unreachable —
it is the builder's structural contract, not dead protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.protocol.isa import Handler, PInstr, POp


@dataclass
class CFG:
    """Instruction-level control-flow graph of one handler."""

    handler: Handler
    succs: List[List[int]] = field(default_factory=list)
    preds: List[List[int]] = field(default_factory=list)
    reachable: FrozenSet[int] = frozenset()
    #: Back edges (src, dst) discovered by DFS from entry.
    back_edges: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def instrs(self) -> List[PInstr]:
        return self.handler.instrs

    def loop_nodes(self) -> Set[int]:
        """Instruction indices belonging to any natural loop body."""
        nodes: Set[int] = set()
        for src, dst in self.back_edges:
            nodes |= self._natural_loop(src, dst)
        return nodes

    def _natural_loop(self, src: int, dst: int) -> Set[int]:
        """Natural loop of back edge ``src -> dst`` (header ``dst``)."""
        body = {dst, src}
        stack = [src]
        while stack:
            node = stack.pop()
            for pred in self.preds[node]:
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        return body


def successors_of(instr: PInstr, index: int, n: int) -> List[int]:
    """CFG successors of the instruction at ``index``."""
    op = instr.op
    if op is POp.TRAP or op is POp.LDCTXT:
        return []  # terminate: trap raises, ldctxt ends the handler
    if op is POp.J:
        return [instr.target]
    if op in (POp.BEQZ, POp.BNEZ):
        out = [instr.target]
        if index + 1 < n:
            out.append(index + 1)
        return out
    return [index + 1] if index + 1 < n else []


def build_cfg(handler: Handler) -> CFG:
    n = len(handler.instrs)
    succs = [successors_of(instr, i, n) for i, instr in enumerate(handler.instrs)]
    preds: List[List[int]] = [[] for _ in range(n)]
    for i, outs in enumerate(succs):
        for j in outs:
            preds[j].append(i)

    # Reachability and back edges in one iterative DFS from entry.
    color = [0] * n  # 0 white, 1 grey (on stack), 2 black
    back_edges: List[Tuple[int, int]] = []
    stack: List[Tuple[int, int]] = [(0, 0)] if n else []
    if n:
        color[0] = 1
    while stack:
        node, child_idx = stack[-1]
        if child_idx < len(succs[node]):
            stack[-1] = (node, child_idx + 1)
            nxt = succs[node][child_idx]
            if color[nxt] == 0:
                color[nxt] = 1
                stack.append((nxt, 0))
            elif color[nxt] == 1:
                back_edges.append((node, nxt))
        else:
            color[node] = 2
            stack.pop()

    reachable = frozenset(i for i in range(n) if color[i] == 2)
    return CFG(handler, succs, preds, reachable, back_edges)


def unreachable_indices(cfg: CFG) -> List[int]:
    """Dead instructions, excluding the mandated post-TRAP epilogue.

    The assembler requires every handler to end with ``done()`` even
    when control provably traps first; a ``SWITCH``/``LDCTXT`` pair
    whose only straight-line ancestors are unreachable-or-trap is that
    contract, not dead protocol code.
    """
    dead = []
    instrs = cfg.instrs
    for i in range(len(instrs)):
        if i in cfg.reachable:
            continue
        if instrs[i].op in (POp.SWITCH, POp.LDCTXT) and _follows_trap(cfg, i):
            continue
        dead.append(i)
    return dead


def _follows_trap(cfg: CFG, index: int) -> bool:
    """Is ``index`` in the straight-line shadow of a TRAP?"""
    i = index - 1
    while i >= 0:
        op = cfg.instrs[i].op
        if op is POp.TRAP:
            return True
        if op in (POp.SWITCH, POp.LDCTXT):
            i -= 1
            continue
        return False
    return False


# ----------------------------------------------------------------------
# Bounded-loop proof
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LoopProof:
    """Evidence that one back edge's loop terminates.

    The only sanctioned loop shape is the sharer-vector walk: a header
    ``BEQZ vec, exit`` guards the body, and the body strictly clears
    the lowest set bit of ``vec`` (``tmp = vec - 1; vec &= tmp``), so
    the loop runs at most ``popcount(vec) <= vector width`` times.
    """

    header: int
    vec_reg: int
    max_iterations: int


def prove_loop_bounded(
    cfg: CFG, back_edge: Tuple[int, int], vector_width: int
) -> Optional[LoopProof]:
    """Prove the natural loop of ``back_edge`` is a clear-lowest-bit
    walk; returns ``None`` when no proof is found (i.e. the loop may be
    unbounded)."""
    _src, header = back_edge
    body = cfg._natural_loop(*back_edge)
    head_instr = cfg.instrs[header]
    if head_instr.op is not POp.BEQZ:
        return None
    vec = head_instr.rs1
    if head_instr.target in body:
        return None  # the "exit" stays in the loop: not a guard
    # Find tmp = vec + (-1) followed (anywhere in the body) by
    # vec = vec & tmp.  Any other write to vec inside the loop voids
    # the monotonicity argument.
    decrements: Dict[int, int] = {}  # tmp reg -> index
    for i in sorted(body):
        instr = cfg.instrs[i]
        if (
            instr.op is POp.ADD
            and instr.rs1 == vec
            and instr.rs2 is None
            and instr.imm == -1
        ):
            decrements[instr.rd] = i
    cleared = False
    for i in sorted(body):
        instr = cfg.instrs[i]
        if instr.writes() != vec:
            continue
        if (
            instr.op is POp.AND
            and instr.rs1 == vec
            and instr.rs2 in decrements
            and decrements[instr.rs2] < i
        ):
            cleared = True
        else:
            return None  # some other redefinition of the loop variable
    if not cleared:
        return None
    return LoopProof(header=header, vec_reg=vec, max_iterations=vector_width)


# ----------------------------------------------------------------------
# Worst-case instruction counts
# ----------------------------------------------------------------------


def worst_case_instructions(
    cfg: CFG, proofs: Dict[Tuple[int, int], LoopProof]
) -> int:
    """Upper bound on instructions executed by one handler activation.

    Loop-free handlers get the exact longest path.  A proven bounded
    loop contributes ``max_iterations x |loop body|`` — a safe upper
    bound (each iteration executes at most the whole body).  Unproven
    loops make the count meaningless; callers must not request a count
    for a handler with unproven back edges.
    """
    n = len(cfg.instrs)
    if n == 0:
        return 0
    loop_cost: Dict[int, int] = {}  # header -> extra cost charged once
    loop_members: Dict[int, int] = {}  # node -> header it belongs to
    for edge, proof in proofs.items():
        body = cfg._natural_loop(*edge)
        # Each iteration executes at most the whole body; the final
        # exit evaluates the header guard once more.
        loop_cost[proof.header] = proof.max_iterations * len(body) + 1
        for node in body:
            loop_members[node] = proof.header

    # Longest path over the DAG formed by contracting each proven loop
    # into its header.  memo[i] = max instructions from i to any exit.
    memo: Dict[int, int] = {}
    on_path: Set[int] = set()

    def longest(i: int) -> int:
        if i in memo:
            return memo[i]
        if i in on_path:
            raise ValueError("unproven cycle reached in worst-case walk")
        on_path.add(i)
        header = loop_members.get(i)
        if header is not None and i == header:
            # Charge the whole loop once, then continue from its exits.
            body = {
                node for node, h in loop_members.items() if h == header
            }
            exits = {
                s
                for node in body
                for s in cfg.succs[node]
                if s not in body
            }
            tail = max((longest(e) for e in exits), default=0)
            result = loop_cost[header] + tail
        elif header is not None:
            # Non-header loop nodes are charged via their header.
            result = 0
        else:
            tail = max(
                (
                    longest(s)
                    for s in cfg.succs[i]
                    if loop_members.get(s) is None or s == loop_members.get(s)
                ),
                default=0,
            )
            result = 1 + tail
        on_path.discard(i)
        memo[i] = result
        return result

    return longest(0)
