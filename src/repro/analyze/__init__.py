"""Static + exhaustive verification of the protocol handler table.

Three passes, all over the *real* programs from
:func:`repro.protocol.handlers.build_handler_table` (with the
active-memory extension installed, exactly as the simulator runs
them):

1. :mod:`repro.analyze.absint` — CFG + abstract interpretation per
   handler: undefined reads, unreachable code, malformed send headers,
   unbounded loops, worst-case instruction counts.
2. :mod:`repro.analyze.dispatch` — dispatch completeness: unhandled
   message types, dead handlers, and a functional (state x msg)
   enumeration for reachable TRAPs.
3. :mod:`repro.analyze.model` — exhaustive small-model checking of a
   2-3 node, 1-line machine executing the actual handlers; SWMR,
   data-value, stuck-state, and directory-health invariants, with
   counterexamples replayable via ``repro fuzz --replay``.

``python -m repro analyze`` is the CLI face (see
:mod:`repro.analyze.cli`); findings are aggregated by
:mod:`repro.analyze.findings` and filtered through the justified
suppression list in :mod:`repro.analyze.suppressions`.
"""

from repro.analyze.findings import Finding, Report, format_report
from repro.analyze.suppressions import SUPPRESSIONS, Suppression

__all__ = [
    "Finding",
    "Report",
    "SUPPRESSIONS",
    "Suppression",
    "format_report",
]
