"""Abstract interpretation of protocol-ISA handler programs.

One forward fixpoint per handler propagates an abstract register file
through the CFG and checks, at every uncached send, that the composed
header obeys the documented bit layout (``protocol/handlers.py``):

====== ================================================
bits   field
====== ================================================
0-7    message type (must be a valid ``MsgType`` value)
8-13   peer node (destination on outgoing headers)
16-21  requester node
24-29  invalidation-ack count
30     probe hit, 31 probe dirty
====== ================================================

The abstract value tracks three things: an exact constant when the
value is fully known (``LUI``, boot registers), a conservative bit
width otherwise, and — while the value is built by ``LUI``/``SLL``/
``OR`` chains — the list of *(shift, width)* fields OR-ed into it, so
header composition is checked field by field.

Modeling assumptions (deliberate, documented):

* ``POPC``/``CTZ`` results are 6 bits wide.  Sharer vectors hold at
  most 64 bits (64-node ceiling, ``NODE_FIELD_MASK``), the one
  sanctioned ``CTZ`` is guarded by the loop's ``BEQZ``, and ack counts
  cannot exceed the node count.
* ``ADDR`` is ``home_shift + 6`` bits wide (node field above the local
  offset), ``HDR`` is 32 bits, directory entries are 64 bits.

The same fixpoint performs definite-assignment: a register that is not
written on *every* path before a read is flagged, mirroring "reads of
never-written registers" bugs that would leak one handler's scratch
state into the next.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.network.messages import MsgType, virtual_network
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import (
    HDR_ACK_SHIFT,
    HDR_DIRTY_SHIFT,
    HDR_FOUND_SHIFT,
    HDR_REQ_SHIFT,
    HDR_SRC_SHIFT,
)
from repro.protocol.isa import (
    ADDR,
    DIR_BASE,
    ENTRY_SHIFT,
    HDR,
    HOME_SHIFT,
    LINE_SHIFT,
    LOCAL_MASK,
    NODE_ID,
    N_PROTOCOL_REGS,
    ZERO,
    Handler,
    POp,
)

from repro.analyze.cfg import (
    CFG,
    LoopProof,
    build_cfg,
    prove_loop_bounded,
    unreachable_indices,
    worst_case_instructions,
)
from repro.analyze.findings import SEV_ERROR, SEV_INFO, Finding

#: Documented header fields: start bit -> width.
HEADER_FIELDS: Dict[int, int] = {
    HDR_SRC_SHIFT: 6,
    HDR_REQ_SHIFT: 6,
    HDR_ACK_SHIFT: 6,
    HDR_FOUND_SHIFT: 1,
    HDR_DIRTY_SHIFT: 1,
}

#: Valid message-type byte values.
_MSG_VALUES = frozenset(m.value for m in MsgType)

#: The paper's "six-instruction critical handler" bound (§3) applies
#: to requester-side reply handlers (VN1 dispatch targets).
CRITICAL_HANDLER_BUDGET = 6

_WIDTH_TOP = 64


@dataclass(frozen=True)
class AbsVal:
    """One abstract register value."""

    exact: Optional[int] = None
    width: int = _WIDTH_TOP
    #: Input lineage: subset of {"addr", "hdr", "dir", "boot", "undef"}.
    origins: frozenset = frozenset()
    #: OR-composed (shift, width) fields, kept while the value is a
    #: pure LUI/SLL/OR composition; () once collapsed.
    parts: Tuple[Tuple[int, int], ...] = ()
    const_bits: int = 0
    structured: bool = False  # parts/const_bits are meaningful

    @property
    def maybe_undef(self) -> bool:
        return "undef" in self.origins


def exact_val(value: int) -> AbsVal:
    return AbsVal(
        exact=value,
        width=max(value.bit_length(), 1),
        const_bits=value,
        structured=True,
    )


def input_val(width: int, origin: str) -> AbsVal:
    return AbsVal(exact=None, width=width, origins=frozenset((origin,)))


UNDEF = AbsVal(exact=None, width=_WIDTH_TOP, origins=frozenset(("undef",)))


def join(a: AbsVal, b: AbsVal) -> AbsVal:
    if a == b:
        return a
    structured = (
        a.structured
        and b.structured
        and a.parts == b.parts
        and a.const_bits == b.const_bits
    )
    return AbsVal(
        exact=a.exact if a.exact == b.exact else None,
        width=max(a.width, b.width),
        origins=a.origins | b.origins,
        parts=a.parts if structured else (),
        const_bits=a.const_bits if structured else 0,
        structured=structured,
    )


def _collapsed(width: int, *sources: AbsVal) -> AbsVal:
    origins = frozenset().union(*(s.origins for s in sources))
    return AbsVal(exact=None, width=min(width, _WIDTH_TOP), origins=origins)


def _is_low_mask(imm: int) -> bool:
    return imm > 0 and (imm & (imm + 1)) == 0


def eval_alu(op: POp, a: AbsVal, b: AbsVal) -> AbsVal:
    """Abstract transfer for one ALU operation."""
    from repro.protocol.semantics import alu

    if a.exact is not None and b.exact is not None:
        return exact_val(alu(op, a.exact, b.exact))

    if op is POp.AND:
        if b.exact is not None and _is_low_mask(b.exact):
            return _collapsed(min(a.width, b.exact.bit_length()), a)
        if a.exact is not None and _is_low_mask(a.exact):
            return _collapsed(min(b.width, a.exact.bit_length()), b)
        return _collapsed(min(a.width, b.width), a, b)
    if op is POp.OR:
        merged = _or_compose(a, b)
        if merged is not None:
            return merged
        return _collapsed(max(a.width, b.width), a, b)
    if op is POp.XOR:
        return _collapsed(max(a.width, b.width), a, b)
    if op is POp.NOR:
        return _collapsed(_WIDTH_TOP, a, b)
    if op is POp.ADD:
        return _collapsed(max(a.width, b.width) + 1, a, b)
    if op is POp.SUB:
        return _collapsed(_WIDTH_TOP, a, b)
    if op is POp.SLL:
        if b.exact is not None:
            return _shifted_left(a, b.exact)
        return _collapsed(_WIDTH_TOP, a, b)
    if op is POp.SRL:
        if b.exact is not None:
            return _collapsed(max(a.width - b.exact, 0) or 1, a)
        return _collapsed(a.width, a, b)
    if op in (POp.SEQ, POp.SLT):
        return _collapsed(1, a, b)
    if op in (POp.POPC, POp.CTZ):
        # Modeling assumption: <= 64 bits set / 64-node ceiling.
        return _collapsed(6, a)
    if op is POp.LUI:
        raise ValueError("LUI handled by the caller")
    return _collapsed(_WIDTH_TOP, a, b)


def _shifted_left(a: AbsVal, amount: int) -> AbsVal:
    width = min(a.width + amount, _WIDTH_TOP)
    result = AbsVal(exact=None, width=width, origins=a.origins)
    if a.structured:
        return replace(
            result,
            parts=tuple((s + amount, w) for s, w in a.parts),
            const_bits=(a.const_bits << amount) & ((1 << _WIDTH_TOP) - 1),
            structured=True,
        )
    # A plain bounded value becomes a single positioned field.
    return replace(
        result, parts=((amount, a.width),), const_bits=0, structured=True
    )


def _or_compose(a: AbsVal, b: AbsVal) -> Optional[AbsVal]:
    """OR of two structured values keeps the field list."""
    if not (a.structured and b.structured):
        return None
    return AbsVal(
        exact=None,
        width=max(a.width, b.width),
        origins=a.origins | b.origins,
        parts=tuple(sorted(a.parts + b.parts)),
        const_bits=a.const_bits | b.const_bits,
        structured=True,
    )


# ----------------------------------------------------------------------
# Per-handler analysis
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AbsState:
    """Register file + SENDH latch, joined per CFG edge."""

    regs: Tuple[AbsVal, ...]
    #: 0 = no header latched, 1 = latched, 2 = maybe (joined).
    latched: int = 0


def _join_state(a: AbsState, b: AbsState) -> AbsState:
    regs = tuple(join(x, y) for x, y in zip(a.regs, b.regs))
    latched = a.latched if a.latched == b.latched else 2
    return AbsState(regs, latched)


def boot_state(layout: DirectoryLayout) -> AbsState:
    """Abstract register file at handler entry (post-boot)."""
    regs: List[AbsVal] = [UNDEF] * N_PROTOCOL_REGS
    regs[ZERO] = exact_val(0)
    regs[ADDR] = input_val(layout.home_shift + 6, "addr")
    regs[HDR] = input_val(32, "hdr")
    regs[HOME_SHIFT] = exact_val(layout.home_shift)
    regs[ENTRY_SHIFT] = exact_val(layout.entry_shift)
    regs[LOCAL_MASK] = exact_val(layout.local_mask)
    regs[NODE_ID] = input_val(6, "boot")
    regs[DIR_BASE] = exact_val(layout.dir_base)
    regs[LINE_SHIFT] = exact_val(layout.line_shift)
    return AbsState(tuple(regs))


class HandlerAnalysis:
    """Static analysis of one handler against one directory layout."""

    def __init__(self, handler: Handler, layout: DirectoryLayout) -> None:
        self.handler = handler
        self.layout = layout
        self.cfg: CFG = build_cfg(handler)
        self.findings: List[Finding] = []
        self.loop_proofs: Dict[Tuple[int, int], LoopProof] = {}
        self.worst_case: Optional[int] = None
        self._reported: Set[Tuple[str, int, str]] = set()

    # -- findings helpers ------------------------------------------------
    def _flag(
        self, code: str, index: int, message: str, **detail: object
    ) -> None:
        dedup = (code, index, message)
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        info = {"index": index}
        info.update(detail)
        self.findings.append(
            Finding(
                "static",
                code,
                self.handler.name,
                f"{self.handler.name}[{index}]: {message}",
                detail=info,
            )
        )

    # -- driver ----------------------------------------------------------
    def run(self, vector_width: int) -> "HandlerAnalysis":
        self._check_structure(vector_width)
        self._fixpoint()
        if all(
            edge in self.loop_proofs for edge in self.cfg.back_edges
        ):
            self.worst_case = worst_case_instructions(
                self.cfg, self.loop_proofs
            )
        return self

    def _check_structure(self, vector_width: int) -> None:
        for index in unreachable_indices(self.cfg):
            self._flag(
                "unreachable",
                index,
                f"instruction {self.cfg.instrs[index].op.name} can never "
                "execute",
            )
        for edge in self.cfg.back_edges:
            proof = prove_loop_bounded(self.cfg, edge, vector_width)
            if proof is None:
                self._flag(
                    "unbounded-loop",
                    edge[0],
                    "backward branch is not the sanctioned clear-lowest-"
                    "set-bit sharer walk; termination unproven",
                )
            else:
                self.loop_proofs[edge] = proof

    # -- fixpoint ----------------------------------------------------------
    def _fixpoint(self) -> None:
        entry = boot_state(self.layout)
        states: Dict[int, AbsState] = {0: entry}
        work = [0]
        visits: Dict[int, int] = {}
        while work:
            index = work.pop()
            visits[index] = visits.get(index, 0) + 1
            if visits[index] > 200:  # safety valve; lattice is finite
                continue
            state = states[index]
            out = self._transfer(index, state)
            if out is None:
                continue
            for succ in self.cfg.succs[index]:
                old = states.get(succ)
                new = out if old is None else _join_state(old, out)
                if old is None or new != old:
                    states[succ] = new
                    work.append(succ)

    def _read(self, state: AbsState, index: int, reg: int) -> AbsVal:
        val = state.regs[reg]
        if val.maybe_undef:
            self._flag(
                "undefined-read",
                index,
                f"reads r{reg}, which is not written on every path "
                "to this instruction",
                register=reg,
            )
        return val

    def _transfer(self, index: int, state: AbsState) -> Optional[AbsState]:
        instr = self.cfg.instrs[index]
        op = instr.op
        regs = list(state.regs)
        latched = state.latched

        for reg in instr.reads():
            self._read(state, index, reg)

        if op is POp.TRAP:
            return None
        if op is POp.LUI:
            regs[instr.rd] = exact_val(instr.imm)
        elif op is POp.LD:
            regs[instr.rd] = input_val(_WIDTH_TOP, "dir")
        elif op is POp.ST:
            pass
        elif op in (POp.BEQZ, POp.BNEZ, POp.J):
            pass
        elif op is POp.SENDH:
            self._check_header(index, state.regs[instr.rs1])
            if latched == 1:
                self._flag(
                    "orphan-header",
                    index,
                    "SENDH overwrites a latched header that was never "
                    "sent (missing SENDA)",
                )
            latched = 1
        elif op is POp.SENDA:
            if latched == 0:
                self._flag(
                    "send-without-header",
                    index,
                    "SENDA with no latched header (missing SENDH) "
                    "would raise in the memory controller",
                )
            elif latched == 2:
                self._flag(
                    "send-without-header",
                    index,
                    "SENDA may execute with no latched header on some "
                    "path",
                )
            self._check_send_addr(index, state.regs[instr.rs1])
            latched = 0
        elif op is POp.SWITCH:
            regs[HDR] = input_val(32, "hdr")
        elif op is POp.LDCTXT:
            regs[ADDR] = input_val(self.layout.home_shift + 6, "addr")
        elif op in (POp.PROBE, POp.COMPLETE, POp.RESEND, POp.MEMWR, POp.AMO):
            pass
        else:
            a = state.regs[instr.rs1]
            b = (
                state.regs[instr.rs2]
                if instr.rs2 is not None
                else exact_val(instr.imm & ((1 << 64) - 1))
            )
            if op in (POp.POPC, POp.CTZ):
                result = eval_alu(op, a, exact_val(0))
            else:
                result = eval_alu(op, a, b)
            if instr.rd != ZERO:
                regs[instr.rd] = result
        return AbsState(tuple(regs), latched)

    # -- header checks -----------------------------------------------------
    def _check_header(self, index: int, val: AbsVal) -> None:
        if val.maybe_undef:
            return  # already reported as undefined-read
        if not val.structured:
            self._flag(
                "unverifiable-header",
                index,
                "header value is not a LUI/SLL/OR field composition; "
                "layout cannot be verified",
            )
            return
        const = val.const_bits if val.exact is None else val.exact
        if (const & 0xFF) not in _MSG_VALUES:
            self._flag(
                "bad-header",
                index,
                f"header type byte {const & 0xFF:#x} is not a valid "
                "MsgType",
                rule="type-byte",
            )
        extra = const >> 8
        if extra:
            self._flag(
                "bad-header",
                index,
                f"constant bits {extra << 8:#x} land outside the "
                "message-type byte",
                rule="const-bits",
            )
        for shift, width in val.parts:
            if shift < 8:
                self._flag(
                    "bad-header",
                    index,
                    f"field at bit {shift} overlaps the message-type "
                    "byte",
                    rule="field-overlap",
                )
            elif shift not in HEADER_FIELDS:
                self._flag(
                    "bad-header",
                    index,
                    f"field at bit {shift} does not start a documented "
                    "header field",
                    rule="field-shift",
                )
            elif width > HEADER_FIELDS[shift]:
                self._flag(
                    "bad-header",
                    index,
                    f"field at bit {shift} is {width} bits wide; the "
                    f"documented field holds {HEADER_FIELDS[shift]}",
                    rule="field-width",
                )

    def _check_send_addr(self, index: int, val: AbsVal) -> None:
        if val.maybe_undef:
            return
        if "addr" not in val.origins:
            self._flag(
                "bad-send-addr",
                index,
                "SENDA operand is not derived from the request address "
                "register",
            )


# ----------------------------------------------------------------------
# Pass driver
# ----------------------------------------------------------------------


def handler_side(name: str, bundle=None) -> str:
    """Which engine runs this handler: home, probed, or requester.

    ``bundle`` is a :class:`repro.protocol.registry.ProtocolBundle`
    whose dispatch tables classify the handler; None falls back to the
    default protocol's module-level tables.
    """
    from repro.protocol.handlers import (
        LOCAL_REMOTE_DISPATCH,
        NETWORK_DISPATCH,
        PROBE_DISPATCH,
    )

    if bundle is None:
        probe, local_remote, network = (
            PROBE_DISPATCH, LOCAL_REMOTE_DISPATCH, NETWORK_DISPATCH,
        )
    else:
        probe = bundle.probe_dispatch
        local_remote = bundle.local_remote_dispatch
        network = bundle.network_dispatch
    if name in probe.values():
        return "probed"
    if name in local_remote.values():
        return "requester"
    for mtype, target in network.items():
        if target != name:
            continue
        if virtual_network(mtype) == 1:
            return "requester"
        if mtype in (MsgType.INT_SHARED, MsgType.INT_EXCL, MsgType.INVAL):
            return "probed"
        return "home"
    return "home"


def run_static_pass(
    table,
    layout: Optional[DirectoryLayout] = None,
    vector_width: int = 32,
    bundle=None,
) -> Tuple[List[Finding], List[Dict[str, object]]]:
    """Run the static pass over every handler in ``table``.

    Returns ``(findings, inventory)`` where inventory rows carry
    ``name, side, instrs, worst_case`` for the docs generator.
    """
    layout = layout or DirectoryLayout(
        local_memory_bytes=1 << 22, line_bytes=128, entry_bytes=4
    )
    findings: List[Finding] = []
    inventory: List[Dict[str, object]] = []
    for name in sorted(table.by_name):
        handler = table[name]
        analysis = HandlerAnalysis(handler, layout).run(vector_width)
        findings.extend(analysis.findings)
        side = handler_side(name, bundle)
        wc = analysis.worst_case
        inventory.append(
            {
                "name": name,
                "side": side,
                "instrs": len(handler),
                "worst_case": wc,
                "loops": len(analysis.cfg.back_edges),
            }
        )
        if wc is not None:
            findings.append(
                Finding(
                    "static",
                    "worst-case",
                    name,
                    f"{name}: worst case {wc} instructions ({side} side)",
                    severity=SEV_INFO,
                    detail={"worst_case": wc, "side": side},
                )
            )
        if (
            side == "requester"
            and name.startswith("h_reply")
            and wc is not None
            and wc > CRITICAL_HANDLER_BUDGET
        ):
            findings.append(
                Finding(
                    "static",
                    "critical-handler-over-budget",
                    name,
                    f"{name}: worst case {wc} instructions exceeds the "
                    f"paper's {CRITICAL_HANDLER_BUDGET}-instruction "
                    "critical-handler budget",
                    detail={"worst_case": wc},
                )
            )
    return findings, inventory
