"""Findings: the typed output record of every analysis pass.

A finding names the pass that produced it, a stable machine-readable
code, the handler (or ``(state, msg)`` pair, or model-check trace) it
concerns, and a human-readable message.  The CLI aggregates findings
into a report, filters them against the suppression list
(:mod:`repro.analyze.suppressions`), and derives its exit code from
what survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Report JSON schema version (bump on incompatible changes).
SCHEMA_VERSION = 1

#: Analysis passes, in report order.
PASSES = ("static", "dispatch", "model")

#: Severities. ``error`` findings fail the run (exit 1); ``info``
#: findings are informational rows (worst-case tables etc.).
SEV_ERROR = "error"
SEV_INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One analysis finding."""

    pass_name: str  # "static" | "dispatch" | "model"
    code: str  # stable id, e.g. "undefined-read"
    handler: str  # handler name or "" for table-level findings
    message: str  # one-line human description
    severity: str = SEV_ERROR
    #: Structured context: instruction index, (state, msg) pair,
    #: counterexample artifact path, ... JSON-serializable.
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Stable identity used by the suppression list."""
        return f"{self.pass_name}:{self.code}:{self.handler}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "code": self.code,
            "handler": self.handler,
            "severity": self.severity,
            "message": self.message,
            "detail": dict(self.detail),
        }


@dataclass
class Report:
    """Aggregated result of one ``repro analyze`` run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: Per-pass statistics (states explored, handlers analyzed, ...).
    stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Handler inventory rows (name, side, instrs, worst-case count).
    inventory: List[Dict[str, object]] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_ERROR]

    @property
    def clean(self) -> bool:
        return not self.errors

    def apply_suppressions(self, suppressions) -> None:
        """Move findings matched by ``suppressions`` out of the error set.

        ``suppressions`` is a sequence of
        :class:`repro.analyze.suppressions.Suppression`.

        A rule that matches *no* finding is itself reported as an
        error finding (code ``stale-suppression``): every suppression
        is a written-down argument about a finding the analyzer
        raises, and once the finding stops firing the argument is
        dead weight that would silently mask a future regression.
        """
        kept: List[Finding] = []
        used = set()
        for finding in self.findings:
            rule = next((s for s in suppressions if s.matches(finding)), None)
            if rule is not None:
                used.add(rule)
                if finding.severity == SEV_ERROR:
                    self.suppressed.append(finding)
                    continue
            kept.append(finding)
        self.findings = kept
        for rule in suppressions:
            if rule not in used:
                self.add(Finding(
                    rule.pass_name, "stale-suppression", rule.handler,
                    f"suppression for {rule.pass_name}/{rule.code}"
                    f"/{rule.handler} matched no finding: the argument "
                    "it records is dead — delete the entry (or fix its "
                    "state prefixes) so the list cannot rot",
                    detail={
                        "suppressed_code": rule.code,
                        "states": list(rule.states or ()),
                    },
                ))

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "clean": self.clean,
            "n_findings": len(self.errors),
            "n_suppressed": len(self.suppressed),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stats": self.stats,
            "inventory": self.inventory,
        }


def format_report(report: Report, verbose: bool = False) -> str:
    """Render a report for the terminal."""
    lines: List[str] = []
    for pass_name in PASSES:
        stats = report.stats.get(pass_name)
        if stats is None:
            continue
        summary = ", ".join(f"{k}={v}" for k, v in stats.items())
        lines.append(f"[{pass_name}] {summary}")
    errors = report.errors
    infos = [f for f in report.findings if f.severity != SEV_ERROR]
    for finding in errors:
        where = f" {finding.handler}" if finding.handler else ""
        lines.append(
            f"FINDING [{finding.pass_name}/{finding.code}]{where}: "
            f"{finding.message}"
        )
    if verbose:
        for finding in infos:
            where = f" {finding.handler}" if finding.handler else ""
            lines.append(
                f"note [{finding.pass_name}/{finding.code}]{where}: "
                f"{finding.message}"
            )
    for finding in report.suppressed:
        where = f" {finding.handler}" if finding.handler else ""
        lines.append(
            f"suppressed [{finding.pass_name}/{finding.code}]{where}: "
            f"{finding.message}"
        )
    lines.append(
        f"analyze: {len(errors)} finding(s), "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)
