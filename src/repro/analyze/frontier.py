"""Disk-backed sharded BFS frontier for deep model-checking runs.

In-memory exploration tops out when the visited set and frontier no
longer fit in one process.  This module runs the same reduced BFS as
:mod:`repro.analyze.model` but keeps both on disk, sharded by a hash
of the canonical state, and advances the search **wave by wave**
(breadth level by breadth level):

1. Wave ``k`` lives as ``wave_%04d/shard_%03d.pkl`` files, each a
   pickled list of BFS entries ``(state, trace, σ, λ)`` — the same
   canonical-frame bookkeeping the in-memory search uses, so
   counterexample traces stay concrete.
2. Every shard is expanded by a ``sim.sweep.pool_map`` worker
   (:func:`_expand_shard`), which writes its successors bucketed by
   target shard to ``out_%04d/from*_to*.pkl`` and returns only
   JSON-safe statistics.  Workers are wrapped in a
   :class:`repro.sim.queue.ResultLedger`, so a killed run replays
   finished shards instantly on restart — the same machinery sweep
   campaigns use (docs/sweep-service.md).
3. The coordinator merges the buckets per target shard against the
   cumulative per-shard visited-digest snapshots
   (``visited_%03d.wave_%04d.pkl``), writes wave ``k+1``, and only
   then bumps ``meta.json`` — the single commit point.  Every file is
   written to a temp name and ``os.replace``\\ d, and per-wave worker
   statistics fold into the meta exactly once (at the bump), so a
   kill at any instant resumes without losing or double-counting
   states.

Visited states are deduplicated by 128-bit BLAKE2 digests of the
canonical state key rather than the states themselves; at the state
counts reachable here (≪ 2^40) a collision — which would silently
drop a state — is beyond negligible, and the in-memory path that CI
exercises uses exact keys.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import ConfigError

from repro.analyze import symmetry as sym
from repro.analyze.model import (
    ExploreResult,
    MState,
    ModelViolation,
    Violation,
    expand,
    root_entry,
)

#: Fixed once per frontier directory (recorded in meta.json).
MIN_SHARDS = 8
MAX_SHARDS = 64


def _digest(st: MState) -> bytes:
    return hashlib.blake2b(
        repr(sym.state_key(st)).encode(), digest_size=16
    ).digest()


def _shard_of(digest: bytes, n_shards: int) -> int:
    return int.from_bytes(digest[:4], "big") % n_shards


def _write_atomic(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def _wave_dir(root: Path, wave: int) -> Path:
    return root / f"wave_{wave:04d}"


def _out_dir(root: Path, wave: int) -> Path:
    return root / f"out_{wave:04d}"


def _visited_path(root: Path, shard: int, wave: int) -> Path:
    return root / f"visited_{shard:03d}.wave_{wave:04d}.pkl"


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------


def _expand_shard(payload: Dict[str, object]) -> Dict[str, object]:
    """pool_map worker: expand one frontier shard one BFS level.

    Writes successor buckets to the out directory (atomically) and
    returns JSON-safe statistics — violations as plain dicts, states
    only inside the pickled bucket files.  Must stay idempotent: the
    ledger replays recorded outcomes without re-running us, so
    everything we do besides the return value lands in files keyed by
    (wave, source shard) that a redo would simply rewrite.
    """
    entries = pickle.loads(Path(str(payload["shard"])).read_bytes())
    out_dir = Path(str(payload["out_dir"]))
    out_dir.mkdir(parents=True, exist_ok=True)
    src = int(payload["shard_index"])  # type: ignore[arg-type]
    n_shards = int(payload["n_shards"])  # type: ignore[arg-type]
    layout = payload["layout"]
    table = payload["table"]
    depth = payload["depth"]
    reduce_sym = bool(payload["reduce_sym"])
    reduce_por = bool(payload["reduce_por"])
    bundle = payload.get("bundle")

    buckets: Dict[int, Dict[bytes, Tuple]] = {}
    transitions = pruned = 0
    max_depth = 0
    truncated = False
    violations: List[Dict[str, object]] = []

    for st, trace, sig, lam in entries:
        max_depth = max(max_depth, len(trace))
        if depth is not None and len(trace) >= int(depth):  # type: ignore[arg-type]
            truncated = True
            continue
        try:
            succ, pr = expand(st, layout, table, por=reduce_por, bundle=bundle)
        except ModelViolation as exc:
            label = sym.remap_label(getattr(exc, "label", "?"), sig, lam)
            violations.append({
                "code": exc.code,
                "status": exc.status,
                "message": sym.remap_label(str(exc), sig, lam),
                "trace": list(trace) + [label],
            })
            continue
        pruned += pr
        for label, nxt in succ:
            transitions += 1
            if reduce_sym:
                cnxt, rho_s, rho_l, orbit = sym.canonicalize(nxt)
            else:
                cnxt, orbit = nxt, 1
                rho_s = sym.identity(len(st.nodes))
                rho_l = sym.identity(len(st.entries))
            dg = _digest(cnxt)
            bucket = buckets.setdefault(_shard_of(dg, n_shards), {})
            if dg not in bucket:
                bucket[dg] = (
                    orbit,
                    cnxt,
                    trace + (sym.remap_label(label, sig, lam),),
                    sym.compose(sig, sym.invert(rho_s)),
                    sym.compose(lam, sym.invert(rho_l)),
                )

    for target, bucket in buckets.items():
        _write_atomic(
            out_dir / f"from{src:03d}_to{target:03d}.pkl",
            pickle.dumps(bucket, protocol=pickle.HIGHEST_PROTOCOL),
        )
    return {
        "transitions": transitions,
        "pruned": pruned,
        "max_depth": max_depth,
        "truncated": truncated,
        "violations": violations,
    }


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


def _result_from_meta(meta: Dict[str, object]) -> ExploreResult:
    stats = meta["stats"]  # type: ignore[index]
    v = meta.get("violation")
    violation = None
    if v is not None:
        violation = Violation(
            str(v["code"]), str(v["status"]), str(v["message"]),  # type: ignore[index]
            tuple(v["trace"]),  # type: ignore[index]
        )
    return ExploreResult(
        states=int(stats["states"]),  # type: ignore[index]
        transitions=int(stats["transitions"]),  # type: ignore[index]
        truncated=bool(stats["truncated"]),  # type: ignore[index]
        violation=violation,
        sym_states=int(stats["sym_states"]),  # type: ignore[index]
        pruned=int(stats["pruned"]),  # type: ignore[index]
        max_depth=int(stats["max_depth"]),  # type: ignore[index]
    )


def _purge_waves_below(root: Path, wave: int, n_shards: int) -> None:
    """Remove artifacts of fully committed waves (< ``wave``)."""
    for path in root.glob("wave_*"):
        if path.is_dir() and int(path.name.split("_")[1]) < wave:
            shutil.rmtree(path, ignore_errors=True)
    for path in root.glob("out_*"):
        if path.is_dir() and int(path.name.split("_")[1]) < wave:
            shutil.rmtree(path, ignore_errors=True)
    ledgers = root / "ledger"
    if ledgers.is_dir():
        for path in ledgers.glob("wave_*"):
            if int(path.name.split("_")[1]) < wave:
                shutil.rmtree(path, ignore_errors=True)
    for path in root.glob("visited_*.wave_*.pkl"):
        if int(path.stem.split("wave_")[1]) < wave:
            path.unlink(missing_ok=True)


def explore_disk(
    init: MState,
    layout,
    table,
    frontier_dir: str,
    jobs: int,
    max_states: int,
    depth: Optional[int],
    reduce_sym: bool = True,
    reduce_por: bool = True,
    bundle=None,
) -> ExploreResult:
    """Run the reduced BFS with the frontier sharded on disk.

    ``frontier_dir`` is created if missing; if it already holds a run
    with the *same* configuration the search resumes from its last
    committed wave (a finished run just returns its recorded result).
    A different configuration in the same directory is a
    ``ConfigError`` — deep runs are precious, never clobber one.
    """
    from repro.sim.queue import ResultLedger
    from repro.sim.sweep import pool_map

    root = Path(frontier_dir)
    root.mkdir(parents=True, exist_ok=True)
    config = {
        "n_nodes": len(init.nodes),
        "n_lines": len(init.entries),
        "loads": init.nodes[0].loads,
        "stores": init.nodes[0].stores,
        "max_states": max_states,
        "depth": depth,
        "reduce_sym": reduce_sym,
        "reduce_por": reduce_por,
        "protocol": bundle.name if bundle is not None else "smtp-bitvector",
    }
    meta_path = root / "meta.json"
    if meta_path.exists():
        meta = json.loads(meta_path.read_text())
        if meta["config"] != config:
            raise ConfigError(
                f"frontier dir {root} holds a different run "
                f"({meta['config']}); use a fresh --frontier-dir"
            )
        if meta.get("done"):
            return _result_from_meta(meta)
        n_shards = int(meta["n_shards"])
    else:
        n_shards = min(MAX_SHARDS, max(MIN_SHARDS, 2 * jobs))
        entry = root_entry(init)
        dg = _digest(entry[0])
        shard = _shard_of(dg, n_shards)
        wave0 = _wave_dir(root, 0)
        wave0.mkdir(exist_ok=True)
        _write_atomic(
            wave0 / f"shard_{shard:03d}.pkl",
            pickle.dumps([entry], protocol=pickle.HIGHEST_PROTOCOL),
        )
        _write_atomic(
            _visited_path(root, shard, 0),
            pickle.dumps({dg}, protocol=pickle.HIGHEST_PROTOCOL),
        )
        meta = {
            "config": config,
            "n_shards": n_shards,
            "wave": 0,
            "stats": {
                "states": 1, "sym_states": 1, "transitions": 0,
                "pruned": 0, "max_depth": 0, "truncated": False,
            },
        }
        _write_atomic(meta_path, json.dumps(meta, indent=1).encode())

    while True:
        wave = int(meta["wave"])
        stats = dict(meta["stats"])
        _purge_waves_below(root, wave, n_shards)
        wave_dir = _wave_dir(root, wave)
        shards = sorted(wave_dir.glob("shard_*.pkl")) if wave_dir.is_dir() else []
        if not shards:
            meta["done"] = True
            _write_atomic(meta_path, json.dumps(meta, indent=1).encode())
            return _result_from_meta(meta)

        out_dir = _out_dir(root, wave)
        pending = []
        for path in shards:
            idx = int(path.stem.split("_")[1])
            pending.append(((wave, idx), {
                "shard": str(path),
                "shard_index": idx,
                "out_dir": str(out_dir),
                "n_shards": n_shards,
                "layout": layout,
                "table": table,
                "depth": depth,
                "reduce_sym": reduce_sym,
                "reduce_por": reduce_por,
                "bundle": bundle,
            }))
        outcomes: List[Dict[str, object]] = []

        def on_done(ident, payload, outcome, elapsed, attempts) -> None:
            outcomes.append(outcome or {"_pool_status": "crashed"})

        pool_map(
            pending, _expand_shard, jobs=jobs, on_done=on_done,
            ledger=ResultLedger(root / "ledger" / f"wave_{wave:04d}"),
        )

        violations: List[Dict[str, object]] = []
        for outcome in outcomes:
            if outcome.get("_pool_status"):
                raise ConfigError(
                    f"frontier worker failed: {outcome['_pool_status']}"
                )
            stats["transitions"] = (
                int(stats["transitions"]) + int(outcome["transitions"])
            )
            stats["pruned"] = int(stats["pruned"]) + int(outcome["pruned"])
            stats["max_depth"] = max(
                int(stats["max_depth"]), int(outcome["max_depth"])
            )
            stats["truncated"] = (
                bool(stats["truncated"]) or bool(outcome["truncated"])
            )
            violations.extend(outcome["violations"])  # type: ignore[arg-type]

        if violations:
            best = min(violations, key=lambda v: len(v["trace"]))  # type: ignore[arg-type]
            meta["stats"] = stats
            meta["violation"] = best
            meta["done"] = True
            _write_atomic(meta_path, json.dumps(meta, indent=1).encode())
            return _result_from_meta(meta)

        # Merge: dedupe each target bucket against its cumulative
        # visited digests, emit wave+1 shards, then commit the meta.
        next_dir = _wave_dir(root, wave + 1)
        next_dir.mkdir(exist_ok=True)
        for target in range(n_shards):
            prev_visited = _visited_path(root, target, wave)
            visited: Set[bytes] = (
                pickle.loads(prev_visited.read_bytes())
                if prev_visited.exists() else set()
            )
            fresh: Dict[bytes, Tuple] = {}
            for path in sorted(out_dir.glob(f"from*_to{target:03d}.pkl")):
                for dg, entry in pickle.loads(path.read_bytes()).items():
                    if dg not in visited and dg not in fresh:
                        fresh[dg] = entry
            kept = []
            for dg in sorted(fresh):
                if int(stats["states"]) >= max_states:
                    stats["truncated"] = True
                    break
                orbit, st, trace, sig, lam = fresh[dg]
                stats["states"] = int(stats["states"]) + 1
                stats["sym_states"] = int(stats["sym_states"]) + int(orbit)
                visited.add(dg)
                kept.append((st, trace, sig, lam))
            if kept:
                _write_atomic(
                    next_dir / f"shard_{target:03d}.pkl",
                    pickle.dumps(kept, protocol=pickle.HIGHEST_PROTOCOL),
                )
            _write_atomic(
                _visited_path(root, target, wave + 1),
                pickle.dumps(visited, protocol=pickle.HIGHEST_PROTOCOL),
            )
        meta["wave"] = wave + 1
        meta["stats"] = stats
        _write_atomic(meta_path, json.dumps(meta, indent=1).encode())
