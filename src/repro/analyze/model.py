"""Pass 3: exhaustive small-model checking of the real handler table.

An explicit-state BFS over a tiny abstract machine — 2 to 6 nodes,
one to three application lines homed at node 0 — whose *protocol*
side is the actual handler programs executed
instruction-by-instruction through
:class:`repro.protocol.semantics.FunctionalRunner`, with the uncached
operations (SENDH/SENDA/PROBE/COMPLETE/RESEND/MEMWR) mirrored from
:class:`repro.memctrl.controller.MemoryController` and the cache/MSHR
side mirrored from :class:`repro.caches.hierarchy.CacheHierarchy`.
Timing is abstracted away; every interleaving of message arrivals,
issue events, and evictions is explored.

Beyond the flat BFS, the checker applies two sound reductions (see
DESIGN.md, "Reduction theory", and :mod:`repro.analyze.symmetry`):

* **Symmetry** — states are canonicalized under permutations of the
  non-home nodes and of the lines before entering the visited set.
  Each BFS entry carries the permutation mapping its canonical frame
  back to the original machine, so counterexample traces stay
  concrete and replayable.
* **Partial-order reduction** — when a queued L2 probe reply can be
  dispatched and provably commutes with every other enabled
  transition (:func:`ample_probe`), it is explored *alone* as a
  singleton ample set and the sibling interleavings are pruned.

Deep configurations additionally run against a disk-backed frontier
(:mod:`repro.analyze.frontier`) sharded over ``sim.sweep.pool_map``
workers, kill-resumable via the PR 6 ledger machinery.

Invariants (the same ones :mod:`repro.fuzz.sanitizer` checks online):

* **SWMR** — at most one *writable* (EXCLUSIVE/MODIFIED) copy of a
  line ever exists.  Stale SHARED copies transiently coexisting with
  a writable copy are the protocol's documented eager-exclusive
  relaxation and are allowed.
* **Data value** — the k-th store to a line machine-wide leaves the
  owning copy at version k; a store landing on a stale base is a
  lost update.
* **No stuck states** — an MSHR with no message in flight anywhere
  can never complete: deadlock.
* **Directory health** — entries always decode to a legal state with
  in-range owner/waiter/sharers, and at quiescence the directory
  agrees with the caches (owner recorded iff a writable copy exists,
  no BUSY leftovers, no lost updates).
* **No traps** — a reachable TRAP is a protocol violation by
  definition.

Counterexamples serialize through :mod:`repro.fuzz.artifact` (the
issue events become ``FuzzOp`` records, the full transition trace
becomes the artifact's trace tail) so ``repro fuzz --replay`` can
re-drive the concrete machine along the same op sequence.

Deliberate model simplifications, documented:

* at most one MSHR per (node, line) and no cache-capacity conflicts;
  evictions and silent SHARED drops are explicit transitions instead,
* loads that hit do not appear as transitions (no protocol effect),
* atomics/prefetches and the active-memory extension are out of the
  issue alphabet,
* NACK retries happen immediately (no backoff): livelock cycles are
  finite state-graph cycles here, not detected as failures.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.common.errors import ConfigError, ProtocolError
from repro.network.messages import Message, MsgType, virtual_network
from repro.protocol import directory as d
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import (
    boot_registers,
    build_handler_table,
    header_acks,
    header_peer,
    header_requester,
    header_type,
)
from repro.protocol.isa import ADDR, HDR, HandlerTable, POp, RESEND_AS_GETX
from repro.protocol.semantics import FunctionalRunner
from repro.memctrl.dispatch import handler_name_for, incoming_header
from repro.protocol.handlers import PROBE_DISPATCH

from repro.analyze import symmetry as sym

#: First application line under test; homed at node 0 for the
#: standard fuzz layout (local_memory_bytes = 1 << 22).  Additional
#: lines are consecutive 128-byte neighbours, so every line shares
#: the same home and the symmetry group treats them uniformly.
LINE = 0x2000
LINE_STRIDE = 128

#: Hard caps: the symmetry group is (n-1)!·L!, and canonicalization
#: enumerates it per successor, so keep both small.
MAX_NODES = 6
MAX_LINES = 3


def line_addr(line: int) -> int:
    return LINE + line * LINE_STRIDE


_MTYPE_BY_VALUE = {m.value: m for m in MsgType}

_REPLY_NAMES = frozenset(
    m.name
    for m in (
        MsgType.DATA_SHARED, MsgType.DATA_EXCL, MsgType.UPGRADE_ACK,
        MsgType.INV_ACK, MsgType.WB_ACK, MsgType.NACK,
        MsgType.NACK_UPGRADE, MsgType.AM_REPLY,
    )
)

_PROBE_KINDS = {
    "INT_SHARED": "downgrade",
    "INT_EXCL": "inval_owner",
    "INVAL": "inval",
}


class MMsg(NamedTuple):
    """An in-flight message (hashable mirror of network.Message)."""

    mtype: str
    src: int
    dest: int
    requester: int
    version: int = 0
    dirty: bool = False
    acks: int = 0
    found: bool = False
    probe_kind: str = ""
    line: int = 0  # line index (address = line_addr(line))


class MShr(NamedTuple):
    """One node's miss-status register for one line."""

    kind: str  # 'read' | 'write'
    request_upgrade: bool = False
    upgrade_pending: bool = False
    data_arrived: bool = False
    writable: bool = False
    version: int = 0
    pending_acks: int = 0
    inval_after_fill: bool = False
    stores: int = 0  # store waiters to commit at completion
    deferred: Tuple[MMsg, ...] = ()  # probes racing the in-flight fill
    unissued: bool = False  # parked behind an unacknowledged PUT


class MNode(NamedTuple):
    caches: Tuple[str, ...]  # per line: '' (invalid) | 'S' | 'E' | 'M'
    versions: Tuple[int, ...]  # per line
    mshrs: Tuple[Optional[MShr], ...]  # per line
    probes: Tuple[MMsg, ...] = ()  # node-internal L2 probe replies
    lmi: Tuple[MMsg, ...] = ()  # local miss interface queue
    loads: int = 0  # remaining load-issue budget (shared across lines)
    stores: int = 0  # remaining store-issue budget (shared across lines)
    wb_pending: Tuple[bool, ...] = ()  # per line: PUT sent, no WB_ACK yet


class MState(NamedTuple):
    nodes: Tuple[MNode, ...]
    entries: Tuple[int, ...]  # per line directory entry (at home)
    mems: Tuple[int, ...]  # per line home memory version
    mem_sets: Tuple[bool, ...]  # per line: memory ever written?
    counts: Tuple[int, ...]  # per line machine-wide committed stores
    chans: Tuple[Tuple[MMsg, ...], ...]  # (src*n+dest)*3+vn FIFOs


class ModelViolation(Exception):
    """An invariant failed; ``status`` matches fuzz status classes."""

    def __init__(self, code: str, message: str, status: str = "violation"):
        super().__init__(message)
        self.code = code
        self.status = status


class Violation(NamedTuple):
    """A violation plus the transition trace that reaches it."""

    code: str
    status: str  # 'violation' | 'deadlock'
    message: str
    trace: Tuple[str, ...]


class ExploreResult(NamedTuple):
    states: int  # canonical states visited (raw when reductions off)
    transitions: int  # transitions actually applied
    truncated: bool
    violation: Optional[Violation]
    #: Σ orbit sizes over visited canonical states: the size of the
    #: symmetry-closed set the canonical set represents.  The
    #: symmetry reduction ratio is sym_states / states.
    sym_states: int = 0
    #: transitions pruned by the ample-set reduction (never applied).
    pruned: int = 0
    #: deepest trace length reached.
    max_depth: int = 0


def initial_state(
    n_nodes: int, loads: int, stores: int, n_lines: int = 1
) -> MState:
    nodes = tuple(
        MNode(
            caches=("",) * n_lines,
            versions=(0,) * n_lines,
            mshrs=(None,) * n_lines,
            loads=loads,
            stores=stores,
            wb_pending=(False,) * n_lines,
        )
        for _ in range(n_nodes)
    )
    chans = tuple(() for _ in range(n_nodes * n_nodes * 3))
    return MState(
        nodes,
        entries=(d.encode(d.UNOWNED),) * n_lines,
        mems=(0,) * n_lines,
        mem_sets=(False,) * n_lines,
        counts=(0,) * n_lines,
        chans=chans,
    )


class _Sim:
    """Mutable working copy of one MState, for applying a transition."""

    def __init__(
        self,
        st: MState,
        layout: DirectoryLayout,
        table: HandlerTable,
        bundle=None,
    ):
        self.layout = layout
        self.table = table
        #: Protocol bundle whose dispatch tables route messages; None
        #: falls back to the default protocol's module tables.
        self.bundle = bundle
        self.n = len(st.nodes)
        self.n_lines = len(st.entries)
        self.nodes = [n._asdict() for n in st.nodes]
        for node in self.nodes:
            node["caches"] = list(node["caches"])
            node["versions"] = list(node["versions"])
            node["mshrs"] = list(node["mshrs"])
            node["wb_pending"] = list(node["wb_pending"])
            node["probes"] = list(node["probes"])
            node["lmi"] = list(node["lmi"])
        self.entries = list(st.entries)
        self.mems = list(st.mems)
        self.mem_sets = list(st.mem_sets)
        self.counts = list(st.counts)
        self.chans = [list(q) for q in st.chans]
        self.home = layout.home_of(LINE)

    def freeze(self) -> MState:
        nodes = tuple(
            MNode(
                caches=tuple(n["caches"]), versions=tuple(n["versions"]),
                mshrs=tuple(n["mshrs"]), probes=tuple(n["probes"]),
                lmi=tuple(n["lmi"]), loads=n["loads"], stores=n["stores"],
                wb_pending=tuple(n["wb_pending"]),
            )
            for n in self.nodes
        )
        return MState(
            nodes, tuple(self.entries), tuple(self.mems),
            tuple(self.mem_sets), tuple(self.counts),
            tuple(tuple(q) for q in self.chans),
        )

    # -- message plumbing ----------------------------------------------

    def chan(self, src: int, dest: int, vn: int) -> List[MMsg]:
        return self.chans[(src * self.n + dest) * 3 + vn]

    def route(self, msg: MMsg) -> None:
        """Send ``msg`` the way the MC would."""
        mtype = MsgType[msg.mtype]
        if msg.dest == msg.src and msg.mtype not in _REPLY_NAMES:
            # _deliver_local -> _enqueue_local for non-replies.
            self.nodes[msg.src]["lmi"].append(msg)
        else:
            # Replies to self take a (src, src) channel: the real MC
            # applies them after a delay, so other events interleave.
            self.chan(msg.src, msg.dest, virtual_network(mtype)).append(msg)

    # -- handler execution (the real programs) --------------------------

    def run_handler(self, node_id: int, msg: MMsg) -> None:
        if msg.mtype == "L2_PROBE_REPLY":
            probe = (
                self.bundle.probe_dispatch if self.bundle else PROBE_DISPATCH
            )
            name = probe[MsgType[msg.probe_kind]]
        else:
            name = handler_name_for(self._to_message(msg), node_id, self.bundle)
        regs = boot_registers(self.layout, node_id)
        regs[ADDR] = line_addr(msg.line)
        regs[HDR] = incoming_header(self._to_message(msg))
        dir_addr = self.layout.dir_entry_addr(line_addr(msg.line))
        pmem: Dict[int, int] = {}
        if node_id == self.home:
            pmem[dir_addr] = self.entries[msg.line]

        latched: List[Optional[int]] = [None]

        def on_uncached(instr, value: int) -> None:
            op = instr.op
            if op is POp.SENDH:
                latched[0] = value
            elif op is POp.SENDA:
                if latched[0] is None:
                    raise ModelViolation(
                        "send-without-header",
                        f"{name} at node {node_id}: SENDA with no header",
                    )
                self._execute_send(node_id, msg, latched[0])
                latched[0] = None
            elif op is POp.PROBE:
                self._execute_probe(node_id, msg)
            elif op is POp.COMPLETE:
                self._apply_reply(node_id, msg)
            elif op is POp.RESEND:
                self._resend(
                    node_id, msg.line, as_getx=instr.imm == RESEND_AS_GETX
                )
            elif op is POp.MEMWR:
                if msg.dirty:
                    self.mems[msg.line] = msg.version
                    self.mem_sets[msg.line] = True
                elif not self.mem_sets[msg.line]:
                    self.mems[msg.line] = msg.version
                    self.mem_sets[msg.line] = True
            elif op is POp.AMO:
                pass  # atomics are outside the model's issue alphabet
            # SWITCH/LDCTXT: sequencing only.

        runner = FunctionalRunner(
            regs, lambda a: pmem.get(a, 0), pmem.__setitem__, on_uncached
        )
        try:
            runner.run(self.table[name])
        except ProtocolError as exc:
            raise ModelViolation("trap", f"{name} at node {node_id}: {exc}")
        if node_id == self.home:
            self.entries[msg.line] = pmem.get(dir_addr, self.entries[msg.line])

    def _to_message(self, msg: MMsg) -> Message:
        m = Message(
            MsgType[msg.mtype], line_addr(msg.line), src=msg.src,
            dest=msg.dest, requester=msg.requester, version=msg.version,
            dirty=msg.dirty, acks=msg.acks, found=msg.found,
        )
        if msg.probe_kind:
            m.probe_kind = MsgType[msg.probe_kind]
        return m

    def _execute_send(self, node_id: int, ctx_msg: MMsg, header: int) -> None:
        mtype = _MTYPE_BY_VALUE[header_type(header)]
        out = MMsg(
            mtype.name, src=node_id, dest=header_peer(header),
            requester=header_requester(header), acks=header_acks(header),
            line=ctx_msg.line,
        )
        if mtype in (MsgType.DATA_SHARED, MsgType.DATA_EXCL, MsgType.PUT,
                     MsgType.SWB, MsgType.XFER):
            if ctx_msg.mtype == "L2_PROBE_REPLY":
                out = out._replace(version=ctx_msg.version, dirty=ctx_msg.dirty)
            else:
                out = out._replace(version=self.mems[ctx_msg.line], dirty=False)
        self.route(out)

    def _execute_probe(self, node_id: int, ctx_msg: MMsg) -> None:
        """Mirror hierarchy.probe + the MC's reply composition."""
        probe_kind = ctx_msg.mtype  # INT_SHARED / INT_EXCL / INVAL
        kind = _PROBE_KINDS[probe_kind]
        line = ctx_msg.line
        node = self.nodes[node_id]
        if node["wb_pending"][line]:
            # Writeback-buffer hit (hierarchy.probe): our PUT is in
            # flight and unacknowledged, so the intervention targets
            # the written-back copy.  Answer miss.
            self._probe_reply(node_id, ctx_msg, False, False, 0)
            return
        mshr: Optional[MShr] = node["mshrs"][line]
        if mshr is not None and not self._complete(mshr):
            if kind == "inval":
                if node["caches"][line] == "":
                    # Stale INVAL racing our re-fetch: early-ack, and
                    # discard a non-writable fill afterwards.
                    node["mshrs"][line] = mshr._replace(inval_after_fill=True)
                    self._probe_reply(node_id, ctx_msg, False, False, 0)
                    return
                # INVAL racing an in-flight upgrade hits the
                # still-present SHARED copy immediately.
            else:
                node["mshrs"][line] = mshr._replace(
                    deferred=mshr.deferred + (ctx_msg,)
                )
                return
        found, dirty, version = self._do_probe(node_id, line, kind)
        self._probe_reply(node_id, ctx_msg, found, dirty, version)

    def _do_probe(
        self, node_id: int, line: int, kind: str
    ) -> Tuple[bool, bool, int]:
        node = self.nodes[node_id]
        if node["caches"][line] == "":
            return False, False, 0
        if kind == "inval" and node["caches"][line] in ("E", "M"):
            # Stale INVAL: a later transaction made us owner.  Ack and
            # keep the copy.
            return False, False, 0
        dirty = node["caches"][line] == "M"
        version = node["versions"][line]
        if kind in ("inval", "inval_owner"):
            node["caches"][line] = ""
        else:  # downgrade
            node["caches"][line] = "S"
        return True, dirty, version

    def _probe_reply(
        self, node_id: int, origin: MMsg, found: bool, dirty: bool, version: int
    ) -> None:
        self.nodes[node_id]["probes"].append(MMsg(
            "L2_PROBE_REPLY", src=origin.src, dest=node_id,
            requester=origin.requester, version=version, dirty=dirty,
            found=found, probe_kind=origin.mtype, line=origin.line,
        ))

    # -- reply application (mirror of MC._apply_reply + hierarchy) ------

    @staticmethod
    def _complete(mshr: MShr) -> bool:
        return (
            mshr.data_arrived
            and mshr.pending_acks == 0
            and not mshr.upgrade_pending
        )

    def _apply_reply(self, node_id: int, msg: MMsg) -> None:
        mtype = msg.mtype
        line = msg.line
        if mtype == "DATA_SHARED":
            self._refill(node_id, line, False, msg.version, msg.acks, False)
        elif mtype == "DATA_EXCL":
            self._refill(node_id, line, True, msg.version, msg.acks, msg.dirty)
        elif mtype == "UPGRADE_ACK":
            node = self.nodes[node_id]
            if node["mshrs"][line] is None:
                raise ModelViolation(
                    "reply-no-mshr", f"node {node_id}: upgrade ack, no MSHR"
                )
            version = node["versions"][line] if node["caches"][line] else 0
            self._data_reply(node_id, line, version, True, msg.acks)
            self._maybe_complete(node_id, line, dirty=False)
        elif mtype == "INV_ACK":
            node = self.nodes[node_id]
            if node["mshrs"][line] is None:
                raise ModelViolation(
                    "reply-no-mshr", f"node {node_id}: inval ack, no MSHR"
                )
            node["mshrs"][line] = node["mshrs"][line]._replace(
                pending_acks=node["mshrs"][line].pending_acks - 1
            )
            self._maybe_complete(node_id, line, dirty=False)
        elif mtype == "WB_ACK":
            node = self.nodes[node_id]
            node["wb_pending"][line] = False
            mshr = node["mshrs"][line]
            if mshr is not None and mshr.unissued:
                # The parked miss issues now (hierarchy.wb_ack).
                node["mshrs"][line] = mshr._replace(unissued=False)
                self._request(node_id, line)
        elif mtype == "NACK":
            self._resend(node_id, line, as_getx=False)
        elif mtype == "NACK_UPGRADE":
            self._resend(node_id, line, as_getx=True)
        else:
            raise ModelViolation("bad-reply", f"not a reply: {mtype}")

    def _refill(
        self, node_id: int, line: int, writable: bool, version: int,
        acks: int, dirty: bool,
    ) -> None:
        node = self.nodes[node_id]
        if node["mshrs"][line] is None:
            raise ModelViolation(
                "refill-no-mshr", f"node {node_id}: refill with no MSHR"
            )
        self._data_reply(node_id, line, version, writable, acks)
        mshr = node["mshrs"][line]
        if mshr.upgrade_pending and mshr.data_arrived and not writable:
            self._convert_to_upgrade(node_id, line)
            return
        self._maybe_complete(node_id, line, dirty)

    def _data_reply(
        self, node_id: int, line: int, version: int, writable: bool, acks: int
    ) -> None:
        mshr = self.nodes[node_id]["mshrs"][line]
        upgrade_pending = mshr.upgrade_pending and not writable
        self.nodes[node_id]["mshrs"][line] = mshr._replace(
            data_arrived=True, version=version, writable=writable,
            pending_acks=mshr.pending_acks + acks,
            upgrade_pending=upgrade_pending,
        )

    def _convert_to_upgrade(self, node_id: int, line: int) -> None:
        node = self.nodes[node_id]
        mshr = node["mshrs"][line]
        if node["caches"][line] == "":
            node["caches"][line] = "S"
            node["versions"][line] = mshr.version
        node["mshrs"][line] = mshr._replace(
            kind="write", upgrade_pending=False, request_upgrade=True,
            data_arrived=False, writable=False,
        )
        self._request(node_id, line)

    def _maybe_complete(self, node_id: int, line: int, dirty: bool) -> None:
        node = self.nodes[node_id]
        mshr = node["mshrs"][line]
        if not self._complete(mshr):
            return
        if mshr.request_upgrade:
            if node["caches"][line] == "":
                raise ModelViolation(
                    "upgrade-lost-copy",
                    f"node {node_id}: upgrade completed but the pinned "
                    "SHARED copy is gone",
                )
            node["caches"][line] = "M" if dirty else "E"
        else:
            state = "M" if dirty else ("E" if mshr.writable else "S")
            if node["caches"][line] == "":
                node["caches"][line] = state
                node["versions"][line] = mshr.version
            elif state in ("E", "M") and node["caches"][line] == "S":
                # A lost upgrade retried as a full GETX: promote.
                node["caches"][line] = state
                node["versions"][line] = max(
                    node["versions"][line], mshr.version
                )
        node["mshrs"][line] = None
        for _ in range(mshr.stores):
            self._commit_store(node_id, line)
        if mshr.inval_after_fill and node["caches"][line] == "S":
            node["caches"][line] = ""  # the early-acked INVAL lands now
        for probe in mshr.deferred:
            kind = _PROBE_KINDS[probe.mtype]
            found, dty, version = self._do_probe(node_id, probe.line, kind)
            self._probe_reply(node_id, probe, found, dty, version)

    def _resend(self, node_id: int, line: int, as_getx: bool) -> None:
        node = self.nodes[node_id]
        mshr = node["mshrs"][line]
        if mshr is None:
            return  # stale NACK: transaction already completed
        if as_getx:
            mshr = mshr._replace(request_upgrade=False)
            node["mshrs"][line] = mshr
        if mshr.request_upgrade:
            mtype = "UPGRADE"
        elif mshr.kind == "write":
            mtype = "GETX"
        else:
            mtype = "GET"
        msg = MMsg(
            mtype, src=node_id, dest=self.home, requester=node_id, line=line
        )
        if self.home == node_id:
            node["lmi"].append(msg)
        else:
            self.chan(node_id, self.home, 0).append(msg)

    # -- issue / eviction side ------------------------------------------

    def _request(self, node_id: int, line: int) -> None:
        """Mirror of hierarchy._issue_app_miss + MC.app_miss: compose
        the request for the current MSHR and enqueue it locally — or
        park it while our PUT for the line is unacknowledged."""
        node = self.nodes[node_id]
        mshr = node["mshrs"][line]
        if node["wb_pending"][line]:
            node["mshrs"][line] = mshr._replace(unissued=True)
            return
        if mshr.request_upgrade:
            mtype = "UPGRADE"
        elif mshr.kind == "write":
            mtype = "GETX"
        else:
            mtype = "GET"
        node["lmi"].append(MMsg(
            mtype, src=node_id, dest=self.home, requester=node_id, line=line
        ))

    def _commit_store(self, node_id: int, line: int) -> None:
        node = self.nodes[node_id]
        for other_id, other in enumerate(self.nodes):
            if other_id != node_id and other["caches"][line] in ("E", "M"):
                raise ModelViolation(
                    "swmr",
                    f"store at node {node_id} while node {other_id} also "
                    f"holds a writable copy of L{line}",
                )
        if node["caches"][line] not in ("E", "M"):
            raise ModelViolation(
                "store-no-copy",
                f"node {node_id} committed a store without a writable copy",
            )
        self.counts[line] += 1
        node["versions"][line] += 1
        node["caches"][line] = "M"
        if node["versions"][line] != self.counts[line]:
            raise ModelViolation(
                "data-value",
                f"store #{self.counts[line]} to L{line} left version "
                f"{node['versions'][line]}: the store landed on a stale copy",
            )

    def issue_load(self, node_id: int, line: int) -> None:
        node = self.nodes[node_id]
        node["loads"] -= 1
        node["mshrs"][line] = MShr(kind="read")
        self._request(node_id, line)

    def issue_store(self, node_id: int, line: int) -> str:
        node = self.nodes[node_id]
        node["stores"] -= 1
        mshr = node["mshrs"][line]
        if mshr is not None:
            # Merge onto the in-flight read: ownership upgrade follows
            # the (possibly SHARED) fill.
            node["mshrs"][line] = mshr._replace(
                upgrade_pending=True, stores=mshr.stores + 1
            )
            return "merge"
        if node["caches"][line] in ("E", "M"):
            self._commit_store(node_id, line)
            return "hit"
        if node["caches"][line] == "S":
            node["mshrs"][line] = MShr(
                kind="write", request_upgrade=True, stores=1
            )
            self._request(node_id, line)
            return "upgrade"
        node["mshrs"][line] = MShr(kind="write", stores=1)
        self._request(node_id, line)
        return "miss"

    def evict(self, node_id: int, line: int) -> None:
        node = self.nodes[node_id]
        dirty = node["caches"][line] == "M"
        version = node["versions"][line]
        node["caches"][line] = ""
        node["wb_pending"][line] = True
        msg = MMsg(
            "PUT", src=node_id, dest=self.home, requester=node_id,
            version=version, dirty=dirty, line=line,
        )
        if self.home == node_id:
            node["lmi"].append(msg)
        else:
            self.chan(
                node_id, self.home, virtual_network(MsgType.PUT)
            ).append(msg)

    def drop(self, node_id: int, line: int) -> None:
        self.nodes[node_id]["caches"][line] = ""


# ----------------------------------------------------------------------
# Invariants over whole states
# ----------------------------------------------------------------------


def check_state(st: MState, n_nodes: int) -> None:
    """Raise ModelViolation if ``st`` breaks a global invariant."""
    n_lines = len(st.entries)
    for line in range(n_lines):
        entry = st.entries[line]
        state = d.state_of(entry)
        if state not in (
            d.UNOWNED, d.SHARED, d.EXCLUSIVE, d.BUSY_SHARED, d.BUSY_EXCLUSIVE
        ):
            raise ModelViolation(
                "bad-directory",
                f"L{line} directory entry decodes to state {state}",
            )
        if state in (d.EXCLUSIVE, d.BUSY_SHARED, d.BUSY_EXCLUSIVE):
            if d.owner_of(entry) >= n_nodes:
                raise ModelViolation(
                    "bad-directory",
                    f"L{line} owner {d.owner_of(entry)} out of range",
                )
        if state == d.SHARED and d.vector_of(entry) >> n_nodes:
            raise ModelViolation(
                "bad-directory",
                f"L{line} sharer vector {d.vector_of(entry):#x} names "
                "absent nodes",
            )
        writable = [
            i for i, n in enumerate(st.nodes) if n.caches[line] in ("E", "M")
        ]
        if len(writable) > 1:
            raise ModelViolation(
                "swmr",
                f"nodes {writable} hold writable copies of L{line} "
                "simultaneously",
            )

    in_flight = (
        any(st.chans)
        or any(n.lmi or n.probes for n in st.nodes)
    )
    waiting = [
        i for i, n in enumerate(st.nodes)
        if any(m is not None for m in n.mshrs)
        or any(
            wb and m is None for wb, m in zip(n.wb_pending, n.mshrs)
        )
    ]
    if waiting and not in_flight:
        raise ModelViolation(
            "stuck",
            f"nodes {waiting} wait on MSHRs or WB_ACKs but no message "
            "is in flight anywhere: the transaction can never complete",
            status="deadlock",
        )
    if not in_flight and not waiting:
        for line in range(n_lines):
            _check_quiescent_line(st, line)


def _check_quiescent_line(st: MState, line: int) -> None:
    entry = st.entries[line]
    state = d.state_of(entry)
    writable = [
        i for i, n in enumerate(st.nodes) if n.caches[line] in ("E", "M")
    ]
    if state in (d.BUSY_SHARED, d.BUSY_EXCLUSIVE):
        raise ModelViolation(
            "stuck-directory",
            f"quiescent machine left L{line}'s directory BUSY: a "
            "transaction evaporated without resolving",
            status="deadlock",
        )
    if writable:
        owner = writable[0]
        if state != d.EXCLUSIVE or d.owner_of(entry) != owner:
            raise ModelViolation(
                "dir-cache-mismatch",
                f"node {owner} holds a writable copy of L{line} but the "
                f"directory says {d.describe(entry)}",
            )
        if st.nodes[owner].versions[line] != st.counts[line]:
            raise ModelViolation(
                "data-value",
                f"quiescent owner copy of L{line} at version "
                f"{st.nodes[owner].versions[line]}, {st.counts[line]} "
                "stores committed",
            )
    else:
        if state == d.EXCLUSIVE:
            raise ModelViolation(
                "dir-cache-mismatch",
                f"directory says {d.describe(entry)} for L{line} but no "
                "writable copy exists",
            )
        if st.mems[line] != st.counts[line]:
            raise ModelViolation(
                "data-value",
                f"quiescent memory for L{line} at version "
                f"{st.mems[line]}, {st.counts[line]} stores committed: "
                "updates were lost",
            )


# ----------------------------------------------------------------------
# Transition relation
# ----------------------------------------------------------------------


def _store_issuable(node: MNode, line: int) -> bool:
    mshr = node.mshrs[line]
    return mshr is None or (
        mshr.kind == "read" and not mshr.upgrade_pending
    )


def successors(
    st: MState, layout: DirectoryLayout, table: HandlerTable, bundle=None
) -> List[Tuple[str, MState]]:
    """All (label, next-state) pairs from ``st``.

    Raises ModelViolation (with no trace attached — the caller knows
    the path) if applying a transition breaks an invariant.
    """
    out: List[Tuple[str, MState]] = []
    n = len(st.nodes)
    n_lines = len(st.entries)

    def apply(label: str, fn) -> None:
        sim = _Sim(st, layout, table, bundle)
        try:
            fn(sim)
            nxt = sim.freeze()
            check_state(nxt, n)
        except ModelViolation as exc:
            exc.label = label  # type: ignore[attr-defined]
            raise
        out.append((label, nxt))

    for i, node in enumerate(st.nodes):
        # Issue alphabet.
        for k in range(n_lines):
            if node.loads > 0 and node.caches[k] == "" and node.mshrs[k] is None:
                apply(f"n{i}: load L{k}", lambda s, i=i, k=k: s.issue_load(i, k))
            if node.stores > 0 and _store_issuable(node, k):
                apply(
                    f"n{i}: store L{k}", lambda s, i=i, k=k: s.issue_store(i, k)
                )
            # Evictions / silent drops.
            if node.mshrs[k] is None and node.caches[k] in ("E", "M"):
                apply(f"n{i}: evict L{k}", lambda s, i=i, k=k: s.evict(i, k))
            if node.mshrs[k] is None and node.caches[k] == "S":
                apply(f"n{i}: drop L{k}", lambda s, i=i, k=k: s.drop(i, k))
        # Dispatch: probe replies have absolute priority (they are
        # node-internal, so there is no arrival race to model).
        if node.probes:
            msg = node.probes[0]

            def fire_probe(s, i=i):
                m = s.nodes[i]["probes"].pop(0)
                s.run_handler(i, m)

            apply(
                f"n{i}: dispatch {msg.probe_kind} reply L{msg.line}",
                fire_probe,
            )
            continue
        if node.lmi:
            msg = node.lmi[0]

            def fire_lmi(s, i=i):
                m = s.nodes[i]["lmi"].pop(0)
                s.run_handler(i, m)

            apply(
                f"n{i}: dispatch {msg.mtype} (local) L{msg.line}", fire_lmi
            )
        for src in range(n):
            for vn in (0, 1, 2):
                ci = (src * n + i) * 3 + vn
                if not st.chans[ci]:
                    continue
                msg = st.chans[ci][0]

                def fire_net(s, ci=ci, i=i):
                    m = s.chans[ci].pop(0)
                    s.run_handler(i, m)

                apply(
                    f"n{i}: dispatch {msg.mtype} from n{src}/vn{vn} "
                    f"L{msg.line}",
                    fire_net,
                )
    return out


# ----------------------------------------------------------------------
# Partial-order reduction: singleton ample sets for probe replies
# ----------------------------------------------------------------------


def _evict_enabled(node: MNode) -> bool:
    return any(
        m is None and c in ("E", "M")
        for m, c in zip(node.mshrs, node.caches)
    )


def ample_probe(st: MState, home: int = 0) -> Optional[int]:
    """Pick a node whose queued L2 probe reply forms a singleton
    ample set, or None if no dispatch qualifies.

    Dispatching a queued probe reply only pops ``probes[i]`` and
    pushes messages: a reply on VN1 to the requester and, for
    interventions, a revision (SWB/XFER/INT_NACK) to the home.  All
    pushes originate at node ``i`` (``chan(i, ·)`` or ``lmi(i)``), so
    the only transitions it can fail to commute with are node ``i``'s
    *own* issue/evict pushes into the same FIFOs — and probe priority
    already blocks every other dispatch at ``i``, while issue budgets
    only shrink and evict-enabledness cannot appear at ``i`` along
    paths that do not dispatch this reply (a store hit requires an
    already-evictable copy).  Hence the dynamic conditions:

    * INVAL replies (INV_ACK to the requester on VN1) are always safe:
      nothing else at ``i`` pushes VN1.
    * intervention replies are safe iff the revision FIFO is private:
      no evict enabled at ``i`` (the PUT would share
      ``chan(i, home, VN2)``), and for ``i == home`` no issue budget
      remains either (issues and evicts there share ``lmi(home)``).

    The full soundness argument lives in DESIGN.md ("Reduction
    theory"); tests/test_model_reduction.py checks one-step
    commutation empirically on reachable states.
    """
    for i, node in enumerate(st.nodes):
        if not node.probes:
            continue
        head = node.probes[0]
        if head.probe_kind == "INVAL":
            return i
        if i != home:
            if not _evict_enabled(node):
                return i
        elif (
            node.loads == 0 and node.stores == 0
            and not _evict_enabled(node)
        ):
            return i
    return None


def count_enabled(st: MState) -> int:
    """How many transitions :func:`successors` would enumerate —
    without applying any of them (used to account pruned work)."""
    n = len(st.nodes)
    n_lines = len(st.entries)
    cnt = 0
    for i, node in enumerate(st.nodes):
        for k in range(n_lines):
            if node.loads > 0 and node.caches[k] == "" and node.mshrs[k] is None:
                cnt += 1
            if node.stores > 0 and _store_issuable(node, k):
                cnt += 1
            if node.mshrs[k] is None and node.caches[k] in ("E", "M"):
                cnt += 1
            if node.mshrs[k] is None and node.caches[k] == "S":
                cnt += 1
        if node.probes:
            cnt += 1
            continue
        if node.lmi:
            cnt += 1
        for src in range(n):
            for vn in (0, 1, 2):
                if st.chans[(src * n + i) * 3 + vn]:
                    cnt += 1
    return cnt


def _apply_probe_dispatch(
    st: MState, i: int, layout: DirectoryLayout, table: HandlerTable,
    bundle=None,
) -> Tuple[str, MState]:
    msg = st.nodes[i].probes[0]
    label = f"n{i}: dispatch {msg.probe_kind} reply L{msg.line}"
    sim = _Sim(st, layout, table, bundle)
    try:
        m = sim.nodes[i]["probes"].pop(0)
        sim.run_handler(i, m)
        nxt = sim.freeze()
        check_state(nxt, len(st.nodes))
    except ModelViolation as exc:
        exc.label = label  # type: ignore[attr-defined]
        raise
    return label, nxt


def expand(
    st: MState,
    layout: DirectoryLayout,
    table: HandlerTable,
    por: bool = True,
    bundle=None,
) -> Tuple[List[Tuple[str, MState]], int]:
    """Successors of ``st`` under the (optional) ample-set reduction.

    Returns ``(pairs, pruned)`` where ``pruned`` counts the enabled
    transitions that were *not* applied because a singleton ample set
    stood in for them.
    """
    if por:
        i = ample_probe(st, home=0)
        if i is not None:
            pair = _apply_probe_dispatch(st, i, layout, table, bundle)
            return [pair], count_enabled(st) - 1
    return successors(st, layout, table, bundle), 0


# ----------------------------------------------------------------------
# Reduced explicit-state BFS (sequential core + pool_map partitioning)
# ----------------------------------------------------------------------

#: One BFS entry: a canonical state, the concrete (original-frame)
#: trace that reaches a member of its orbit, and the node/line
#: permutations mapping the canonical frame back to that original
#: frame (so labels minted in the canonical frame can be translated).
Entry = Tuple[MState, Tuple[str, ...], sym.Perm, sym.Perm]


def root_entry(st: MState) -> Entry:
    return (st, (), sym.identity(len(st.nodes)), sym.identity(len(st.entries)))


def _bfs(
    roots: List[Entry],
    layout: DirectoryLayout,
    table: HandlerTable,
    max_states: int,
    depth: Optional[int] = None,
    reduce_sym: bool = True,
    reduce_por: bool = True,
    bundle=None,
) -> ExploreResult:
    visited = {st for st, _, _, _ in roots}
    frontier = deque(roots)
    transitions = 0
    pruned = 0
    sym_states = len(visited)  # roots are symmetric or pre-canonical
    truncated = False
    max_depth = 0
    while frontier:
        st, trace, sig, lam = frontier.popleft()
        max_depth = max(max_depth, len(trace))
        if depth is not None and len(trace) >= depth:
            truncated = True
            continue
        try:
            succ, pr = expand(st, layout, table, por=reduce_por, bundle=bundle)
        except ModelViolation as exc:
            label = sym.remap_label(getattr(exc, "label", "?"), sig, lam)
            return ExploreResult(
                len(visited), transitions, truncated,
                Violation(
                    exc.code, exc.status,
                    sym.remap_label(str(exc), sig, lam),
                    trace + (label,),
                ),
                sym_states, pruned, max_depth,
            )
        pruned += pr
        for label, nxt in succ:
            transitions += 1
            if reduce_sym:
                cnxt, rho_s, rho_l, orbit = sym.canonicalize(nxt)
            else:
                cnxt, orbit = nxt, 1
                rho_s = sym.identity(len(st.nodes))
                rho_l = sym.identity(len(st.entries))
            if cnxt in visited:
                continue
            if len(visited) >= max_states:
                truncated = True
                continue
            visited.add(cnxt)
            sym_states += orbit
            frontier.append((
                cnxt,
                trace + (sym.remap_label(label, sig, lam),),
                sym.compose(sig, sym.invert(rho_s)),
                sym.compose(lam, sym.invert(rho_l)),
            ))
    return ExploreResult(
        len(visited), transitions, truncated, None,
        sym_states, pruned, max_depth,
    )


def _explore_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """pool_map worker: explore one frontier partition exhaustively."""
    result = _bfs(
        [tuple(entry) for entry in payload["roots"]],
        payload["layout"],
        payload["table"],
        payload["max_states"],
        depth=payload.get("depth"),
        reduce_sym=payload.get("reduce_sym", True),
        reduce_por=payload.get("reduce_por", True),
        bundle=payload.get("bundle"),
    )
    return {
        "states": result.states,
        "transitions": result.transitions,
        "truncated": result.truncated,
        "violation": result.violation,
        "sym_states": result.sym_states,
        "pruned": result.pruned,
        "max_depth": result.max_depth,
    }


def check_model(
    n_nodes: int = 2,
    loads: int = 1,
    stores: int = 1,
    jobs: int = 1,
    max_states: int = 400_000,
    table: Optional[HandlerTable] = None,
    layout: Optional[DirectoryLayout] = None,
    n_lines: int = 1,
    depth: Optional[int] = None,
    frontier_dir: Optional[str] = None,
    reduce_sym: bool = True,
    reduce_por: bool = True,
    protocol: Optional[str] = None,
) -> ExploreResult:
    """Explore the n-node, L-line machine with sound reductions.

    ``protocol`` selects a registered bundle by name (default: the
    shipped bitvector protocol); its handler table and dispatch maps
    are what the mirror executes.  An explicit ``table`` overrides the
    bundle's (the mutation tests patch individual handlers).

    With ``jobs > 1`` the BFS frontier is expanded inline until it has
    at least ``4 * jobs`` states, then partitioned round-robin across
    ``pool_map`` workers, each exploring its subtree with a private
    visited set (duplicated work across workers is possible; missed
    states are not).  With ``frontier_dir`` set the frontier lives on
    disk instead, sharded wave-by-wave over the same worker pool and
    kill-resumable (see :mod:`repro.analyze.frontier`).

    ``reduce_sym``/``reduce_por`` exist so tests can compare the
    reduced and flat explorations; production callers leave them on.
    """
    if not 2 <= n_nodes <= MAX_NODES:
        raise ConfigError(
            f"model checker supports 2-{MAX_NODES} nodes, not {n_nodes}"
        )
    if not 1 <= n_lines <= MAX_LINES:
        raise ConfigError(
            f"model checker supports 1-{MAX_LINES} lines, not {n_lines}"
        )
    if loads < 0 or stores < 0 or max_states <= 0:
        raise ConfigError("loads/stores must be >= 0, max_states > 0")
    if depth is not None and depth <= 0:
        raise ConfigError("depth must be > 0 when set")
    bundle = None
    if protocol is not None:
        from repro.protocol import registry

        bundle = registry.get(protocol)
    if table is None:
        if bundle is not None:
            table = bundle.build_table()
        else:
            from repro.protocol import extensions

            table = build_handler_table()
            extensions.install(table)
    if layout is None:
        layout = DirectoryLayout(
            local_memory_bytes=1 << 22, line_bytes=128, entry_bytes=4
        )
    for k in range(n_lines):
        if layout.home_of(line_addr(k)) != 0:
            raise ConfigError("model lines must all be homed at node 0")

    init = initial_state(n_nodes, loads, stores, n_lines)

    if frontier_dir is not None:
        from repro.analyze.frontier import explore_disk

        return explore_disk(
            init, layout, table, frontier_dir,
            jobs=max(1, jobs), max_states=max_states, depth=depth,
            reduce_sym=reduce_sym, reduce_por=reduce_por, bundle=bundle,
        )

    if jobs <= 1:
        return _bfs(
            [root_entry(init)], layout, table, max_states,
            depth=depth, reduce_sym=reduce_sym, reduce_por=reduce_por,
            bundle=bundle,
        )

    # Inline expansion until the frontier is wide enough to partition.
    visited = {init}
    frontier: deque = deque([root_entry(init)])
    transitions = 0
    pruned = 0
    sym_states = 1
    while frontier and len(frontier) < 4 * jobs and len(visited) < 4096:
        st, trace, sig, lam = frontier.popleft()
        if depth is not None and len(trace) >= depth:
            frontier.append((st, trace, sig, lam))
            break
        try:
            succ, pr = expand(st, layout, table, por=reduce_por, bundle=bundle)
        except ModelViolation as exc:
            label = sym.remap_label(getattr(exc, "label", "?"), sig, lam)
            return ExploreResult(
                len(visited), transitions, False,
                Violation(
                    exc.code, exc.status,
                    sym.remap_label(str(exc), sig, lam),
                    trace + (label,),
                ),
                sym_states, pruned, len(trace) + 1,
            )
        pruned += pr
        for label, nxt in succ:
            transitions += 1
            if reduce_sym:
                cnxt, rho_s, rho_l, orbit = sym.canonicalize(nxt)
            else:
                cnxt, orbit = nxt, 1
                rho_s = sym.identity(n_nodes)
                rho_l = sym.identity(n_lines)
            if cnxt not in visited:
                visited.add(cnxt)
                sym_states += orbit
                frontier.append((
                    cnxt,
                    trace + (sym.remap_label(label, sig, lam),),
                    sym.compose(sig, sym.invert(rho_s)),
                    sym.compose(lam, sym.invert(rho_l)),
                ))
    if not frontier:
        return ExploreResult(
            len(visited), transitions, False, None, sym_states, pruned, 0
        )

    from repro.sim.sweep import pool_map

    roots = list(frontier)
    pending = []
    for w in range(jobs):
        part = roots[w::jobs]
        if part:
            pending.append((w, {
                "roots": part,
                "layout": layout,
                "table": table,
                "max_states": max_states,
                "depth": depth,
                "reduce_sym": reduce_sym,
                "reduce_por": reduce_por,
                "bundle": bundle,
            }))
    outcomes: List[Dict[str, object]] = []

    def on_done(ident, payload, outcome, elapsed, attempts) -> None:
        outcomes.append(outcome or {"_pool_status": "crashed"})

    pool_map(pending, _explore_payload, jobs=jobs, on_done=on_done)

    states = len(visited)
    truncated = False
    violation: Optional[Violation] = None
    max_depth = 0
    for outcome in outcomes:
        if outcome.get("_pool_status"):
            raise ConfigError(
                f"model-check worker failed: {outcome['_pool_status']}"
            )
        states += int(outcome["states"])
        transitions += int(outcome["transitions"])
        sym_states += int(outcome["sym_states"])
        pruned += int(outcome["pruned"])
        max_depth = max(max_depth, int(outcome["max_depth"]))
        truncated = truncated or bool(outcome["truncated"])
        v = outcome["violation"]
        if v is not None and (
            violation is None or len(v.trace) < len(violation.trace)
        ):
            violation = v
    return ExploreResult(
        states, transitions, truncated, violation,
        sym_states, pruned, max_depth,
    )


# ----------------------------------------------------------------------
# Counterexample serialization (repro.fuzz.artifact pipeline)
# ----------------------------------------------------------------------


def counterexample_artifact(
    path, violation: Violation, n_nodes: int, n_lines: int = 1,
    protocol: str = "smtp-bitvector",
):
    """Write ``violation`` as a replayable fuzz artifact.

    The issue events in the trace become the op list (strictly
    serialized: ``max_outstanding=1``); evictions and message
    schedules are beyond ``run_ops``'s control, so replay re-drives
    the same traffic but reproduction of schedule-dependent bugs is
    best-effort.  Handler-table bugs (the mutation tests' kind)
    reproduce deterministically.
    """
    from repro.fuzz.artifact import write_artifact
    from repro.fuzz.campaign import FuzzCell
    from repro.fuzz.stress import FuzzOp, StressConfig

    def op_line(action: str) -> int:
        _, _, tail = action.partition(" L")
        return int(tail) if tail.isdigit() else 0

    ops: List[FuzzOp] = []
    per_line_count = [0] * max(1, n_lines)
    for step in violation.trace:
        node, _, action = step.partition(": ")
        if action.startswith("load"):
            ops.append(FuzzOp(int(node[1:]), "load", line_addr(op_line(action))))
        elif action.startswith("store"):
            k = op_line(action)
            per_line_count[k] += 1
            ops.append(FuzzOp(
                int(node[1:]), "store", line_addr(k), arg=per_line_count[k]
            ))
    cell = FuzzCell(
        seed=0,
        model="base",
        n_nodes=n_nodes,
        stress=StressConfig(
            n_ops=max(1, len(ops)), n_lines=max(1, n_lines),
            max_outstanding=1,
        ),
        max_cycles=500_000,
        protocol=protocol,
    )
    trace = [{"step": i, "label": label}
             for i, label in enumerate(violation.trace)]
    return write_artifact(
        path,
        cell,
        ops,
        status=violation.status,
        error=f"[model/{violation.code}] {violation}",
        error_type="ModelCheckViolation",
        snapshot=None,
        trace=trace,
    )
