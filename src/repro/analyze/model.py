"""Pass 3: exhaustive small-model checking of the real handler table.

An explicit-state BFS over a tiny abstract machine — 2 or 3 nodes, one
application line homed at node 0 — whose *protocol* side is the actual
handler programs executed instruction-by-instruction through
:class:`repro.protocol.semantics.FunctionalRunner`, with the uncached
operations (SENDH/SENDA/PROBE/COMPLETE/RESEND/MEMWR) mirrored from
:class:`repro.memctrl.controller.MemoryController` and the cache/MSHR
side mirrored from :class:`repro.caches.hierarchy.CacheHierarchy`.
Timing is abstracted away; every interleaving of message arrivals,
issue events, and evictions is explored.

Invariants (the same ones :mod:`repro.fuzz.sanitizer` checks online):

* **SWMR** — at most one *writable* (EXCLUSIVE/MODIFIED) copy ever
  exists.  Stale SHARED copies transiently coexisting with a writable
  copy are the protocol's documented eager-exclusive relaxation and
  are allowed.
* **Data value** — the k-th store machine-wide leaves the owning copy
  at version k; a store landing on a stale base is a lost update.
* **No stuck states** — an MSHR with no message in flight anywhere can
  never complete: deadlock.
* **Directory health** — entries always decode to a legal state with
  in-range owner/waiter/sharers, and at quiescence the directory
  agrees with the caches (owner recorded iff a writable copy exists,
  no BUSY leftovers, no lost updates).
* **No traps** — a reachable TRAP is a protocol violation by
  definition.

Counterexamples serialize through :mod:`repro.fuzz.artifact` (the
issue events become ``FuzzOp`` records, the full transition trace
becomes the artifact's trace tail) so ``repro fuzz --replay`` can
re-drive the concrete machine along the same op sequence.

Deliberate model simplifications, documented:

* one line, so cache-capacity conflicts do not exist; evictions and
  silent SHARED drops are explicit transitions instead,
* loads that hit do not appear as transitions (no protocol effect),
* atomics/prefetches and the active-memory extension are out of the
  issue alphabet,
* NACK retries happen immediately (no backoff): livelock cycles are
  finite state-graph cycles here, not detected as failures.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.common.errors import ConfigError, ProtocolError
from repro.network.messages import Message, MsgType, virtual_network
from repro.protocol import directory as d
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import (
    boot_registers,
    build_handler_table,
    header_acks,
    header_peer,
    header_requester,
    header_type,
)
from repro.protocol.isa import ADDR, HDR, HandlerTable, POp, RESEND_AS_GETX
from repro.protocol.semantics import FunctionalRunner
from repro.memctrl.dispatch import handler_name_for, incoming_header
from repro.protocol.handlers import PROBE_DISPATCH

#: The one application line under test; homed at node 0 for the
#: standard fuzz layout (local_memory_bytes = 1 << 22).
LINE = 0x2000

_MTYPE_BY_VALUE = {m.value: m for m in MsgType}

_REPLY_NAMES = frozenset(
    m.name
    for m in (
        MsgType.DATA_SHARED, MsgType.DATA_EXCL, MsgType.UPGRADE_ACK,
        MsgType.INV_ACK, MsgType.WB_ACK, MsgType.NACK,
        MsgType.NACK_UPGRADE, MsgType.AM_REPLY,
    )
)


class MMsg(NamedTuple):
    """An in-flight message (hashable mirror of network.Message)."""

    mtype: str
    src: int
    dest: int
    requester: int
    version: int = 0
    dirty: bool = False
    acks: int = 0
    found: bool = False
    probe_kind: str = ""


class MShr(NamedTuple):
    """One node's (single) miss-status register for the line."""

    kind: str  # 'read' | 'write'
    request_upgrade: bool = False
    upgrade_pending: bool = False
    data_arrived: bool = False
    writable: bool = False
    version: int = 0
    pending_acks: int = 0
    inval_after_fill: bool = False
    stores: int = 0  # store waiters to commit at completion
    deferred: Tuple[MMsg, ...] = ()  # probes racing the in-flight fill
    unissued: bool = False  # parked behind an unacknowledged PUT


class MNode(NamedTuple):
    cache: str  # '' (invalid) | 'S' | 'E' | 'M'
    version: int = 0
    mshr: Optional[MShr] = None
    probes: Tuple[MMsg, ...] = ()  # node-internal L2 probe replies
    lmi: Tuple[MMsg, ...] = ()  # local miss interface queue
    loads: int = 0  # remaining load-issue budget
    stores: int = 0  # remaining store-issue budget
    wb_pending: bool = False  # PUT sent, WB_ACK not yet received


class MState(NamedTuple):
    nodes: Tuple[MNode, ...]
    entry: int  # the line's directory entry (lives at home)
    mem: int  # home memory version of the line
    mem_set: bool  # has memory_versions ever been written?
    count: int  # machine-wide committed store count
    chans: Tuple[Tuple[MMsg, ...], ...]  # (src*n+dest)*3+vn FIFOs


class ModelViolation(Exception):
    """An invariant failed; ``status`` matches fuzz status classes."""

    def __init__(self, code: str, message: str, status: str = "violation"):
        super().__init__(message)
        self.code = code
        self.status = status


class Violation(NamedTuple):
    """A violation plus the transition trace that reaches it."""

    code: str
    status: str  # 'violation' | 'deadlock'
    message: str
    trace: Tuple[str, ...]


class ExploreResult(NamedTuple):
    states: int
    transitions: int
    truncated: bool
    violation: Optional[Violation]


def initial_state(n_nodes: int, loads: int, stores: int) -> MState:
    nodes = tuple(
        MNode(cache="", loads=loads, stores=stores) for _ in range(n_nodes)
    )
    chans = tuple(() for _ in range(n_nodes * n_nodes * 3))
    return MState(nodes, d.encode(d.UNOWNED), 0, False, 0, chans)


class _Sim:
    """Mutable working copy of one MState, for applying a transition."""

    def __init__(self, st: MState, layout: DirectoryLayout, table: HandlerTable):
        self.layout = layout
        self.table = table
        self.n = len(st.nodes)
        self.nodes = [n._asdict() for n in st.nodes]
        for node in self.nodes:
            node["probes"] = list(node["probes"])
            node["lmi"] = list(node["lmi"])
        self.entry = st.entry
        self.mem = st.mem
        self.mem_set = st.mem_set
        self.count = st.count
        self.chans = [list(q) for q in st.chans]
        self.home = layout.home_of(LINE)

    def freeze(self) -> MState:
        nodes = tuple(
            MNode(
                cache=n["cache"], version=n["version"], mshr=n["mshr"],
                probes=tuple(n["probes"]), lmi=tuple(n["lmi"]),
                loads=n["loads"], stores=n["stores"],
                wb_pending=n["wb_pending"],
            )
            for n in self.nodes
        )
        return MState(
            nodes, self.entry, self.mem, self.mem_set, self.count,
            tuple(tuple(q) for q in self.chans),
        )

    # -- message plumbing ----------------------------------------------

    def chan(self, src: int, dest: int, vn: int) -> List[MMsg]:
        return self.chans[(src * self.n + dest) * 3 + vn]

    def route(self, msg: MMsg) -> None:
        """Send ``msg`` the way the MC would."""
        mtype = MsgType[msg.mtype]
        if msg.dest == msg.src and msg.mtype not in _REPLY_NAMES:
            # _deliver_local -> _enqueue_local for non-replies.
            self.nodes[msg.src]["lmi"].append(msg)
        else:
            # Replies to self take a (src, src) channel: the real MC
            # applies them after a delay, so other events interleave.
            self.chan(msg.src, msg.dest, virtual_network(mtype)).append(msg)

    # -- handler execution (the real programs) --------------------------

    def run_handler(self, node_id: int, msg: MMsg) -> None:
        if msg.mtype == "L2_PROBE_REPLY":
            name = PROBE_DISPATCH[MsgType[msg.probe_kind]]
        else:
            name = handler_name_for(self._to_message(msg), node_id)
        regs = boot_registers(self.layout, node_id)
        regs[ADDR] = LINE
        regs[HDR] = incoming_header(self._to_message(msg))
        dir_addr = self.layout.dir_entry_addr(LINE)
        pmem: Dict[int, int] = {}
        if node_id == self.home:
            pmem[dir_addr] = self.entry

        latched: List[Optional[int]] = [None]

        def on_uncached(instr, value: int) -> None:
            op = instr.op
            if op is POp.SENDH:
                latched[0] = value
            elif op is POp.SENDA:
                if latched[0] is None:
                    raise ModelViolation(
                        "send-without-header",
                        f"{name} at node {node_id}: SENDA with no header",
                    )
                self._execute_send(node_id, msg, latched[0])
                latched[0] = None
            elif op is POp.PROBE:
                self._execute_probe(node_id, msg)
            elif op is POp.COMPLETE:
                self._apply_reply(node_id, msg)
            elif op is POp.RESEND:
                self._resend(node_id, as_getx=instr.imm == RESEND_AS_GETX)
            elif op is POp.MEMWR:
                if msg.dirty:
                    self.mem = msg.version
                    self.mem_set = True
                elif not self.mem_set:
                    self.mem = msg.version
                    self.mem_set = True
            elif op is POp.AMO:
                pass  # atomics are outside the model's issue alphabet
            # SWITCH/LDCTXT: sequencing only.

        runner = FunctionalRunner(
            regs, lambda a: pmem.get(a, 0), pmem.__setitem__, on_uncached
        )
        try:
            runner.run(self.table[name])
        except ProtocolError as exc:
            raise ModelViolation("trap", f"{name} at node {node_id}: {exc}")
        if node_id == self.home:
            self.entry = pmem.get(dir_addr, self.entry)

    def _to_message(self, msg: MMsg) -> Message:
        m = Message(
            MsgType[msg.mtype], LINE, src=msg.src, dest=msg.dest,
            requester=msg.requester, version=msg.version, dirty=msg.dirty,
            acks=msg.acks, found=msg.found,
        )
        if msg.probe_kind:
            m.probe_kind = MsgType[msg.probe_kind]
        return m

    def _execute_send(self, node_id: int, ctx_msg: MMsg, header: int) -> None:
        mtype = _MTYPE_BY_VALUE[header_type(header)]
        out = MMsg(
            mtype.name, src=node_id, dest=header_peer(header),
            requester=header_requester(header), acks=header_acks(header),
        )
        if mtype in (MsgType.DATA_SHARED, MsgType.DATA_EXCL, MsgType.PUT,
                     MsgType.SWB, MsgType.XFER):
            if ctx_msg.mtype == "L2_PROBE_REPLY":
                out = out._replace(version=ctx_msg.version, dirty=ctx_msg.dirty)
            else:
                out = out._replace(version=self.mem, dirty=False)
        self.route(out)

    def _execute_probe(self, node_id: int, ctx_msg: MMsg) -> None:
        """Mirror hierarchy.probe + the MC's reply composition."""
        probe_kind = ctx_msg.mtype  # INT_SHARED / INT_EXCL / INVAL
        kind = {
            "INT_SHARED": "downgrade",
            "INT_EXCL": "inval_owner",
            "INVAL": "inval",
        }[probe_kind]
        node = self.nodes[node_id]
        if node["wb_pending"]:
            # Writeback-buffer hit (hierarchy.probe): our PUT is in
            # flight and unacknowledged, so the intervention targets
            # the written-back copy.  Answer miss.
            self._probe_reply(node_id, ctx_msg, False, False, 0)
            return
        mshr: Optional[MShr] = node["mshr"]
        if mshr is not None and not self._complete(mshr):
            if kind == "inval":
                if node["cache"] == "":
                    # Stale INVAL racing our re-fetch: early-ack, and
                    # discard a non-writable fill afterwards.
                    node["mshr"] = mshr._replace(inval_after_fill=True)
                    self._probe_reply(node_id, ctx_msg, False, False, 0)
                    return
                # INVAL racing an in-flight upgrade hits the
                # still-present SHARED copy immediately.
            else:
                node["mshr"] = mshr._replace(
                    deferred=mshr.deferred + (ctx_msg,)
                )
                return
        found, dirty, version = self._do_probe(node_id, kind)
        self._probe_reply(node_id, ctx_msg, found, dirty, version)

    def _do_probe(self, node_id: int, kind: str) -> Tuple[bool, bool, int]:
        node = self.nodes[node_id]
        if node["cache"] == "":
            return False, False, 0
        if kind == "inval" and node["cache"] in ("E", "M"):
            # Stale INVAL: a later transaction made us owner.  Ack and
            # keep the copy.
            return False, False, 0
        dirty = node["cache"] == "M"
        version = node["version"]
        if kind in ("inval", "inval_owner"):
            node["cache"] = ""
        else:  # downgrade
            node["cache"] = "S"
        return True, dirty, version

    def _probe_reply(
        self, node_id: int, origin: MMsg, found: bool, dirty: bool, version: int
    ) -> None:
        self.nodes[node_id]["probes"].append(MMsg(
            "L2_PROBE_REPLY", src=origin.src, dest=node_id,
            requester=origin.requester, version=version, dirty=dirty,
            found=found, probe_kind=origin.mtype,
        ))

    # -- reply application (mirror of MC._apply_reply + hierarchy) ------

    @staticmethod
    def _complete(mshr: MShr) -> bool:
        return (
            mshr.data_arrived
            and mshr.pending_acks == 0
            and not mshr.upgrade_pending
        )

    def _apply_reply(self, node_id: int, msg: MMsg) -> None:
        mtype = msg.mtype
        if mtype == "DATA_SHARED":
            self._refill(node_id, False, msg.version, msg.acks, False)
        elif mtype == "DATA_EXCL":
            self._refill(node_id, True, msg.version, msg.acks, msg.dirty)
        elif mtype == "UPGRADE_ACK":
            node = self.nodes[node_id]
            if node["mshr"] is None:
                raise ModelViolation(
                    "reply-no-mshr", f"node {node_id}: upgrade ack, no MSHR"
                )
            version = node["version"] if node["cache"] else 0
            self._data_reply(node_id, version, True, msg.acks)
            self._maybe_complete(node_id, dirty=False)
        elif mtype == "INV_ACK":
            node = self.nodes[node_id]
            if node["mshr"] is None:
                raise ModelViolation(
                    "reply-no-mshr", f"node {node_id}: inval ack, no MSHR"
                )
            node["mshr"] = node["mshr"]._replace(
                pending_acks=node["mshr"].pending_acks - 1
            )
            self._maybe_complete(node_id, dirty=False)
        elif mtype == "WB_ACK":
            node = self.nodes[node_id]
            node["wb_pending"] = False
            mshr = node["mshr"]
            if mshr is not None and mshr.unissued:
                # The parked miss issues now (hierarchy.wb_ack).
                node["mshr"] = mshr._replace(unissued=False)
                self._request(node_id)
        elif mtype == "NACK":
            self._resend(node_id, as_getx=False)
        elif mtype == "NACK_UPGRADE":
            self._resend(node_id, as_getx=True)
        else:
            raise ModelViolation("bad-reply", f"not a reply: {mtype}")

    def _refill(
        self, node_id: int, writable: bool, version: int, acks: int, dirty: bool
    ) -> None:
        node = self.nodes[node_id]
        if node["mshr"] is None:
            raise ModelViolation(
                "refill-no-mshr", f"node {node_id}: refill with no MSHR"
            )
        self._data_reply(node_id, version, writable, acks)
        mshr = node["mshr"]
        if mshr.upgrade_pending and mshr.data_arrived and not writable:
            self._convert_to_upgrade(node_id)
            return
        self._maybe_complete(node_id, dirty)

    def _data_reply(
        self, node_id: int, version: int, writable: bool, acks: int
    ) -> None:
        mshr = self.nodes[node_id]["mshr"]
        upgrade_pending = mshr.upgrade_pending and not writable
        self.nodes[node_id]["mshr"] = mshr._replace(
            data_arrived=True, version=version, writable=writable,
            pending_acks=mshr.pending_acks + acks,
            upgrade_pending=upgrade_pending,
        )

    def _convert_to_upgrade(self, node_id: int) -> None:
        node = self.nodes[node_id]
        mshr = node["mshr"]
        if node["cache"] == "":
            node["cache"] = "S"
            node["version"] = mshr.version
        node["mshr"] = mshr._replace(
            kind="write", upgrade_pending=False, request_upgrade=True,
            data_arrived=False, writable=False,
        )
        self._request(node_id)

    def _maybe_complete(self, node_id: int, dirty: bool) -> None:
        node = self.nodes[node_id]
        mshr = node["mshr"]
        if not self._complete(mshr):
            return
        if mshr.request_upgrade:
            if node["cache"] == "":
                raise ModelViolation(
                    "upgrade-lost-copy",
                    f"node {node_id}: upgrade completed but the pinned "
                    "SHARED copy is gone",
                )
            node["cache"] = "M" if dirty else "E"
        else:
            state = "M" if dirty else ("E" if mshr.writable else "S")
            if node["cache"] == "":
                node["cache"] = state
                node["version"] = mshr.version
            elif state in ("E", "M") and node["cache"] == "S":
                # A lost upgrade retried as a full GETX: promote.
                node["cache"] = state
                node["version"] = max(node["version"], mshr.version)
        node["mshr"] = None
        for _ in range(mshr.stores):
            self._commit_store(node_id)
        if mshr.inval_after_fill and node["cache"] == "S":
            node["cache"] = ""  # the early-acked INVAL lands now
        for probe in mshr.deferred:
            kind = {
                "INT_SHARED": "downgrade",
                "INT_EXCL": "inval_owner",
                "INVAL": "inval",
            }[probe.mtype]
            found, dty, version = self._do_probe(node_id, kind)
            self._probe_reply(node_id, probe, found, dty, version)

    def _resend(self, node_id: int, as_getx: bool) -> None:
        node = self.nodes[node_id]
        mshr = node["mshr"]
        if mshr is None:
            return  # stale NACK: transaction already completed
        if as_getx:
            mshr = mshr._replace(request_upgrade=False)
            node["mshr"] = mshr
        if mshr.request_upgrade:
            mtype = "UPGRADE"
        elif mshr.kind == "write":
            mtype = "GETX"
        else:
            mtype = "GET"
        msg = MMsg(mtype, src=node_id, dest=self.home, requester=node_id)
        if self.home == node_id:
            node["lmi"].append(msg)
        else:
            self.chan(node_id, self.home, 0).append(msg)

    # -- issue / eviction side ------------------------------------------

    def _request(self, node_id: int) -> None:
        """Mirror of hierarchy._issue_app_miss + MC.app_miss: compose
        the request for the current MSHR and enqueue it locally — or
        park it while our PUT for the line is unacknowledged."""
        node = self.nodes[node_id]
        mshr = node["mshr"]
        if node["wb_pending"]:
            node["mshr"] = mshr._replace(unissued=True)
            return
        if mshr.request_upgrade:
            mtype = "UPGRADE"
        elif mshr.kind == "write":
            mtype = "GETX"
        else:
            mtype = "GET"
        node["lmi"].append(MMsg(
            mtype, src=node_id, dest=self.home, requester=node_id
        ))

    def _commit_store(self, node_id: int) -> None:
        node = self.nodes[node_id]
        for other_id, other in enumerate(self.nodes):
            if other_id != node_id and other["cache"] in ("E", "M"):
                raise ModelViolation(
                    "swmr",
                    f"store at node {node_id} while node {other_id} also "
                    "holds a writable copy",
                )
        if node["cache"] not in ("E", "M"):
            raise ModelViolation(
                "store-no-copy",
                f"node {node_id} committed a store without a writable copy",
            )
        self.count += 1
        node["version"] += 1
        node["cache"] = "M"
        if node["version"] != self.count:
            raise ModelViolation(
                "data-value",
                f"store #{self.count} left version {node['version']}: "
                "the store landed on a stale copy",
            )

    def issue_load(self, node_id: int) -> None:
        node = self.nodes[node_id]
        node["loads"] -= 1
        node["mshr"] = MShr(kind="read")
        self._request(node_id)

    def issue_store(self, node_id: int) -> str:
        node = self.nodes[node_id]
        node["stores"] -= 1
        if node["mshr"] is not None:
            # Merge onto the in-flight read: ownership upgrade follows
            # the (possibly SHARED) fill.
            node["mshr"] = node["mshr"]._replace(
                upgrade_pending=True, stores=node["mshr"].stores + 1
            )
            return "merge"
        if node["cache"] in ("E", "M"):
            self._commit_store(node_id)
            return "hit"
        if node["cache"] == "S":
            node["mshr"] = MShr(kind="write", request_upgrade=True, stores=1)
            self._request(node_id)
            return "upgrade"
        node["mshr"] = MShr(kind="write", stores=1)
        self._request(node_id)
        return "miss"

    def evict(self, node_id: int) -> None:
        node = self.nodes[node_id]
        dirty = node["cache"] == "M"
        version = node["version"]
        node["cache"] = ""
        node["wb_pending"] = True
        msg = MMsg(
            "PUT", src=node_id, dest=self.home, requester=node_id,
            version=version, dirty=dirty,
        )
        if self.home == node_id:
            node["lmi"].append(msg)
        else:
            self.chan(node_id, self.home, virtual_network(MsgType.PUT)).append(msg)

    def drop(self, node_id: int) -> None:
        self.nodes[node_id]["cache"] = ""


# ----------------------------------------------------------------------
# Invariants over whole states
# ----------------------------------------------------------------------


def check_state(st: MState, n_nodes: int) -> None:
    """Raise ModelViolation if ``st`` breaks a global invariant."""
    state = d.state_of(st.entry)
    if state not in (
        d.UNOWNED, d.SHARED, d.EXCLUSIVE, d.BUSY_SHARED, d.BUSY_EXCLUSIVE
    ):
        raise ModelViolation(
            "bad-directory", f"directory entry decodes to state {state}"
        )
    if state in (d.EXCLUSIVE, d.BUSY_SHARED, d.BUSY_EXCLUSIVE):
        if d.owner_of(st.entry) >= n_nodes:
            raise ModelViolation(
                "bad-directory",
                f"owner {d.owner_of(st.entry)} out of range",
            )
    if state == d.SHARED and d.vector_of(st.entry) >> n_nodes:
        raise ModelViolation(
            "bad-directory",
            f"sharer vector {d.vector_of(st.entry):#x} names absent nodes",
        )
    writable = [i for i, n in enumerate(st.nodes) if n.cache in ("E", "M")]
    if len(writable) > 1:
        raise ModelViolation(
            "swmr", f"nodes {writable} hold writable copies simultaneously"
        )

    in_flight = (
        any(st.chans)
        or any(n.lmi or n.probes for n in st.nodes)
    )
    mshrs = [i for i, n in enumerate(st.nodes) if n.mshr is not None]
    waiting = mshrs + [
        i for i, n in enumerate(st.nodes)
        if n.wb_pending and n.mshr is None
    ]
    if waiting and not in_flight:
        raise ModelViolation(
            "stuck",
            f"nodes {waiting} wait on MSHRs or WB_ACKs but no message "
            "is in flight anywhere: the transaction can never complete",
            status="deadlock",
        )
    if not in_flight and not waiting:
        _check_quiescent(st, n_nodes, writable, state)


def _check_quiescent(
    st: MState, n_nodes: int, writable: List[int], state: int
) -> None:
    if state in (d.BUSY_SHARED, d.BUSY_EXCLUSIVE):
        raise ModelViolation(
            "stuck-directory",
            "quiescent machine left the directory BUSY: a transaction "
            "evaporated without resolving",
            status="deadlock",
        )
    if writable:
        owner = writable[0]
        if state != d.EXCLUSIVE or d.owner_of(st.entry) != owner:
            raise ModelViolation(
                "dir-cache-mismatch",
                f"node {owner} holds a writable copy but the directory "
                f"says {d.describe(st.entry)}",
            )
        if st.nodes[owner].version != st.count:
            raise ModelViolation(
                "data-value",
                f"quiescent owner copy at version "
                f"{st.nodes[owner].version}, {st.count} stores committed",
            )
    else:
        if state == d.EXCLUSIVE:
            raise ModelViolation(
                "dir-cache-mismatch",
                f"directory says {d.describe(st.entry)} but no writable "
                "copy exists",
            )
        if st.mem != st.count:
            raise ModelViolation(
                "data-value",
                f"quiescent memory at version {st.mem}, {st.count} "
                "stores committed: updates were lost",
            )


# ----------------------------------------------------------------------
# Transition relation
# ----------------------------------------------------------------------


def successors(
    st: MState, layout: DirectoryLayout, table: HandlerTable
) -> List[Tuple[str, MState]]:
    """All (label, next-state) pairs from ``st``.

    Raises ModelViolation (with no trace attached — the caller knows
    the path) if applying a transition breaks an invariant.
    """
    out: List[Tuple[str, MState]] = []
    n = len(st.nodes)

    def apply(label: str, fn) -> None:
        sim = _Sim(st, layout, table)
        try:
            fn(sim)
            nxt = sim.freeze()
            check_state(nxt, n)
        except ModelViolation as exc:
            exc.label = label  # type: ignore[attr-defined]
            raise
        out.append((label, nxt))

    for i, node in enumerate(st.nodes):
        # Issue alphabet.
        if node.loads > 0 and node.cache == "" and node.mshr is None:
            apply(f"n{i}: load", lambda s, i=i: s.issue_load(i))
        if node.stores > 0 and (
            node.mshr is not None and node.mshr.kind == "read"
            and not node.mshr.upgrade_pending
            or node.mshr is None
        ):
            apply(f"n{i}: store", lambda s, i=i: s.issue_store(i))
        # Evictions / silent drops.
        if node.mshr is None and node.cache in ("E", "M"):
            apply(f"n{i}: evict", lambda s, i=i: s.evict(i))
        if node.mshr is None and node.cache == "S":
            apply(f"n{i}: drop", lambda s, i=i: s.drop(i))
        # Dispatch: probe replies have absolute priority (they are
        # node-internal, so there is no arrival race to model).
        if node.probes:
            msg = node.probes[0]

            def fire_probe(s, i=i):
                m = s.nodes[i]["probes"].pop(0)
                s.run_handler(i, m)

            apply(f"n{i}: dispatch {msg.probe_kind} reply", fire_probe)
            continue
        if node.lmi:
            msg = node.lmi[0]

            def fire_lmi(s, i=i):
                m = s.nodes[i]["lmi"].pop(0)
                s.run_handler(i, m)

            apply(f"n{i}: dispatch {msg.mtype} (local)", fire_lmi)
        for src in range(n):
            for vn in (0, 1, 2):
                ci = (src * n + i) * 3 + vn
                if not st.chans[ci]:
                    continue
                msg = st.chans[ci][0]

                def fire_net(s, ci=ci, i=i):
                    m = s.chans[ci].pop(0)
                    s.run_handler(i, m)

                apply(
                    f"n{i}: dispatch {msg.mtype} from n{src}/vn{vn}",
                    fire_net,
                )
    return out


# ----------------------------------------------------------------------
# Explicit-state BFS (sequential core + pool_map partitioning)
# ----------------------------------------------------------------------


def _bfs(
    roots: List[Tuple[MState, Tuple[str, ...]]],
    layout: DirectoryLayout,
    table: HandlerTable,
    max_states: int,
) -> ExploreResult:
    visited = {st for st, _ in roots}
    frontier = deque(roots)
    transitions = 0
    truncated = False
    while frontier:
        st, trace = frontier.popleft()
        try:
            succ = successors(st, layout, table)
        except ModelViolation as exc:
            label = getattr(exc, "label", "?")
            return ExploreResult(
                len(visited), transitions, truncated,
                Violation(exc.code, exc.status, str(exc), trace + (label,)),
            )
        for label, nxt in succ:
            transitions += 1
            if nxt in visited:
                continue
            if len(visited) >= max_states:
                truncated = True
                continue
            visited.add(nxt)
            frontier.append((nxt, trace + (label,)))
    return ExploreResult(len(visited), transitions, truncated, None)


def _explore_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """pool_map worker: explore one frontier partition exhaustively."""
    result = _bfs(
        [(st, tuple(trace)) for st, trace in payload["roots"]],
        payload["layout"],
        payload["table"],
        payload["max_states"],
    )
    return {
        "states": result.states,
        "transitions": result.transitions,
        "truncated": result.truncated,
        "violation": result.violation,
    }


def check_model(
    n_nodes: int = 2,
    loads: int = 1,
    stores: int = 1,
    jobs: int = 1,
    max_states: int = 400_000,
    table: Optional[HandlerTable] = None,
    layout: Optional[DirectoryLayout] = None,
) -> ExploreResult:
    """Exhaustively explore the n-node 1-line machine.

    With ``jobs > 1`` the BFS frontier is expanded inline until it has
    at least ``4 * jobs`` states, then partitioned round-robin across
    ``pool_map`` workers, each exploring its subtree with a private
    visited set (duplicated work across workers is possible; missed
    states are not).
    """
    if not 2 <= n_nodes <= 3:
        raise ConfigError(f"model checker supports 2-3 nodes, not {n_nodes}")
    if loads < 0 or stores < 0 or max_states <= 0:
        raise ConfigError("loads/stores must be >= 0, max_states > 0")
    if table is None:
        from repro.protocol import extensions

        table = build_handler_table()
        extensions.install(table)
    if layout is None:
        layout = DirectoryLayout(
            local_memory_bytes=1 << 22, line_bytes=128, entry_bytes=4
        )

    init = initial_state(n_nodes, loads, stores)
    if jobs <= 1:
        return _bfs([(init, ())], layout, table, max_states)

    # Inline expansion until the frontier is wide enough to partition.
    visited = {init}
    frontier: deque = deque([(init, ())])
    transitions = 0
    while frontier and len(frontier) < 4 * jobs and len(visited) < 4096:
        st, trace = frontier.popleft()
        try:
            succ = successors(st, layout, table)
        except ModelViolation as exc:
            label = getattr(exc, "label", "?")
            return ExploreResult(
                len(visited), transitions, False,
                Violation(exc.code, exc.status, str(exc), trace + (label,)),
            )
        for label, nxt in succ:
            transitions += 1
            if nxt not in visited:
                visited.add(nxt)
                frontier.append((nxt, trace + (label,)))
    if not frontier:
        return ExploreResult(len(visited), transitions, False, None)

    from repro.sim.sweep import pool_map

    roots = list(frontier)
    pending = []
    for w in range(jobs):
        part = roots[w::jobs]
        if part:
            pending.append((w, {
                "roots": part,
                "layout": layout,
                "table": table,
                "max_states": max_states,
            }))
    outcomes: List[Dict[str, object]] = []

    def on_done(ident, payload, outcome, elapsed, attempts) -> None:
        outcomes.append(outcome or {"_pool_status": "crashed"})

    pool_map(pending, _explore_payload, jobs=jobs, on_done=on_done)

    states = len(visited)
    truncated = False
    violation: Optional[Violation] = None
    for outcome in outcomes:
        if outcome.get("_pool_status"):
            raise ConfigError(
                f"model-check worker failed: {outcome['_pool_status']}"
            )
        states += int(outcome["states"])
        transitions += int(outcome["transitions"])
        truncated = truncated or bool(outcome["truncated"])
        v = outcome["violation"]
        if v is not None and (
            violation is None or len(v.trace) < len(violation.trace)
        ):
            violation = v
    return ExploreResult(states, transitions, truncated, violation)


# ----------------------------------------------------------------------
# Counterexample serialization (repro.fuzz.artifact pipeline)
# ----------------------------------------------------------------------


def counterexample_artifact(path, violation: Violation, n_nodes: int):
    """Write ``violation`` as a replayable fuzz artifact.

    The issue events in the trace become the op list (strictly
    serialized: ``max_outstanding=1``); evictions and message
    schedules are beyond ``run_ops``'s control, so replay re-drives
    the same traffic but reproduction of schedule-dependent bugs is
    best-effort.  Handler-table bugs (the mutation tests' kind)
    reproduce deterministically.
    """
    from repro.fuzz.artifact import write_artifact
    from repro.fuzz.campaign import FuzzCell
    from repro.fuzz.stress import FuzzOp, StressConfig

    ops: List[FuzzOp] = []
    for step in violation.trace:
        node, _, action = step.partition(": ")
        if action == "load":
            ops.append(FuzzOp(int(node[1:]), "load", LINE))
        elif action == "store":
            ops.append(FuzzOp(int(node[1:]), "store", LINE, arg=len(ops) + 1))
    cell = FuzzCell(
        seed=0,
        model="base",
        n_nodes=n_nodes,
        stress=StressConfig(
            n_ops=max(1, len(ops)), n_lines=1, max_outstanding=1
        ),
        max_cycles=500_000,
    )
    trace = [{"step": i, "label": label}
             for i, label in enumerate(violation.trace)]
    return write_artifact(
        path,
        cell,
        ops,
        status=violation.status,
        error=f"[model/{violation.code}] {violation}",
        error_type="ModelCheckViolation",
        snapshot=None,
        trace=trace,
    )
