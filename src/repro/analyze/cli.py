"""``python -m repro analyze``: run the three verifier passes.

Exit codes: 0 clean (possibly with suppressed/info findings), 1 at
least one unsuppressed error finding, 2 configuration error (bad
flags, broken suppression list, crashed worker).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

from repro.common.errors import ConfigError
from repro.protocol import registry
from repro.protocol.directory import DirectoryLayout

from repro.analyze.findings import Finding, Report, SEV_INFO, format_report


def add_analyze_parser(sub) -> None:
    p = sub.add_parser(
        "analyze",
        help="statically verify the protocol handler table",
        description=(
            "Static handler analysis, dispatch-completeness checking, "
            "and exhaustive small-model checking of the shipped "
            "coherence handlers (with symmetry + partial-order "
            "reduction; see docs/analyze.md)."
        ),
    )
    p.add_argument("--json", action="store_true", help="emit a JSON report")
    p.add_argument(
        "--protocol", default=registry.DEFAULT_PROTOCOL,
        choices=registry.names(), metavar="NAME",
        help="registered protocol bundle to verify (one of: "
        + ", ".join(registry.names())
        + f"; default {registry.DEFAULT_PROTOCOL})",
    )
    p.add_argument(
        "--nodes", "--max-nodes", dest="nodes", type=int, default=2,
        metavar="N",
        help="model-checker machine size (2-6; default 2)",
    )
    p.add_argument(
        "--lines", type=int, default=1, metavar="L",
        help="number of cache lines under test (1-3; default 1)",
    )
    p.add_argument(
        "--depth", type=int, default=None, metavar="D",
        help="cap BFS exploration at D transitions deep (default "
        "unlimited; a capped run reports truncated=True)",
    )
    p.add_argument(
        "--frontier-dir", default=None, metavar="DIR",
        help="keep the BFS frontier on disk under DIR, sharded over "
        "the worker pool and kill-resumable (see docs/analyze.md); "
        "default in-memory",
    )
    p.add_argument(
        "--jobs", type=int, default=4, metavar="J",
        help="worker processes for state-space exploration "
        "(<=1 runs in-process; default 4)",
    )
    p.add_argument(
        "--max-states", type=int, default=400_000, metavar="S",
        help="state cap per exploration worker (default 400000)",
    )
    p.add_argument(
        "--loads", type=int, default=1, metavar="L",
        help="per-node load budget for the model checker (default 1)",
    )
    p.add_argument(
        "--stores", type=int, default=1, metavar="S",
        help="per-node store budget for the model checker (default 1)",
    )
    p.add_argument(
        "--no-model", action="store_true",
        help="skip the (slower) small-model checking pass",
    )
    p.add_argument(
        "--bench-model", default=None, metavar="PATH",
        help="record the model pass (states, canonical states, "
        "reduction ratios, wall time) as a row in PATH "
        "(BENCH_model.json convention; gated by tier-1)",
    )
    p.add_argument(
        "--artifacts", default="analyze-artifacts", metavar="DIR",
        help="directory for replayable counterexample artifacts",
    )
    p.add_argument(
        "--write-inventory", nargs="?", const="docs/handlers.md",
        default=None, metavar="PATH",
        help="regenerate the handler-inventory table (default "
        "docs/handlers.md) and exit",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print per-handler worst-case notes",
    )
    p.set_defaults(fn=cmd_analyze)


def bench_row(config: dict, result, seconds: float) -> dict:
    """One BENCH_model.json row: the trajectory point for a config."""
    states = max(1, result.states)
    explored = result.transitions + result.pruned
    return {
        **config,
        "states": result.states,
        "sym_states": result.sym_states,
        "transitions": result.transitions,
        "pruned": result.pruned,
        "max_depth": result.max_depth,
        "truncated": result.truncated,
        "violation": result.violation is not None,
        # canonical-state compression from symmetry alone:
        "sym_ratio": round(result.sym_states / states, 3),
        # fraction of enabled transitions the ample sets pruned:
        "por_ratio": round(result.pruned / explored, 3) if explored else 0.0,
        "seconds": round(seconds, 2),
    }


def update_bench_model(path: str, row: dict) -> None:
    """Merge ``row`` into the BENCH_model.json trajectory at ``path``.

    Rows are keyed by configuration slug so re-running one
    configuration refreshes only its own row (mirroring the
    BENCH_smoke.json per-cell convention).  Non-default protocols get
    their own rows; the default keeps its historical key.
    """
    key = (
        f"n{row['nodes']}-L{row['lines']}"
        f"-loads{row['loads']}-stores{row['stores']}"
    )
    protocol = row.get("protocol", registry.DEFAULT_PROTOCOL)
    if protocol != registry.DEFAULT_PROTOCOL:
        key += f"-{protocol}"
    target = Path(path)
    doc = {"schema": 1, "configs": {}}
    if target.exists():
        doc = json.loads(target.read_text())
    doc.setdefault("configs", {})[key] = row
    target.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


def build_report(
    jobs: int = 1,
    max_nodes: int = 2,
    max_states: int = 400_000,
    loads: int = 1,
    stores: int = 1,
    run_model: bool = True,
    artifacts_dir: Optional[str] = None,
    n_lines: int = 1,
    depth: Optional[int] = None,
    frontier_dir: Optional[str] = None,
    bench_model: Optional[str] = None,
    protocol: str = registry.DEFAULT_PROTOCOL,
) -> Report:
    """Run all passes over one registered bundle's installed table."""
    from repro.analyze.absint import run_static_pass
    from repro.analyze.dispatch import run_dispatch_pass
    from repro.analyze.model import check_model, counterexample_artifact
    from repro.analyze.suppressions import suppressions_for

    bundle = registry.get(protocol)
    suppressions = suppressions_for(protocol)
    table = bundle.build_table()
    layout = DirectoryLayout(
        local_memory_bytes=1 << 22, line_bytes=128, entry_bytes=4
    )
    report = Report()
    report.stats["protocol"] = protocol

    findings, inventory = run_static_pass(table, layout, bundle=bundle)
    report.extend(findings)
    report.inventory = inventory
    report.stats["static"] = {
        "handlers": len(inventory),
        "errors": sum(1 for f in findings if f.severity != SEV_INFO),
    }

    worst = {
        str(row["name"]): int(row["worst_case"])
        for row in inventory
        if row["worst_case"] is not None
    }
    findings, stats = run_dispatch_pass(
        table, layout, worst_cases=worst, bundle=bundle
    )
    report.extend(findings)
    report.stats["dispatch"] = stats

    if run_model:
        t0 = time.perf_counter()
        result = check_model(
            n_nodes=max_nodes, loads=loads, stores=stores, jobs=jobs,
            max_states=max_states, table=table, layout=layout,
            n_lines=n_lines, depth=depth, frontier_dir=frontier_dir,
            protocol=protocol,
        )
        seconds = time.perf_counter() - t0
        report.stats["model"] = {
            "nodes": max_nodes,
            "lines": n_lines,
            "states": result.states,
            "sym_states": result.sym_states,
            "transitions": result.transitions,
            "pruned": result.pruned,
            "max_depth": result.max_depth,
            "truncated": result.truncated,
            "seconds": round(seconds, 2),
        }
        if bench_model is not None:
            update_bench_model(bench_model, bench_row(
                {
                    "nodes": max_nodes, "lines": n_lines,
                    "loads": loads, "stores": stores,
                    "protocol": protocol,
                },
                result, seconds,
            ))
        if result.violation is not None:
            v = result.violation
            detail = {
                "status": v.status,
                "trace": list(v.trace),
            }
            if artifacts_dir is not None:
                path = counterexample_artifact(
                    Path(artifacts_dir) / f"model_{v.code}.json", v,
                    max_nodes, n_lines, protocol=protocol,
                )
                detail["artifact"] = str(path)
            report.add(Finding(
                "model", v.code, "",
                f"{v.message} (trace: {len(v.trace)} steps"
                + (f", artifact {detail.get('artifact')}" if artifacts_dir
                   else "") + ")",
                detail=detail,
            ))
        elif result.truncated:
            report.add(Finding(
                "model", "truncated", "",
                f"state cap reached after {result.states} states: the "
                "model was NOT exhaustively verified",
                severity=SEV_INFO,
            ))

    report.apply_suppressions(suppressions)
    return report


def cmd_analyze(args: argparse.Namespace) -> int:
    try:
        if args.write_inventory is not None:
            from repro.analyze.absint import run_static_pass
            from repro.analyze.inventory import write_inventory

            bundle = registry.get(args.protocol)
            table = bundle.build_table()
            _, inventory = run_static_pass(table, bundle=bundle)
            target = args.write_inventory
            if (target == "docs/handlers.md"
                    and args.protocol != registry.DEFAULT_PROTOCOL):
                # Unnamed target + non-default bundle: keep the default
                # protocol's committed inventory intact.
                target = f"docs/handlers-{args.protocol}.md"
            path = write_inventory(target, inventory, protocol=args.protocol)
            print(f"wrote {path}")
            return 0
        report = build_report(
            jobs=args.jobs,
            max_nodes=args.nodes,
            max_states=args.max_states,
            loads=args.loads,
            stores=args.stores,
            run_model=not args.no_model,
            artifacts_dir=args.artifacts,
            n_lines=args.lines,
            depth=args.depth,
            frontier_dir=args.frontier_dir,
            bench_model=args.bench_model,
            protocol=args.protocol,
        )
    except ConfigError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(format_report(report, verbose=args.verbose))
    return 0 if report.clean else 1
