"""Pass 2: dispatch-completeness analysis.

Three questions about the dispatch maps in
:mod:`repro.protocol.handlers` (with the active-memory extension rows
installed, exactly as :class:`repro.core.machine.Machine` runs them):

* **Coverage** — does every :class:`MsgType` the fabric can carry
  resolve to a handler?  ``L2_PROBE_REPLY`` is node-internal (it
  resolves through ``PROBE_DISPATCH`` by probe kind, never by type),
  every other type must appear in ``NETWORK_DISPATCH``; the request
  types additionally need ``LOCAL_REMOTE_DISPATCH`` (requester-side
  forwarding) rows, and the probe kinds need ``PROBE_DISPATCH`` rows.
* **Dead handlers** — table entries no dispatch map can ever reach.
* **(state x msg) enumeration** — run each home-side handler
  functionally against every directory state with representative
  owner/sharer/waiter variants, and each requester/probed-side handler
  against representative header variants, reporting reachable TRAPs
  and activations that exceed the static worst-case instruction bound.

The TRAP findings double as documentation of the protocol's *intended*
impossible transitions; the justified ones carry suppressions in
:mod:`repro.analyze.suppressions`, and the small-model checker (pass
3) is the evidence that they are in fact unreachable.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ProtocolError
from repro.network.messages import Message, MsgType
from repro.protocol import directory as d
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import (
    LOCAL_HOME_DISPATCH,
    LOCAL_REMOTE_DISPATCH,
    NETWORK_DISPATCH,
    PROBE_DISPATCH,
    boot_registers,
)
from repro.protocol.isa import ADDR, HDR, HandlerTable, POp
from repro.protocol.semantics import FunctionalRunner
from repro.analyze.absint import handler_side
from repro.analyze.findings import Finding, SEV_ERROR

from repro.memctrl.dispatch import incoming_header

#: Node ids used by the symbolic enumeration (6-bit fields, so any
#: small distinct values work): the home runs the handler, the
#: requester asks, the bystander is some third party.
HOME, REQUESTER, BYSTANDER = 0, 1, 2

#: Message types a home node can be asked to service for a line it
#: owns the directory entry of (dir_prologue readers).
_PROBE_KINDS = (MsgType.INT_SHARED, MsgType.INT_EXCL, MsgType.INVAL)
_REQUEST_TYPES = (MsgType.GET, MsgType.GETX, MsgType.UPGRADE)


def _entry_variants(n_nodes: int = 4) -> List[Tuple[str, int]]:
    """Representative directory entries covering every state and the
    owner/sharer/waiter relationships handlers branch on."""
    req, other = REQUESTER, BYSTANDER
    variants = [
        ("UNOWNED", d.encode(d.UNOWNED)),
        ("SHARED{req}", d.encode(d.SHARED, vector=1 << req)),
        ("SHARED{other}", d.encode(d.SHARED, vector=1 << other)),
        ("SHARED{req,other}", d.encode(d.SHARED, vector=(1 << req) | (1 << other))),
        ("EXCLUSIVE(owner=req)", d.encode(d.EXCLUSIVE, owner=req)),
        ("EXCLUSIVE(owner=other)", d.encode(d.EXCLUSIVE, owner=other)),
        ("BUSY_SHARED(owner=other,waiter=req)",
         d.encode(d.BUSY_SHARED, owner=other, waiter=req)),
        ("BUSY_EXCLUSIVE(owner=other,waiter=req)",
         d.encode(d.BUSY_EXCLUSIVE, owner=other, waiter=req)),
        # The writeback-vs-intervention race: the probed old owner's
        # PUT/SWB/XFER arrives while the entry is parked BUSY on it.
        ("BUSY_SHARED(owner=req,waiter=other)",
         d.encode(d.BUSY_SHARED, owner=req, waiter=other)),
        ("BUSY_EXCLUSIVE(owner=req,waiter=other)",
         d.encode(d.BUSY_EXCLUSIVE, owner=req, waiter=other)),
    ]
    return variants


def _header_variants(mtype: MsgType) -> Iterator[Tuple[str, Message]]:
    """Representative incoming messages for non-home handlers."""
    if mtype is MsgType.L2_PROBE_REPLY:
        # Probe-done handlers branch on found/dirty.
        for found in (False, True):
            for dirty in (False, True):
                msg = Message(
                    mtype, 0x2000, src=HOME, dest=REQUESTER,
                    requester=BYSTANDER, found=found, dirty=dirty,
                    version=1 if found else 0,
                )
                yield f"found={found},dirty={dirty}", msg
        return
    msg = Message(mtype, 0x2000, src=HOME, dest=REQUESTER, requester=REQUESTER)
    yield "plain", msg


class _UncachedStub:
    """Accept uncached ops during enumeration; the static pass already
    vets header composition, so only the SENDH/SENDA pairing is
    tracked (to keep the runner faithful, not to re-check it)."""

    def __init__(self) -> None:
        self.latched: Optional[int] = None
        self.sends: List[Tuple[int, int]] = []

    def __call__(self, instr, value: int) -> None:
        if instr.op is POp.SENDH:
            self.latched = value
        elif instr.op is POp.SENDA:
            self.sends.append((self.latched or 0, value))
            self.latched = None
        # PROBE/COMPLETE/RESEND/MEMWR/AMO/SWITCH/LDCTXT: no machine to
        # act on during symbolic enumeration.


def _run_once(
    table: HandlerTable,
    layout: DirectoryLayout,
    name: str,
    node_id: int,
    msg: Message,
    entry: Optional[int],
) -> Tuple[Optional[int], int]:
    """Execute ``name`` functionally; returns (trap_code, instrs)."""
    regs = boot_registers(layout, node_id)
    regs[ADDR] = msg.addr
    regs[HDR] = incoming_header(msg)
    dir_addr = layout.dir_entry_addr(msg.addr)
    pmem: Dict[int, int] = {}
    if entry is not None:
        pmem[dir_addr] = entry
    runner = FunctionalRunner(
        regs, lambda a: pmem.get(a, 0), pmem.__setitem__, _UncachedStub()
    )
    try:
        runner.run(table[name])
    except ProtocolError:
        # TRAP: the trap code is the imm of the trapping instruction;
        # recover it from the message rather than parsing the string.
        return _trap_code_of(table, name), runner.instructions_executed
    return None, runner.instructions_executed


def _trap_code_of(table: HandlerTable, name: str) -> int:
    for instr in table[name].instrs:
        if instr.op is POp.TRAP:
            return instr.imm
    return -1


def run_dispatch_pass(
    table: HandlerTable,
    layout: Optional[DirectoryLayout] = None,
    worst_cases: Optional[Dict[str, int]] = None,
    bundle=None,
) -> Tuple[List[Finding], Dict[str, object]]:
    """Run the full dispatch-completeness pass.

    ``worst_cases`` maps handler name to the static pass's bound; when
    given, every enumeration run is checked against it.  ``bundle``
    selects whose dispatch tables are analyzed (a
    :class:`repro.protocol.registry.ProtocolBundle`); None analyzes
    the default protocol's module-level tables.
    """
    if layout is None:
        layout = DirectoryLayout(
            local_memory_bytes=1 << 22, line_bytes=128, entry_bytes=4
        )
    if bundle is None:
        network, local_home, local_remote, probe = (
            NETWORK_DISPATCH, LOCAL_HOME_DISPATCH,
            LOCAL_REMOTE_DISPATCH, PROBE_DISPATCH,
        )
    else:
        network = bundle.network_dispatch
        local_home = bundle.local_home_dispatch
        local_remote = bundle.local_remote_dispatch
        probe = bundle.probe_dispatch
    findings: List[Finding] = []
    stats: Dict[str, object] = {}

    # --- coverage ------------------------------------------------------
    for mtype in MsgType:
        if mtype is MsgType.L2_PROBE_REPLY:
            continue
        if mtype not in network:
            findings.append(Finding(
                "dispatch", "unhandled-message", "",
                f"MsgType.{mtype.name} has no NETWORK_DISPATCH row: the "
                "fabric can deliver it but no handler services it",
                detail={"msg": mtype.name},
            ))
    for mtype in _REQUEST_TYPES:
        if mtype not in local_remote:
            findings.append(Finding(
                "dispatch", "unhandled-message", "",
                f"request MsgType.{mtype.name} has no LOCAL_REMOTE_DISPATCH "
                "row: a local miss to a remote home cannot be forwarded",
                detail={"msg": mtype.name, "map": "LOCAL_REMOTE_DISPATCH"},
            ))
    for mtype in (*_REQUEST_TYPES, MsgType.PUT):
        if mtype not in local_home:
            findings.append(Finding(
                "dispatch", "unhandled-message", "",
                f"locally-originated MsgType.{mtype.name} has no "
                "LOCAL_HOME_DISPATCH row",
                detail={"msg": mtype.name, "map": "LOCAL_HOME_DISPATCH"},
            ))
    for mtype in _PROBE_KINDS:
        if mtype not in probe:
            findings.append(Finding(
                "dispatch", "unhandled-message", "",
                f"probe kind MsgType.{mtype.name} has no PROBE_DISPATCH "
                "row: its L2 probe replies cannot be serviced",
                detail={"msg": mtype.name, "map": "PROBE_DISPATCH"},
            ))

    # Dispatch targets must exist in the placed table.
    dispatched: Dict[str, str] = {}
    for map_name, mapping in (
        ("NETWORK_DISPATCH", network),
        ("LOCAL_HOME_DISPATCH", local_home),
        ("LOCAL_REMOTE_DISPATCH", local_remote),
        ("PROBE_DISPATCH", probe),
    ):
        for mtype, name in mapping.items():
            dispatched.setdefault(name, map_name)
            if name not in table:
                findings.append(Finding(
                    "dispatch", "missing-handler", name,
                    f"{map_name}[{mtype.name}] names {name!r} but the "
                    "handler table has no such program",
                    detail={"msg": mtype.name, "map": map_name},
                ))

    # --- dead handlers -------------------------------------------------
    for name in sorted(table.by_name):
        if name not in dispatched:
            findings.append(Finding(
                "dispatch", "dead-handler", name,
                f"{name} is placed in the handler table but no dispatch "
                "map can ever reach it",
            ))

    # --- (state x msg) functional enumeration --------------------------
    pairs = 0
    worst_cases = worst_cases or {}
    for mtype, name in sorted(network.items(), key=lambda kv: kv[0].name):
        if name not in table:
            continue  # already reported as missing-handler
        side = handler_side(name, bundle)
        if side == "home":
            runs: List[Tuple[str, Message, Optional[int]]] = []
            for label, entry in _entry_variants():
                msg = Message(
                    mtype, 0x2000, src=REQUESTER, dest=HOME,
                    requester=REQUESTER,
                    dirty=(mtype in (MsgType.PUT, MsgType.SWB, MsgType.XFER)),
                    version=1,
                )
                runs.append((label, msg, entry))
            node_id = HOME
        else:
            runs = [
                (label, msg, None) for label, msg in _header_variants(mtype)
            ]
            node_id = REQUESTER
        for label, msg, entry in runs:
            pairs += 1
            trap, n_instrs = _run_once(table, layout, name, node_id, msg, entry)
            if trap is not None:
                findings.append(Finding(
                    "dispatch", "trap-reachable", name,
                    f"({label}, {mtype.name}) reaches TRAP({trap}) in "
                    f"{name}: the pair is either impossible-by-design "
                    "(suppress with justification) or unhandled",
                    detail={"state": label, "msg": mtype.name, "trap": trap},
                ))
            bound = worst_cases.get(name)
            if bound is not None and n_instrs > bound:
                findings.append(Finding(
                    "dispatch", "worst-case-exceeded", name,
                    f"({label}, {mtype.name}) executed {n_instrs} "
                    f"instructions, above the static bound {bound}",
                    detail={"state": label, "msg": mtype.name,
                            "executed": n_instrs, "bound": bound},
                ))
    # Probe-done handlers are reached via PROBE_DISPATCH, not
    # NETWORK_DISPATCH; enumerate their found/dirty headers too.
    for kind, name in sorted(probe.items(), key=lambda kv: kv[0].name):
        if name not in table:
            continue
        for label, msg in _header_variants(MsgType.L2_PROBE_REPLY):
            pairs += 1
            msg.probe_kind = kind
            trap, n_instrs = _run_once(table, layout, name, REQUESTER, msg, None)
            if trap is not None:
                findings.append(Finding(
                    "dispatch", "trap-reachable", name,
                    f"({label}, {kind.name} reply) reaches TRAP({trap}) "
                    f"in {name}",
                    detail={"state": label, "msg": kind.name, "trap": trap},
                ))
            bound = worst_cases.get(name)
            if bound is not None and n_instrs > bound:
                findings.append(Finding(
                    "dispatch", "worst-case-exceeded", name,
                    f"({label}, {kind.name} reply) executed {n_instrs} "
                    f"instructions, above the static bound {bound}",
                    detail={"state": label, "msg": kind.name,
                            "executed": n_instrs, "bound": bound},
                ))

    stats["message_types"] = sum(1 for m in MsgType) - 1
    stats["handlers"] = len(table.by_name)
    stats["pairs_enumerated"] = pairs
    stats["errors"] = sum(1 for f in findings if f.severity == SEV_ERROR)
    return findings, stats
