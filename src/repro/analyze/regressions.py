"""Reverted-fix handler tables for the five historical seed races.

The model pass found five genuine races in the seed protocol
(DESIGN.md section 6); every fix ships in ``protocol/handlers.py``.
This module reconstructs, for each race, a handler table that behaves
the way the seed did *before* that one fix landed — same header
layout, same dispatch rows, only the fixed arm reverted — so the
checker can be pointed at a protocol that is known-broken in a known
way.

The point (see ``tests/test_model_regressions.py``) is to re-run the
*reduced* checker — symmetry canonicalization plus ample-set pruning —
against each reverted table and confirm the counterexample is still
found at n <= 3.  The soundness arguments in ``analyze/symmetry.py``
and ``model.ample_probe`` say the reductions preserve every violation;
these five tables are the empirical check that they preserve the
violations this repo has actually shipped fixes for.

Each :class:`SeedRace` records the smallest (nodes, lines, loads,
stores) budget at which the reduced checker finds the violation,
measured empirically, so the harness explores exactly that much and
stays CI-affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.network.messages import MsgType
from repro.protocol import directory as d
from repro.protocol.handlers import (
    HDR_SRC_SHIFT,
    NODE_FIELD_MASK,
    build_handler_table,
    clear_bit,
    compose_send,
    dir_prologue,
    inval_loop,
)
from repro.protocol.isa import (
    HDR,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
    T6,
    ZERO,
    Handler,
    HandlerBuilder,
    HandlerTable,
)


def _reverted_table(*replacements: Handler) -> HandlerTable:
    """The shipped table with ``replacements`` swapped in by name.

    ``HandlerTable.place`` overwrites the by-name slot (the model
    checker dispatches by name, so the stale by-pc alias of the fixed
    handler is unreachable).
    """
    table = build_handler_table()
    for handler in replacements:
        assert handler.name in table, handler.name
        table.place(handler)
    return table


# ---------------------------------------------------------------------------
# Race 1: a PUT overtaking its XFER.
#
# Fix: h_put's foreign/"late" arm (protocol/handlers.py) accepts a PUT
# from the *waiter* of a BUSY_* entry — the newly granted owner
# evicted so fast its PUT overtook the old owner's XFER revision —
# and resolves the transaction with an XFER debt.  The seed trapped on
# any PUT whose writer was not the recorded owner.
# ---------------------------------------------------------------------------


def _h_put_seed_foreign_traps() -> Handler:
    h = HandlerBuilder("h_put")
    dir_prologue(h)
    h.srli(T3, HDR, HDR_SRC_SHIFT)
    h.andi(T3, T3, NODE_FIELD_MASK)
    h.srli(T4, T1, d.OWNER_SHIFT)
    h.andi(T4, T4, d.OWNER_MASK)
    h.seq(T5, T4, T3)
    h.beqz(T5, "bad")  # seed: every non-owner PUT is a protocol error
    h.memwr()
    h.seqi(T5, T2, d.EXCLUSIVE)
    h.bnez(T5, "stable")
    h.seqi(T5, T2, d.BUSY_SHARED)
    h.bnez(T5, "absorb")
    h.seqi(T5, T2, d.BUSY_EXCLUSIVE)
    h.bnez(T5, "absorb")
    h.label("bad")
    h.trap(1)
    h.done()

    h.label("absorb")
    h.done()

    h.label("stable")
    h.st(ZERO, T0)
    compose_send(h, MsgType.WB_ACK, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


# ---------------------------------------------------------------------------
# Race 2: a re-granted own-request erasing a waiter.
#
# Fix: h_upgrade only grants when the entry is SHARED *and* the
# requester still appears in the sharer vector; anything else is
# NACK_UPGRADE (resent as GETX).  The seed granted unconditionally, so
# an UPGRADE that lost a race — the entry already EXCLUSIVE or BUSY
# for a competing transaction — stomped the word with
# EXCLUSIVE(owner=requester), erasing the recorded owner or waiter.
# ---------------------------------------------------------------------------


def _h_upgrade_unguarded() -> Handler:
    h = HandlerBuilder("h_upgrade")
    dir_prologue(h)
    h.srli(T4, T1, d.VECTOR_SHIFT)
    clear_bit(h, T4, T3)
    h.popc(T1, T4)
    h.slli(T5, T3, d.OWNER_SHIFT)
    h.ori(T5, T5, d.EXCLUSIVE)
    h.st(T5, T0)
    compose_send(h, MsgType.UPGRADE_ACK, dest_reg=T3, req_reg=T3, acks_reg=T1)
    inval_loop(h, T4, T3)
    h.done()
    return h.build()


# ---------------------------------------------------------------------------
# Race 3: stale INT/SWB arriving after a writeback.
#
# Fix: h_put's "absorb" arm keeps a BUSY_* entry parked and withholds
# the WB_ACK so the INT_NACK trailing the PUT (same VN2 FIFO) still
# finds the transaction and resolves it from the just-updated memory.
# The seed acknowledged and cleared the entry immediately, leaving the
# stale INT_NACK to arrive at a non-BUSY entry.
# ---------------------------------------------------------------------------


def _h_put_eager_wb_ack() -> Handler:
    h = HandlerBuilder("h_put")
    dir_prologue(h)
    h.srli(T3, HDR, HDR_SRC_SHIFT)
    h.andi(T3, T3, NODE_FIELD_MASK)
    h.srli(T4, T1, d.OWNER_SHIFT)
    h.andi(T4, T4, d.OWNER_MASK)
    h.seq(T5, T4, T3)
    h.beqz(T5, "foreign")
    h.memwr()
    h.seqi(T5, T2, d.EXCLUSIVE)
    h.bnez(T5, "stable")
    h.seqi(T5, T2, d.BUSY_SHARED)
    h.bnez(T5, "stable")  # seed: mid-transaction PUT acked eagerly
    h.seqi(T5, T2, d.BUSY_EXCLUSIVE)
    h.bnez(T5, "stable")
    h.trap(1)
    h.done()

    h.label("foreign")  # the late arm keeps its (independent) fix
    h.seqi(T5, T2, d.BUSY_SHARED)
    h.bnez(T5, "late")
    h.seqi(T5, T2, d.BUSY_EXCLUSIVE)
    h.beqz(T5, "bad")
    h.label("late")
    h.srli(T5, T1, d.WAITER_SHIFT)
    h.andi(T5, T5, d.WAITER_MASK)
    h.seq(T5, T5, T3)
    h.beqz(T5, "bad")
    h.memwr()
    h.li(T5, 1)
    h.slli(T5, T5, d.XFER_DEBT_SHIFT)
    h.st(T5, T0)
    compose_send(h, MsgType.WB_ACK, dest_reg=T3, req_reg=T3)
    h.done()
    h.label("bad")
    h.trap(1)
    h.done()

    h.label("stable")
    h.st(ZERO, T0)
    compose_send(h, MsgType.WB_ACK, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


# ---------------------------------------------------------------------------
# Race 4: WB_ACK never clearing the writeback buffer (network path).
#
# Fix: h_reply_wb_ack COMPLETEs into the MC like the other replies,
# clearing the writeback buffer and releasing any miss parked behind
# the PUT.  The seed's handler consumed the message without
# completing, so the buffer entry — and every parked request behind it
# — waited forever.
# ---------------------------------------------------------------------------


def _h_reply_wb_ack_no_complete() -> Handler:
    h = HandlerBuilder("h_reply_wb_ack")
    h.done()
    return h.build()


# ---------------------------------------------------------------------------
# Race 5: stale-XFER ABA on reused busy entries.
#
# Fix: h_put's late arm records an XFER *debt* (directory bit 15);
# h_get/h_getx NACK while it is set and h_xfer consumes it.  The seed
# resolved the late PUT to plain UNOWNED, so the stale XFER was still
# in flight when a *new* BUSY_EXCLUSIVE transaction with the same
# waiter was parked on the reused entry — and resolved it early,
# making the directory forget the real owner mid-transaction.
# ---------------------------------------------------------------------------


def _h_put_no_debt() -> Handler:
    h = HandlerBuilder("h_put")
    dir_prologue(h)
    h.srli(T3, HDR, HDR_SRC_SHIFT)
    h.andi(T3, T3, NODE_FIELD_MASK)
    h.srli(T4, T1, d.OWNER_SHIFT)
    h.andi(T4, T4, d.OWNER_MASK)
    h.seq(T5, T4, T3)
    h.beqz(T5, "foreign")
    h.memwr()
    h.seqi(T5, T2, d.EXCLUSIVE)
    h.bnez(T5, "stable")
    h.seqi(T5, T2, d.BUSY_SHARED)
    h.bnez(T5, "absorb")
    h.seqi(T5, T2, d.BUSY_EXCLUSIVE)
    h.bnez(T5, "absorb")
    h.trap(1)
    h.done()

    h.label("absorb")
    h.done()

    h.label("foreign")
    h.seqi(T5, T2, d.BUSY_SHARED)
    h.bnez(T5, "late")
    h.seqi(T5, T2, d.BUSY_EXCLUSIVE)
    h.beqz(T5, "bad")
    h.label("late")
    h.srli(T5, T1, d.WAITER_SHIFT)
    h.andi(T5, T5, d.WAITER_MASK)
    h.seq(T5, T5, T3)
    h.beqz(T5, "bad")
    h.memwr()
    h.st(ZERO, T0)  # seed: plain UNOWNED, no debt recorded
    compose_send(h, MsgType.WB_ACK, dest_reg=T3, req_reg=T3)
    h.done()
    h.label("bad")
    h.trap(1)
    h.done()

    h.label("stable")
    h.st(ZERO, T0)
    compose_send(h, MsgType.WB_ACK, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


def _h_get_no_debt_check() -> Handler:
    h = HandlerBuilder("h_get")
    dir_prologue(h)
    h.beqz(T2, "unowned")
    h.seqi(T4, T2, d.SHARED)
    h.bnez(T4, "shared")
    h.seqi(T4, T2, d.EXCLUSIVE)
    h.bnez(T4, "exclusive")
    compose_send(h, MsgType.NACK, dest_reg=T3, req_reg=T3)
    h.done()

    h.label("unowned")
    h.slli(T4, T3, d.OWNER_SHIFT)
    h.ori(T4, T4, d.EXCLUSIVE)
    h.st(T4, T0)
    compose_send(h, MsgType.DATA_EXCL, dest_reg=T3, req_reg=T3)
    h.done()

    h.label("shared")
    h.addi(T4, T3, d.VECTOR_SHIFT)
    h.li(T5, 1)
    h.sllv(T5, T5, T4)
    h.or_(T1, T1, T5)
    h.st(T1, T0)
    compose_send(h, MsgType.DATA_SHARED, dest_reg=T3, req_reg=T3)
    h.done()

    h.label("exclusive")
    h.srli(T4, T1, d.OWNER_SHIFT)
    h.andi(T4, T4, d.OWNER_MASK)
    h.seq(T5, T4, T3)
    h.bnez(T5, "own_req")
    h.slli(T5, T4, d.OWNER_SHIFT)
    h.ori(T5, T5, d.BUSY_SHARED)
    h.slli(T6, T3, d.WAITER_SHIFT)
    h.or_(T5, T5, T6)
    h.st(T5, T0)
    compose_send(h, MsgType.INT_SHARED, dest_reg=T4, req_reg=T3)
    h.done()

    h.label("own_req")
    compose_send(h, MsgType.NACK, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


def _h_getx_no_debt_check() -> Handler:
    h = HandlerBuilder("h_getx")
    dir_prologue(h)
    h.beqz(T2, "unowned")
    h.seqi(T4, T2, d.SHARED)
    h.bnez(T4, "shared")
    h.seqi(T4, T2, d.EXCLUSIVE)
    h.bnez(T4, "exclusive")
    compose_send(h, MsgType.NACK, dest_reg=T3, req_reg=T3)
    h.done()

    h.label("unowned")
    h.slli(T4, T3, d.OWNER_SHIFT)
    h.ori(T4, T4, d.EXCLUSIVE)
    h.st(T4, T0)
    compose_send(h, MsgType.DATA_EXCL, dest_reg=T3, req_reg=T3)
    h.done()

    h.label("shared")
    h.srli(T4, T1, d.VECTOR_SHIFT)
    clear_bit(h, T4, T3)
    h.popc(T1, T4)
    h.slli(T5, T3, d.OWNER_SHIFT)
    h.ori(T5, T5, d.EXCLUSIVE)
    h.st(T5, T0)
    compose_send(h, MsgType.DATA_EXCL, dest_reg=T3, req_reg=T3, acks_reg=T1)
    inval_loop(h, T4, T3)
    h.done()

    h.label("exclusive")
    h.srli(T4, T1, d.OWNER_SHIFT)
    h.andi(T4, T4, d.OWNER_MASK)
    h.seq(T5, T4, T3)
    h.bnez(T5, "own_req")
    h.slli(T5, T4, d.OWNER_SHIFT)
    h.ori(T5, T5, d.BUSY_EXCLUSIVE)
    h.slli(T6, T3, d.WAITER_SHIFT)
    h.or_(T5, T5, T6)
    h.st(T5, T0)
    compose_send(h, MsgType.INT_EXCL, dest_reg=T4, req_reg=T3)
    h.done()

    h.label("own_req")
    compose_send(h, MsgType.NACK, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


def _h_xfer_no_consume() -> Handler:
    h = HandlerBuilder("h_xfer")
    dir_prologue(h)
    h.seqi(T4, T2, d.BUSY_EXCLUSIVE)
    h.beqz(T4, "stale")
    h.srli(T4, T1, d.WAITER_SHIFT)
    h.andi(T4, T4, d.WAITER_MASK)
    h.seq(T4, T4, T3)
    h.beqz(T4, "stale")
    h.slli(T5, T3, d.OWNER_SHIFT)
    h.ori(T5, T5, d.EXCLUSIVE)
    h.st(T5, T0)
    h.done()
    h.label("stale")
    h.done()
    return h.build()


# ---------------------------------------------------------------------------
# The registry the harness iterates.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeedRace:
    """One historical race: its reverted table + smallest finding budget."""

    key: str
    title: str
    #: Where the shipped fix lives (for the reader chasing the diff).
    fix: str
    #: Violation codes that count as re-detection of this race.
    expect_codes: Tuple[str, ...]
    n_nodes: int
    loads: int
    stores: int
    n_lines: int = 1
    max_states: int = 100_000

    def build_table(self) -> HandlerTable:
        return _reverted_table(*_BUILDERS[self.key]())


_BUILDERS = {
    "put-overtakes-xfer": lambda: (_h_put_seed_foreign_traps(),),
    "upgrade-erases-waiter": lambda: (_h_upgrade_unguarded(),),
    "stale-int-after-wb": lambda: (_h_put_eager_wb_ack(),),
    "wb-ack-no-complete": lambda: (_h_reply_wb_ack_no_complete(),),
    "stale-xfer-aba": lambda: (
        _h_put_no_debt(),
        _h_get_no_debt_check(),
        _h_getx_no_debt_check(),
        _h_xfer_no_consume(),
    ),
}


SEED_RACES: Tuple[SeedRace, ...] = (
    SeedRace(
        "put-overtakes-xfer",
        "a PUT overtaking its XFER",
        fix="handlers.build_h_put (foreign/late arm)",
        expect_codes=("trap",),
        n_nodes=2, loads=0, stores=1,
    ),
    SeedRace(
        "upgrade-erases-waiter",
        "a re-granted own-request erasing a waiter",
        fix="handlers.build_h_upgrade (SHARED + sharer-bit guards)",
        expect_codes=("trap", "swmr", "data-value"),
        n_nodes=2, loads=1, stores=1,
    ),
    SeedRace(
        "stale-int-after-wb",
        "stale INT/SWB arriving after a writeback",
        fix="handlers.build_h_put (absorb arm withholds WB_ACK)",
        expect_codes=("trap",),
        n_nodes=2, loads=1, stores=1,
    ),
    SeedRace(
        "wb-ack-no-complete",
        "WB_ACK never clearing the writeback buffer",
        fix="handlers.build_h_reply_wb_ack (complete())",
        expect_codes=("stuck",),
        n_nodes=2, loads=0, stores=1,
    ),
    SeedRace(
        "stale-xfer-aba",
        "a stale-XFER ABA on reused busy entries",
        fix="handlers xfer-debt bit (h_put late arm / h_get / h_getx "
            "/ h_xfer consume)",
        expect_codes=("trap", "swmr", "data-value"),
        n_nodes=3, loads=0, stores=2, max_states=600_000,
    ),
)


def find_race(key: str) -> Optional[SeedRace]:
    for race in SEED_RACES:
        if race.key == key:
            return race
    return None
