"""Justified suppressions for analyzer findings.

Every entry here is a finding the analyzer is *right* to raise and a
human has argued down in writing.  The seed table's three TRAPs are
the canonical case: they guard (state, msg) pairs the protocol's
serialization discipline makes unreachable, and pass 3 (the
exhaustive small-model checker) is the standing evidence — it
explores every interleaving of the issue alphabet and never reaches
them.  A suppression without that kind of argument is a bug filed
against the author.

Suppressions match on (pass, code, handler) plus, optionally, the
enumerated directory-state label, so a *new* trap path in a handler
with an existing suppression still surfaces unless its exact pair is
listed.

The list cannot rot: :meth:`repro.analyze.findings.Report.
apply_suppressions` reports any entry that matched no finding as a
``stale-suppression`` error finding (exit 1), so a fixed or renamed
finding forces the dead entry to be deleted along with it.

Suppressions are scoped **per protocol bundle**: each registered
protocol gets its own tuple in :data:`SUPPRESSIONS_BY_PROTOCOL`, with
reasons argued against *that* bundle's handlers.  A new bundle must
add an entry (possibly empty) — :func:`suppressions_for` refuses
unknown names so nobody silently inherits the SMTp justifications.
Stale-suppression errors therefore stay per-protocol too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analyze.findings import Finding
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class Suppression:
    """One suppressed finding class, with its justification."""

    pass_name: str
    code: str
    handler: str
    reason: str
    #: When set, only findings whose ``detail["state"]`` label starts
    #: with one of these prefixes are suppressed.
    states: Optional[Tuple[str, ...]] = None

    def matches(self, finding: Finding) -> bool:
        if finding.pass_name != self.pass_name or finding.code != self.code:
            return False
        if self.handler not in ("*", finding.handler):
            return False
        if self.states is not None:
            label = str(finding.detail.get("state", ""))
            return any(label.startswith(p) for p in self.states)
        return True


#: The shipped suppression list.  Keep reasons specific: name the
#: serialization argument, not just "can't happen".
SUPPRESSIONS: Tuple[Suppression, ...] = (
    Suppression(
        "dispatch", "trap-reachable", "h_put",
        reason=(
            "PUT is only composed by the writeback port, and only for a "
            "writable (EXCLUSIVE/MODIFIED) copy; the directory recorded "
            "that ownership when it granted it, so at PUT-arrival time "
            "the writer is the recorded owner (EXCLUSIVE or BUSY_* "
            "race) or the recorded waiter of a BUSY_* entry (late PUT "
            "that overtook the XFER revision — handled by the 'late' "
            "arm).  UNOWNED/SHARED/foreign-owner PUTs cannot be "
            "produced; the model checker explores every eviction "
            "interleaving and never reaches this trap."
        ),
        states=(
            "UNOWNED", "SHARED{", "EXCLUSIVE(owner=other)",
        ),
    ),
    Suppression(
        "dispatch", "trap-reachable", "h_int_nack",
        reason=(
            "INT_NACK is composed only by a probed node whose probe "
            "found no copy, and a probe is only outstanding while the "
            "home holds the entry BUSY_* for that transaction.  The "
            "probed node can only have lost its copy via a writeback "
            "whose PUT precedes the INT_NACK on the same (src, home, "
            "VN2) FIFO, and h_put's absorb arm keeps the entry BUSY "
            "(withholding the WB_ACK) precisely so this INT_NACK still "
            "finds the parked transaction.  A non-BUSY INT_NACK is "
            "therefore impossible by construction (verified by the "
            "model checker's eviction interleavings)."
        ),
        states=(
            "UNOWNED", "SHARED{", "EXCLUSIVE(",
        ),
    ),
    Suppression(
        "dispatch", "trap-reachable", "h_swb",
        reason=(
            "SWB (sharing writeback) is composed exclusively by "
            "h_probe_sh_done, i.e. only after the home parked the entry "
            "in BUSY_SHARED and sent the INT_SHARED that produced the "
            "probe reply; VN2 delivery cannot overtake that "
            "serialization, so a non-BUSY_SHARED SWB is impossible by "
            "construction (verified by the model checker)."
        ),
        states=(
            "UNOWNED", "SHARED{", "EXCLUSIVE(", "BUSY_EXCLUSIVE(",
        ),
    ),
)


def _shared_handler_suppressions(protocol_note: str) -> Tuple[Suppression, ...]:
    """The three shared-handler trap suppressions, re-justified.

    h_put, h_int_nack and h_swb are byte-identical in every shipped
    bundle (the bundles substitute only h_get), so the dispatch pass
    raises the same trap findings against each.  The serialization
    arguments carry over, but each bundle's tuple spells out *why* it
    still holds there rather than inheriting the SMTp prose.
    """
    return (
        Suppression(
            "dispatch", "trap-reachable", "h_put",
            reason=(
                "PUT is only composed by the writeback port for a "
                "writable copy, and the directory recorded that "
                "ownership when it granted it; at PUT-arrival time the "
                "writer is the recorded owner or the recorded waiter "
                "of a BUSY_* entry (late PUT overtaken by the XFER "
                "revision, handled by the 'late' arm).  "
                + protocol_note
                + "  Verified by the per-protocol model-check pass."
            ),
            states=(
                "UNOWNED", "SHARED{", "EXCLUSIVE(owner=other)",
            ),
        ),
        Suppression(
            "dispatch", "trap-reachable", "h_int_nack",
            reason=(
                "INT_NACK is composed only by a probed node whose "
                "probe found no copy, and a probe is only outstanding "
                "while the home holds the entry BUSY_* for that "
                "transaction; the probed node can only have lost its "
                "copy via a PUT that precedes the INT_NACK on the same "
                "(src, home, VN2) FIFO, and h_put's absorb arm keeps "
                "the entry BUSY so the INT_NACK still finds the parked "
                "transaction.  " + protocol_note
                + "  Verified by the per-protocol model-check pass."
            ),
            states=(
                "UNOWNED", "SHARED{", "EXCLUSIVE(",
            ),
        ),
        Suppression(
            "dispatch", "trap-reachable", "h_swb",
            reason=(
                "SWB is composed exclusively by h_probe_sh_done, i.e. "
                "only after the home parked the entry BUSY_SHARED and "
                "sent the INT_SHARED that produced the probe reply; "
                "VN2 delivery cannot overtake that serialization.  "
                + protocol_note
                + "  Verified by the per-protocol model-check pass."
            ),
            states=(
                "UNOWNED", "SHARED{", "EXCLUSIVE(", "BUSY_EXCLUSIVE(",
            ),
        ),
    )


#: Per-bundle suppression lists.  Every registered protocol MUST have
#: an entry here (an empty tuple is fine for a bundle with no argued
#: findings); :func:`suppressions_for` raises ``ConfigError`` for a
#: missing one so a new bundle cannot silently inherit another
#: bundle's justifications.
SUPPRESSIONS_BY_PROTOCOL: Dict[str, Tuple[Suppression, ...]] = {
    "smtp-bitvector": SUPPRESSIONS,
    "msi": _shared_handler_suppressions(
        "Under the MSI baseline the ownership discipline is "
        "unchanged: only an M-grant (GETX/UPGRADE, or the exclusive "
        "arm of h_get) creates a writable copy, so UNOWNED/SHARED/"
        "foreign-owner PUTs and non-BUSY INT_NACK/SWB remain "
        "unconstructible; dropping the eager-exclusive GET reply "
        "removes one producer of writable copies and adds none."
    ),
    "migratory": _shared_handler_suppressions(
        "Under migratory sharing GET is granted exclusively via the "
        "same BUSY_EXCLUSIVE/INT_EXCL park used by h_getx, so every "
        "writable copy is still directory-recorded before it exists; "
        "h_swb becomes dynamically dead (no GET parks BUSY_SHARED) "
        "but stays dispatched, so its statically-enumerated trap "
        "states still need this entry."
    ),
}


def suppressions_for(protocol: str) -> Tuple[Suppression, ...]:
    """The suppression tuple scoped to one protocol bundle."""
    try:
        return SUPPRESSIONS_BY_PROTOCOL[protocol]
    except KeyError:
        raise ConfigError(
            f"no suppression list for protocol {protocol!r}: add an "
            "entry (even an empty one) to SUPPRESSIONS_BY_PROTOCOL in "
            "repro/analyze/suppressions.py"
        ) from None
