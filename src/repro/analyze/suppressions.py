"""Justified suppressions for analyzer findings.

Every entry here is a finding the analyzer is *right* to raise and a
human has argued down in writing.  The seed table's three TRAPs are
the canonical case: they guard (state, msg) pairs the protocol's
serialization discipline makes unreachable, and pass 3 (the
exhaustive small-model checker) is the standing evidence — it
explores every interleaving of the issue alphabet and never reaches
them.  A suppression without that kind of argument is a bug filed
against the author.

Suppressions match on (pass, code, handler) plus, optionally, the
enumerated directory-state label, so a *new* trap path in a handler
with an existing suppression still surfaces unless its exact pair is
listed.

The list cannot rot: :meth:`repro.analyze.findings.Report.
apply_suppressions` reports any entry that matched no finding as a
``stale-suppression`` error finding (exit 1), so a fixed or renamed
finding forces the dead entry to be deleted along with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analyze.findings import Finding


@dataclass(frozen=True)
class Suppression:
    """One suppressed finding class, with its justification."""

    pass_name: str
    code: str
    handler: str
    reason: str
    #: When set, only findings whose ``detail["state"]`` label starts
    #: with one of these prefixes are suppressed.
    states: Optional[Tuple[str, ...]] = None

    def matches(self, finding: Finding) -> bool:
        if finding.pass_name != self.pass_name or finding.code != self.code:
            return False
        if self.handler not in ("*", finding.handler):
            return False
        if self.states is not None:
            label = str(finding.detail.get("state", ""))
            return any(label.startswith(p) for p in self.states)
        return True


#: The shipped suppression list.  Keep reasons specific: name the
#: serialization argument, not just "can't happen".
SUPPRESSIONS: Tuple[Suppression, ...] = (
    Suppression(
        "dispatch", "trap-reachable", "h_put",
        reason=(
            "PUT is only composed by the writeback port, and only for a "
            "writable (EXCLUSIVE/MODIFIED) copy; the directory recorded "
            "that ownership when it granted it, so at PUT-arrival time "
            "the writer is the recorded owner (EXCLUSIVE or BUSY_* "
            "race) or the recorded waiter of a BUSY_* entry (late PUT "
            "that overtook the XFER revision — handled by the 'late' "
            "arm).  UNOWNED/SHARED/foreign-owner PUTs cannot be "
            "produced; the model checker explores every eviction "
            "interleaving and never reaches this trap."
        ),
        states=(
            "UNOWNED", "SHARED{", "EXCLUSIVE(owner=other)",
        ),
    ),
    Suppression(
        "dispatch", "trap-reachable", "h_int_nack",
        reason=(
            "INT_NACK is composed only by a probed node whose probe "
            "found no copy, and a probe is only outstanding while the "
            "home holds the entry BUSY_* for that transaction.  The "
            "probed node can only have lost its copy via a writeback "
            "whose PUT precedes the INT_NACK on the same (src, home, "
            "VN2) FIFO, and h_put's absorb arm keeps the entry BUSY "
            "(withholding the WB_ACK) precisely so this INT_NACK still "
            "finds the parked transaction.  A non-BUSY INT_NACK is "
            "therefore impossible by construction (verified by the "
            "model checker's eviction interleavings)."
        ),
        states=(
            "UNOWNED", "SHARED{", "EXCLUSIVE(",
        ),
    ),
    Suppression(
        "dispatch", "trap-reachable", "h_swb",
        reason=(
            "SWB (sharing writeback) is composed exclusively by "
            "h_probe_sh_done, i.e. only after the home parked the entry "
            "in BUSY_SHARED and sent the INT_SHARED that produced the "
            "probe reply; VN2 delivery cannot overtake that "
            "serialization, so a non-BUSY_SHARED SWB is impossible by "
            "construction (verified by the model checker)."
        ),
        states=(
            "UNOWNED", "SHARED{", "EXCLUSIVE(", "BUSY_EXCLUSIVE(",
        ),
    ),
)
