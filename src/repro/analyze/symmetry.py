"""Symmetry reduction for the protocol model checker.

The model machine (:mod:`repro.analyze.model`) is fully symmetric
under renaming of the *non-home* nodes: every node boots the same
handler table with the same issue budgets, and the invariants (SWMR,
data value, stuck states, directory health) are closed under node
renaming.  The home node is **not** interchangeable — it holds the
directory entries and its local-miss traffic takes the LMI queue
instead of the network — so the symmetry group is ``Sym({1..n-1})``,
of size ``(n-1)!``, not ``Sym(n)``.  Lines are interchangeable too
(same home, same budgets, independent versions), contributing a
further ``L!`` factor.

A permutation must be applied *consistently* to every node-indexed
piece of state:

* the per-node records themselves (cache arrays, MSHRs, queues),
* src/dest/requester fields inside every in-flight message
  (including messages parked in MSHR ``deferred`` queues),
* the channel matrix (``chan[s][d]`` moves to ``chan[σs][σd]``),
* directory entries (owner and waiter fields, sharer bit-vectors).

:func:`canonicalize` maps a state to the lexicographically smallest
member of its orbit; only canonical representatives enter the visited
set.  Soundness: the symmetry group maps the initial state to itself
and commutes with the transition relation (no handler reads a node id
except through state that is itself permuted), so every member of a
reachable orbit is reachable and violates the same invariants.  The
congruence is enforced by hypothesis property tests
(``tests/test_model_reduction.py``), not just argued here.

Counterexample traces stay replayable by tracking frames: each BFS
entry carries the permutation mapping its canonical frame back to the
original machine's frame, composed at every canonicalization step
(:func:`compose`, :func:`invert`), and transition labels are remapped
through it (:func:`remap_label`) before they are recorded.
"""

from __future__ import annotations

import re
from itertools import permutations
from typing import Dict, List, Tuple

from repro.protocol import directory as d

Perm = Tuple[int, ...]

_NODE_PERMS: Dict[int, Tuple[Perm, ...]] = {}
_LINE_PERMS: Dict[int, Tuple[Perm, ...]] = {}


def node_perms(n_nodes: int) -> Tuple[Perm, ...]:
    """All node renamings fixing the home node 0 (``σ[old] = new``)."""
    if n_nodes not in _NODE_PERMS:
        _NODE_PERMS[n_nodes] = tuple(
            (0,) + p for p in permutations(range(1, n_nodes))
        )
    return _NODE_PERMS[n_nodes]


def line_perms(n_lines: int) -> Tuple[Perm, ...]:
    """All line renamings (``λ[old] = new``)."""
    if n_lines not in _LINE_PERMS:
        _LINE_PERMS[n_lines] = tuple(permutations(range(n_lines)))
    return _LINE_PERMS[n_lines]


def identity(n: int) -> Perm:
    return tuple(range(n))


def invert(p: Perm) -> Perm:
    inv = [0] * len(p)
    for i, v in enumerate(p):
        inv[v] = i
    return tuple(inv)


def compose(a: Perm, b: Perm) -> Perm:
    """The permutation ``x -> a[b[x]]`` (apply ``b``, then ``a``)."""
    return tuple(a[b[x]] for x in range(len(b)))


# ----------------------------------------------------------------------
# Applying a permutation to model state
# ----------------------------------------------------------------------


def permute_entry(entry: int, sigma: Perm) -> int:
    """Rename the node-valued fields of a directory entry.

    The handlers only ever write entries whose owner/waiter fields are
    real node ids (or 0 for states that do not use them — and
    ``σ(0) = 0`` because the home is fixed), so a full decode/encode
    round-trip is exact.  The xfer-debt flag carries no node id and is
    preserved bit-for-bit.
    """
    state = d.state_of(entry)
    vector = d.vector_of(entry)
    new_vector = 0
    bit = 0
    while vector:
        if vector & 1:
            new_vector |= 1 << sigma[bit]
        vector >>= 1
        bit += 1
    out = d.encode(
        state,
        owner=sigma[d.owner_of(entry)],
        waiter=sigma[d.waiter_of(entry)],
        vector=new_vector,
    )
    if d.xfer_debt(entry):
        out |= 1 << d.XFER_DEBT_SHIFT
    return out


def permute_msg(msg, sigma: Perm, lam: Perm):
    return msg._replace(
        src=sigma[msg.src],
        dest=sigma[msg.dest],
        requester=sigma[msg.requester],
        line=lam[msg.line],
    )


def permute_mshr(mshr, sigma: Perm, lam: Perm):
    if mshr is None or not mshr.deferred:
        return mshr
    return mshr._replace(
        deferred=tuple(permute_msg(m, sigma, lam) for m in mshr.deferred)
    )


def _reindex(values: Tuple, lam: Perm) -> Tuple:
    out = [None] * len(lam)
    for old, value in enumerate(values):
        out[lam[old]] = value
    return tuple(out)


def permute_node(node, sigma: Perm, lam: Perm):
    return node._replace(
        caches=_reindex(node.caches, lam),
        versions=_reindex(node.versions, lam),
        mshrs=_reindex(
            tuple(permute_mshr(m, sigma, lam) for m in node.mshrs), lam
        ),
        wb_pending=_reindex(node.wb_pending, lam),
        probes=tuple(permute_msg(m, sigma, lam) for m in node.probes),
        lmi=tuple(permute_msg(m, sigma, lam) for m in node.lmi),
    )


def permute_state(st, sigma: Perm, lam: Perm):
    n = len(st.nodes)
    nodes: List = [None] * n
    for old, node in enumerate(st.nodes):
        nodes[sigma[old]] = permute_node(node, sigma, lam)
    chans: List[Tuple] = [()] * (n * n * 3)
    for s in range(n):
        for dst in range(n):
            for vn in range(3):
                q = st.chans[(s * n + dst) * 3 + vn]
                if q:
                    chans[(sigma[s] * n + sigma[dst]) * 3 + vn] = tuple(
                        permute_msg(m, sigma, lam) for m in q
                    )
    return st._replace(
        nodes=tuple(nodes),
        entries=_reindex(
            tuple(permute_entry(e, sigma) for e in st.entries), lam
        ),
        mems=_reindex(st.mems, lam),
        mem_sets=_reindex(st.mem_sets, lam),
        counts=_reindex(st.counts, lam),
        chans=tuple(chans),
    )


# ----------------------------------------------------------------------
# Canonical representatives
# ----------------------------------------------------------------------


def _msg_key(m) -> Tuple:
    return tuple(m)


def _mshr_key(m) -> Tuple:
    if m is None:
        return ()
    return (
        m.kind, m.request_upgrade, m.upgrade_pending, m.data_arrived,
        m.writable, m.version, m.pending_acks, m.inval_after_fill,
        m.stores, tuple(_msg_key(x) for x in m.deferred), m.unissued,
    )


def state_key(st) -> Tuple:
    """A totally ordered primitive encoding of a state.

    ``MState`` tuples cannot be compared directly (``mshrs`` mixes
    ``None`` and ``MShr``), so orbit minimization orders states by
    this key instead.  Equal keys iff equal states.
    """
    return (
        tuple(
            (
                n.caches, n.versions,
                tuple(_mshr_key(m) for m in n.mshrs),
                tuple(_msg_key(m) for m in n.probes),
                tuple(_msg_key(m) for m in n.lmi),
                n.loads, n.stores, n.wb_pending,
            )
            for n in st.nodes
        ),
        st.entries, st.mems, st.mem_sets, st.counts,
        tuple(tuple(_msg_key(m) for m in q) for q in st.chans),
    )


def canonicalize(st) -> Tuple[object, Perm, Perm, int]:
    """Return ``(canonical_state, σ, λ, orbit_size)``.

    ``σ``/``λ`` map the *input* frame to the canonical frame
    (``canonical = permute_state(st, σ, λ)``); ``orbit_size`` is the
    number of distinct states in the symmetry orbit — summing it over
    visited canonical states recovers the size of the symmetry-closed
    state set the canonical set represents.
    """
    n = len(st.nodes)
    n_lines = len(st.entries)
    best = st
    best_key = state_key(st)
    best_sigma = identity(n)
    best_lam = identity(n_lines)
    seen = {best_key}
    for sigma in node_perms(n):
        for lam in line_perms(n_lines):
            if sigma is not None and sigma == best_sigma and lam == best_lam:
                continue
            v = permute_state(st, sigma, lam)
            k = state_key(v)
            seen.add(k)
            if k < best_key:
                best, best_key, best_sigma, best_lam = v, k, sigma, lam
    return best, best_sigma, best_lam, len(seen)


# ----------------------------------------------------------------------
# Trace frames
# ----------------------------------------------------------------------

_NODE_RE = re.compile(r"\bn(\d+)\b")
_LINE_RE = re.compile(r"\bL(\d+)\b")
_NODE_WORD_RE = re.compile(r"\bnode (\d+)\b")


def remap_label(label: str, sigma: Perm, lam: Perm) -> str:
    """Rewrite node/line ids embedded in a transition label or
    violation message from the canonical frame into ``sigma``/``lam``'s
    image frame (used with the accumulated canonical→original map)."""
    label = _NODE_RE.sub(lambda m: f"n{sigma[int(m.group(1))]}", label)
    label = _NODE_WORD_RE.sub(
        lambda m: f"node {sigma[int(m.group(1))]}", label
    )
    return _LINE_RE.sub(lambda m: f"L{lam[int(m.group(1))]}", label)
