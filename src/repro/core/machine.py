"""The whole machine: N nodes, the interconnect, and the global clock.

Clocking: the machine steps at processor frequency.  Memory
controllers (and PP engines) act every ``mc_divisor`` ticks; network
and SDRAM timing are pre-converted to processor cycles.  Cores step
every tick.

Forward progress is watched: if no instruction commits and no memory
event fires for ``watchdog_cycles``, a :class:`DeadlockError` with a
per-node dump is raised — protocol bugs surface as dumps, not hangs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import DeadlockError
from repro.common.events import EventWheel
from repro.common.params import MachineParams
from repro.common.stats import MachineStats
from repro.core.node import Node
from repro.network.fabric import Interconnect
from repro.protocol.checker import CoherenceChecker
from repro.protocol import extensions
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import build_handler_table


class Machine:
    def __init__(self, mp: MachineParams) -> None:
        self.mp = mp
        self.wheel = EventWheel()
        self.cycle = 0
        self.layout = DirectoryLayout.for_machine(mp)
        self.handler_table = build_handler_table()
        extensions.install(self.handler_table)
        self.fabric = Interconnect(mp, self.wheel)
        #: Functional word store (synchronization values).
        self.words: Dict[int, int] = {}
        self.nodes: List[Node] = [
            Node(
                i,
                mp,
                self.wheel,
                self.layout,
                self.handler_table,
                self.fabric.send,
                self.words,
            )
            for i in range(mp.n_nodes)
        ]
        for node in self.nodes:
            self.fabric.attach(node.node_id, node.mc.ni_receive)
        self.checker: Optional[CoherenceChecker] = None
        if mp.check_coherence:
            self.checker = CoherenceChecker()
            self.checker.attach(self)
        self.sanitizer = None
        if mp.sanitize:
            # Deferred import: repro.fuzz.campaign imports this module.
            from repro.fuzz.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(self)
            self.sanitizer.attach()
            # Shadow the class method so the un-sanitized step path pays
            # nothing — not even a None check — when the flag is off.
            self.step = self._sanitized_step
        self._progress_cycle = 0
        # Per-cycle hot-path caches: the node list never changes after
        # construction, and mc_divisor/watchdog_cycles are frozen
        # dataclass properties (recomputed on every access otherwise).
        self._mcs = [node.mc for node in self.nodes]
        self._cores: List = []
        self._mc_divisor = mp.mc_divisor
        self._watchdog = mp.watchdog_cycles

    # ------------------------------------------------------------------
    def install_cores(self, sources_per_node: List[list]) -> None:
        """Create one SMT core per node running the given app sources."""
        from repro.core.protocol_thread import ProtocolThreadSource, SMTpPort
        from repro.pipeline.core import SMTCore

        for node, sources in zip(self.nodes, sources_per_node):
            proto = None
            if self.mp.protocol_engine == "thread":
                proto = ProtocolThreadSource(node)
            core = SMTCore(node, sources, proto)
            core.machine = self
            node.core = core
            if proto is not None:
                node.mc.engine = SMTpPort(
                    proto, self.mp.proc.look_ahead_scheduling
                )
        self._cores = [n.core for n in self.nodes if n.core is not None]

    def finish(self) -> None:
        """Post-run bookkeeping: peaks, busy-time sampling."""
        for node in self.nodes:
            if node.core is not None:
                node.core.sample_protocol_peaks()

    # ------------------------------------------------------------------
    def note_progress(self) -> None:
        """Called by cores on commit and by tests on external progress."""
        self._progress_cycle = self.cycle

    def step(self) -> None:
        self.cycle = cycle = self.cycle + 1
        wheel = self.wheel
        # Fast path: nothing due this cycle.  tick() would do the same
        # comparison, but skipping the call (and its per-cycle
        # bookkeeping) matters at ~50k cycles per simulated run.
        if wheel._heap and wheel._heap[0][0] <= cycle:
            if wheel.tick(cycle):
                self._progress_cycle = cycle
        else:
            wheel.now = cycle
        if cycle % self._mc_divisor == 0:
            for mc in self._mcs:
                mc.step()
        for core in self._cores:
            core.step()
        if cycle - self._progress_cycle > self._watchdog:
            raise DeadlockError(self._deadlock_report())

    def _sanitized_step(self) -> None:
        Machine.step(self)
        self.sanitizer.on_cycle(self.cycle)

    def run(self, max_cycles: int) -> None:
        step = self.step
        all_done = self.all_done
        for _ in range(max_cycles):
            if all_done():
                return
            step()

    def all_done(self) -> bool:
        return all(core.done for core in self._cores)

    def quiesce(self, max_cycles: int = 2_000_000) -> None:
        """Run until every in-flight transaction has drained."""
        for _ in range(max_cycles):
            if not self.busy():
                return
            self.step()
        raise DeadlockError(
            f"machine did not quiesce in {max_cycles} cycles\n"
            + self._deadlock_report()
        )

    def busy(self) -> bool:
        if len(self.wheel):
            return True
        if any(node.in_flight() for node in self.nodes):
            return True
        return any(
            node.mc.engine is not None and not node.mc.engine.idle()
            for node in self.nodes
        )

    def _deadlock_report(self) -> str:
        lines = [f"no forward progress since cycle {self._progress_cycle}"]
        lines.extend(node.describe_state() for node in self.nodes)
        for node in self.nodes:
            if node.core is not None:
                lines.append(node.core.describe_state())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def collect_stats(self) -> MachineStats:
        stats = MachineStats(
            model=self.mp.model,
            n_nodes=self.mp.n_nodes,
            ways=self.mp.proc.app_threads,
            freq_ghz=self.mp.proc.freq_ghz,
            cycles=self.cycle,
            nodes=[node.stats for node in self.nodes],
        )
        return stats

    def final_checks(self) -> None:
        """Run the coherence audit (requires check_coherence=True)."""
        if self.checker is None:
            return
        self.checker.final_audit(self)
        self.checker.audit_directory(self)
