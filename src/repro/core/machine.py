"""The whole machine: N nodes, the interconnect, and the global clock.

Clocking: the machine steps at processor frequency.  Memory
controllers (and PP engines) act every ``mc_divisor`` ticks; network
and SDRAM timing are pre-converted to processor cycles.  Cores step
every tick.

Scheduling: :meth:`Machine.step` is the dense reference semantics —
one call advances every component by exactly one cycle.  The run loops
(:meth:`Machine.run` / :meth:`Machine.quiesce`) are event-driven on
top of it: after each step every component reports whether it did (or
was woken to do) any work; when the whole machine is quiescent the
loop fast-forwards the clock to the next cycle at which anything *can*
happen — the earliest event-wheel entry, the next memory-controller
dispatch opportunity, a busy functional unit freeing, the sanitizer's
next sweep, or watchdog expiry — and replays the per-cycle
side effects of the skipped idle polls analytically (stall-cycle
accounting, round-robin rotation, arbitration-parity toggles), so the
resulting statistics and traces are bit-identical to dense stepping.
Skipped cycles are counted in ``Machine.skipped_cycles``.  Setting
``REPRO_DENSE_STEP=1`` in the environment keeps the dense loops for
differential testing.

Forward progress is watched: if no instruction commits and no memory
event fires for ``watchdog_cycles``, a :class:`DeadlockError` with a
per-node dump is raised — protocol bugs surface as dumps, not hangs.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.common.errors import DeadlockError
from repro.common.events import EventWheel
from repro.common.params import MachineParams
from repro.common.stats import MachineStats
from repro.core.node import Node
from repro.network.fabric import Interconnect
from repro.protocol.checker import CoherenceChecker
from repro.protocol.directory import DirectoryLayout
from repro.protocol import registry


class Machine:
    def __init__(self, mp: MachineParams) -> None:
        self.mp = mp
        self.wheel = EventWheel()
        self.cycle = 0
        self.layout = DirectoryLayout.for_machine(mp)
        #: The registered coherence protocol this machine runs.
        self.protocol = registry.get(mp.protocol)
        self.handler_table = self.protocol.build_table()
        self.fabric = Interconnect(mp, self.wheel)
        #: Functional word store (synchronization values).
        self.words: Dict[int, int] = {}
        self.nodes: List[Node] = [
            Node(
                i,
                mp,
                self.wheel,
                self.layout,
                self.handler_table,
                self.fabric.send,
                self.words,
                bundle=self.protocol,
            )
            for i in range(mp.n_nodes)
        ]
        for node in self.nodes:
            self.fabric.attach(node.node_id, node.mc.ni_receive)
        self.checker: Optional[CoherenceChecker] = None
        if mp.check_coherence:
            self.checker = CoherenceChecker()
            self.checker.attach(self)
        self.sanitizer = None
        if mp.sanitize:
            # Deferred import: repro.fuzz.campaign imports this module.
            from repro.fuzz.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(self)
            self.sanitizer.attach()
            # Shadow the class method so the un-sanitized step path pays
            # nothing — not even a None check — when the flag is off.
            self.step = self._sanitized_step
        self._progress_cycle = 0
        # Per-cycle hot-path caches: the node list never changes after
        # construction, and mc_divisor/watchdog_cycles are frozen
        # dataclass properties (recomputed on every access otherwise).
        self._mcs = [node.mc for node in self.nodes]
        self._cores: List = []
        self._mc_divisor = mp.mc_divisor
        self._watchdog = mp.watchdog_cycles
        # Active-set scheduler state (:meth:`_event_step`): per-cycle
        # work is proportional to the number of *active* components,
        # not ``n_nodes``.  A core leaves the active set when it goes
        # to sleep (idle, no pending unit wake — its fixup plan is
        # pinned first); ``core.wake()`` re-registers it.  A memory
        # controller leaves when a dense step would be a no-op (or a
        # bare arbitration-parity flip, replayed analytically by
        # ``mc.fast_forward`` at wake time) until an external event —
        # input arrival or the SMTp port freeing — each of which calls
        # ``mc.mc_wake()``.  The dirty flags defer list rebuilds to the
        # top of the next step.
        self._active_cores: List = []
        self._cores_dirty = True
        self._active_mcs = list(self._mcs)
        self._mc_dirty = False
        #: Last MC-clock edge whose dispatch phase has been performed
        #: (densely or analytically) — the settle boundary for sleeping
        #: controllers' parity replay.
        self._mc_edge_done = 0
        for node in self.nodes:
            node.mc.machine = self
        #: Idle cycles the run loops fast-forwarded over instead of
        #: densely polling every component.
        self.skipped_cycles = 0
        #: Individual core steps replaced by the closed-form idle fixup
        #: while the rest of the machine stayed active (per-core sleep).
        self.skipped_core_steps = 0
        #: Escape hatch: force the pre-event-driven dense loops.
        self.dense_step = os.environ.get("REPRO_DENSE_STEP", "") == "1"
        #: When true, application sources are built with resume-log
        #: recording so the whole machine can be checkpointed (set
        #: before building sources; see :mod:`repro.sim.checkpoint`).
        self.record_programs = False
        #: How to rebuild this machine's workload from scratch (a
        #: :class:`repro.sim.checkpoint.CheckpointSpec`); required by
        #: :meth:`snapshot` so restore can re-create the coroutines.
        self.ckpt_spec = None

    # ------------------------------------------------------------------
    def install_cores(self, sources_per_node: List[list]) -> None:
        """Create one SMT core per node running the given app sources."""
        from repro.core.protocol_thread import ProtocolThreadSource, SMTpPort
        from repro.pipeline.core import SMTCore

        for node, sources in zip(self.nodes, sources_per_node):
            proto = None
            if self.mp.protocol_engine == "thread":
                proto = ProtocolThreadSource(node)
            core = SMTCore(node, sources, proto)
            core.machine = self
            node.core = core
            if proto is not None:
                node.mc.engine = SMTpPort(
                    proto, self.mp.proc.look_ahead_scheduling
                )
            # Wake contract: asynchronous completion paths call
            # ``core.wake()`` so a sleeping core is stepped densely on
            # the cycle its input state changes (see DESIGN.md).
            node.hierarchy.mshrs.on_free = core.wake_quiet
            for buf in (
                node.hierarchy.ibypass,
                node.hierarchy.dbypass,
                node.hierarchy.l2bypass,
            ):
                buf.on_fill = core.wake_quiet
            for source in sources:
                if hasattr(source, "on_wake"):
                    source.on_wake = core.wake_fetch
        self._cores = [n.core for n in self.nodes if n.core is not None]
        self._cores_dirty = True

    def finish(self) -> None:
        """Post-run bookkeeping: peaks, busy-time sampling."""
        for node in self.nodes:
            if node.core is not None:
                node.core.sample_protocol_peaks()

    # ------------------------------------------------------------------
    def note_progress(self) -> None:
        """Called by cores on commit and by tests on external progress."""
        self._progress_cycle = self.cycle

    def step(self) -> None:
        self.cycle = cycle = self.cycle + 1
        wheel = self.wheel
        # Fast path: nothing due this cycle.  tick() would do the same
        # comparison, but skipping the call (and its per-cycle
        # bookkeeping) matters at ~50k cycles per simulated run.
        if wheel._heap and wheel._heap[0][0] <= cycle:
            if wheel.tick(cycle):
                self._progress_cycle = cycle
        else:
            wheel.now = cycle
        if cycle % self._mc_divisor == 0:
            for mc in self._mcs:
                # Settle any sleep state left by a prior event-driven
                # loop before stepping densely (no-op when awake).
                if mc._sleep_from:
                    mc.mc_wake()
                mc.step()
            self._mc_edge_done = cycle
        for core in self._cores:
            core._asleep = False
            core.step()
        self._cores_dirty = True
        if cycle - self._progress_cycle > self._watchdog:
            raise DeadlockError(self._deadlock_report())

    def _sanitized_step(self) -> None:
        Machine.step(self)
        self.sanitizer.on_cycle(self.cycle)

    def _event_step(self) -> bool:
        """One cycle with per-core sleep: mirrors :meth:`step` exactly,
        except a core that reported no work last cycle and holds no
        pending wake is advanced by its closed-form idle fixup instead
        of a full pipeline pass.  Sound because every cross-component
        effect on a core (event-wheel completions, MC dispatches,
        sync-word writes) fires its ``wake()`` hook during the wheel/MC
        phases — i.e. before the core's slot in the step order — and
        core-internal time gates are tracked in ``_unit_wake``.

        Returns True when some core did (or was woken to do) work.  The
        return value may miss a wake delivered by a later core to an
        earlier one in the same cycle, so callers must re-scan the
        flags (:meth:`_maybe_fast_forward`) before skipping cycles."""
        self.cycle = cycle = self.cycle + 1
        wheel = self.wheel
        if wheel._heap and wheel._heap[0][0] <= cycle:
            if wheel.tick(cycle):
                self._progress_cycle = cycle
        else:
            wheel.now = cycle
        if cycle % self._mc_divisor == 0:
            if self._mc_dirty:
                self._active_mcs = [
                    m for m in self._mcs if m._sleep_from == 0
                ]
                self._mc_dirty = False
            for mc in self._active_mcs:
                mc.step()
                # Sleep when a dense step stays a no-op (or a bare
                # parity flip, replayed by mc.fast_forward at wake)
                # until an external event: input arrival, or — when
                # the engine reports None (SMTp port occupied) — the
                # handler graduating.  Both call mc.mc_wake().
                if not mc._n_input:
                    mc._sleep_from = cycle + 1
                    self._mc_dirty = True
                else:
                    engine = mc.engine
                    if engine is not None and engine.ready_cycle() is None:
                        mc._sleep_from = cycle + 1
                        self._mc_dirty = True
            self._mc_edge_done = cycle
        if self._cores_dirty:
            self._active_cores = [c for c in self._cores if not c._asleep]
            self._cores_dirty = False
        awake = False
        for core in self._active_cores:
            if core._worked or core._wake_flag or 0 < core._unit_wake <= cycle:
                # core.step() with its mode dispatch hoisted (one
                # wrapper frame per awake core-cycle).
                if core._use_nt:
                    core._step_nt()
                elif core._use_1t:
                    core._step_1t()
                else:
                    core.step()
                if core._worked or core._wake_flag:
                    awake = True
            else:
                if core._ff_plan is None:
                    # Start of a sleep period: pin the fixup plan and
                    # the anchor cycle (the core's inputs are frozen as
                    # of this cycle).  No per-cycle bookkeeping after
                    # this — the owed fixup count is derived from the
                    # clock when core.step()/collect_stats flushes it.
                    core._ff_plan = core._build_ff_plan()
                    core._ff_anchor = cycle
                if core._unit_wake == 0:
                    # No pending time-gated check either: leave the
                    # active set entirely.  core.wake() re-registers.
                    core._asleep = True
                    self._cores_dirty = True
        if cycle - self._progress_cycle > self._watchdog:
            raise DeadlockError(self._deadlock_report())
        if self.sanitizer is not None:
            self.sanitizer.on_cycle(cycle)
        return awake

    def _event_step_1core(self) -> bool:
        """:meth:`_event_step` with the core loop unrolled for the
        single-node machine (no sanitizer attached).  Same cycle
        skeleton, same wake tests, no per-cycle list walk."""
        self.cycle = cycle = self.cycle + 1
        wheel = self.wheel
        if wheel._heap and wheel._heap[0][0] <= cycle:
            if wheel.tick(cycle):
                self._progress_cycle = cycle
        else:
            wheel.now = cycle
        if cycle % self._mc_divisor == 0:
            if self._mc_dirty:
                self._active_mcs = [
                    m for m in self._mcs if m._sleep_from == 0
                ]
                self._mc_dirty = False
            for mc in self._active_mcs:
                mc.step()
                if not mc._n_input:
                    mc._sleep_from = cycle + 1
                    self._mc_dirty = True
                else:
                    engine = mc.engine
                    if engine is not None and engine.ready_cycle() is None:
                        mc._sleep_from = cycle + 1
                        self._mc_dirty = True
            self._mc_edge_done = cycle
        core = self._cores[0]
        awake = False
        if core._worked or core._wake_flag or 0 < core._unit_wake <= cycle:
            # core.step() with its mode dispatch hoisted here: skips
            # one wrapper frame per awake cycle.
            if core._use_1t:
                core._step_1t()
            else:
                core.step()
            if core._worked or core._wake_flag:
                awake = True
        elif core._ff_plan is None:
            core._ff_plan = core._build_ff_plan()
            core._ff_anchor = cycle
        if cycle - self._progress_cycle > self._watchdog:
            raise DeadlockError(self._deadlock_report())
        return awake

    def run(self, max_cycles: int) -> None:
        step = self.step
        all_done = self.all_done
        if self.dense_step:
            for _ in range(max_cycles):
                if all_done():
                    return
                step()
            return
        step = (
            self._event_step_1core
            if len(self._cores) == 1 and self.sanitizer is None
            else self._event_step
        )
        deadline = self.cycle + max_cycles
        # ``all_done`` can only turn true on a cycle some core committed
        # (which sets ``_worked``, making ``step`` return True), so it
        # is re-tested exactly when the previous step had an awake core
        # — the same cycle a dense loop would exit on — without paying
        # the thread walk while asleep.
        check_done = True
        try:
            if step is self._event_step_1core and self._cores[0]._use_1t:
                # Fused single-app-thread core: completion is that one
                # thread's plain ``done`` flag — skip the all_done()/
                # core.done property round trip per awake cycle.
                t0 = self._cores[0]._t0
                while self.cycle < deadline:
                    if check_done and t0.done:
                        return
                    check_done = step()
                    if not check_done and self.cycle < deadline:
                        self._maybe_fast_forward(deadline)
                return
            while self.cycle < deadline:
                if check_done and all_done():
                    return
                check_done = step()
                if not check_done and self.cycle < deadline:
                    self._maybe_fast_forward(deadline)
        finally:
            # Callers may read per-node stats directly: settle any
            # batched idle fixups before handing control back.
            for core in self._cores:
                core.flush_idle_fixup(through=True)

    def all_done(self) -> bool:
        # Called once per awake cycle: a plain loop, no genexpr frame.
        for core in self._cores:
            if not core.done:
                return False
        return True

    def quiesce(self, max_cycles: int = 2_000_000) -> None:
        """Run until every in-flight transaction has drained."""
        if self.dense_step:
            for _ in range(max_cycles):
                if not self.busy():
                    return
                self.step()
        else:
            if not self.busy():
                return
            deadline = self.cycle + max_cycles
            try:
                while self.cycle < deadline:
                    self._event_step()
                    # Unlike ``run``, the drained transition can be
                    # purely controller/wheel-side (no core wake), so
                    # re-check after every step to exit on the same
                    # cycle as dense.
                    if not self.busy():
                        return
                    if self.cycle < deadline:
                        self._maybe_fast_forward(deadline)
            finally:
                for core in self._cores:
                    core.flush_idle_fixup(through=True)
        raise DeadlockError(
            f"machine did not quiesce in {max_cycles} cycles\n"
            + self._deadlock_report()
        )

    # ------------------------------------------------------------------
    # Idle-cycle fast-forward (the event-driven scheduler)
    # ------------------------------------------------------------------

    def _maybe_fast_forward(self, deadline: int) -> None:
        """Fast-forward if every core is quiescent (flag scan included;
        ``run`` folds the scan into its loop and calls
        :meth:`_fast_forward_idle` directly)."""
        for core in self._cores:
            if core._worked or core._wake_flag:
                return
        self._fast_forward_idle(deadline)

    def _fast_forward_idle(self, deadline: int) -> None:
        """With every core known quiescent, jump the clock to the next
        cycle at which any component can act, replaying the skipped idle
        polls' side effects analytically (bit-identical to dense
        stepping)."""
        target = self._next_wake_cycle()
        if target > deadline:
            # Dense stepping would idle-poll up to the deadline and
            # stop there; nothing fires on or before it.
            self._apply_skip(deadline - self.cycle)
            self.cycle = deadline
            self.wheel.now = deadline
        elif target > self.cycle + 1:
            # Land one cycle short: the caller's next step() performs
            # the wake cycle itself densely, in reference order.
            self._apply_skip(target - 1 - self.cycle)
            self.cycle = target - 1

    def _next_wake_cycle(self) -> int:
        """Earliest cycle > now at which some component can do work (or
        a time-gated check must run).  Always finite: watchdog expiry
        bounds it."""
        now = self.cycle
        nxt = self.wheel.next_event_cycle()
        if nxt == now + 1:
            # Nothing can fire earlier than the next cycle; skip the
            # (comparatively costly) controller/unit scans outright.
            return nxt
        best = self._progress_cycle + self._watchdog + 1
        if nxt != -1 and nxt < best:
            best = nxt
        d = self._mc_divisor
        for mc in self._mcs:
            if mc._sleep_from:
                # Sleeping controller: no dispatchable input can appear
                # without an (event-driven) mc_wake, and its owed
                # parity flips settle analytically there.  A *future*
                # engine readiness still needs a timed wake, though:
                # time-based engines (PPEngine) turn idle()/busy() by
                # the mere passage of wheel time, and ``quiesce`` must
                # observe that edge rather than skip past it to its
                # deadline.  (SMTpPort returns only None/0 here, so
                # thread-engine models never produce such a wake.)
                engine = mc.engine
                if engine is not None:
                    ready = engine.ready_cycle()
                    if ready is not None and now < ready < best:
                        best = ready
                continue
            engine = mc.engine
            if engine is None:
                continue
            ready = engine.ready_cycle()
            if ready is None:
                continue  # SMTp port occupied: freed by core-side work
            if now < ready < best:
                # The acceptance edge itself is a wake so that engine
                # readiness stays constant over any skipped window.
                best = ready
            if mc.has_pending_input():
                start = max(now + 1, ready)
                dispatch = -(-start // d) * d  # next MC-clock edge
                if dispatch < best:
                    best = dispatch
            if best == now + 1:
                return best  # already at the floor: nothing earlier exists
        for core in self._cores:
            unit = core._unit_wake
            if now < unit < best:
                best = unit
        if self.sanitizer is not None and self.sanitizer._next_sweep < best:
            best = self.sanitizer._next_sweep
        return max(best, now + 1)

    def _apply_skip(self, skipped: int) -> None:
        """Account ``skipped`` idle cycles' per-cycle side effects."""
        if skipped <= 0:
            return
        self.skipped_cycles += skipped
        first_skipped = self.cycle + 1
        for core in self._cores:
            if core._ff_plan is None:
                core._ff_plan = core._build_ff_plan()
                core._ff_anchor = first_skipped
        d = self._mc_divisor
        start = self.cycle + 1
        end = self.cycle + skipped
        for mc in self._mcs:
            # Sleeping controllers settle their whole owed window (which
            # includes this skip) at mc_wake() time; replaying here too
            # would double-count the parity flips.
            if mc._sleep_from == 0:
                mc.fast_forward(start, end, d)
        edge = end - end % d
        if edge > self._mc_edge_done:
            self._mc_edge_done = edge

    def busy(self) -> bool:
        if len(self.wheel):
            return True
        if any(node.in_flight() for node in self.nodes):
            return True
        return any(
            node.mc.engine is not None and not node.mc.engine.idle()
            for node in self.nodes
        )

    def _deadlock_report(self) -> str:
        lines = [f"no forward progress since cycle {self._progress_cycle}"]
        lines.extend(node.describe_state() for node in self.nodes)
        for node in self.nodes:
            if node.core is not None:
                lines.append(node.core.describe_state())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize the complete simulation state to bytes.

        Requires the machine to have been built through
        :func:`repro.sim.checkpoint.build_checkpointable` (which sets
        ``record_programs`` and ``ckpt_spec``).  Restoring the returned
        bytes with :meth:`restore` yields a machine that continues
        bit-identically to one that was never suspended.
        """
        from repro.sim import checkpoint

        # Settle active-set sleep state so the serialized arbitration
        # parity and stall counters match a dense-stepped machine's.
        for mc in self._mcs:
            if mc._sleep_from:
                mc.mc_wake()
        for core in self._cores:
            core.flush_idle_fixup(through=True)
        return checkpoint.snapshot(self)

    @staticmethod
    def restore(data: bytes) -> "Machine":
        """Rebuild a machine from :meth:`snapshot` bytes."""
        from repro.sim import checkpoint

        return checkpoint.restore(data)

    # ------------------------------------------------------------------
    def collect_stats(self) -> MachineStats:
        for core in self._cores:
            core.flush_idle_fixup(through=True)
        stats = MachineStats(
            model=self.mp.model,
            n_nodes=self.mp.n_nodes,
            ways=self.mp.proc.app_threads,
            freq_ghz=self.mp.proc.freq_ghz,
            cycles=self.cycle,
            skipped_cycles=self.skipped_cycles,
            nodes=[node.stats for node in self.nodes],
        )
        return stats

    def final_checks(self) -> None:
        """Run the coherence audit (requires check_coherence=True)."""
        if self.checker is None:
            return
        self.checker.final_audit(self)
        self.checker.audit_directory(self)
