"""The SMTp mechanism: the protocol-thread context (paper §2.1, §2.3).

Two cooperating pieces:

* :class:`SMTpPort` — the engine adapter the memory controller talks
  to.  It accepts handler dispatches (capacity one, so the dispatch
  unit naturally blocks while a context is pending), implements the
  PPCV handshake, and realizes **Look-Ahead Scheduling**: with LAS the
  next handler's PC is handed to fetch as soon as the previous
  handler's fetch finishes; without LAS only after its LDCTXT
  graduates.

* :class:`ProtocolThreadSource` — the fetch-side shadow interpreter.
  It resolves each handler instruction *functionally at fetch time*
  (registers, protocol-memory loads/stores, branch outcomes are all
  deterministic for the single protocol thread), then emits timing
  µops for the pipeline.  Uncached operations keep their operand
  values on the µop and take effect only when the pipeline graduates
  them — preserving the paper's non-speculative send/probe semantics.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.uop import Uop, UopKind
from repro.memctrl.dispatch import HandlerContext
from repro.protocol import compile as pcompile
from repro.protocol import semantics
from repro.protocol.handlers import boot_registers
from repro.protocol.isa import ADDR, HDR, PInstr, POp


class SMTpPort:
    """Engine interface between the dispatch unit and the pipeline."""

    def __init__(self, source: "ProtocolThreadSource", las: bool) -> None:
        self.source = source
        self.las = las
        self.pending: Optional[HandlerContext] = None
        self.dispatched_count = 0
        self.started_count = 0
        self.committed_count = 0
        source.port = self

    # -- MC-facing engine interface ------------------------------------
    def can_accept(self) -> bool:
        return self.pending is None

    def ready_cycle(self) -> Optional[int]:
        """Activity contract: 0 when accepting now; None while a
        context is pending — acceptance is then unblocked by pipeline
        work (the handler graduating), not by the passage of time."""
        return None if self.pending is not None else 0

    def idle(self) -> bool:
        """No handler pending and no effects left in the pipeline.

        The final handler's SWITCH/LDCTXT legitimately stall forever
        when no further traffic arrives (paper §2.1), so idleness is
        judged by the core's protocol-thread window contents.
        """
        if self.pending is not None:
            return False
        core = self.source.node.core
        return core is None or core.protocol_quiescent()

    def dispatch(self, ctx: HandlerContext) -> None:
        ctx.index = self.dispatched_count
        self.dispatched_count += 1
        self.pending = ctx
        self.try_start()
        # A new dispatch can satisfy a stalled SWITCH and always feeds
        # the protocol thread's fetch: wake the host core.
        core = self.source.node.core
        if core is not None:
            core.wake()

    # -- sequencing -------------------------------------------------------
    def try_start(self) -> None:
        """Start fetching the pending handler if the rules allow."""
        if self.pending is None or self.source.fetching:
            return
        # At most one look-ahead handler beyond the executing one.
        if self.started_count - self.committed_count >= (2 if self.las else 1):
            return
        if not self.las and self.started_count != self.committed_count:
            return
        # Acceptance is about to flip (ready_cycle None -> 0): settle
        # the host controller's slept window under the old readiness
        # and put it back in the machine's active set — with a request
        # queued it dispatches on the next MC-clock edge, exactly as a
        # densely stepped controller would.  This is the only place
        # ``pending`` clears, so every port-side acceptance edge lands
        # on an mc_wake() settle boundary.
        mc = self.source.node.mc
        if mc._sleep_from:
            mc.mc_wake()
        ctx = self.pending
        self.pending = None
        self.started_count += 1
        self.source.start(ctx)

    def switch_satisfied(self, ctx: HandlerContext) -> bool:
        """Handler ``ctx`` may graduate its SWITCH/LDCTXT once the next
        request has been handed out by the dispatch unit."""
        return self.dispatched_count >= ctx.index + 2

    def handler_committed(self) -> None:
        self.committed_count += 1
        self.try_start()

    def on_fetch_complete(self) -> None:
        if self.las:
            self.try_start()


class ProtocolThreadSource:
    """Shadow interpreter feeding the protocol thread context."""

    #: Latency of POPC/CTZ when the special bit-manipulation ALU ops
    #: are absent (§2.1 ablation): a shift-and-test software loop.
    SLOW_BITOP_LATENCY = pcompile.SLOW_BITOP_LATENCY

    def __init__(self, node) -> None:
        self.node = node
        self.layout = node.layout
        self.regs = boot_registers(node.layout, node.node_id)
        self.pmem = node.pmem
        self.port: Optional[SMTpPort] = None
        self.bitops = node.mp.proc.protocol_bitops
        self.tid = node.mp.proc.app_threads  # protocol context id
        self.ctx: Optional[HandlerContext] = None
        self.index = 0
        self.fetching = False
        self._buffer: List[Uop] = []
        self.done = False  # the protocol thread never finishes
        # Compiled µop feed (bit-identical to _make_uop); _emit holds
        # the next instruction's emit closure while fetching.
        self._use_compiled = not pcompile.interp_forced()
        self._emit = None

    # -- checkpointing ----------------------------------------------------
    # ``_emit`` is a compiled-step closure and cannot pickle.  The
    # invariant maintained by every u_* step (and by ``start``) is that
    # ``_emit`` is the step for instruction ``self.index``, so it can be
    # dropped on serialization and re-derived from the (recompiled)
    # handler program on restore.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_emit"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.fetching and self._use_compiled and self.ctx is not None:
            steps = pcompile.compiled_for(self.ctx.handler).uop_steps
            self._emit = steps[self.index]

    # -- frontend source interface ------------------------------------------
    def peek_available(self) -> bool:
        return bool(self._buffer) or self.fetching

    def push_back(self, uop: Uop) -> None:
        self._buffer.insert(0, uop)

    def next_uop(self) -> Optional[Uop]:
        if self._buffer:
            return self._buffer.pop(0)
        if not self.fetching:
            return None
        emit = self._emit
        if emit is not None:
            return emit(self)
        return self._make_uop()

    def next_ctx_available(self, ctx: HandlerContext) -> bool:
        return self.port.switch_satisfied(ctx)

    def handler_committed(self, ctx: HandlerContext) -> None:
        self.port.handler_committed()

    # -- handler sequencing ----------------------------------------------
    def start(self, ctx: HandlerContext) -> None:
        self.ctx = ctx
        self.index = 0
        self.fetching = True
        self.regs[HDR] = ctx.header
        self.regs[ADDR] = ctx.msg.addr
        self._emit = (
            pcompile.compiled_for(ctx.handler).uop_entry
            if self._use_compiled
            else None
        )

    # -- shadow execution -------------------------------------------------
    def _make_uop(self) -> Optional[Uop]:
        ctx = self.ctx
        instr: PInstr = ctx.handler.instrs[self.index]
        pc = ctx.handler.pc_of(self.index)
        tid = self.node.mp.proc.app_threads  # protocol context id
        op = instr.op

        if op is POp.SWITCH:
            self.index += 1
            return Uop(
                UopKind.SWITCH, tid, pc=pc, dest=HDR, ctx=ctx, protocol=True
            )
        if op is POp.LDCTXT:
            self.fetching = False
            uop = Uop(
                UopKind.LDCTXT, tid, pc=pc, dest=ADDR, ctx=ctx, protocol=True
            )
            self.port.on_fetch_complete()
            return uop

        result = semantics.step(
            instr, self.index, self.regs, lambda a: self.pmem.get(a, 0)
        )
        srcs = tuple(instr.reads())
        if result.is_store:
            self.pmem[result.mem_addr] = result.value
            uop = Uop(
                UopKind.STORE, tid, pc=pc, srcs=srcs, addr=result.mem_addr,
                value=result.value, ctx=ctx, protocol=True,
            )
        elif op is POp.LD:
            uop = Uop(
                UopKind.LOAD, tid, pc=pc, srcs=srcs, dest=instr.rd,
                addr=result.mem_addr, ctx=ctx, protocol=True,
            )
        elif instr.is_branch:
            uop = Uop(
                UopKind.BRANCH, tid, pc=pc, srcs=srcs,
                taken=result.taken,
                target_pc=ctx.handler.pc_of(result.next_index),
                ctx=ctx, protocol=True,
            )
        elif result.uncached:
            uop = Uop(
                UopKind.UNCACHED, tid, pc=pc, srcs=srcs,
                value=result.value, pinstr=instr, ctx=ctx, protocol=True,
            )
        else:
            latency = 1
            if op in (POp.POPC, POp.CTZ) and not self.bitops:
                latency = self.SLOW_BITOP_LATENCY
            dest = result.dest if result.dest not in (None, 0) else None
            uop = Uop(
                UopKind.ALU, tid, pc=pc, srcs=srcs, dest=dest,
                latency=latency, ctx=ctx, protocol=True,
            )
            if dest is not None:
                self.regs[dest] = result.value
        if result.dest not in (None, 0) and op is POp.LD:
            self.regs[result.dest] = result.value
        self.index = result.next_index
        return uop
