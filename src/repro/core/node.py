"""One DSM node: SMT core + cache hierarchy + memory controller.

The node wires the hierarchy's ports to the controller, installs the
protocol engine the machine model calls for (embedded PP vs the SMTp
protocol-thread port), and owns the node-local backing stores:

* ``memory_versions`` — per-line data-version tokens for application
  lines homed here (what SDRAM "contains"),
* ``pmem`` — the protocol memory (directory entries, handler scratch),
  functionally word-addressable.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, Optional

from repro.caches.hierarchy import CacheHierarchy
from repro.common.events import EventWheel
from repro.common.params import MachineParams
from repro.common.stats import NodeStats
from repro.memctrl.controller import MemoryController
from repro.memctrl.ppengine import PPEngine
from repro.network.messages import Message
from repro.protocol.directory import DirectoryLayout
from repro.protocol.isa import HandlerTable


def _read_word(words: Dict[int, int], addr: int) -> int:
    """Module-level word reader: ``partial(_read_word, words)`` stays
    picklable where a closure over ``words`` would not
    (:mod:`repro.sim.checkpoint`)."""
    return words.get(addr, 0)


class Node:
    def __init__(
        self,
        node_id: int,
        mp: MachineParams,
        wheel: EventWheel,
        layout: DirectoryLayout,
        handler_table: HandlerTable,
        send_to_network: Callable[[Message], None],
        words: Dict[int, int],
        bundle=None,
    ) -> None:
        self.node_id = node_id
        self.mp = mp
        self.wheel = wheel
        self.layout = layout
        self.stats = NodeStats(node=node_id)
        self.memory_versions: Dict[int, int] = {}
        self.pmem: Dict[int, int] = {}
        self.words = words

        self.hierarchy = CacheHierarchy(node_id, mp, self.stats)
        self.mc = MemoryController(
            node_id,
            mp,
            wheel,
            self.hierarchy,
            layout,
            handler_table,
            self.stats,
            self.memory_versions,
            send_to_network,
            bundle=bundle,
        )

        h = self.hierarchy
        h.schedule = wheel.schedule
        h.app_miss_port = self.mc.app_miss
        h.proto_miss_port = self.mc.proto_miss
        h.writeback_port = self.mc.writeback
        h.proto_writeback_port = self.mc.proto_writeback
        h.read_word = partial(_read_word, words)
        h.write_word = words.__setitem__

        if mp.protocol_engine == "pp":
            self.mc.engine = PPEngine(
                node_id, mp, self.mc, layout, self.pmem, self.stats
            )
        # For SMTp the machine installs the protocol-thread port after
        # the core exists.

        #: The SMT core; installed by the machine (None in memory-only
        #: harnesses/tests).
        self.core = None

    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        """Outstanding transactions visible at this node."""
        return (
            len(self.hierarchy.mshrs)
            + len(self.mc.local_queue)
            + sum(len(q) for q in self.mc.ni_in)
            + len(self.mc.probe_replies)
        )

    def describe_state(self) -> str:
        """One-line dump for the deadlock watchdog."""
        busy = ""
        if self.mc.engine is not None and not self.mc.engine.can_accept():
            busy = " engine-busy"
        return (
            f"node {self.node_id}: mshrs={len(self.hierarchy.mshrs)} "
            f"lmi={len(self.mc.local_queue)} "
            f"ni={[len(q) for q in self.mc.ni_in]} "
            f"probes={len(self.mc.probe_replies)}{busy}"
        )
