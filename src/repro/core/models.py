"""The five machine models of Table 4.

============  =========================  ============  ==================
model         protocol execution         MC clock      directory cache
============  =========================  ============  ==================
base          embedded dual-issue PP     400 MHz       512 KB DM
intperfect    embedded dual-issue PP     processor     perfect
int512kb      embedded dual-issue PP     ½ processor   512 KB DM
int64kb       embedded dual-issue PP     ½ processor   64 KB DM
smtp          protocol thread            ½ processor   none (shares L1/L2)
============  =========================  ============  ==================

Because the Python reproduction runs scaled workloads, capacity-type
parameters (L1/L2, directory caches) shrink by ``cache_scale`` /
``dir_scale`` while every latency, width and policy stays paper-exact
(see DESIGN.md §2).  ``cache_scale=1, dir_scale=1`` gives the paper's
full-size machine.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ConfigError
from repro.common.params import (
    PERFECT,
    MachineParams,
    MemoryParams,
    NetworkParams,
    ProcessorParams,
)

MODELS = ("base", "intperfect", "int512kb", "int64kb", "smtp")

_BASE_MC_GHZ = 0.4
_DIR_512KB = 512 * 1024
_DIR_64KB = 64 * 1024


def make_machine_params(
    model: str,
    n_nodes: int = 1,
    ways: int = 1,
    freq_ghz: float = 2.0,
    *,
    cache_scale: int = 32,
    dir_scale: int = 256,
    time_scale: int = 4,
    local_memory_bytes: int = 1 << 22,
    check_coherence: bool = False,
    sanitize: bool = False,
    sanitize_interval: int = 64,
    look_ahead_scheduling: bool = True,
    protocol_bitops: bool = True,
    perfect_protocol_caches: bool = False,
    watchdog_cycles: int = 2_000_000,
    protocol: str = "smtp-bitvector",
) -> MachineParams:
    """Build the :class:`MachineParams` for one Table 4 model."""
    model = model.lower()
    if model not in MODELS:
        raise ConfigError(f"unknown machine model {model!r}; pick from {MODELS}")
    smtp = model == "smtp"
    proc = ProcessorParams(
        freq_ghz=freq_ghz,
        app_threads=ways,
        protocol_thread=smtp,
        look_ahead_scheduling=look_ahead_scheduling,
        protocol_bitops=protocol_bitops,
        perfect_protocol_caches=perfect_protocol_caches,
    )
    if cache_scale > 1:
        proc = proc.scaled(cache_scale)

    # Time scaling (DESIGN.md §2): scaled working sets need scaled
    # memory/network *latencies* to keep the communication-to-
    # computation ratio in the paper's regime.  Protocol-processing
    # speeds — what distinguishes the five models — are untouched.
    mem = MemoryParams(
        sdram_access_ns=80.0 / time_scale,
        sdram_bandwidth_gbs=3.2 * time_scale,
    )
    net = NetworkParams(
        hop_ns=25.0 / time_scale,
        link_bandwidth_gbs=1.0 * time_scale,
    )

    if model == "base":
        mc_ghz, dir_cache = _BASE_MC_GHZ, _DIR_512KB // dir_scale
    elif model == "intperfect":
        mc_ghz, dir_cache = freq_ghz, PERFECT
    elif model == "int512kb":
        mc_ghz, dir_cache = freq_ghz / 2, _DIR_512KB // dir_scale
    elif model == "int64kb":
        mc_ghz, dir_cache = freq_ghz / 2, _DIR_64KB // dir_scale
    else:  # smtp
        mc_ghz, dir_cache = freq_ghz / 2, None

    return MachineParams(
        model=model,
        n_nodes=n_nodes,
        proc=proc,
        mem=mem,
        net=net,
        mc_freq_ghz=mc_ghz,
        dir_cache=dir_cache,
        protocol_engine="thread" if smtp else "pp",
        protocol=protocol,
        local_memory_bytes=local_memory_bytes,
        check_coherence=check_coherence,
        sanitize=sanitize,
        sanitize_interval=sanitize_interval,
        watchdog_cycles=watchdog_cycles,
    )


def paper_exact_params(model: str, n_nodes: int = 1, ways: int = 1,
                       freq_ghz: float = 2.0) -> MachineParams:
    """Full-size Table 2/3/4 configuration (slow to simulate)."""
    return make_machine_params(
        model, n_nodes, ways, freq_ghz, cache_scale=1, dir_scale=1,
        time_scale=1, local_memory_bytes=1 << 30,
    )
