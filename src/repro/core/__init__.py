"""The paper's contribution: the SMTp protocol-thread mechanism, node
and machine assembly, and the five Table 4 machine models."""

from repro.core.machine import Machine
from repro.core.models import MODELS, make_machine_params, paper_exact_params
from repro.core.node import Node
from repro.core.protocol_thread import ProtocolThreadSource, SMTpPort

__all__ = [
    "MODELS",
    "Machine",
    "Node",
    "ProtocolThreadSource",
    "SMTpPort",
    "make_machine_params",
    "paper_exact_params",
]
