"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``       simulate one workload on one machine model
``sweep``     run a grid of configurations in parallel, with caching
``fuzz``      run a seeded coherence-fuzzing campaign (or replay one artifact)
``models``    list the five Table 4 machine models
``apps``      list workloads and their preset sizes
``handlers``  disassemble the coherence protocol handlers
``analyze``   statically verify the handler table (see repro.analyze)
"""

from __future__ import annotations

import argparse
import sys

from repro.core.models import MODELS
from repro.fuzz.stress import SHARING_PATTERNS
from repro.sim.experiments import APPS, PRESETS
from repro.sim.report import MODEL_LABELS, format_table


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.sim.driver import run_app
    from repro.sim.report import summarize

    stats = run_app(
        args.app,
        args.model,
        n_nodes=args.nodes,
        ways=args.ways,
        freq_ghz=args.freq,
        preset=args.preset,
        check_coherence=args.check,
    )
    print(summarize(stats))
    if args.verbose:
        print("\nPer-node protocol handlers:")
        for node in stats.nodes:
            mix = dict(sorted(node.protocol.handlers_by_type.items()))
            print(f"  node {node.node}: {mix}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from pathlib import Path

    from repro.sim.sweep import (
        NAMED_GRIDS,
        ResultCache,
        gate_results,
        make_grid,
        measure_reference_s,
        run_sweep,
        warm_up_cpu,
        write_bench_json,
    )

    if args.list_grids:
        for name, builder in sorted(NAMED_GRIDS.items()):
            print(f"{name}: {len(builder())} cells")
        return 0

    from repro.common.errors import ConfigError

    if args.worker:
        from repro.sim.queue import JobQueue, worker_loop

        queue = JobQueue(args.queue_dir, lease_s=args.lease)
        ran = worker_loop(
            queue,
            checkpoint_every=args.checkpoint_every,
            progress=print,
        )
        state = "drained" if queue.all_done() else "still has leased jobs"
        print(f"worker: ran {ran} job(s); queue {state}")
        return 0

    try:
        if args.grid:
            if args.protocol:
                print(
                    "error: --protocol does not combine with --grid "
                    "(named grids fix their own protocol cells)",
                    file=sys.stderr,
                )
                return 2
            cells = NAMED_GRIDS[args.grid]()
            name = args.name or args.grid
        else:
            # Only non-default protocols ride in the cell flags, so
            # default sweeps keep their historical cache and gate keys.
            extra = {"protocol": args.protocol} if args.protocol else {}
            cells = make_grid(
                args.apps.split(","),
                args.models.split(","),
                nodes=[int(n) for n in args.nodes.split(",")],
                ways=[int(w) for w in args.ways.split(",")],
                freq_ghz=args.freq,
                preset=args.preset,
                **extra,
            )
            name = args.name or "sweep"
        for c in cells:
            c.cache_key()  # resolves params: rejects bad app/model/preset
    except (KeyError, ValueError, ConfigError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.profile:
        return _profile_cell(cells[0], len(cells), args.profile)

    import os

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    try:
        cache = ResultCache(args.cache_dir, refresh=args.refresh)
    except ConfigError as exc:
        print(f"error: --cache-dir: {exc}", file=sys.stderr)
        return 2
    if args.gate:
        # Gated runs compare per-cell timings; let the CPU clock
        # settle first so the earliest cells aren't timed cold.
        warm_up_cpu()
    t0 = time.perf_counter()
    if args.serve:
        from repro.sim.queue import JobQueue, serve_sweep

        queue = JobQueue(args.queue_dir, lease_s=args.lease)
        print(
            f"serve: queue at {args.queue_dir}; start workers with "
            f"`python -m repro sweep --worker --queue-dir {args.queue_dir}`"
        )
        results = serve_sweep(
            queue, cells, cache=cache, refresh=args.refresh, progress=print
        )
    else:
        results = run_sweep(
            cells,
            jobs=jobs,
            cache=cache,
            timeout=args.timeout or None,
            retries=args.retries,
            progress=print,
        )
    wall = time.perf_counter() - t0

    rows = [
        [
            r.cell.app, r.cell.model, r.cell.n_nodes, r.cell.ways,
            r.cell.preset, r.status + (" (cached)" if r.cached else ""),
            r.stats["cycles"] if r.ok else (r.error_type or "-"),
            f"{r.elapsed_s:.3f}" if r.elapsed_s > 0 else "-",
            f"{r.compile_s:.3f}" if r.compile_s > 0 else "-",
            f"{r.cycles_per_sec / 1000:.0f}k" if r.cycles_per_sec else "-",
        ]
        for r in results
    ]
    print()
    print(format_table(
        ["app", "model", "nodes", "ways", "preset", "status", "cycles",
         "cpu s", "compile s", "cyc/s"],
        rows,
    ))

    from repro.sim.report import protocol_comparison_table

    comparison = protocol_comparison_table(results)
    if comparison is not None:
        print("\ncross-protocol comparison (same cell, different bundle):")
        print(comparison)

    baseline = None
    if args.gate:
        # Read the committed trajectory *before* write_bench_json —
        # when --out points at the repo root the refreshed file
        # overwrites it.
        import json as _json

        try:
            baseline = _json.loads(Path(args.gate).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read gate baseline {args.gate}: {exc}",
                  file=sys.stderr)
            return 2

    # Box-speed calibration, timed right after the cells so it sees
    # the same machine conditions; the gate normalizes with it.
    reference_s = measure_reference_s()

    # The speedup-floor blocks are sticky: a refresh rewrites the
    # timing rows but keeps the recorded reference-build blocks it
    # gates against (interpreter-era, pre-app-compile-era and
    # pre-SMT-compile-era).
    pre_compile = baseline.get("pre_compile") if baseline else None
    pre_app_compile = baseline.get("pre_app_compile") if baseline else None
    pre_smt_compile = baseline.get("pre_smt_compile") if baseline else None
    path = write_bench_json(args.out, name, results, jobs=jobs,
                            wall_clock_s=wall, reference_s=reference_s,
                            pre_compile=pre_compile,
                            pre_app_compile=pre_app_compile,
                            pre_smt_compile=pre_smt_compile)
    print(f"\nwrote {path}")

    if baseline is not None:
        failures, lines = gate_results(results, baseline,
                                       reference_s=reference_s)
        print()
        for line in lines:
            print(line)
        if failures:
            print(
                f"\ngate: {failures} cell(s) slower than the committed "
                f"trajectory beyond the allowed headroom"
            )
            return 1
        print("\ngate: no timing regressions; refreshed file becomes "
              "the new baseline when committed")
    return 0 if all(r.ok for r in results) else 1


def _profile_cell(cell, n_cells: int, top: int) -> int:
    """Run one sweep cell under cProfile; print the top hotspots.

    The quickest way to answer "where do the cycles/sec go?" for a
    given grid point — no cache, no worker pool, no best-of repeats:
    one inline simulation with the profiler's instrumentation overhead
    included (absolute times read ~2x slow; the *ranking* is what
    matters).

    The cell is warm-started first (one untimed run), so the profile
    measures the steady state the sweeps time: the compiled-path
    closures (``u_*`` handler steps, superblock emitters) exist and
    show up under their own names instead of the run being dominated
    by one-time compilation frames.  The cumulative-time list is
    followed by a compiled-closure section filtered to the compiler
    modules, so the compiled fast path stays readable even when its
    per-call self-times are too small for the global top list.
    """
    import cProfile
    import pstats

    from repro.sim.driver import run_app

    if n_cells > 1:
        print(f"profiling the first of {n_cells} cells: {cell.label}")
    else:
        print(f"profiling {cell.label}")
    kwargs = dict(
        n_nodes=cell.n_nodes,
        ways=cell.ways,
        freq_ghz=cell.freq_ghz,
        preset=cell.preset,
        max_cycles=cell.max_cycles,
        **dict(cell.flags),
    )
    run_app(cell.app, cell.model, **kwargs)  # warm-start: compile once
    prof = cProfile.Profile()
    prof.enable()
    stats = run_app(cell.app, cell.model, **kwargs)
    prof.disable()
    print(f"simulated {stats.cycles} cycles "
          f"(+{stats.skipped_cycles} skipped)\n")
    ps = pstats.Stats(prof)
    ps.sort_stats("cumulative").print_stats(top)
    print("compiled closures (protocol handler steps, superblock "
          "emitters), by cumulative time:")
    ps.print_stats(r"repro[/\\](protocol|apps)[/\\]compile", top)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import os
    import time

    if args.replay:
        from repro.common.errors import ConfigError as _ConfigError
        from repro.fuzz.artifact import replay_artifact

        try:
            reproduced, failure, ops = replay_artifact(
                args.replay, use_shrunk=not args.full_ops,
                protocol=args.protocol,
            )
        except _ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot replay {args.replay}: {exc!r}",
                  file=sys.stderr)
            return 2
        if failure is not None:
            print(f"replay raised {type(failure).__name__}: "
                  f"{str(failure).splitlines()[0]}")
        if reproduced:
            print(f"reproduced the recorded failure with {len(ops)} ops")
            return 0
        print(f"did NOT reproduce the recorded failure "
              f"({len(ops)} ops replayed)")
        return 3

    from repro.common.errors import ConfigError
    from repro.fuzz.campaign import (
        FuzzCell,
        run_campaign,
        summarize_campaign,
        write_fuzz_json,
    )
    from repro.fuzz.faults import parse_faults
    from repro.fuzz.stress import StressConfig

    try:
        faults = parse_faults(args.faults)
        sharings = (
            SHARING_PATTERNS if args.sharing == "mix" else (args.sharing,)
        )
        cells = [
            FuzzCell(
                seed=args.seed_base + i,
                model=args.model,
                n_nodes=args.nodes,
                stress=StressConfig(
                    n_ops=args.ops,
                    n_lines=args.lines,
                    sharing=sharings[i % len(sharings)],
                ),
                faults=faults,
                protocol=args.protocol or "smtp-bitvector",
            )
            for i in range(args.seeds)
        ]
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    ledger = None
    if args.ledger:
        from repro.sim.queue import ResultLedger

        ledger = ResultLedger(args.ledger)
    t0 = time.perf_counter()
    results = run_campaign(
        cells,
        jobs=jobs,
        out_dir=args.artifacts,
        shrink=not args.no_shrink,
        timeout=args.timeout or None,
        progress=print,
        ledger=ledger,
    )
    wall = time.perf_counter() - t0
    summary = summarize_campaign(results)
    path = write_fuzz_json(args.out, args.name, results, jobs=jobs,
                           wall_clock_s=wall)
    print(
        f"\nfuzz: {summary['n_cells']} cells, {summary['n_ok']} ok, "
        f"{summary['n_failed']} failed {summary['by_status']} "
        f"in {wall:.1f}s"
    )
    for artifact in summary["artifacts"]:
        print(f"  artifact: {artifact}")
    print(f"wrote {path}")
    return 0 if summary["n_failed"] == 0 else 1


def _cmd_models(args: argparse.Namespace) -> int:
    rows = [
        ["base", "embedded dual-issue PP", "400 MHz", "512 KB DM"],
        ["intperfect", "embedded dual-issue PP", "processor", "perfect"],
        ["int512kb", "embedded dual-issue PP", "1/2 processor", "512 KB DM"],
        ["int64kb", "embedded dual-issue PP", "1/2 processor", "64 KB DM"],
        ["smtp", "protocol thread on the pipeline", "1/2 processor", "shares L1/L2"],
    ]
    print(format_table(["model", "protocol execution", "MC clock", "dir cache"], rows))
    return 0


def _cmd_apps(args: argparse.Namespace) -> int:
    rows = []
    for app in APPS:
        sizes = {p: PRESETS[p][app] for p in PRESETS}
        rows.append([app, str(sizes["tiny"]), str(sizes["bench"]), str(sizes["default"])])
    print(format_table(["app", "tiny", "bench", "default"], rows))
    return 0


def _cmd_handlers(args: argparse.Namespace) -> int:
    from repro.protocol import registry

    table = registry.get(args.protocol).build_table()
    if args.name:
        handler = table[args.name]
        print(f"{handler.name} @ {handler.pc:#x} ({len(handler)} instructions)")
        for i, instr in enumerate(handler.instrs):
            fields = []
            if instr.rd:
                fields.append(f"rd=r{instr.rd}")
            if instr.rs1:
                fields.append(f"rs1=r{instr.rs1}")
            if instr.rs2 is not None:
                fields.append(f"rs2=r{instr.rs2}")
            elif instr.imm:
                fields.append(f"imm={instr.imm:#x}")
            if instr.target >= 0:
                fields.append(f"-> {instr.target}")
            print(f"  {i:3d}: {instr.op.name:9s} {' '.join(fields)}")
        return 0
    rows = [
        [name, f"{h.pc:#x}", len(h)]
        for name, h in sorted(table.by_name.items())
    ]
    print(format_table(["handler", "PC", "instrs"], rows))
    print(f"\n{table.total_instructions()} protocol instructions total; "
          "use `handlers --name h_get` to disassemble one.")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SMTp (ISCA 2004) reproduction simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("app", choices=APPS)
    run_p.add_argument("--model", choices=MODELS, default="smtp")
    run_p.add_argument("--nodes", type=int, default=2)
    run_p.add_argument("--ways", type=int, default=1, choices=(1, 2, 4))
    run_p.add_argument("--freq", type=float, default=2.0, help="GHz")
    run_p.add_argument("--preset", choices=tuple(PRESETS), default="bench")
    run_p.add_argument("--check", action="store_true",
                       help="run the coherence invariant checker")
    run_p.add_argument("-v", "--verbose", action="store_true")
    run_p.set_defaults(fn=_cmd_run)

    sweep_p = sub.add_parser(
        "sweep",
        help="run a configuration grid in parallel with result caching",
    )
    sweep_p.add_argument("--grid", choices=("smoke", "fig2", "fig8"),
                         help="a named grid (overrides the axis options)")
    sweep_p.add_argument("--list-grids", action="store_true",
                         help="list named grids and exit")
    sweep_p.add_argument("--apps", default=",".join(APPS),
                         help="comma-separated workloads")
    sweep_p.add_argument("--models", default=",".join(MODELS),
                         help="comma-separated machine models")
    sweep_p.add_argument("--nodes", default="1",
                         help="comma-separated node counts")
    sweep_p.add_argument("--ways", default="1",
                         help="comma-separated threads-per-node")
    sweep_p.add_argument("--freq", type=float, default=2.0, help="GHz")
    sweep_p.add_argument("--preset", choices=tuple(PRESETS), default="bench")
    sweep_p.add_argument("--jobs", type=int, default=None,
                         help="worker processes (0 = inline; default: CPUs)")
    sweep_p.add_argument("--cache-dir", default=".sweep_cache",
                         help="result cache directory")
    sweep_p.add_argument("--timeout", type=float, default=0,
                         help="seconds per cell (0 = unlimited)")
    sweep_p.add_argument("--retries", type=int, default=0,
                         help="extra attempts for timed-out/crashed cells")
    sweep_p.add_argument("--refresh", action="store_true",
                         help="ignore cached results (they are rewritten)")
    sweep_p.add_argument("--out", default=".",
                         help="directory for the BENCH_<name>.json report")
    sweep_p.add_argument("--name", default=None,
                         help="report name (default: grid name or 'sweep')")
    sweep_p.add_argument("--gate", default=None, metavar="BENCH_JSON",
                         help="fail if any fresh cell is >25%% slower than "
                              "this committed trajectory (use with "
                              "--refresh for fresh timings)")
    sweep_p.add_argument("--profile", type=int, default=0, metavar="N",
                         help="run the first cell of the grid inline under "
                              "cProfile and print the top-N cumulative "
                              "hotspots instead of sweeping")
    sweep_p.add_argument("--serve", action="store_true",
                         help="enqueue the grid on the persistent job queue "
                              "and wait for workers instead of simulating "
                              "in-process")
    sweep_p.add_argument("--worker", action="store_true",
                         help="drain the persistent job queue (claim, run "
                              "with checkpointing, repeat until drained)")
    sweep_p.add_argument("--queue-dir", default=".sweep_queue",
                         help="persistent queue directory for "
                              "--serve/--worker")
    sweep_p.add_argument("--lease", type=float, default=120.0,
                         help="seconds without a worker heartbeat before "
                              "a leased job is reclaimed")
    sweep_p.add_argument("--checkpoint-every", type=int, default=2_000_000,
                         metavar="CYCLES",
                         help="cycles between worker checkpoints "
                              "(REPRO_NO_CKPT=1 disables checkpointing)")
    sweep_p.add_argument("--protocol", default=None, metavar="NAME",
                         help="run every cell of an axis-built grid on "
                              "this registered coherence bundle (see "
                              "`repro analyze --protocol`; default: the "
                              "machine default, smtp-bitvector)")
    sweep_p.set_defaults(fn=_cmd_sweep)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="seeded coherence-fuzzing campaign with shrink-on-failure",
    )
    fuzz_p.add_argument("--seeds", type=int, default=20,
                        help="number of seeds (cells) to run")
    fuzz_p.add_argument("--seed-base", type=int, default=0,
                        help="first seed; cells use seed_base..seed_base+N-1")
    fuzz_p.add_argument("--jobs", type=int, default=None,
                        help="worker processes (0 = inline; default: CPUs)")
    fuzz_p.add_argument("--faults", default="off",
                        help="off|on|heavy|dup or key=value pairs "
                             "(delay_rate=0.2,delay_max=500,dup_rate=0)")
    fuzz_p.add_argument("--ops", type=int, default=300,
                        help="memory operations per cell")
    fuzz_p.add_argument("--lines", type=int, default=4,
                        help="contended lines homed at each node")
    fuzz_p.add_argument("--nodes", type=int, default=2,
                        help="nodes per fuzz machine")
    fuzz_p.add_argument("--model", choices=MODELS, default="base")
    fuzz_p.add_argument("--sharing", default="mix",
                        choices=SHARING_PATTERNS + ("mix",),
                        help="sharing pattern ('mix' rotates across cells)")
    fuzz_p.add_argument("--timeout", type=float, default=0,
                        help="seconds per cell (0 = unlimited; needs --jobs>0)")
    fuzz_p.add_argument("--artifacts", default="fuzz_artifacts",
                        help="directory for failure artifacts")
    fuzz_p.add_argument("--out", default=".",
                        help="directory for the FUZZ_<name>.json report")
    fuzz_p.add_argument("--name", default="fuzz", help="report name")
    fuzz_p.add_argument("--no-shrink", action="store_true",
                        help="skip minimizing failing op lists")
    fuzz_p.add_argument("--ledger", metavar="DIR", default=None,
                        help="durable completed-cell ledger: a killed "
                             "campaign re-run with the same arguments "
                             "replays finished cells and only re-fuzzes "
                             "the interrupted ones")
    fuzz_p.add_argument("--replay", metavar="ARTIFACT",
                        help="replay one failure artifact and exit "
                             "(0 = reproduced, 3 = not)")
    fuzz_p.add_argument("--full-ops", action="store_true",
                        help="with --replay: use the full op list, "
                             "not the shrunk one")
    fuzz_p.add_argument("--protocol", default=None, metavar="NAME",
                        help="registered coherence bundle to fuzz "
                             "(default smtp-bitvector); with --replay, "
                             "asserts the artifact's recorded protocol "
                             "and errors on a mismatch")
    fuzz_p.set_defaults(fn=_cmd_fuzz)

    sub.add_parser("models", help="list machine models").set_defaults(fn=_cmd_models)
    sub.add_parser("apps", help="list workloads/presets").set_defaults(fn=_cmd_apps)

    handlers_p = sub.add_parser("handlers", help="show protocol handlers")
    handlers_p.add_argument("--name", help="disassemble one handler")
    handlers_p.add_argument("--protocol", default="smtp-bitvector",
                            metavar="NAME",
                            help="registered coherence bundle to show "
                                 "(default smtp-bitvector)")
    handlers_p.set_defaults(fn=_cmd_handlers)

    from repro.analyze.cli import add_analyze_parser

    add_analyze_parser(sub)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
