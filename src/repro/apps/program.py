"""Application thread programs.

A thread program is a Python coroutine that drives a
:class:`KernelBuilder` — calling its methods appends µops to a buffer
and returns the logical register holding each result, so kernels read
like dataflow code::

    def body(k: KernelBuilder):
        top = k.here()
        for i in range(n):
            k.set_pc(top)
            a = k.load(base + 8 * i)
            b = k.falu(a, b)
            k.branch(i < n - 1, top)
            yield   # flush point

Three yield forms:

* ``yield`` — flush point: buffered µops flow to the pipeline.
* ``value = yield AWAIT`` — the previously-built µop (an atomic or a
  spin load) must *execute* before the program continues; the executed
  value is sent back in.  This is how locks and barriers react to the
  simulated memory system.
* ``yield ('sleep', n)`` — emit nothing for ``n`` cycles (spin
  backoff).

The pipeline pulls µops one at a time via the
:class:`ThreadProgram` source interface shared with the protocol
thread.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.isa.uop import FP_BASE, Uop, UopKind

#: Marker yielded after building an atomic/spin µop whose value the
#: program needs.
AWAIT = object()


class KernelBuilder:
    """µop factory for one application thread.

    Integer results rotate through logical r8..r23 and FP results
    through f8..f23, leaving r0..r7 for long-lived values a kernel
    wants to pin (loop-carried accumulators, base addresses).
    """

    INT_WINDOW = tuple(range(8, 24))
    FP_WINDOW = tuple(range(FP_BASE + 8, FP_BASE + 24))

    def __init__(self, thread: int, pc_base: int) -> None:
        self.thread = thread
        self.pc = pc_base
        self.buffer: List[Uop] = []
        self._int_rot = 0
        self._fp_rot = 0
        self.await_uop: Optional[Uop] = None
        # Decoded-µop cache: kernels loop over a handful of µop shapes
        # (kind × rotating dest × source regs), so after the first trip
        # through a block every emission clones a prebuilt template and
        # patches the per-instance fields (pc/addr/value/...) instead of
        # re-running Uop.__init__ (see repro.protocol.compile for the
        # protocol-side counterpart).
        self._tmpl: Dict[Tuple[object, ...], Uop] = {}

    def _stamp(self, kind: UopKind, srcs: Tuple[int, ...], dest: Optional[int],
               atomic_op: Optional[str] = None) -> Uop:
        key = (kind, srcs, dest, atomic_op)
        tmpl = self._tmpl.get(key)
        if tmpl is None:
            tmpl = self._tmpl[key] = Uop(
                kind, self.thread, srcs=srcs, dest=dest, atomic_op=atomic_op
            )
        return tmpl.clone()

    # -- program counters ----------------------------------------------------
    def here(self) -> int:
        return self.pc

    def set_pc(self, pc: int) -> None:
        self.pc = pc

    def _next_pc(self) -> int:
        pc = self.pc
        self.pc += 4
        return pc

    _WINDOW_LEN = 16  # == len(INT_WINDOW) == len(FP_WINDOW)

    def _int_dest(self) -> int:
        reg = self.INT_WINDOW[self._int_rot]
        self._int_rot = (self._int_rot + 1) % self._WINDOW_LEN
        return reg

    def _fp_dest(self) -> int:
        reg = self.FP_WINDOW[self._fp_rot]
        self._fp_rot = (self._fp_rot + 1) % self._WINDOW_LEN
        return reg

    # -- µop constructors -------------------------------------------------
    # The hot constructors (one call per emitted µop) inline the
    # rotation/_stamp/_next_pc helpers — identical emission, three
    # fewer Python calls per µop.

    def alu(self, *deps: int) -> int:
        rot = self._int_rot
        dest = self.INT_WINDOW[rot]
        self._int_rot = (rot + 1) % self._WINDOW_LEN
        key = (UopKind.ALU, deps, dest, None)
        tmpl = self._tmpl.get(key)
        if tmpl is None:
            tmpl = self._tmpl[key] = Uop(
                UopKind.ALU, self.thread, srcs=deps, dest=dest
            )
        uop = tmpl.clone()
        uop.pc = self.pc
        self.pc += 4
        self.buffer.append(uop)
        return dest

    def mul(self, *deps: int) -> int:
        rot = self._int_rot
        dest = self.INT_WINDOW[rot]
        self._int_rot = (rot + 1) % self._WINDOW_LEN
        key = (UopKind.MUL, deps, dest, None)
        tmpl = self._tmpl.get(key)
        if tmpl is None:
            tmpl = self._tmpl[key] = Uop(
                UopKind.MUL, self.thread, srcs=deps, dest=dest
            )
        uop = tmpl.clone()
        uop.pc = self.pc
        self.pc += 4
        self.buffer.append(uop)
        return dest

    def falu(self, *deps: int) -> int:
        rot = self._fp_rot
        dest = self.FP_WINDOW[rot]
        self._fp_rot = (rot + 1) % self._WINDOW_LEN
        key = (UopKind.FALU, deps, dest, None)
        tmpl = self._tmpl.get(key)
        if tmpl is None:
            tmpl = self._tmpl[key] = Uop(
                UopKind.FALU, self.thread, srcs=deps, dest=dest
            )
        uop = tmpl.clone()
        uop.pc = self.pc
        self.pc += 4
        self.buffer.append(uop)
        return dest

    def fdiv(self, *deps: int) -> int:
        rot = self._fp_rot
        dest = self.FP_WINDOW[rot]
        self._fp_rot = (rot + 1) % self._WINDOW_LEN
        key = (UopKind.FDIV, deps, dest, None)
        tmpl = self._tmpl.get(key)
        if tmpl is None:
            tmpl = self._tmpl[key] = Uop(
                UopKind.FDIV, self.thread, srcs=deps, dest=dest
            )
        uop = tmpl.clone()
        uop.pc = self.pc
        self.pc += 4
        self.buffer.append(uop)
        return dest

    def load(self, addr: int, *deps: int, fp: bool = False) -> int:
        if fp:
            rot = self._fp_rot
            dest = self.FP_WINDOW[rot]
            self._fp_rot = (rot + 1) % self._WINDOW_LEN
        else:
            rot = self._int_rot
            dest = self.INT_WINDOW[rot]
            self._int_rot = (rot + 1) % self._WINDOW_LEN
        key = (UopKind.LOAD, deps, dest, None)
        tmpl = self._tmpl.get(key)
        if tmpl is None:
            tmpl = self._tmpl[key] = Uop(
                UopKind.LOAD, self.thread, srcs=deps, dest=dest
            )
        uop = tmpl.clone()
        uop.pc = self.pc
        self.pc += 4
        uop.addr = addr
        self.buffer.append(uop)
        return dest

    def store(self, addr: int, *deps: int, value: Optional[int] = None) -> None:
        key = (UopKind.STORE, deps, None, None)
        tmpl = self._tmpl.get(key)
        if tmpl is None:
            tmpl = self._tmpl[key] = Uop(
                UopKind.STORE, self.thread, srcs=deps, dest=None
            )
        uop = tmpl.clone()
        uop.pc = self.pc
        self.pc += 4
        uop.addr = addr
        uop.value = value
        self.buffer.append(uop)

    def prefetch(self, addr: int, exclusive: bool = False) -> None:
        uop = self._stamp(UopKind.PREFETCH, (), None)
        uop.pc = self._next_pc()
        uop.addr = addr
        uop.exclusive = exclusive
        self.buffer.append(uop)

    def branch(self, taken: bool, target: int, *deps: int) -> None:
        key = (UopKind.BRANCH, deps, None, None)
        tmpl = self._tmpl.get(key)
        if tmpl is None:
            tmpl = self._tmpl[key] = Uop(
                UopKind.BRANCH, self.thread, srcs=deps, dest=None
            )
        uop = tmpl.clone()
        uop.pc = self.pc
        self.pc += 4
        uop.taken = bool(taken)
        uop.target_pc = target
        self.buffer.append(uop)
        if taken:
            self.pc = target

    def call(self, target: int) -> int:
        """Emit a call; returns the return PC for the matching ret."""
        pc = self._next_pc()
        uop = self._stamp(UopKind.CALL, (), None)
        uop.pc = pc
        uop.taken = True
        uop.target_pc = target
        self.buffer.append(uop)
        ret_pc = pc + 4
        self.pc = target
        return ret_pc

    def ret(self, return_pc: int) -> None:
        uop = self._stamp(UopKind.RETURN, (), None)
        uop.pc = self._next_pc()
        uop.taken = True
        uop.target_pc = return_pc
        self.buffer.append(uop)
        self.pc = return_pc

    def mark_spin(self) -> None:
        """Tag the most recently emitted µop as spin-synchronization
        work (see ``Uop.spin``); called by the runtime's spin/lock
        helpers on every µop of their timing-dependent loops."""
        self.buffer[-1].spin = True

    # -- value-bearing operations (used with ``yield AWAIT``) -----------------
    def spin_load(self, addr: int) -> None:
        uop = self._stamp(UopKind.LOAD, (), self._int_dest())
        uop.pc = self._next_pc()
        uop.addr = addr
        self.buffer.append(uop)
        self.await_uop = uop

    def value_load(self, addr: int) -> None:
        self.spin_load(addr)

    def atomic(self, addr: int, op: str, operand: int = 0) -> None:
        uop = self._stamp(UopKind.ATOMIC, (), self._int_dest(), atomic_op=op)
        uop.pc = self._next_pc()
        uop.addr = addr
        uop.operand = operand
        self.buffer.append(uop)
        self.await_uop = uop


#: A kernel body: a coroutine taking the builder.
KernelFn = Callable[[KernelBuilder], Iterator]


class ThreadProgram:
    """Adapts a kernel coroutine to the pipeline's source interface.

    With ``record=True`` the program keeps a *resume log*: one entry
    per coroutine resumption (``None`` for a plain ``next``, the sent
    integer for an ``AWAIT`` reply).  Python generators cannot be
    pickled, so checkpointing (:mod:`repro.sim.checkpoint`) drops the
    generator on serialization and, on restore, re-creates a fresh one
    from the application spec and replays the log into it — the
    coroutine is deterministic given its resume sequence, so the
    replayed frame lands in the exact suspended state.
    """

    _NOTHING = object()

    #: Overridden by the superblock-compiled subclass
    #: (:class:`repro.apps.compile.CompiledProgram`); the core samples
    #: it once per thread context to pick its fetch path.
    compiled = False

    def __init__(
        self,
        kernel: KernelFn,
        builder: KernelBuilder,
        wheel: Any = None,
        record: bool = False,
    ) -> None:
        self.k = builder
        self._gen = kernel(builder)
        self._send_value = self._NOTHING
        self._waiting = False
        self._sleeping = False
        self._done = False
        self._wheel = wheel
        self._log: Optional[List[Optional[int]]] = [] if record else None
        #: Wake hook (activity contract): set by the machine to the
        #: host core's ``wake()`` so sleep-backoff expiry re-enables
        #: fetch without the core polling ``peek_available``.
        self.on_wake: Optional[Callable[[], None]] = None

    @property
    def done(self) -> bool:
        return self._done and not self.k.buffer

    # -- source interface ------------------------------------------------
    def peek_available(self) -> bool:
        if self.k.buffer:
            return True
        if self._waiting or self._sleeping or self._done:
            return False
        self._advance()
        return bool(self.k.buffer)

    def next_uop(self) -> Optional[Uop]:
        if not self.k.buffer and not (self._waiting or self._sleeping or self._done):
            self._advance()
        if self.k.buffer:
            return self.k.buffer.pop(0)
        return None

    def push_back(self, uop: Uop) -> None:
        self.k.buffer.insert(0, uop)

    # Protocol-thread hooks (never invoked for app threads).
    def next_ctx_available(self, ctx: object) -> bool:  # pragma: no cover
        raise RuntimeError("application threads have no handler contexts")

    def handler_committed(self, ctx: object) -> None:  # pragma: no cover
        raise RuntimeError("application threads have no handler contexts")

    # -- coroutine driving -------------------------------------------------
    def _advance(self) -> None:
        while not self.k.buffer and not self._done and not self._waiting \
                and not self._sleeping:
            try:
                if self._send_value is not self._NOTHING:
                    value, self._send_value = self._send_value, self._NOTHING
                    if self._log is not None:
                        self._log.append(value)
                    item = self._gen.send(value)
                else:
                    if self._log is not None:
                        self._log.append(None)
                    item = next(self._gen)
            except StopIteration:
                self._done = True
                return
            if item is AWAIT:
                uop = self.k.await_uop
                self.k.await_uop = None
                uop.on_value = self._on_value
                self._waiting = True
            elif isinstance(item, tuple) and item and item[0] == "sleep":
                self._sleeping = True
                if self._wheel is not None:
                    self._wheel.schedule(max(1, item[1]), self._wake)
                else:
                    self._sleeping = False

    def _wake(self) -> None:
        self._sleeping = False
        if self.on_wake is not None:
            self.on_wake()

    # -- checkpointing -----------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_gen"] = None  # generators cannot pickle; see graft_from
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def graft_from(self, fresh: "ThreadProgram") -> None:
        """Rebuild this (restored) program's coroutine from ``fresh``.

        ``fresh`` is a newly built program for the same thread of the
        same application spec.  Its virgin generator is replayed
        through this program's resume log, then grafted in along with
        its builder (the generator frame closes over the fresh builder,
        so the two must stay paired); the builder's mutable fields are
        overwritten with the restored values so emission resumes where
        the snapshot left off.
        """
        if self._log is None:
            raise ValueError(
                "cannot restore a ThreadProgram that was not recording "
                "(build sources with record=True)"
            )
        gen = fresh._gen
        for entry in self._log:
            try:
                if entry is None:
                    next(gen)
                else:
                    gen.send(entry)
            except StopIteration:
                break  # the final logged resumption finished the kernel
        old_k = self.k
        fresh_k = fresh.k
        fresh_k.thread = old_k.thread
        fresh_k.pc = old_k.pc
        fresh_k.buffer = old_k.buffer
        fresh_k._int_rot = old_k._int_rot
        fresh_k._fp_rot = old_k._fp_rot
        fresh_k.await_uop = old_k.await_uop
        self.k = fresh_k
        self._gen = gen

    def _on_value(self, value: int) -> None:
        self._waiting = False
        self._send_value = value
        if self.on_wake is not None:
            self.on_wake()
