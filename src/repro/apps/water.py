"""Water: n-body molecular dynamics, O(n²/2) interactions (SPLASH-2
Water-Nsquared structure, scaled).

Molecule records are block-distributed.  Each time step runs the
intra-molecule phase (local, FP-heavy), the inter-molecule force phase
— every thread computes the pair interactions for its molecules
against all higher-numbered molecules, reading remote molecule data
and accumulating into private partial forces — and a locked
force-update phase where partial forces are added into the shared
per-molecule records under per-molecule locks.  Water is the paper's
most compute-intensive application: tiny miss rates, lowest protocol
occupancy, and poorly-trained protocol branch prediction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List

from repro.apps.base import AppContext
from repro.apps.program import KernelBuilder, ThreadProgram

if TYPE_CHECKING:
    from repro.core.machine import Machine
from repro.apps.runtime import SpinLock

WORD = 8
MOL_WORDS = 16  # positions, velocities, forces (3 atoms' worth, scaled)


def make_sources(machine: Machine, molecules: int = 24,
                 steps: int = 2) -> List[List[ThreadProgram]]:
    ctx = AppContext(machine)
    mmap = ctx.block_map(molecules)
    mol_base: List[int] = []
    locks: List[SpinLock] = []
    for m in range(molecules):
        owner = mmap.owner_of(m)
        mol_base.append(
            ctx.space.alloc(ctx.node_of(owner), MOL_WORDS * WORD)
        )
        locks.append(SpinLock(ctx.space, ctx.node_of(owner)))

    def my_molecules(g: int) -> range:
        return mmap.range_of(g)

    def intra(k: KernelBuilder, m: int) -> None:
        """Local bonded-force computation for one molecule."""
        pos = [k.load(mol_base[m] + i * WORD, fp=True) for i in range(3)]
        acc = pos[0]
        for _ in range(8):
            acc = k.falu(acc, pos[1])
            pos[1] = k.falu(pos[1], pos[2])
        k.store(mol_base[m] + 3 * WORD, acc)

    def pair(k: KernelBuilder, mi: int, mj: int) -> None:
        """One i-j interaction: remote reads of j, private accumulate."""
        xi = k.load(mol_base[mi] + 0, fp=True)
        xj = k.load(mol_base[mj] + 0, fp=True)
        yj = k.load(mol_base[mj] + WORD, fp=True)
        d = k.falu(xi, xj)
        e = k.falu(d, yj)
        for _ in range(11):
            d = k.falu(d, e)
            e = k.falu(e, d)
        # Private partial force accumulators stay in registers/stack.

    def force_update(k: KernelBuilder, g: int, m: int) -> Iterator:
        yield from locks[m].acquire(k)
        f = k.load(mol_base[m] + 4 * WORD, fp=True)
        f = k.falu(f, f)
        k.store(mol_base[m] + 4 * WORD, f)
        locks[m].release(k)
        yield

    def body(k: KernelBuilder, g: int) -> Iterator:
        yield from ctx.barrier.wait(k, g)
        for _ in range(steps):
            # Intra-molecule (local compute).
            for m in my_molecules(g):
                intra(k, m)
                yield
            yield from ctx.barrier.wait(k, g)
            # Inter-molecule: i against all j > i (half the matrix).
            for mi in my_molecules(g):
                top = k.here()
                others = list(range(mi + 1, molecules))
                for n, mj in enumerate(others):
                    k.set_pc(top)
                    pair(k, mi, mj)
                    k.branch(n + 1 < len(others), top)
                    if n % 4 == 3:
                        yield
                yield
            yield from ctx.barrier.wait(k, g)
            # Locked accumulation: all own molecules (local locks) plus
            # a few remote ones this thread's pairs touched.
            mine = my_molecules(g)
            for mj in range(molecules):
                if mj not in mine and (mj + g) % 8 == 0:
                    yield from force_update(k, g, mj)
            for m in mine:
                yield from force_update(k, g, m)
            yield from ctx.barrier.wait(k, g)
        yield from ctx.barrier.wait(k, g)

    return ctx.build_sources(body)
