"""LU: blocked dense LU factorization (SPLASH-2 structure, scaled).

The n×n matrix is split into B×B blocks assigned round-robin
("owner computes"); each block is homed at its owner's node.  Step k
factors the diagonal block, updates the perimeter row/column blocks
(which read the remote diagonal block), then updates the trailing
interior blocks (each reading two remote perimeter blocks) — with a
tree barrier after each sub-phase, exactly the SPLASH-2 schedule.
LU is one of the paper's two compute-intensive applications.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Tuple

from repro.apps.base import AppContext
from repro.apps.program import KernelBuilder, ThreadProgram

if TYPE_CHECKING:
    from repro.core.machine import Machine

WORD = 8


def make_sources(machine: Machine, n: int = 64, block: int = 8) -> List[List[ThreadProgram]]:
    if n % block:
        raise ValueError(f"n {n} not divisible by block {block}")
    nb = n // block
    block_bytes = block * block * WORD
    ctx = AppContext(machine)

    owner: List[List[int]] = [
        [(i + j * nb) % ctx.n_threads for j in range(nb)] for i in range(nb)
    ]
    base: List[List[int]] = [
        [
            ctx.space.alloc(ctx.node_of(owner[i][j]), block_bytes)
            for j in range(nb)
        ]
        for i in range(nb)
    ]

    def elem(i: int, j: int, r: int, c: int) -> int:
        return base[i][j] + (r * block + c) * WORD

    def factor_diag(k: KernelBuilder, i: int) -> Iterator:
        """In-place factorization of the diagonal block (B³/3 work)."""
        for r in range(block):
            top = k.here()
            acc = k.load(elem(i, i, r, r), fp=True)
            for c in range(r + 1, block):
                k.set_pc(top)
                a = k.load(elem(i, i, r, c), fp=True)
                acc = k.falu(a, acc)
                k.store(elem(i, i, r, c), acc)
                k.branch(c + 1 < block, top)
            d = k.fdiv(acc)
            k.store(elem(i, i, r, r), d)
            yield

    def update_block(k: KernelBuilder, bi: int, bj: int,
                     src1: Tuple[int, int],
                     src2: Tuple[int, int]) -> Iterator:
        """dst -= src1 * src2 (B³ multiply-accumulate, blocked rows)."""
        s1i, s1j = src1
        s2i, s2j = src2
        for r in range(block):
            top = k.here()
            for c in range(0, block, 2):
                k.set_pc(top)
                a = k.load(elem(s1i, s1j, r, c), fp=True)
                b = k.load(elem(s2i, s2j, c % block, r), fp=True)
                d = k.load(elem(bi, bj, r, c), fp=True)
                d = k.falu(k.falu(a, b), d)
                k.store(elem(bi, bj, r, c), d)
                k.branch(c + 2 < block, top)
                yield

    def body(k: KernelBuilder, g: int) -> Iterator:
        yield from ctx.barrier.wait(k, g)
        for kk in range(nb):
            if owner[kk][kk] == g:
                yield from factor_diag(k, kk)
            yield from ctx.barrier.wait(k, g)
            # Perimeter: column blocks (i,kk) and row blocks (kk,j).
            for i in range(kk + 1, nb):
                if owner[i][kk] == g:
                    yield from update_block(k, i, kk, (kk, kk), (i, kk))
                if owner[kk][i] == g:
                    yield from update_block(k, kk, i, (kk, kk), (kk, i))
            yield from ctx.barrier.wait(k, g)
            # Interior: (i,j) -= (i,kk) * (kk,j).
            for i in range(kk + 1, nb):
                for j in range(kk + 1, nb):
                    if owner[i][j] == g:
                        yield from update_block(k, i, j, (i, kk), (kk, j))
            yield from ctx.barrier.wait(k, g)

    return ctx.build_sources(body)
