"""Ocean: red-black Gauss-Seidel grid relaxation with a global error
lock (SPLASH-2 structure, scaled).

The G×G grid is partitioned into row strips, one per thread, homed at
the owner's node.  Each iteration sweeps the red then the black
points; a point reads its four neighbours (boundary rows come from
neighbouring threads — the classic nearest-neighbour communication),
and after each sweep every thread updates the global error word under
the test–lock–test–set lock the paper's §3 optimization describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

from repro.apps.base import AppContext
from repro.apps.program import KernelBuilder, ThreadProgram

if TYPE_CHECKING:
    from repro.core.machine import Machine
from repro.apps.runtime import AWAIT, SpinLock

WORD = 8


def make_sources(machine: Machine, grid: int = 34,
                 iters: int = 3) -> List[List[ThreadProgram]]:
    ctx = AppContext(machine)
    inner = grid - 2
    rmap = ctx.block_map(inner)  # interior rows 1..inner map to index-1
    row_bytes = grid * WORD
    bases: List[int] = [
        ctx.space.alloc(ctx.node_of(g), (rmap.count_of(g) + 2) * row_bytes)
        for g in range(ctx.n_threads)
    ]

    # Pure in (row, col) for fixed bases/rmap; memoized because the
    # sweep kernels revisit every grid point each iteration.
    _addr_memo: Dict[Tuple[int, int], int] = {}

    def addr(row: int, col: int) -> int:
        a = _addr_memo.get((row, col))
        if a is not None:
            return a
        if row == 0:
            owner, local = 0, 0
        elif row > inner:
            owner = rmap.owner_of(inner - 1)
            local = rmap.count_of(owner) + 1
        else:
            owner = rmap.owner_of(row - 1)
            local = rmap.local_index(row - 1) + 1
        a = bases[owner] + local * row_bytes + col * WORD
        _addr_memo[(row, col)] = a
        return a

    error_lock = SpinLock(ctx.space, node=0)
    error_word = ctx.space.alloc(0, 128)

    def sweep(k: KernelBuilder, g: int, color: int) -> Iterator:
        for r0 in rmap.range_of(g):
            row = r0 + 1
            top = k.here()
            start = 1 + ((row + color) % 2)
            for col in range(start, grid - 1, 2):
                k.set_pc(top)
                n = k.load(addr(row - 1, col), fp=True)
                s = k.load(addr(row + 1, col), fp=True)
                w = k.load(addr(row, col - 1), fp=True)
                e = k.load(addr(row, col + 1), fp=True)
                c = k.load(addr(row, col), fp=True)
                v = k.falu(k.falu(n, s), k.falu(w, e))
                v = k.falu(v, c)
                k.store(addr(row, col), v)
                k.branch(col + 2 < grid - 1, top)
                yield

    def update_error(k: KernelBuilder, g: int) -> Iterator:
        yield from error_lock.acquire(k)
        k.spin_load(error_word)
        err = yield AWAIT
        k.store(error_word, value=err + 1)
        error_lock.release(k)
        yield

    def body(k: KernelBuilder, g: int) -> Iterator:
        yield from ctx.barrier.wait(k, g)
        for _ in range(iters):
            for color in (0, 1):
                yield from sweep(k, g, color)
                yield from ctx.barrier.wait(k, g)
            yield from update_error(k, g)
            yield from ctx.barrier.wait(k, g)

    return ctx.build_sources(body)
