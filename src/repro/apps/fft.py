"""FFT: radix-√n six-step 1-D FFT (SPLASH-2 structure, scaled).

The √n × √n matrix of complex points is partitioned into contiguous
row blocks, one per thread, homed at the owner's node (the paper's
page placement).  Execution alternates row FFT phases (local,
FP-heavy) with blocked all-to-all transposes (every thread reads a
block column from every other thread's rows — the communication
pattern FFT is famous for), with tree barriers in between.  Transposes
use prefetching and tiling like the tuned SPLASH-2 code.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator, List

from repro.apps.base import AppContext
from repro.apps.program import KernelBuilder, ThreadProgram

if TYPE_CHECKING:
    from repro.core.machine import Machine

POINT_BYTES = 16  # complex double


def make_sources(machine: Machine, points: int = 4096,
                 block: int = 8) -> List[List[ThreadProgram]]:
    """Build FFT thread programs.  ``points`` must be a square of a
    power of two; the matrix is √points × √points."""
    side = int(math.isqrt(points))
    if side * side != points:
        raise ValueError(f"points must be a perfect square: {points}")
    ctx = AppContext(machine)
    rows = ctx.block_map(side)
    block = max(1, min(block, side // ctx.n_threads or 1))
    row_bytes = side * POINT_BYTES
    # Two matrices (source/destination of each transpose), row-block
    # distributed: thread g's rows live at its node.
    mats: List[List[int]] = []
    for _ in range(2):
        bases = [
            ctx.space.alloc(
                ctx.node_of(g), max(128, rows.count_of(g) * row_bytes)
            )
            for g in range(ctx.n_threads)
        ]
        mats.append(bases)

    def row_addr(mat: int, row: int, col: int) -> int:
        owner = rows.owner_of(row)
        return (
            mats[mat][owner]
            + rows.local_index(row) * row_bytes
            + col * POINT_BYTES
        )

    log_side = side.bit_length() - 1

    def fft_rows(k: KernelBuilder, g: int, mat: int) -> Iterator:
        """1-D FFTs over the thread's own rows: butterfly passes."""
        for row in rows.range_of(g):
            for col in range(0, side, 4):
                top = k.here()
                re = k.load(row_addr(mat, row, col), fp=True)
                im = k.load(row_addr(mat, row, col) + 8, fp=True)
                # ~5 log2(side) flops per point, batched 4 points/iter.
                for _ in range(log_side):
                    re = k.falu(re, im)
                    im = k.falu(im, re)
                k.store(row_addr(mat, row, col), re)
                k.store(row_addr(mat, row, col) + 8, im)
                k.branch(col + 4 < side, top)
                yield

    def transpose(k: KernelBuilder, g: int, src: int, dst: int) -> Iterator:
        """Blocked transpose: read a block column from every peer."""
        my_rows = ctx.split(side, g)
        for peer in range(ctx.n_threads):
            # Stagger peers so all-to-all traffic spreads out.
            p = (g + peer) % ctx.n_threads
            step = min(4, block)
            for brow in range(my_rows.start, my_rows.stop, block):
                rmax = min(block, my_rows.stop - brow)
                for bcol in rows.range_of(p)[::block]:
                    cmax = min(block, side - bcol)
                    # Prefetch the remote source block's rows.
                    for r in range(cmax):
                        k.prefetch(row_addr(src, bcol + r, brow))
                    for r in range(cmax):
                        for c in range(0, rmax, step):
                            a = k.load(row_addr(src, bcol + r, brow + c), fp=True)
                            k.store(row_addr(dst, brow + c, bcol + r), a)
                    yield

    def body(k: KernelBuilder, g: int) -> Iterator:
        yield from ctx.barrier.wait(k, g)
        yield from fft_rows(k, g, 0)
        yield from ctx.barrier.wait(k, g)
        yield from transpose(k, g, 0, 1)
        yield from ctx.barrier.wait(k, g)
        yield from fft_rows(k, g, 1)
        yield from ctx.barrier.wait(k, g)
        yield from transpose(k, g, 1, 0)
        yield from ctx.barrier.wait(k, g)
        yield from fft_rows(k, g, 0)
        yield from ctx.barrier.wait(k, g)

    return ctx.build_sources(body)
