"""FFTW: 3-D FFT with per-dimension passes (scaled from 8192×16×16).

The nx×ny×nz complex grid is distributed by x-planes across threads.
The z and y passes are node-local (unit/short stride); the x pass
requires data from every other thread, performed as a blocked
transpose exactly like the tuned FFTW kernel the paper uses.  FFTW's
codelets are register-hungry — the inner loops here carry long
dependence chains over many live values and extra integer address
arithmetic, which is what makes FFTW the paper's integer-register
bottleneck (§2.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List

from repro.apps.base import AppContext
from repro.apps.program import KernelBuilder, ThreadProgram

if TYPE_CHECKING:
    from repro.core.machine import Machine

POINT_BYTES = 16


def make_sources(machine: Machine, nx: int = 16, ny: int = 8,
                 nz: int = 8, block: int = 8) -> List[List[ThreadProgram]]:
    ctx = AppContext(machine)
    planes = ctx.block_map(nx)
    plane_points = ny * nz
    plane_bytes = plane_points * POINT_BYTES
    bases: List[int] = [
        ctx.space.alloc(
            ctx.node_of(g), max(128, planes.count_of(g) * plane_bytes)
        )
        for g in range(ctx.n_threads)
    ]

    def addr(x: int, yz: int) -> int:
        owner = planes.owner_of(x)
        return (
            bases[owner] + planes.local_index(x) * plane_bytes + yz * POINT_BYTES
        )

    def codelet(k: KernelBuilder, addrs: List[int]) -> None:
        """A radix-|addrs| butterfly: loads, a deep FP chain with many
        live values, integer address arithmetic, stores."""
        regs = []
        base = k.alu()  # address base computation
        for a in addrs:
            k.alu(base)  # index arithmetic per point (int pressure)
            regs.append(k.load(a, fp=True))
            regs.append(k.load(a + 8, fp=True))
        # Cross-combine while keeping every value live.
        for i in range(len(regs)):
            regs[i] = k.falu(regs[i], regs[(i + 1) % len(regs)])
        for i, a in enumerate(addrs):
            k.store(a, regs[2 * i])
            k.store(a + 8, regs[2 * i + 1])

    def local_pass(k: KernelBuilder, g: int, stride: int, count: int) -> Iterator:
        """FFT along z (stride 1) or y (stride nz) within own planes."""
        for x in planes.range_of(g):
            for p in range(plane_points // count):
                base_idx = (p // stride) * count * stride + (p % stride)
                top = k.here()
                for grp in range(0, count, 4):
                    k.set_pc(top)
                    pts = [
                        addr(x, base_idx + (grp + j) * stride)
                        for j in range(min(4, count - grp))
                    ]
                    codelet(k, pts)
                    k.branch(grp + 4 < count, top)
                    yield

    def x_pass(k: KernelBuilder, g: int) -> Iterator:
        """FFT along x: gather a pencil of points from all planes."""
        bl = min(block, max(1, plane_points // ctx.n_threads))
        for yz in ctx.split(plane_points, g)[::bl]:
            for x0 in range(0, nx, min(4, nx)):
                pts = [addr(x0 + j, yz) for j in range(min(4, nx - x0))]
                for a in pts:
                    k.prefetch(a)
                codelet(k, pts)
                yield

    def body(k: KernelBuilder, g: int) -> Iterator:
        yield from ctx.barrier.wait(k, g)
        yield from local_pass(k, g, 1, nz)  # z dimension
        yield from ctx.barrier.wait(k, g)
        yield from local_pass(k, g, nz, ny)  # y dimension
        yield from ctx.barrier.wait(k, g)
        yield from x_pass(k, g)  # x dimension (all-to-all)
        yield from ctx.barrier.wait(k, g)

    return ctx.build_sources(body)
