"""Synthetic micro-kernels for tests and examples.

Small, targeted traffic patterns with fully-predictable behaviour:

* ``stream``   — sequential read/modify/write over a private array,
* ``pingpong`` — two threads alternately write one shared line
  (migratory sharing: upgrade + intervention traffic),
* ``sharing``  — one writer, many readers per round (invalidations),
* ``lockstep`` — barrier-only (synchronization traffic in isolation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List

from repro.apps.base import AppContext
from repro.apps.program import KernelBuilder, ThreadProgram

if TYPE_CHECKING:
    from repro.core.machine import Machine
from repro.apps.runtime import AWAIT, SpinLock, spin_until

WORD = 8


def stream(machine: Machine, words: int = 512, rounds: int = 1) -> List[List[ThreadProgram]]:
    ctx = AppContext(machine)
    bases = [
        ctx.space.alloc(ctx.node_of(g), words * WORD) for g in range(ctx.n_threads)
    ]

    def body(k: KernelBuilder, g: int) -> Iterator:
        for _ in range(rounds):
            top = k.here()
            for i in range(words):
                k.set_pc(top)
                a = k.load(bases[g] + i * WORD)
                b = k.alu(a)
                k.store(bases[g] + i * WORD, b)
                k.branch(i + 1 < words, top)
                if i % 16 == 15:
                    yield
            yield
        yield from ctx.barrier.wait(k, g)

    return ctx.build_sources(body)


def pingpong(machine: Machine, rounds: int = 20) -> List[List[ThreadProgram]]:
    """Threads 0 and 1 alternately increment one shared word."""
    ctx = AppContext(machine)
    if ctx.n_threads < 2:
        raise ValueError("pingpong needs at least two threads")
    word = ctx.space.alloc(0, 128)

    def body(k: KernelBuilder, g: int) -> Iterator:
        if g > 1:
            yield from ctx.barrier.wait(k, g)
            return
        for r in range(rounds):
            turn = 2 * r + g
            yield from spin_until(k, word, lambda v, t=turn: v >= t)
            k.store(word, value=turn + 1)
            yield
        yield from ctx.barrier.wait(k, g)

    return ctx.build_sources(body)


def sharing(machine: Machine, rounds: int = 10,
            reader_words: int = 16) -> List[List[ThreadProgram]]:
    """Thread 0 writes a block each round; all others read it."""
    ctx = AppContext(machine)
    block = ctx.space.alloc(0, reader_words * WORD)
    flag = ctx.space.alloc(0, 128)

    def body(k: KernelBuilder, g: int) -> Iterator:
        for r in range(1, rounds + 1):
            if g == 0:
                for i in range(reader_words):
                    k.store(block + i * WORD, value=r)
                yield
                k.store(flag, value=r)
                yield
            else:
                yield from spin_until(k, flag, lambda v, rr=r: v >= rr)
                acc = k.alu()
                for i in range(reader_words):
                    a = k.load(block + i * WORD)
                    acc = k.alu(a, acc)
                yield
            yield from ctx.barrier.wait(k, g)

    return ctx.build_sources(body)


def lockstep(machine: Machine, rounds: int = 10) -> List[List[ThreadProgram]]:
    ctx = AppContext(machine)

    def body(k: KernelBuilder, g: int) -> Iterator:
        for _ in range(rounds):
            k.alu()
            yield
            yield from ctx.barrier.wait(k, g)

    return ctx.build_sources(body)


def contended_lock(machine: Machine, increments: int = 5) -> List[List[ThreadProgram]]:
    """Every thread increments a shared counter under one lock."""
    ctx = AppContext(machine)
    lock = SpinLock(ctx.space, node=0)
    counter = ctx.space.alloc(0, 128)

    def body(k: KernelBuilder, g: int) -> Iterator:
        for _ in range(increments):
            yield from lock.acquire(k)
            k.spin_load(counter)
            v = yield AWAIT
            k.store(counter, value=v + 1)
            lock.release(k)
            yield
        yield from ctx.barrier.wait(k, g)

    return ctx.build_sources(body)
