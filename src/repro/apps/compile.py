"""Superblock compilation of application thread programs.

The protocol tier was compiled first (:mod:`repro.protocol.compile`);
with idle cycles skipped and handlers threaded, profile weight moved to
the application tier: every app µop is still *interpreted* twice — once
by :class:`~repro.apps.program.ThreadProgram` (list-head ``pop(0)`` /
``insert(0)`` buffering, per-emission template-dict probes) and once by
the pipeline's per-µop fetch dispatch (a ``can_push`` + ``next_uop`` +
branch-kind test round trip per instruction).  This module compiles the
program side; :mod:`repro.pipeline.core` holds the matching fused
fetch/issue fast path.

A :class:`CompiledProgram` keeps the kernel coroutine (the trace is
data-dependent — addresses, branch outcomes and store values come from
running it) but compiles everything around it:

* **Decoded-µop caches keyed per (kernel, placement).**  Every µop a
  kernel emits is stamped from a per-shape template
  (:meth:`KernelBuilder._stamp`); compiled builders resolve their
  template store through :func:`shared_templates`, keyed by
  ``(kernel, thread, pc_base)``, so the decode work survives program
  rebuilds — repeated cells in one process, and the throwaway
  reconstruction :mod:`repro.sim.checkpoint` performs on restore, stamp
  from already-populated caches.

* **Memoized branch/flush-point boundaries.**  Each coroutine
  resumption emits one *superblock*: a straight-line run of µops ending
  at a flush point, with its internal branches at known offsets.  The
  boundary positions are scanned once per refill (`breaks`) instead of
  the pipeline re-testing ``is_branch`` per µop per fetch attempt; the
  core's fast fetch consumes whole straight-line slices between
  boundaries.

* **Regraftable generator state.**  Buffering is an indexed cursor
  (``pos``) over the builder's buffer — no list-head churn — and the
  cursor, boundary list and resume log all pickle, so
  ``Machine.snapshot()/restore()`` keeps working: restore replays the
  resume log into a freshly built generator exactly as for the
  interpreted program (:meth:`ThreadProgram.graft_from`).

**Bit-identity contract.**  The interpreted classes stay in-tree as the
executable specification; ``REPRO_APP_INTERP=1`` routes source
construction back to :class:`ThreadProgram` *and* disables the core's
fused fast path, and the differential tests in
``tests/test_differential.py`` (plus the µop-stream round-trip property
in ``tests/test_app_compile.py``) hold the two modes to identical
:class:`MachineStats` and protocol traces across every machine model
and workload.

Bump :data:`APP_COMPILER_VERSION` whenever compiled-mode semantics
change: it is folded into the sweep result-cache key (and into
checkpoint payloads) so stale rows can never be served across compiler
revisions.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apps.program import KernelBuilder, KernelFn, ThreadProgram
from repro.isa.uop import Uop

#: Folded into the sweep cache key and checkpoint payloads; bump on any
#: semantic change to compiled-mode emission or the core fast path.
APP_COMPILER_VERSION = 1

#: Version of the fused *multi-threaded* core step (``SMTCore._step_nt``
#: and its satellite stage bodies in :mod:`repro.pipeline.core`).  Also
#: folded into the sweep cache key and checkpoint payloads; bump on any
#: semantic change to the fused SMT path.
SMT_COMPILER_VERSION = 1


def app_interp_forced() -> bool:
    """True when ``REPRO_APP_INTERP=1`` forces the reference
    interpreter: :class:`ThreadProgram` sources and the per-µop
    fetch/issue dispatch in :mod:`repro.pipeline.core`."""
    return os.environ.get("REPRO_APP_INTERP", "") == "1"


def smt_interp_forced() -> bool:
    """True when ``REPRO_SMT_INTERP=1`` forces multi-threaded cores
    (SMTp app+protocol contexts and ways>=2 cells) back onto the
    generic :meth:`SMTCore.step` reference instead of the fused
    ``_step_nt`` path.  Single-thread cores are unaffected (they have
    their own ``REPRO_APP_INTERP`` hatch)."""
    return os.environ.get("REPRO_SMT_INTERP", "") == "1"


# ----------------------------------------------------------------------
# Decoded-µop template store, keyed per (kernel, placement)
# ----------------------------------------------------------------------

#: One template µop per (kind, srcs, dest, atomic_op) shape — the same
#: key :meth:`KernelBuilder._stamp` uses.
TemplateStore = Dict[Tuple[object, ...], Uop]

#: (kernel key, hardware thread, pc base): one placement of one kernel.
PlacementKey = Tuple[str, int, int]

_TEMPLATES: Dict[PlacementKey, TemplateStore] = {}


def kernel_key(body: Callable[..., object]) -> str:
    """Stable identity of a kernel body within one process.

    Module-qualified name rather than object identity: the lambdas
    :meth:`AppContext.build_sources` wraps around a body are recreated
    per build, but the body function itself is stable, so rebuilt
    programs (repeat cells, checkpoint restore) hit the same store.
    """
    mod = getattr(body, "__module__", "?")
    qual = getattr(body, "__qualname__", getattr(body, "__name__", "?"))
    return f"{mod}:{qual}"


def shared_templates(key: PlacementKey) -> TemplateStore:
    """The decoded-µop cache for one (kernel, placement)."""
    store = _TEMPLATES.get(key)
    if store is None:
        store = _TEMPLATES[key] = {}
    return store


def template_cache_stats() -> Tuple[int, int]:
    """(placements, templates) currently cached — test/debug aid."""
    return len(_TEMPLATES), sum(len(s) for s in _TEMPLATES.values())


class CompiledKernelBuilder(KernelBuilder):
    """A :class:`KernelBuilder` stamping from a shared template store.

    Emission semantics are identical — same µop fields, same window
    rotation, same PCs — only the `_tmpl` dict is resolved through the
    per-(kernel, placement) store instead of being private to one
    builder instance.
    """

    def __init__(self, thread: int, pc_base: int, templates: TemplateStore) -> None:
        super().__init__(thread, pc_base)
        self._tmpl = templates


# ----------------------------------------------------------------------
# Compiled program source
# ----------------------------------------------------------------------


class CompiledProgram(ThreadProgram):
    """Superblock-compiled source: indexed buffering + boundary memo.

    Drop-in for :class:`ThreadProgram` (same pipeline source interface,
    same resume-log checkpointing), plus the compiled-state the core's
    fast fetch consumes directly:

    * ``k.buffer`` / ``pos`` — the decoded stream and the fetch cursor
      (``next_uop`` is ``buffer[pos]; pos += 1``; ``push_back`` is
      ``pos -= 1``; refills compact the consumed prefix first),
    * ``breaks`` — ascending buffer positions of fetch-run boundaries
      (branch µops), scanned once per refill.
    """

    #: Class marker the core checks once per thread context.
    compiled = True

    def __init__(
        self,
        kernel: KernelFn,
        builder: KernelBuilder,
        wheel: Any = None,
        record: bool = False,
    ) -> None:
        super().__init__(kernel, builder, wheel=wheel, record=record)
        self.pos = 0
        self.breaks: List[int] = []
        self._bscan = 0

    @property
    def done(self) -> bool:
        return self._done and self.pos >= len(self.k.buffer)

    # -- source interface ------------------------------------------------
    def peek_available(self) -> bool:
        if self.pos < len(self.k.buffer):
            return True
        if self._waiting or self._sleeping or self._done:
            return False
        self.refill()
        return self.pos < len(self.k.buffer)

    def next_uop(self) -> Optional[Uop]:
        buf = self.k.buffer
        if self.pos >= len(buf):
            if self._waiting or self._sleeping or self._done:
                return None
            self.refill()
            buf = self.k.buffer
            if self.pos >= len(buf):
                return None
        uop = buf[self.pos]
        self.pos += 1
        return uop

    def push_back(self, uop: Uop) -> None:
        # Only ever called with the µop just consumed (I-cache miss
        # re-buffering), so un-consuming is a cursor step.
        self.pos -= 1

    # -- refill ------------------------------------------------------------
    def refill(self) -> None:
        """Compact the consumed prefix, run the coroutine until µops
        appear (or it parks), and memoize the new superblock's
        boundaries."""
        if self.pos:
            del self.k.buffer[: self.pos]
            self.pos = 0
            del self.breaks[:]
            self._bscan = 0
        self._advance()
        buf = self.k.buffer
        breaks = self.breaks
        for i in range(self._bscan, len(buf)):
            if buf[i].is_branch:
                breaks.append(i)
        self._bscan = len(buf)

    # -- checkpointing -----------------------------------------------------
    def graft_from(self, fresh: "ThreadProgram") -> None:
        # The restored cursor/boundary state (pickled fields of self)
        # already matches the restored buffer; only the coroutine and
        # its paired builder need rebuilding.
        super().graft_from(fresh)


def build_program(
    body: Callable[..., object],
    kernel: KernelFn,
    thread: int,
    pc_base: int,
    wheel: Any = None,
    record: bool = False,
) -> ThreadProgram:
    """Build one thread's source in the session's execution mode.

    Compiled by default; ``REPRO_APP_INTERP=1`` returns the reference
    :class:`ThreadProgram` over a private-template builder instead.
    """
    if app_interp_forced():
        return ThreadProgram(
            kernel, KernelBuilder(thread=thread, pc_base=pc_base),
            wheel=wheel, record=record,
        )
    store = shared_templates((kernel_key(body), thread, pc_base))
    builder = CompiledKernelBuilder(thread=thread, pc_base=pc_base,
                                    templates=store)
    return CompiledProgram(kernel, builder, wheel=wheel, record=record)
