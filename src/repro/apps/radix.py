"""Radix-Sort: parallel radix sort (SPLASH-2 structure, scaled).

Per digit pass: each thread histograms its local section of keys, a
global prefix combine produces bucket offsets (all-to-all histogram
reads), then every thread permutes its keys into the destination
array — scattered stores whose targets spread over *all* nodes, the
all-to-all write traffic that makes Radix-Sort the paper's most
directory-cache-sensitive workload.

Keys come from a fixed-seed PRNG so every machine model sorts the
identical sequence; the permutation each pass performs is the true
stable counting-sort order of those keys.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterator, List

from repro.apps.base import AppContext
from repro.apps.program import KernelBuilder, ThreadProgram

if TYPE_CHECKING:
    from repro.core.machine import Machine

WORD = 8


def make_sources(machine: Machine, keys: int = 4096, radix: int = 64,
                 passes: int = 2,
                 seed: int = 12345) -> List[List[ThreadProgram]]:
    ctx = AppContext(machine)
    positions = ctx.block_map(keys)
    rng = random.Random(seed)
    digit_bits = radix.bit_length() - 1
    key_values = [rng.randrange(radix ** passes) for _ in range(keys)]

    src_base = [
        ctx.space.alloc(ctx.node_of(g), max(128, positions.count_of(g) * WORD))
        for g in range(ctx.n_threads)
    ]
    dst_base = [
        ctx.space.alloc(ctx.node_of(g), max(128, positions.count_of(g) * WORD))
        for g in range(ctx.n_threads)
    ]
    hist_base = [
        ctx.space.alloc(ctx.node_of(g), radix * WORD)
        for g in range(ctx.n_threads)
    ]

    def key_addr(bases: List[int], position: int) -> int:
        owner = positions.owner_of(position)
        return bases[owner] + positions.local_index(position) * WORD

    def counting_order(perm: List[int], shift: int) -> List[int]:
        """dest[pos] for each position under stable counting sort."""
        buckets: List[List[int]] = [[] for _ in range(radix)]
        for pos, key_id in enumerate(perm):
            buckets[(key_values[key_id] >> shift) % radix].append(pos)
        dest = [0] * len(perm)
        out = 0
        for bucket in buckets:
            for pos in bucket:
                dest[pos] = out
                out += 1
        return dest

    def body(k: KernelBuilder, g: int) -> Iterator:
        yield from ctx.barrier.wait(k, g)
        perm = list(range(keys))  # perm[pos] = key id at that position
        for p in range(passes):
            shift = p * digit_bits
            srcs, dsts = (src_base, dst_base) if p % 2 == 0 else (dst_base, src_base)
            my_positions = positions.range_of(g)
            # Phase 1: local histogram over this thread's section.
            top = k.here()
            for i, pos in enumerate(my_positions):
                k.set_pc(top)
                digit = (key_values[perm[pos]] >> shift) % radix
                key = k.load(key_addr(srcs, pos))
                d = k.alu(key)  # digit extraction
                h = k.load(hist_base[g] + digit * WORD, d)
                k.store(hist_base[g] + digit * WORD, h)
                k.branch(i + 1 < len(my_positions), top)
                if i % 8 == 7:
                    yield
            yield
            yield from ctx.barrier.wait(k, g)
            # Phase 2: global prefix — every thread reads all peers'
            # histogram rows for its digit range.
            for digit in ctx.split(radix, g):
                acc = k.alu()
                for peer in range(ctx.n_threads):
                    h = k.load(hist_base[peer] + digit * WORD)
                    acc = k.alu(h, acc)
                k.store(hist_base[g] + digit * WORD, acc)
                yield
            yield from ctx.barrier.wait(k, g)
            # Phase 3: permutation — scattered remote stores.
            dest = counting_order(perm, shift)
            top = k.here()
            for i, pos in enumerate(my_positions):
                k.set_pc(top)
                key = k.load(key_addr(srcs, pos))
                d = k.alu(key)
                k.store(key_addr(dsts, dest[pos]), d)
                k.branch(i + 1 < len(my_positions), top)
                if i % 8 == 7:
                    yield
            yield
            yield from ctx.barrier.wait(k, g)
            new_perm = [0] * keys
            for pos, key_id in enumerate(perm):
                new_perm[dest[pos]] = key_id
            perm = new_perm

    return ctx.build_sources(body)
