"""Shared-memory application runtime: placement, barriers, locks.

Everything here is built from ordinary loads, stores, atomics and spin
loads flowing through the simulated coherence protocol — barriers and
locks generate real directory traffic, exactly the traffic the paper's
evaluation measures.

* :class:`AddressSpace` — bump allocator with explicit home-node
  placement (the paper's applications use careful page placement).
* :class:`TreeBarrier` — software combining-tree barrier with
  sense-free round counters; arrive flags live at the *parent's* node
  and release flags at the *child's* node so every spin is node-local.
* :class:`SpinLock` — test–lock–test–set acquire (the optimized Ocean
  pattern, §3) with exponential backoff.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from repro.apps.program import AWAIT, KernelBuilder
from repro.protocol.directory import DirectoryLayout


class AddressSpace:
    """Bump allocator over the machine's home-partitioned memory."""

    def __init__(self, layout: DirectoryLayout, n_nodes: int) -> None:
        self.layout = layout
        self.n_nodes = n_nodes
        base = 64 * 1024  # keep page zero free
        self._next = [
            node * layout.local_memory_bytes + base for node in range(n_nodes)
        ]

    def alloc(self, node: int, nbytes: int, align: int = 128) -> int:
        """Allocate ``nbytes`` homed at ``node``."""
        p = self._next[node]
        p = (p + align - 1) // align * align
        self._next[node] = p + nbytes
        limit = (node + 1) * self.layout.local_memory_bytes
        if self._next[node] > limit:
            raise MemoryError(
                f"node {node} local memory exhausted "
                f"({self._next[node] - node * self.layout.local_memory_bytes} bytes)"
            )
        return p

    def alloc_blocked(self, nbytes_per_node: int, align: int = 128) -> List[int]:
        """One equal-size block per node (owner-computes placement)."""
        return [self.alloc(n, nbytes_per_node, align) for n in range(self.n_nodes)]


def spin_until(
    k: KernelBuilder,
    addr: int,
    pred: Callable[[int], bool],
    backoff: int = 8,
    max_backoff: int = 128,
) -> Iterator:
    """Spin (with exponential backoff) until ``pred(word)`` holds.

    Emits the canonical load/branch spin loop at a stable PC so the
    branch predictor trains on it; returns the satisfying value.
    """
    pc = k.here()
    wait = backoff
    while True:
        k.set_pc(pc)
        k.spin_load(addr)
        k.mark_spin()
        value = yield AWAIT
        ok = pred(value)
        k.branch(not ok, pc)
        k.mark_spin()
        if ok:
            return value
        yield ("sleep", wait)
        wait = min(wait * 2, max_backoff)


class TreeBarrier:
    """Binary combining-tree barrier over all application threads.

    Thread ``g`` (global index) spins on its children's arrive words
    (placed at ``g``'s node) and on its own release word (also local);
    it writes its arrive word remotely to its parent's node.  Round
    counters replace sense reversal.
    """

    def __init__(
        self,
        space: AddressSpace,
        n_threads: int,
        node_of: Callable[[int], int],
    ) -> None:
        self.n_threads = n_threads
        self.node_of = node_of
        # arrive[g]: written by g, spun on by parent(g) -> home it at
        # the parent's node.  release[g]: written by parent, spun on by
        # g -> home it at g's node.
        self.arrive: List[int] = []
        self.release: List[int] = []
        for g in range(n_threads):
            parent = (g - 1) // 2 if g else 0
            self.arrive.append(space.alloc(node_of(parent), 128))
            self.release.append(space.alloc(node_of(g), 128))
        self.rounds: Dict[int, int] = {g: 0 for g in range(n_threads)}

    def _children(self, g: int) -> List[int]:
        return [c for c in (2 * g + 1, 2 * g + 2) if c < self.n_threads]

    def wait(self, k: KernelBuilder, g: int) -> Iterator:
        """Coroutine: block until all threads reach this barrier."""
        self.rounds[g] += 1
        rnd = self.rounds[g]
        for c in self._children(g):
            yield from spin_until(k, self.arrive[c], lambda v, r=rnd: v >= r)
        if g == 0:
            for c in self._children(g):
                k.store(self.release[c], value=rnd)
            yield
        else:
            k.store(self.arrive[g], value=rnd)
            yield
            yield from spin_until(k, self.release[g], lambda v, r=rnd: v >= r)
            for c in self._children(g):
                k.store(self.release[c], value=rnd)
            yield


class SpinLock:
    """Test–lock–test–set spin lock (the paper's optimized sequence)."""

    def __init__(self, space: AddressSpace, node: int) -> None:
        self.addr = space.alloc(node, 128)

    def acquire(self, k: KernelBuilder) -> Iterator:
        backoff = 8
        while True:
            # Test: spin on a cached copy until the lock looks free.
            yield from spin_until(k, self.addr, lambda v: v == 0)
            # Set: one atomic attempt; on failure, back off and retest.
            k.atomic(self.addr, "tas")
            k.mark_spin()
            got = yield AWAIT
            if got == 0:
                return
            yield ("sleep", backoff)
            backoff = min(backoff * 2, 256)

    def release(self, k: KernelBuilder) -> None:
        """Emit the releasing store (caller yields at its flush point)."""
        k.store(self.addr, value=0)
