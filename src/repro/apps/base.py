"""Common scaffolding for the six workloads.

Every application exposes ``make_sources(machine, **params)`` which
returns one list of :class:`ThreadProgram` per node.  This module
holds the shared skeleton: thread/node geometry, address-space and
barrier setup, and per-thread program construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, List

from repro.apps.compile import build_program
from repro.apps.program import KernelBuilder, ThreadProgram
from repro.apps.runtime import AddressSpace, TreeBarrier

if TYPE_CHECKING:
    from repro.core.machine import Machine

#: Each thread's code region (synthetic PCs).
PC_STRIDE = 1 << 20
PC_BASE = 1 << 30

BodyFn = Callable[[KernelBuilder, int], Iterator]


class AppContext:
    """Geometry + runtime shared by one application instance."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.n_nodes = machine.mp.n_nodes
        self.ways = machine.mp.proc.app_threads
        self.n_threads = self.n_nodes * self.ways
        self.space = AddressSpace(machine.layout, self.n_nodes)
        self.barrier = TreeBarrier(self.space, self.n_threads, self.node_of)

    def node_of(self, g: int) -> int:
        return g // self.ways

    def build_sources(self, body: BodyFn) -> List[List[ThreadProgram]]:
        """Instantiate ``body(k, g)`` for every global thread ``g``.

        Programs record their resume logs when the machine asks for
        checkpointable sources (``machine.record_programs``), which is
        what lets :mod:`repro.sim.checkpoint` rebuild the coroutines.

        This is the single chokepoint for source construction:
        :func:`repro.apps.compile.build_program` picks the superblock-
        compiled program classes, or the reference interpreter under
        ``REPRO_APP_INTERP=1``.
        """
        record = getattr(self.machine, "record_programs", False)
        sources: List[List[ThreadProgram]] = [[] for _ in range(self.n_nodes)]
        for g in range(self.n_threads):
            prog = build_program(
                body, lambda kk, gg=g: body(kk, gg),
                thread=g % self.ways, pc_base=PC_BASE + g * PC_STRIDE,
                wheel=self.machine.wheel, record=record,
            )
            sources[self.node_of(g)].append(prog)
        return sources

    # -- distribution helpers ------------------------------------------------
    def split(self, n_items: int, g: int) -> range:
        """Contiguous share of ``n_items`` for thread ``g``."""
        per = n_items // self.n_threads
        extra = n_items % self.n_threads
        start = g * per + min(g, extra)
        return range(start, start + per + (1 if g < extra else 0))

    def block_map(self, n_items: int) -> "BlockMap":
        return BlockMap(n_items, self.n_threads)


class BlockMap:
    """Contiguous block distribution with uneven remainders.

    Maps item index -> owning thread and local offset, so applications
    can place each thread's block at its home node without requiring
    item counts divisible by the thread count.
    """

    def __init__(self, n_items: int, n_threads: int) -> None:
        self.n_items = n_items
        self.n_threads = n_threads
        per = n_items // n_threads
        extra = n_items % n_threads
        self.starts: List[int] = []
        pos = 0
        for g in range(n_threads):
            self.starts.append(pos)
            pos += per + (1 if g < extra else 0)
        self.starts.append(pos)
        self._owner = [0] * n_items
        for g in range(n_threads):
            for i in range(self.starts[g], self.starts[g + 1]):
                self._owner[i] = g

    def owner_of(self, item: int) -> int:
        return self._owner[item]

    def local_index(self, item: int) -> int:
        return item - self.starts[self._owner[item]]

    def range_of(self, g: int) -> range:
        return range(self.starts[g], self.starts[g + 1])

    def count_of(self, g: int) -> int:
        return self.starts[g + 1] - self.starts[g]
