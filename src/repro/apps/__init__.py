"""The six workloads (Table 1) plus synthetic test kernels."""

from repro.apps import fft, fftw, lu, ocean, radix, synthetic, water
from repro.apps.base import AppContext
from repro.apps.program import AWAIT, KernelBuilder, ThreadProgram
from repro.apps.runtime import AddressSpace, SpinLock, TreeBarrier, spin_until

__all__ = [
    "AWAIT",
    "AddressSpace",
    "AppContext",
    "KernelBuilder",
    "SpinLock",
    "ThreadProgram",
    "TreeBarrier",
    "fft",
    "fftw",
    "lu",
    "ocean",
    "radix",
    "spin_until",
    "synthetic",
    "water",
]
