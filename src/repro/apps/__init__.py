"""The six workloads (Table 1) plus synthetic test kernels."""

from repro.apps import fft, fftw, lu, ocean, radix, synthetic, water
from repro.apps.base import AppContext
from repro.apps.compile import (
    APP_COMPILER_VERSION,
    CompiledKernelBuilder,
    CompiledProgram,
    app_interp_forced,
    build_program,
)
from repro.apps.program import AWAIT, KernelBuilder, ThreadProgram
from repro.apps.runtime import AddressSpace, SpinLock, TreeBarrier, spin_until

__all__ = [
    "APP_COMPILER_VERSION",
    "AWAIT",
    "AddressSpace",
    "AppContext",
    "CompiledKernelBuilder",
    "CompiledProgram",
    "KernelBuilder",
    "SpinLock",
    "ThreadProgram",
    "TreeBarrier",
    "app_interp_forced",
    "build_program",
    "fft",
    "fftw",
    "lu",
    "ocean",
    "radix",
    "spin_until",
    "synthetic",
    "water",
]
