"""2-way bristled hypercube topology with dimension-order routing.

Following the SGI Spider fabric the paper simulates: every router hosts
``bristle`` (=2) nodes, and routers form a binary hypercube.  Routing
is e-cube (lowest dimension first), so paths are deterministic and
deadlock-free within each virtual network.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import ConfigError


class BristledHypercube:
    def __init__(self, n_nodes: int, bristle: int = 2) -> None:
        if n_nodes < 1 or n_nodes & (n_nodes - 1):
            raise ConfigError(f"n_nodes must be a power of two: {n_nodes}")
        self.n_nodes = n_nodes
        self.bristle = min(bristle, n_nodes)
        self.n_routers = max(1, n_nodes // self.bristle)
        self.dim = (self.n_routers - 1).bit_length()

    def router_of(self, node: int) -> int:
        return node // self.bristle

    def nodes_of(self, router: int) -> List[int]:
        base = router * self.bristle
        return [base + i for i in range(self.bristle) if base + i < self.n_nodes]

    def router_path(self, src_router: int, dest_router: int) -> List[int]:
        """E-cube route: the sequence of routers visited (inclusive)."""
        path = [src_router]
        cur = src_router
        diff = src_router ^ dest_router
        bit = 0
        while diff:
            if diff & 1:
                cur ^= 1 << bit
                path.append(cur)
            diff >>= 1
            bit += 1
        return path

    def hops(self, src_node: int, dest_node: int) -> int:
        """Total link traversals node-to-node (incl. injection/ejection)."""
        if src_node == dest_node:
            return 0
        rs, rd = self.router_of(src_node), self.router_of(dest_node)
        return 2 + bin(rs ^ rd).count("1")

    def links(self) -> List[Tuple[str, int, int]]:
        """Every directed link: ('inj', node, router), ('ej', router,
        node) and ('net', router_a, router_b)."""
        out: List[Tuple[str, int, int]] = []
        for node in range(self.n_nodes):
            r = self.router_of(node)
            out.append(("inj", node, r))
            out.append(("ej", r, node))
        for r in range(self.n_routers):
            for bit in range(self.dim):
                peer = r ^ (1 << bit)
                if peer < self.n_routers:
                    out.append(("net", r, peer))
        return out
