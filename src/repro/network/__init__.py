"""Interconnect substrate: messages, topology, fabric."""

from repro.network.fabric import Interconnect
from repro.network.messages import (
    EXPECTS_MEMORY_DATA,
    Message,
    MsgType,
    virtual_network,
)
from repro.network.topology import BristledHypercube

__all__ = [
    "BristledHypercube",
    "EXPECTS_MEMORY_DATA",
    "Interconnect",
    "Message",
    "MsgType",
    "virtual_network",
]
