"""The switched interconnect: links with occupancy, pipelined hops.

Messages traverse injection link -> zero or more router-router links
(e-cube order) -> ejection link.  Each directed physical link is
modelled with a ``free_at`` occupancy horizon: a message occupies the
link for its serialization time (header-only vs header+cache-line at
the 1 GB/s Table 3 bandwidth) and experiences the 25 ns hop latency per
traversal.  Virtual networks share physical links; per-VN buffering at
routers is assumed adequate (infinite), while the *destination* network
interface applies real backpressure — delivery retries until the NI
input queue for the message's VN has space.
"""

from __future__ import annotations

import dataclasses
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.events import EventWheel
from repro.common.params import MachineParams
from repro.network.messages import Message
from repro.network.topology import BristledHypercube

Link = Tuple[str, int, int]

#: Delivery callback: returns False when the NI input queue is full.
Deliver = Callable[[Message], bool]


class Interconnect:
    RETRY_CYCLES = 4

    def __init__(self, mp: MachineParams, wheel: EventWheel) -> None:
        self.mp = mp
        self.wheel = wheel
        self.topo = BristledHypercube(mp.n_nodes, mp.net.bristle)
        self._free_at: Dict[Link, int] = {}
        self._deliver: Dict[int, Deliver] = {}
        self.messages_sent = 0
        self.total_hops = 0
        self.total_latency = 0
        # Fault-injection hook (repro.fuzz.faults): called with each
        # injected message, returns ``(extra_delay_cycles, n_copies)``.
        # None (the default) keeps injection on the zero-overhead path.
        self.fault_plan: Optional[Callable[[Message], Tuple[int, int]]] = None
        self.faults_delayed = 0
        self.faults_duplicated = 0

    def attach(self, node: int, deliver: Deliver) -> None:
        self._deliver[node] = deliver

    # ------------------------------------------------------------------
    def _path_links(self, src: int, dest: int) -> List[Link]:
        rs, rd = self.topo.router_of(src), self.topo.router_of(dest)
        links: List[Link] = [("inj", src, rs)]
        routers = self.topo.router_path(rs, rd)
        for a, b in zip(routers, routers[1:]):
            links.append(("net", a, b))
        links.append(("ej", rd, dest))
        return links

    def _serialization(self, msg: Message) -> int:
        if msg.carries_data:
            return self.mp.data_msg_link_cycles
        return self.mp.ctrl_msg_link_cycles

    def send(self, msg: Message) -> None:
        """Inject ``msg``; it is eventually handed to the destination NI."""
        if msg.dest == msg.src:
            raise ValueError(f"message to self should not enter the network: {msg}")
        if self.fault_plan is not None:
            delay, copies = self.fault_plan(msg)
            if delay > 0 or copies != 1:
                if delay > 0:
                    self.faults_delayed += 1
                self.faults_duplicated += max(0, copies - 1)
                for i in range(copies):
                    # Copies get distinct Message objects: the receive
                    # path mutates messages (probe_kind), and one object
                    # must not sit in two NI queues at once.
                    m = msg if i == 0 else dataclasses.replace(msg)
                    self.wheel.schedule(delay, partial(self._inject, m))
                return
        self._inject(msg)

    def _inject(self, msg: Message) -> None:
        self.messages_sent += 1
        links = self._path_links(msg.src, msg.dest)
        self.total_hops += len(links)
        self._traverse(msg, links, 0, self.wheel.now, self.wheel.now)

    def _traverse(
        self, msg: Message, links: List[Link], idx: int, ready: int, injected: int
    ) -> None:
        if idx >= len(links):
            self._try_deliver(msg, injected)
            return
        link = links[idx]
        ser = self._serialization(msg)
        start = max(ready, self._free_at.get(link, 0))
        self._free_at[link] = start + ser
        # Wormhole routing: the head flit advances after the hop time
        # while the body still streams; serialization is only fully
        # paid at the final (ejection) link.
        head_arrive = start + self.mp.hop_cycles
        if idx == len(links) - 1:
            arrive = head_arrive + ser
        else:
            arrive = head_arrive
        self.wheel.schedule_at(
            arrive, partial(self._traverse, msg, links, idx + 1, arrive, injected)
        )

    def _try_deliver(self, msg: Message, injected: int) -> None:
        deliver = self._deliver[msg.dest]
        if deliver(msg):
            self.total_latency += self.wheel.now - injected
            return
        self.wheel.schedule(
            self.RETRY_CYCLES, partial(self._try_deliver, msg, injected)
        )

    # ------------------------------------------------------------------
    def mean_latency(self) -> float:
        if not self.messages_sent:
            return 0.0
        return self.total_latency / self.messages_sent
