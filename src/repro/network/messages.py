"""Coherence message types and the Message record.

Virtual-network assignment (Table 3: four virtual networks, the
protocol uses three) follows the deadlock-free sink ordering:

* VN0 — requests (GET, GETX, UPGRADE); may generate VN1/VN2 traffic.
* VN1 — replies (data, acks, NACKs); sunk unconditionally.
* VN2 — interventions, invalidations, writebacks and revision
  messages; generate only VN1 traffic.
* VN3 — unused by the protocol (reserved for I/O, as in the paper's
  platform).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class MsgType(enum.Enum):
    # VN0: requests.
    GET = enum.auto()  # read miss
    GETX = enum.auto()  # write miss
    UPGRADE = enum.auto()  # write to a SHARED copy

    # VN1: replies.
    DATA_SHARED = enum.auto()
    DATA_EXCL = enum.auto()
    UPGRADE_ACK = enum.auto()
    NACK = enum.auto()  # home busy: retry
    NACK_UPGRADE = enum.auto()  # upgrade lost a race: retry as GETX
    INV_ACK = enum.auto()  # invalidation ack, sent to the requester
    WB_ACK = enum.auto()  # writeback accepted

    # VN2: interventions / writebacks / revisions.
    INT_SHARED = enum.auto()  # downgrade the owner, forward data
    INT_EXCL = enum.auto()  # invalidate the owner, transfer ownership
    INVAL = enum.auto()  # invalidate a sharer
    PUT = enum.auto()  # writeback (dirty or clean-exclusive hint)
    SWB = enum.auto()  # sharing writeback: downgrade revision to home
    XFER = enum.auto()  # ownership-transfer revision to home
    INT_NACK = enum.auto()  # intervention found no copy (PUT race)

    # Active-memory extension (repro.protocol.extensions): remote
    # operations executed by the home's protocol thread.
    AM_OP = enum.auto()  # uncached fetch-and-op request
    AM_REPLY = enum.auto()  # result value (in .version)

    # Node-internal dispatch types (never traverse the network).
    L2_PROBE_REPLY = enum.auto()  # local L2 answered an intervention probe


_VN0 = frozenset({MsgType.GET, MsgType.GETX, MsgType.UPGRADE, MsgType.AM_OP})
_VN2 = frozenset(
    {
        MsgType.INT_SHARED,
        MsgType.INT_EXCL,
        MsgType.INVAL,
        MsgType.PUT,
        MsgType.SWB,
        MsgType.XFER,
        MsgType.INT_NACK,
    }
)

_DATA_BEARING = frozenset(
    {MsgType.DATA_SHARED, MsgType.DATA_EXCL, MsgType.PUT, MsgType.SWB, MsgType.XFER}
)

#: Message types whose home-side handler wants the line's memory data
#: fetched in parallel with handler dispatch (paper §2.1).
EXPECTS_MEMORY_DATA = frozenset({MsgType.GET, MsgType.GETX})


def virtual_network(mtype: MsgType) -> int:
    if mtype in _VN0:
        return 0
    if mtype in _VN2:
        return 2
    return 1


class _MsgIdSource:
    """Monotonic message-uid source.

    A plain class (not :func:`itertools.count`) so checkpointing can
    read the current position without consuming it and reseat it on
    restore (:mod:`repro.sim.checkpoint`).
    """

    __slots__ = ("next_id",)

    def __init__(self) -> None:
        self.next_id = 0

    def __call__(self) -> int:
        uid = self.next_id
        self.next_id = uid + 1
        return uid


_msg_ids = _MsgIdSource()


@dataclass
class Message:
    """One coherence transaction message."""

    mtype: MsgType
    addr: int  # line address
    src: int
    dest: int
    requester: int = -1  # original requester for 3-hop flows
    version: int = 0  # data payload token
    dirty: bool = False
    acks: int = 0  # invalidation-ack count carried by replies
    found: bool = False  # probe replies: the L2 had the line
    probe_kind: Optional["MsgType"] = None  # probe replies: original kind
    # Local-miss descriptors reuse Message; they carry the miss kind.
    uid: int = field(default_factory=_msg_ids)

    @property
    def vn(self) -> int:
        return virtual_network(self.mtype)

    @property
    def carries_data(self) -> bool:
        return self.mtype in _DATA_BEARING

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message({self.mtype.name}, addr={self.addr:#x}, "
            f"{self.src}->{self.dest}, req={self.requester}, v{self.version})"
        )
