"""Statistics containers.

Counters are grouped the way the paper reports them: per application
thread (memory-stall decomposition for Figures 2-11), per protocol
engine (Tables 7 and 8), per cache, and per node, rolled up into a
:class:`MachineStats` with the derived quantities the experiment
harness prints.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CacheStats:
    """Hit/miss counters for one cache, split by requester class."""

    app_hits: int = 0
    app_misses: int = 0
    proto_hits: int = 0
    proto_misses: int = 0
    writebacks: int = 0
    external_invalidations: int = 0
    external_downgrades: int = 0

    @property
    def hits(self) -> int:
        return self.app_hits + self.proto_hits

    @property
    def misses(self) -> int:
        return self.app_misses + self.proto_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def record(self, hit: bool, protocol: bool) -> None:
        if protocol:
            if hit:
                self.proto_hits += 1
            else:
                self.proto_misses += 1
        else:
            if hit:
                self.app_hits += 1
            else:
                self.app_misses += 1


@dataclass
class ThreadStats:
    """One application thread context's retirement-side view."""

    node: int = 0
    context: int = 0
    committed: int = 0
    squashed: int = 0
    # Cycles the graduation unit was stalled with a memory operation at
    # the top of this thread's active list (the paper's "memory stall").
    memory_stall_cycles: int = 0
    other_stall_cycles: int = 0
    branches: int = 0
    mispredicts: int = 0
    loads: int = 0
    stores: int = 0
    prefetches: int = 0
    # Committed µops emitted by spin-synchronization loops (spin_until /
    # SpinLock.acquire).  The count is timing-dependent — a thread spins
    # for however long the line takes to arrive — so cross-protocol
    # differentials compare ``committed - spin_committed``.
    spin_committed: int = 0
    barrier_waits: int = 0
    lock_acquires: int = 0
    finish_cycle: int = 0
    done: bool = False

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0


@dataclass
class ProtocolStats:
    """Protocol execution counters (PP engine or SMTp protocol thread)."""

    handlers: int = 0
    handlers_by_type: Dict[str, int] = field(default_factory=dict)
    instructions: int = 0
    busy_cycles: int = 0
    branches: int = 0
    mispredicts: int = 0
    squashed: int = 0
    # Cycles in which the graduation unit freed at least one squashed
    # protocol instruction (Table 8 "Squash %").
    squash_cycles: int = 0
    messages_sent: int = 0
    nacks_sent: int = 0
    retries: int = 0
    dir_cache_hits: int = 0
    dir_cache_misses: int = 0
    picache_hits: int = 0
    picache_misses: int = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def count_handler(self, name: str) -> None:
        self.handlers += 1
        self.handlers_by_type[name] = self.handlers_by_type.get(name, 0) + 1


@dataclass
class ResourcePeaks:
    """Peak protocol-thread occupancy of shared pipeline resources
    (Table 9)."""

    branch_stack: int = 0
    int_regs: int = 0
    int_queue: int = 0
    lsq: int = 0


@dataclass
class NodeStats:
    node: int = 0
    l1i: CacheStats = field(default_factory=CacheStats)
    l1d: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    bypass_allocations: int = 0
    sdram_accesses: int = 0
    sdram_busy_cycles: int = 0
    local_misses: int = 0
    remote_requests_in: int = 0
    messages_in: int = 0
    messages_out: int = 0
    protocol: ProtocolStats = field(default_factory=ProtocolStats)
    peaks: ResourcePeaks = field(default_factory=ResourcePeaks)
    threads: List[ThreadStats] = field(default_factory=list)


@dataclass
class MachineStats:
    """Roll-up for one simulation run."""

    model: str = ""
    n_nodes: int = 1
    ways: int = 1
    freq_ghz: float = 2.0
    cycles: int = 0
    # Idle cycles the event-driven scheduler fast-forwarded over rather
    # than polling every component (always 0 under REPRO_DENSE_STEP=1).
    skipped_cycles: int = 0
    nodes: List[NodeStats] = field(default_factory=list)

    # ---- derived quantities used by the experiment harness ----

    @property
    def exec_seconds(self) -> float:
        return self.cycles / (self.freq_ghz * 1e9)

    def app_threads(self) -> List[ThreadStats]:
        return [t for n in self.nodes for t in n.threads]

    @property
    def committed(self) -> int:
        return sum(t.committed for t in self.app_threads())

    @property
    def spin_committed(self) -> int:
        """Committed spin-loop µops (timing-dependent; see ThreadStats)."""
        return sum(t.spin_committed for t in self.app_threads())

    @property
    def memory_stall_cycles(self) -> float:
        """Memory stall averaged over application threads (paper §4)."""
        threads = self.app_threads()
        if not threads:
            return 0.0
        return sum(t.memory_stall_cycles for t in threads) / len(threads)

    @property
    def memory_stall_fraction(self) -> float:
        return self.memory_stall_cycles / self.cycles if self.cycles else 0.0

    @property
    def protocol_instructions(self) -> int:
        return sum(n.protocol.instructions for n in self.nodes)

    def protocol_occupancy_peak(self) -> float:
        """Max over nodes of protocol busy cycles / total (Table 7)."""
        if not self.cycles or not self.nodes:
            return 0.0
        return max(n.protocol.busy_cycles for n in self.nodes) / self.cycles

    def protocol_occupancy_mean(self) -> float:
        if not self.cycles or not self.nodes:
            return 0.0
        busy = sum(n.protocol.busy_cycles for n in self.nodes)
        return busy / (self.cycles * len(self.nodes))

    def protocol_branch_mispredict_rate(self) -> float:
        branches = sum(n.protocol.branches for n in self.nodes)
        if not branches:
            return 0.0
        return sum(n.protocol.mispredicts for n in self.nodes) / branches

    def protocol_squash_cycle_fraction(self) -> float:
        if not self.cycles or not self.nodes:
            return 0.0
        sq = sum(n.protocol.squash_cycles for n in self.nodes)
        return sq / (self.cycles * len(self.nodes))

    def retired_protocol_share(self) -> float:
        """Retired protocol instructions as a share of all retired."""
        proto = self.protocol_instructions
        total = proto + self.committed
        return proto / total if total else 0.0

    def resource_peaks(self) -> Dict[str, object]:
        """Table 9: (max, mean-of-peaks) across nodes per resource."""
        out: Dict[str, object] = {}
        for name in ("branch_stack", "int_regs", "int_queue", "lsq"):
            peaks = [getattr(n.peaks, name) for n in self.nodes]
            out[name] = (max(peaks), sum(peaks) / len(peaks)) if peaks else (0, 0.0)
        return out

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def speedup(baseline: MachineStats, parallel: MachineStats) -> float:
    """Self-relative speedup (Tables 5 and 6)."""
    if parallel.cycles == 0:
        raise ZeroDivisionError("parallel run has zero cycles")
    return baseline.cycles / parallel.cycles
