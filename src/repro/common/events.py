"""A minimal cycle-indexed event wheel.

Components schedule callbacks at absolute cycles; the owner (node or
machine) fires due events once per cycle.  Insertion order is preserved
within a cycle so same-cycle hardware interactions stay deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple


class EventWheel:
    __slots__ = ("_heap", "_seq", "now")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule_at(self, cycle: int, fn: Callable[[], None]) -> None:
        if cycle < self.now:
            raise ValueError(f"cannot schedule in the past: {cycle} < {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (cycle, self._seq, fn))

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        self.schedule_at(self.now + max(0, delay), fn)

    def tick(self, cycle: int) -> int:
        """Advance to ``cycle`` and run every event due at or before it.

        Returns the number of events fired.
        """
        self.now = cycle
        fired = 0
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            _, _, fn = heapq.heappop(heap)
            fn()
            fired += 1
        return fired

    def next_event_cycle(self) -> int:
        """Cycle of the earliest pending event, or -1 if none."""
        return self._heap[0][0] if self._heap else -1
