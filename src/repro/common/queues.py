"""Shared hardware buffers with protocol-thread reservations.

The paper's deadlock-avoidance scheme (§2.2) keeps one reserved
instance of each front-end/window resource that only the protocol
thread may use: application threads see capacity ``N - reserved`` while
the protocol thread sees the full ``N``.  Structures that hold ordered
instructions (decode/rename queues, LSQ) additionally keep *two logical
FIFOs* — one application section and one protocol section — over the
dynamically shared slots, with per-section head/tail pointers.

:class:`DualQueue` models exactly that; :class:`ReservedPool` models
counted resources (registers, queue slots, MSHRs) with the same
reservation rule.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class ReservedPool:
    """A counted resource pool with slots reserved for the protocol thread.

    ``acquire(protocol=False)`` succeeds only while application usage
    stays below ``total - reserved``; the protocol thread may consume
    every slot.  The pool tracks a peak-occupancy watermark for the
    protocol thread, which Table 9 reports.
    """

    __slots__ = ("name", "total", "reserved", "app_used", "proto_used", "proto_peak")

    def __init__(self, name: str, total: int, reserved: int = 0) -> None:
        if reserved > total:
            raise ValueError(f"{name}: reserved {reserved} > total {total}")
        self.name = name
        self.total = total
        self.reserved = reserved
        self.app_used = 0
        self.proto_used = 0
        self.proto_peak = 0

    @property
    def used(self) -> int:
        return self.app_used + self.proto_used

    @property
    def free_for_app(self) -> int:
        return max(0, (self.total - self.reserved) - self.used)

    @property
    def free_for_proto(self) -> int:
        return self.total - self.used

    def can_acquire(self, protocol: bool, n: int = 1) -> bool:
        limit = self.total if protocol else self.total - self.reserved
        return self.used + n <= limit

    def acquire(self, protocol: bool, n: int = 1) -> bool:
        """Take ``n`` slots; returns False (and takes nothing) if full."""
        if protocol:
            if self.used + n > self.total:
                return False
            self.proto_used += n
            if self.proto_used > self.proto_peak:
                self.proto_peak = self.proto_used
            return True
        # The application may never push total occupancy above
        # total - reserved: the last slot always remains reachable by
        # the protocol thread.
        if self.used + n > self.total - self.reserved:
            return False
        self.app_used += n
        return True

    def release(self, protocol: bool, n: int = 1) -> None:
        if protocol:
            if self.proto_used < n:
                raise ValueError(f"{self.name}: protocol release underflow")
            self.proto_used -= n
        else:
            if self.app_used < n:
                raise ValueError(f"{self.name}: app release underflow")
            self.app_used -= n

    def reset_peak(self) -> None:
        self.proto_peak = self.proto_used

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReservedPool({self.name}, {self.used}/{self.total}, "
            f"app={self.app_used}, proto={self.proto_used})"
        )


class BoundedQueue(Generic[T]):
    """A simple bounded FIFO used for controller and network queues."""

    __slots__ = ("name", "capacity", "_items")

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = capacity
        self._items: Deque[T] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: T) -> bool:
        """Append ``item``; returns False if the queue is full."""
        if self.full:
            return False
        self._items.append(item)
        return True

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def pop(self) -> T:
        return self._items.popleft()


class DualQueue(Generic[T]):
    """Shared slots forming two logical FIFOs (application / protocol).

    Capacity accounting follows the reservation rule: the application
    section may hold at most ``capacity - reserved`` entries *and* the
    two sections together at most ``capacity``.  Iteration order within
    each section is FIFO; the consumer alternates section priority
    cycle by cycle exactly as §2.2 describes.
    """

    __slots__ = ("name", "capacity", "reserved", "app", "proto", "_proto_first")

    def __init__(self, name: str, capacity: int, reserved: int = 0) -> None:
        if reserved > capacity:
            raise ValueError(f"{name}: reserved {reserved} > capacity {capacity}")
        self.name = name
        self.capacity = capacity
        self.reserved = reserved
        self.app: Deque[T] = deque()
        self.proto: Deque[T] = deque()
        self._proto_first = False

    def __len__(self) -> int:
        return len(self.app) + len(self.proto)

    def can_push(self, protocol: bool) -> bool:
        if protocol:
            return len(self) < self.capacity
        return len(self) < self.capacity - self.reserved

    def push(self, item: T, protocol: bool) -> bool:
        if not self.can_push(protocol):
            return False
        (self.proto if protocol else self.app).append(item)
        return True

    def drain(self, max_items: int) -> List[T]:
        """Pop up to ``max_items`` entries, alternating section priority.

        Within a cycle the higher-priority section is drained first (in
        fetch order), then the other; the priority flips every call
        (i.e. every cycle), matching the cyclic-priority scheduler.
        """
        first, second = (
            (self.proto, self.app) if self._proto_first else (self.app, self.proto)
        )
        self._proto_first = not self._proto_first
        out: List[T] = []
        for section in (first, second):
            while section and len(out) < max_items:
                out.append(section.popleft())
        return out

    def drain_section(self, protocol: bool, max_items: int) -> List[T]:
        section = self.proto if protocol else self.app
        out: List[T] = []
        while section and len(out) < max_items:
            out.append(section.popleft())
        return out
