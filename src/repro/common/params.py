"""Configuration objects for every simulated component.

The defaults reproduce Tables 2, 3 and 4 of the paper.  Because a pure
Python simulator cannot run the paper's full problem sizes, each
parameter class also offers a ``scaled()`` constructor that shrinks the
capacity-type parameters (cache sizes, directory caches) while keeping
all latencies, widths and policies paper-exact.  The experiment presets
in :mod:`repro.sim.experiments` pair scaled capacities with scaled
workloads so that miss-rate *structure* is preserved (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one set-associative cache."""

    size_bytes: int
    line_bytes: int
    assoc: int
    hit_latency: int  # cycles, round trip

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise ConfigError(f"line size must be a power of two: {self.line_bytes}")
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"line*assoc = {self.line_bytes * self.assoc}"
            )
        if not _is_pow2(self.n_sets):
            raise ConfigError(f"set count must be a power of two: {self.n_sets}")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class ProcessorParams:
    """Table 2: the simulated out-of-order SMT processor.

    ``app_threads`` counts application contexts only; when
    ``protocol_thread`` is true one extra context is statically bound
    to the coherence protocol (SMTp).  Baseline models keep the same
    physical register provisioning with the protocol context disabled,
    exactly as the paper does.
    """

    freq_ghz: float = 2.0
    app_threads: int = 1
    protocol_thread: bool = False

    # Front end.
    fetch_width: int = 8
    fetch_threads_per_cycle: int = 2
    decode_queue_slots: int = 8
    rename_queue_slots: int = 8
    front_end_width: int = 8

    # Branch handling.
    btb_sets: int = 256
    btb_assoc: int = 4
    ras_entries: int = 32
    branch_stack: int = 32
    local_history_bits: int = 10
    global_history_bits: int = 12
    # Cycles from fetch of a branch to earliest possible redirect after
    # resolution (the 9-stage pipe: fetch..ALU).
    mispredict_redirect_penalty: int = 7

    # Windows.
    active_list_per_thread: int = 128
    int_queue: int = 32
    fp_queue: int = 32
    lsq_slots: int = 64
    store_buffer: int = 32

    # Execution resources.
    alus: int = 7  # one dedicated to address calculation
    fpus: int = 3
    int_mult_latency: int = 6
    int_div_latency: int = 35
    fp_mult_latency: int = 1
    fp_div_sp_latency: int = 12
    fp_div_dp_latency: int = 19
    commit_width: int = 8

    # TLBs.
    itlb_entries: int = 128
    dtlb_entries: int = 128
    page_bytes: int = 4096
    tlb_miss_penalty: int = 30

    # Caches.
    l1i: CacheParams = field(
        default_factory=lambda: CacheParams(32 * 1024, 64, 2, hit_latency=1)
    )
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams(32 * 1024, 32, 2, hit_latency=1)
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams(2 * 1024 * 1024, 128, 8, hit_latency=9)
    )
    mshrs: int = 16  # plus one reserved for retiring stores

    # SMTp-specific reservations (Table 2, bottom) and bypass buffers.
    reserved_decode_slots: int = 1
    reserved_rename_slots: int = 1
    reserved_branch_stack: int = 1
    reserved_int_regs: int = 1
    reserved_int_queue: int = 1
    reserved_lsq_slots: int = 1
    reserved_mshrs: int = 1
    reserved_store_buffer: int = 1
    bypass_buffer_lines: int = 16

    # Look-Ahead Scheduling of protocol handlers (paper §2.3).
    look_ahead_scheduling: bool = True
    # Whether the special protocol bit-manipulation ALU ops (popcount,
    # count-trailing-zeros) execute in one instruction; when False they
    # are expanded into shift/test loops (§2.1 ablation).
    protocol_bitops: bool = True
    # Private perfect protocol caches ablation (§2.3): protocol
    # loads/stores and fetches always hit, bypassing L1/L2.
    perfect_protocol_caches: bool = False

    def __post_init__(self) -> None:
        if self.app_threads not in (1, 2, 4):
            raise ConfigError(f"app_threads must be 1, 2 or 4: {self.app_threads}")

    @property
    def total_threads(self) -> int:
        return self.app_threads + (1 if self.protocol_thread else 0)

    @property
    def physical_int_regs(self) -> int:
        """32*(n+1) architected mappings + 96 rename registers.

        The +1 context is provisioned regardless of whether the
        protocol thread is enabled, matching the paper's fairness rule
        (160/192/256 for 1/2/4 application threads).
        """
        return 32 * (self.app_threads + 1) + 96

    @property
    def physical_fp_regs(self) -> int:
        return self.physical_int_regs

    @property
    def protocol_thread_id(self) -> Optional[int]:
        return self.app_threads if self.protocol_thread else None

    def scaled(self, divisor: int = 32) -> "ProcessorParams":
        """Return a copy with cache capacities divided by ``divisor``.

        Line sizes, associativities and latencies are unchanged, so the
        miss classification structure is preserved at scaled workload
        sizes.  L1 associativity is kept; sizes never drop below four
        sets.
        """

        def shrink(c: CacheParams) -> CacheParams:
            min_size = c.line_bytes * c.assoc * 4
            return dataclasses.replace(
                c, size_bytes=max(min_size, c.size_bytes // divisor)
            )

        return dataclasses.replace(
            self, l1i=shrink(self.l1i), l1d=shrink(self.l1d), l2=shrink(self.l2)
        )


@dataclass(frozen=True)
class MemoryParams:
    """Table 3, memory half: SDRAM and controller queues."""

    sdram_access_ns: float = 80.0
    sdram_bandwidth_gbs: float = 3.2
    sdram_queue: int = 16
    local_miss_queue: int = 16
    ni_input_queue: int = 2  # entries per virtual network
    ni_output_queue: int = 16
    virtual_networks: int = 4


@dataclass(frozen=True)
class NetworkParams:
    """Table 3, network half: Spider-like routers in a bristled hypercube."""

    hop_ns: float = 25.0
    link_bandwidth_gbs: float = 1.0
    router_ports: int = 6
    header_bytes: int = 16
    bristle: int = 2  # nodes per router


#: Directory-cache capacity meaning "always hits" (IntPerfect).
PERFECT = "perfect"


@dataclass(frozen=True)
class MachineParams:
    """One complete machine: nodes, model, clocks (Table 4 rows)."""

    model: str
    n_nodes: int = 1
    proc: ProcessorParams = field(default_factory=ProcessorParams)
    mem: MemoryParams = field(default_factory=MemoryParams)
    net: NetworkParams = field(default_factory=NetworkParams)

    # Memory-controller clock in GHz.  The protocol processor (when
    # present) runs at this clock.
    mc_freq_ghz: float = 1.0
    # Directory data cache: byte capacity, PERFECT, or None (SMTp: the
    # protocol thread uses the regular L1/L2).
    dir_cache: object = None
    # Protocol instruction cache for embedded PP models (32 KB DM).
    protocol_icache_bytes: int = 32 * 1024
    # 'pp' = embedded dual-issue protocol processor, 'thread' = SMTp.
    protocol_engine: str = "thread"
    # Which registered coherence protocol the machine runs — a
    # :mod:`repro.protocol.registry` bundle name.  Resolved lazily by
    # the machine (this module stays import-leaf); unknown names fail
    # with ConfigError at bundle resolution.  Participates in the sweep
    # cache key like every other field.
    protocol: str = "smtp-bitvector"
    line_bytes: int = 128  # coherence granularity == L2 line
    # Per-node local memory (bytes of application address space homed
    # at each node); scaled presets shrink this with the workloads.
    local_memory_bytes: int = 1 << 30
    # Forward-progress watchdog: cycles with no commit machine-wide.
    watchdog_cycles: int = 2_000_000
    # Run the coherence invariant checker during simulation.
    check_coherence: bool = False
    # Online sanitizer (repro.fuzz.sanitizer): continuous SWMR /
    # store-version / occupancy invariants plus a livelock watchdog.
    # Independent of check_coherence (which is the quiesce-time audit);
    # zero simulator overhead while False.
    sanitize: bool = False
    # Cycles between full sanitizer sweeps (per-store checks always run).
    sanitize_interval: int = 64

    def __post_init__(self) -> None:
        if not _is_pow2(self.n_nodes):
            raise ConfigError(f"n_nodes must be a power of two: {self.n_nodes}")
        if self.protocol_engine not in ("pp", "thread"):
            raise ConfigError(f"unknown protocol engine: {self.protocol_engine}")
        if self.protocol_engine == "thread" and not self.proc.protocol_thread:
            raise ConfigError("SMTp machine requires proc.protocol_thread=True")
        if self.protocol_engine == "pp" and self.proc.protocol_thread:
            raise ConfigError("PP machine must not enable the protocol thread")

    @property
    def mc_divisor(self) -> int:
        """Processor cycles per memory-controller cycle (>= 1)."""
        return max(1, round(self.proc.freq_ghz / self.mc_freq_ghz))

    @property
    def sdram_access_cycles(self) -> int:
        return max(1, round(self.mem.sdram_access_ns * self.proc.freq_ghz))

    @property
    def sdram_line_cycles(self) -> int:
        """Occupancy of one line transfer at SDRAM bandwidth."""
        ns = self.line_bytes / self.mem.sdram_bandwidth_gbs
        return max(1, round(ns * self.proc.freq_ghz))

    @property
    def hop_cycles(self) -> int:
        return max(1, round(self.net.hop_ns * self.proc.freq_ghz))

    @property
    def data_msg_link_cycles(self) -> int:
        """Serialization of a header+line message on one link."""
        ns = (self.line_bytes + self.net.header_bytes) / self.net.link_bandwidth_gbs
        return max(1, round(ns * self.proc.freq_ghz))

    @property
    def ctrl_msg_link_cycles(self) -> int:
        ns = self.net.header_bytes / self.net.link_bandwidth_gbs
        return max(1, round(ns * self.proc.freq_ghz))

    @property
    def directory_bits(self) -> int:
        """32-bit entries up to 16 nodes, 64-bit at 32 nodes (paper §3)."""
        return 32 if self.n_nodes <= 16 else 64
