"""Exception types raised by the simulator.

Every error carries enough context to diagnose the failing component
without a debugger: the simulators attach cycle counts and node ids to
the message at the raise site.
"""


class SimulationError(Exception):
    """Base class for all simulator-raised errors."""


class ConfigError(SimulationError):
    """A configuration object is internally inconsistent."""


class DeadlockError(SimulationError):
    """The machine-wide watchdog saw no forward progress.

    Raised by :class:`repro.core.machine.Machine` when no instruction
    commits on any node within the watchdog window.  The message
    includes a dump of per-node pipeline and memory-controller state.
    """


class LivelockError(DeadlockError):
    """Transactions keep retrying but none complete.

    Raised by the online sanitizer (:mod:`repro.fuzz.sanitizer`) when a
    miss stays outstanding past its age limit even though handlers are
    still firing — the NACK-retry-storm shape of no-forward-progress,
    which the commit watchdog alone cannot see.
    """


class ProtocolError(SimulationError):
    """The coherence protocol reached an impossible state.

    Examples: a handler observed a directory state it has no case for,
    two exclusive owners of the same line, or a reply arriving with no
    matching MSHR.
    """


class CoherenceViolation(ProtocolError):
    """The invariant checker detected incoherent data or metadata."""
