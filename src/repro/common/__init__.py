"""Shared substrate: configuration, statistics, queues, errors."""

from repro.common.errors import (
    CoherenceViolation,
    ConfigError,
    DeadlockError,
    ProtocolError,
    SimulationError,
)
from repro.common.params import (
    PERFECT,
    CacheParams,
    MachineParams,
    MemoryParams,
    NetworkParams,
    ProcessorParams,
)
from repro.common.queues import BoundedQueue, DualQueue, ReservedPool
from repro.common.stats import (
    CacheStats,
    MachineStats,
    NodeStats,
    ProtocolStats,
    ResourcePeaks,
    ThreadStats,
    speedup,
)

__all__ = [
    "BoundedQueue",
    "CacheParams",
    "CacheStats",
    "CoherenceViolation",
    "ConfigError",
    "DeadlockError",
    "DualQueue",
    "MachineParams",
    "MachineStats",
    "MemoryParams",
    "NetworkParams",
    "NodeStats",
    "PERFECT",
    "ProcessorParams",
    "ProtocolError",
    "ProtocolStats",
    "ReservedPool",
    "ResourcePeaks",
    "SimulationError",
    "ThreadStats",
    "speedup",
]
