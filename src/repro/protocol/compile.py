"""Closure compilation of protocol handler programs (threaded code).

Handler programs are tiny (6–40 instructions), loop-light, and executed
millions of times per run — on every L2 miss and every network message.
Interpreting them one :class:`~repro.protocol.isa.PInstr` at a time
(``semantics.step`` + a fresh ``Step`` record per instruction) is the
single largest avoidable cost in the simulator's busy path now that
idle cycles are skipped (see DESIGN.md, "Compiling the hot
interpreters").

This module compiles each handler once, on first use, into *threaded
code*: one specialized Python closure per instruction, chained by
direct closure references.  Register numbers, immediates, branch
targets, I-cache line indices and TRAP messages are constant-folded
into the closures at compile time; a trampoline loop in the consumer
(``while step is not None: step = step(state)``) drives execution.
Instructions are compiled in reverse program order so fallthrough and
forward-branch successors are direct closure references; backward
branch targets resolve through the step list on first traversal.

Three programs are compiled per handler, one per execution client:

``func_entry``
    The functional core used by :class:`~repro.protocol.semantics.
    FunctionalRunner` (unit tests, ``repro analyze``'s model checker
    and dispatch enumerator).  State is the runner itself.

``pp_entry``
    The embedded dual-issue protocol processor's timing walk
    (:mod:`repro.memctrl.ppengine`): dual-issue slot pairing, directory
    cache and protocol I-cache accesses, SDRAM stalls, uncached-op
    scheduling — bit-identical cycle accounting to
    ``PPEngine._execute``.  State is a :class:`PPState`.

``uop_entry``
    The SMTp shadow interpreter's µop feed
    (:mod:`repro.core.protocol_thread`): each closure resolves one
    instruction functionally and emits the same timing µop the
    interpreter would, updating the source's register file and
    protocol memory in the same order.  State is the
    ``ProtocolThreadSource`` itself.

**Bit-identity contract.**  For every observable — register files,
protocol-memory writes, the (instr, value) uncached-op stream and its
ordering, stats counters, µop field values, exception types *and
messages* — the compiled programs reproduce the reference interpreters
exactly.  The interpreters stay in-tree as the executable
specification; setting ``REPRO_INTERP=1`` routes every client back to
them (the same escape-hatch pattern as ``REPRO_DENSE_STEP``), and the
differential tests in ``tests/test_compile.py`` diff the two modes.

Bump :data:`COMPILER_VERSION` whenever compiled-code semantics change:
it is folded into the sweep result-cache key so stale rows can never
be served across compiler revisions.
"""

from __future__ import annotations

import os
from functools import partial
from typing import Any, Callable, List, Optional, Set

from repro.common.errors import ProtocolError
from repro.isa.uop import UopKind, protocol_uop
from repro.protocol.isa import (
    ADDR,
    HDR,
    PINSTR_BYTES,
    Handler,
    PInstr,
    POp,
)

#: Folded into the sweep cache key; bump on any semantic change here.
COMPILER_VERSION = 1

#: Latency of POPC/CTZ without the special bit-manipulation ALU ops
#: (must match ``ProtocolThreadSource.SLOW_BITOP_LATENCY``).
SLOW_BITOP_LATENCY = 16

MASK64 = (1 << 64) - 1

#: Ops whose uncached value is a register read (``semantics.step``).
_VALUE_OPS = (POp.SENDH, POp.SENDA, POp.PROBE)

# A compiled step: consumes the client state, returns the next step
# closure (or None to stop the trampoline).
StepFn = Callable[[Any], Any]

# A per-handler factory: (instr, index, fallthrough, branch_target) ->
# the specialized closure for that instruction.
_Factory = Callable[
    [PInstr, int, Optional[StepFn], Optional[StepFn]], StepFn
]


def interp_forced() -> bool:
    """True when ``REPRO_INTERP=1`` forces the reference interpreters."""
    return os.environ.get("REPRO_INTERP", "") == "1"


# ----------------------------------------------------------------------
# ALU value functions (shared by all three programs).
#
# Each takes the two resolved operands and returns the 64-bit result,
# mirroring ``semantics.alu`` exactly (POPC/CTZ ignore ``b``; the
# callers pass 0, as ``semantics.step`` does).
# ----------------------------------------------------------------------

_ALU_FN: dict = {
    POp.ADD: lambda a, b: (a + b) & MASK64,
    POp.SUB: lambda a, b: (a - b) & MASK64,
    POp.AND: lambda a, b: a & b,
    POp.OR: lambda a, b: a | b,
    POp.XOR: lambda a, b: a ^ b,
    POp.NOR: lambda a, b: ~(a | b) & MASK64,
    POp.SLL: lambda a, b: (a << (b & 63)) & MASK64,
    POp.SRL: lambda a, b: a >> (b & 63),
    POp.SEQ: lambda a, b: 1 if a == b else 0,
    POp.SLT: lambda a, b: 1 if a < b else 0,
    POp.POPC: lambda a, b: bin(a).count("1"),
    POp.CTZ: lambda a, b: (a & -a).bit_length() - 1 if a else 64,
}


class CompiledHandler:
    """The three compiled programs of one placed handler."""

    __slots__ = ("name", "pc", "func_entry", "pp_entry", "uop_entry", "uop_steps")

    def __init__(self, handler: Handler) -> None:
        self.name = handler.name
        # Programs fold the placed PC (I-cache lines, µop PCs); record
        # it so a later re-placement invalidates this compilation.
        self.pc = handler.pc
        self.func_entry: StepFn = _compile(handler, _func_factory)
        self.pp_entry: StepFn = _compile(handler, _pp_factory(handler))
        # The full µop step list (not just the entry) so a restored
        # checkpoint can re-enter a handler at the suspended fetch index
        # (repro.core.protocol_thread resumes via ``uop_steps[index]``).
        self.uop_steps: List[StepFn] = _compile_steps(handler, _uop_factory(handler))
        self.uop_entry: StepFn = self.uop_steps[0]


def compiled_for(handler: Handler) -> CompiledHandler:
    """Return (compiling on first use) ``handler``'s programs.

    The result is cached on the handler itself and invalidated if the
    handler has been re-placed (PC changed) since compilation.
    """
    cached = handler.compiled
    if cached is not None and cached.pc == handler.pc:
        return cached
    compiled = CompiledHandler(handler)
    handler.compiled = compiled
    return compiled


def compile_bundle(bundle) -> int:
    """Eagerly compile every handler of a registered protocol bundle.

    The compiler is protocol-agnostic — each bundle's ``build_table()``
    returns fresh :class:`Handler` objects, and :func:`compiled_for`
    caches on the handler itself, so variant bundles never collide in
    one process.  This helper exists to make that claim checkable (and
    to pre-warm a bundle before timing runs).  Returns the number of
    handlers compiled.
    """
    table = bundle.build_table()
    for handler in table.by_name.values():
        compiled_for(handler)
    return len(table.by_name)


# ----------------------------------------------------------------------
# Shared compilation plumbing.
# ----------------------------------------------------------------------

def _link(steps: List[Optional[StepFn]], target: int) -> StepFn:
    """A branch-target reference for a backward edge.

    The target closure does not exist yet during the reverse build, so
    it is resolved through the (by then fully populated) step list.
    The wrapper is transparent to the trampoline: one call executes
    exactly the target instruction.
    """
    def run(st: Any) -> Any:
        step = steps[target]
        assert step is not None
        return step(st)
    return run


def _compile_steps(handler: Handler, factory: _Factory) -> List[StepFn]:
    """Build ``handler``'s threaded-code program with ``factory``.

    Returns the per-instruction step list; ``steps[0]`` is the entry.
    """
    instrs = handler.instrs
    n = len(instrs)
    steps: List[Optional[StepFn]] = [None] * n
    for i in range(n - 1, -1, -1):
        instr = instrs[i]
        nxt: Optional[StepFn] = None
        if instr.op is not POp.LDCTXT:
            nxt = steps[i + 1]
            assert nxt is not None, f"{handler.name}: fell off the end"
        tgt: Optional[StepFn] = None
        if instr.is_branch:
            tgt = (
                steps[instr.target]
                if instr.target > i
                else _link(steps, instr.target)
            )
            assert instr.target <= i or tgt is not None
        steps[i] = factory(instr, i, nxt, tgt)
    assert steps[0] is not None
    return steps  # type: ignore[return-value]


def _compile(handler: Handler, factory: _Factory) -> StepFn:
    """Build ``handler``'s program and return its entry step."""
    return _compile_steps(handler, factory)[0]


def _trap_message(instr: PInstr, index: int) -> str:
    # Must match semantics.step verbatim.
    return f"protocol TRAP {instr.imm} at handler index {index}"


# ----------------------------------------------------------------------
# Program 1: the functional core (FunctionalRunner clients).
#
# State protocol: ``st.regs`` (list), ``st.pmem_read``,
# ``st.pmem_write``, ``st.on_uncached`` — i.e. the FunctionalRunner
# itself.  Write-to-r0 suppression matches FunctionalRunner.run.
# ----------------------------------------------------------------------

def _func_factory(
    instr: PInstr,
    index: int,
    nxt: Optional[StepFn],
    tgt: Optional[StepFn],
) -> StepFn:
    op = instr.op
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm

    if op is POp.SWITCH or op is POp.LDCTXT:
        cont = None if op is POp.LDCTXT else nxt

        def f_seq(st: Any) -> Any:
            st.on_uncached(instr, 0)
            return cont
        return f_seq

    if op is POp.LUI:
        value = imm & MASK64
        if rd == 0:
            def f_skip(st: Any) -> Any:
                return nxt
            return f_skip

        def f_lui(st: Any) -> Any:
            st.regs[rd] = value
            return nxt
        return f_lui

    if op is POp.LD:
        def f_ld(st: Any) -> Any:
            value = st.pmem_read((st.regs[rs1] + imm) & MASK64)
            if rd:
                st.regs[rd] = value
            return nxt
        return f_ld

    if op is POp.ST:
        def f_st(st: Any) -> Any:
            r = st.regs
            st.pmem_write((r[rs1] + imm) & MASK64, r[rd])
            return nxt
        return f_st

    if op is POp.BEQZ or op is POp.BNEZ:
        want_zero = op is POp.BEQZ

        def f_cond(st: Any) -> Any:
            return tgt if (st.regs[rs1] == 0) == want_zero else nxt
        return f_cond

    if op is POp.J:
        def f_jump(st: Any) -> Any:
            return tgt
        return f_jump

    if op is POp.TRAP:
        message = _trap_message(instr, index)

        def f_trap(st: Any) -> Any:
            raise ProtocolError(message)
        return f_trap

    if instr.is_uncached:
        reads_value = op in _VALUE_OPS

        def f_unc(st: Any) -> Any:
            st.on_uncached(instr, st.regs[rs1] if reads_value else 0)
            return nxt
        return f_unc

    # Plain ALU (register-register or register-immediate).
    fn = _ALU_FN[op]
    if op is POp.POPC or op is POp.CTZ:
        def f_bitop(st: Any) -> Any:
            if rd:
                st.regs[rd] = fn(st.regs[rs1], 0)
            return nxt
        return f_bitop
    if rs2 is None:
        b_imm = imm & MASK64

        def f_alu_ri(st: Any) -> Any:
            if rd:
                st.regs[rd] = fn(st.regs[rs1], b_imm)
            return nxt
        return f_alu_ri

    rr2: int = rs2

    def f_alu_rr(st: Any) -> Any:
        r = st.regs
        if rd:
            r[rd] = fn(r[rs1], r[rr2])
        return nxt
    return f_alu_rr


def run_functional(
    handler: Handler,
    runner: Any,
    max_steps: int,
) -> None:
    """Drive ``handler``'s compiled functional program against a
    FunctionalRunner-shaped state, with the interpreter's exact
    instruction accounting (TRAPs are not counted, SWITCH/LDCTXT are;
    the executed-instruction count is flushed to
    ``runner.instructions_executed`` even when an exception escapes)."""
    step: Any = compiled_for(handler).func_entry
    n = 0
    try:
        while step is not None:
            if n >= max_steps:
                raise ProtocolError(
                    f"handler {handler.name} exceeded {max_steps} steps"
                )
            step = step(runner)
            n += 1
    finally:
        runner.instructions_executed += n


# ----------------------------------------------------------------------
# Program 2: the PP timing walk (PPEngine._execute).
# ----------------------------------------------------------------------

class PPState:
    """Per-dispatch mutable state threaded through the PP program.

    The per-engine fields (``regs`` … ``mcdiv``) are filled once at
    engine construction; the per-dispatch fields (``ctx`` … the stat
    counters) are reset by ``PPEngine`` before each trampoline run.
    Stats accumulate here and are flushed to ``NodeStats.protocol`` in
    one step after the run — same totals, fewer attribute chains.
    """

    __slots__ = (
        "regs", "pmem", "dcache", "picache", "sdram", "mc", "mcdiv",
        "wheel",
        "ctx", "now", "t", "slot", "seen",
        "phits", "pmiss", "dhits", "dmiss", "branches",
    )

    def __init__(self) -> None:
        self.regs: List[int] = []
        self.pmem: dict = {}
        self.dcache: Any = None
        self.picache: Any = None
        self.sdram = 0
        self.mc: Any = None
        self.mcdiv = 1
        self.wheel: Any = None
        self.ctx: Any = None
        self.now = 0
        self.t = 0
        self.slot = 0
        self.seen: Set[int] = set()
        self.phits = 0
        self.pmiss = 0
        self.dhits = 0
        self.dmiss = 0
        self.branches = 0


def _pp_factory(handler: Handler) -> _Factory:
    base_pc = handler.pc

    def factory(
        instr: PInstr,
        index: int,
        nxt: Optional[StepFn],
        tgt: Optional[StepFn],
    ) -> StepFn:
        op = instr.op
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        line = (base_pc + index * PINSTR_BYTES) >> 6
        line_addr = line << 6

        if op is POp.SWITCH or op is POp.LDCTXT:
            cont = None if op is POp.LDCTXT else nxt

            def p_seq(st: Any) -> Any:
                if line not in st.seen:
                    st.seen.add(line)
                    if st.picache.access(line_addr):
                        st.phits += 1
                    else:
                        st.pmiss += 1
                        st.t += st.sdram
                        st.slot = 0
                st.t += 1
                st.slot = 0
                return cont
            return p_seq

        if op is POp.LD or op is POp.ST:
            is_store = op is POp.ST

            def p_mem(st: Any) -> Any:
                if line not in st.seen:
                    st.seen.add(line)
                    if st.picache.access(line_addr):
                        st.phits += 1
                    else:
                        st.pmiss += 1
                        st.t += st.sdram
                        st.slot = 0
                r = st.regs
                addr = (r[rs1] + imm) & MASK64
                st.slot = 0
                if st.dcache.access(addr):
                    st.dhits += 1
                    st.t += 1
                else:
                    st.dmiss += 1
                    st.t += st.sdram
                if is_store:
                    st.pmem[addr] = r[rd]
                else:
                    # Mirrors _execute: loads write back unconditionally.
                    r[rd] = st.pmem.get(addr, 0)
                return nxt
            return p_mem

        if op is POp.BEQZ or op is POp.BNEZ or op is POp.J:
            # J behaves as an always-taken conditional.
            always = op is POp.J
            want_zero = op is POp.BEQZ

            def p_branch(st: Any) -> Any:
                if line not in st.seen:
                    st.seen.add(line)
                    if st.picache.access(line_addr):
                        st.phits += 1
                    else:
                        st.pmiss += 1
                        st.t += st.sdram
                        st.slot = 0
                st.branches += 1
                st.slot = 0
                if always or (st.regs[rs1] == 0) == want_zero:
                    st.t += 2
                    return tgt
                st.t += 1
                return nxt
            return p_branch

        if op is POp.TRAP:
            message = _trap_message(instr, index)

            def p_trap(st: Any) -> Any:
                if line not in st.seen:
                    st.seen.add(line)
                    if st.picache.access(line_addr):
                        st.phits += 1
                    else:
                        st.pmiss += 1
                        st.t += st.sdram
                        st.slot = 0
                raise ProtocolError(message)
            return p_trap

        if instr.is_uncached:
            reads_value = op in _VALUE_OPS

            def p_unc(st: Any) -> Any:
                if line not in st.seen:
                    st.seen.add(line)
                    if st.picache.access(line_addr):
                        st.phits += 1
                    else:
                        st.pmiss += 1
                        st.t += st.sdram
                        st.slot = 0
                value = st.regs[rs1] if reads_value else 0
                st.t += 1
                st.slot = 0
                now = st.now
                mc = st.mc
                ctx = st.ctx
                st.wheel.schedule_at(
                    max(now, now + st.t * st.mcdiv),
                    partial(mc.uncached_op, ctx, instr, value),
                )
                return nxt
            return p_unc

        # Plain ALU (LUI included): dual-issue slot pairing.
        if op is POp.LUI:
            lui_value = imm & MASK64

            def p_lui(st: Any) -> Any:
                if line not in st.seen:
                    st.seen.add(line)
                    if st.picache.access(line_addr):
                        st.phits += 1
                    else:
                        st.pmiss += 1
                        st.t += st.sdram
                        st.slot = 0
                if st.slot == 0:
                    st.t += 1
                    st.slot = 1
                else:
                    st.slot = 0
                if rd:
                    st.regs[rd] = lui_value
                return nxt
            return p_lui

        fn = _ALU_FN[op]
        is_bitop = op is POp.POPC or op is POp.CTZ
        b_imm = imm & MASK64

        def p_alu(st: Any) -> Any:
            if line not in st.seen:
                st.seen.add(line)
                if st.picache.access(line_addr):
                    st.phits += 1
                else:
                    st.pmiss += 1
                    st.t += st.sdram
                    st.slot = 0
            if st.slot == 0:
                st.t += 1
                st.slot = 1
            else:
                st.slot = 0
            if rd:
                r = st.regs
                if is_bitop:
                    r[rd] = fn(r[rs1], 0)
                elif rs2 is None:
                    r[rd] = fn(r[rs1], b_imm)
                else:
                    r[rd] = fn(r[rs1], r[rs2])
            return nxt
        return p_alu

    return factory


# ----------------------------------------------------------------------
# Program 3: the SMTp µop feed (ProtocolThreadSource._make_uop).
#
# State protocol: the ProtocolThreadSource itself — ``regs``, ``pmem``
# (dict), ``ctx``, ``port``, ``tid``, ``bitops``, ``index``,
# ``fetching``, ``_emit``.  Each closure resolves one instruction,
# stores the successor closure in ``st._emit`` and returns the µop.
# ----------------------------------------------------------------------

def _uop_factory(handler: Handler) -> _Factory:
    base_pc = handler.pc

    def factory(
        instr: PInstr,
        index: int,
        nxt: Optional[StepFn],
        tgt: Optional[StepFn],
    ) -> StepFn:
        op = instr.op
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        pc = base_pc + index * PINSTR_BYTES
        next_index = index + 1
        srcs = tuple(instr.reads())

        if op is POp.SWITCH:
            def u_switch(st: Any) -> Any:
                st.index = next_index
                st._emit = nxt
                return protocol_uop(
                    UopKind.SWITCH, st.tid, pc, (), HDR,
                    0, None, False, 0, 1, None, st.ctx,
                )
            return u_switch

        if op is POp.LDCTXT:
            def u_ldctxt(st: Any) -> Any:
                st.fetching = False
                st._emit = None
                uop = protocol_uop(
                    UopKind.LDCTXT, st.tid, pc, (), ADDR,
                    0, None, False, 0, 1, None, st.ctx,
                )
                st.port.on_fetch_complete()
                return uop
            return u_ldctxt

        if op is POp.ST:
            def u_st(st: Any) -> Any:
                r = st.regs
                addr = (r[rs1] + imm) & MASK64
                value = r[rd]
                st.pmem[addr] = value
                st.index = next_index
                st._emit = nxt
                return protocol_uop(
                    UopKind.STORE, st.tid, pc, srcs, None,
                    addr, value, False, 0, 1, None, st.ctx,
                )
            return u_st

        if op is POp.LD:
            def u_ld(st: Any) -> Any:
                r = st.regs
                addr = (r[rs1] + imm) & MASK64
                uop = protocol_uop(
                    UopKind.LOAD, st.tid, pc, srcs, rd,
                    addr, None, False, 0, 1, None, st.ctx,
                )
                if rd:
                    r[rd] = st.pmem.get(addr, 0)
                st.index = next_index
                st._emit = nxt
                return uop
            return u_ld

        if op is POp.BEQZ or op is POp.BNEZ or op is POp.J:
            always = op is POp.J
            want_zero = op is POp.BEQZ
            target_index = instr.target
            taken_pc = base_pc + target_index * PINSTR_BYTES
            fall_pc = base_pc + next_index * PINSTR_BYTES

            def u_branch(st: Any) -> Any:
                if always or (st.regs[rs1] == 0) == want_zero:
                    st.index = target_index
                    st._emit = tgt
                    return protocol_uop(
                        UopKind.BRANCH, st.tid, pc, srcs, None,
                        0, None, True, taken_pc, 1, None, st.ctx,
                    )
                st.index = next_index
                st._emit = nxt
                return protocol_uop(
                    UopKind.BRANCH, st.tid, pc, srcs, None,
                    0, None, False, fall_pc, 1, None, st.ctx,
                )
            return u_branch

        if op is POp.TRAP:
            message = _trap_message(instr, index)

            def u_trap(st: Any) -> Any:
                raise ProtocolError(message)
            return u_trap

        if instr.is_uncached:
            reads_value = op in _VALUE_OPS

            def u_unc(st: Any) -> Any:
                value = st.regs[rs1] if reads_value else 0
                st.index = next_index
                st._emit = nxt
                return protocol_uop(
                    UopKind.UNCACHED, st.tid, pc, srcs, None,
                    0, value, False, 0, 1, instr, st.ctx,
                )
            return u_unc

        # Plain ALU / LUI.
        dest = rd if rd != 0 else None
        if op is POp.LUI:
            lui_value = imm & MASK64

            def u_lui(st: Any) -> Any:
                st.index = next_index
                st._emit = nxt
                uop = protocol_uop(
                    UopKind.ALU, st.tid, pc, srcs, dest,
                    0, None, False, 0, 1, None, st.ctx,
                )
                if dest is not None:
                    st.regs[dest] = lui_value
                return uop
            return u_lui

        fn = _ALU_FN[op]
        is_bitop = op is POp.POPC or op is POp.CTZ
        b_imm = imm & MASK64

        def u_alu(st: Any) -> Any:
            r = st.regs
            if is_bitop:
                value = fn(r[rs1], 0)
                latency = 1 if st.bitops else SLOW_BITOP_LATENCY
            else:
                value = fn(r[rs1], b_imm if rs2 is None else r[rs2])
                latency = 1
            st.index = next_index
            st._emit = nxt
            uop = protocol_uop(
                UopKind.ALU, st.tid, pc, srcs, dest,
                0, None, False, 0, latency, None, st.ctx,
            )
            if dest is not None:
                r[dest] = value
            return uop
        return u_alu

    return factory
