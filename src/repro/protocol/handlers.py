"""The directory coherence protocol, written as protocol-ISA programs.

This is an invalidation-based bitvector protocol derived from the SGI
Origin 2000's, with eager-exclusive replies (paper §3): a read miss to
an unowned line receives an exclusive (writable) copy, and a write
miss receives its data immediately while invalidation acks are
collected at the requester's MSHR.

Handler inventory
-----------------
Home-side (run at the line's home node):

``h_get`` / ``h_getx`` / ``h_upgrade``
    request handlers; dispatch them for both local misses and network
    requests.
``h_put`` / ``h_swb`` / ``h_xfer`` / ``h_int_nack``
    writeback and revision handlers closing three-hop transactions.

Owner/sharer-side (run at the node whose cache is probed):

``h_int_shared`` / ``h_int_excl`` / ``h_inval``
    launch an L2 probe and finish; the probe reply dispatches
``h_probe_sh_done`` / ``h_probe_ex_done`` / ``h_inval_done``
    which forward data to the requester and revisions to the home.

Requester-side (the paper's six-instruction critical handlers):

``h_reply_*`` deliver replies to the MSHRs, and ``pi_fwd_*`` forward
local misses whose home is remote.

Header layout (shared with the dispatch hardware)::

    bits 0-7   message type (MsgType.value)
    bits 8-13  src node (incoming) / dest node (outgoing)
    bits 16-21 requester node
    bits 24-29 invalidation-ack count (outgoing replies)
    bit 30     probe hit (probe replies)
    bit 31     probe dirty (probe replies)
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional

from repro.network.messages import MsgType
from repro.protocol import directory as d
from repro.protocol.directory import DirectoryLayout
from repro.protocol.isa import (
    ADDR,
    DIR_BASE,
    ENTRY_SHIFT,
    HDR,
    HOME_SHIFT,
    LINE_SHIFT,
    LOCAL_MASK,
    NODE_ID,
    PROBE_DOWNGRADE,
    PROBE_INVAL,
    RESEND_AS_GETX,
    RESEND_SAME,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
    T6,
    T7,
    ZERO,
    Handler,
    HandlerBuilder,
    HandlerTable,
)

HDR_SRC_SHIFT = 8
HDR_REQ_SHIFT = 16
HDR_ACK_SHIFT = 24
HDR_FOUND_SHIFT = 30
HDR_DIRTY_SHIFT = 31
NODE_FIELD_MASK = 0x3F


def make_header(
    mtype: MsgType,
    peer: int,
    requester: int,
    acks: int = 0,
    found: bool = False,
    dirty: bool = False,
) -> int:
    """Compose a header word (Python-side mirror of the handler code)."""
    return (
        mtype.value
        | (peer << HDR_SRC_SHIFT)
        | (requester << HDR_REQ_SHIFT)
        | (acks << HDR_ACK_SHIFT)
        | (int(found) << HDR_FOUND_SHIFT)
        | (int(dirty) << HDR_DIRTY_SHIFT)
    )


def header_type(header: int) -> int:
    return header & 0xFF


def header_peer(header: int) -> int:
    return (header >> HDR_SRC_SHIFT) & NODE_FIELD_MASK


def header_requester(header: int) -> int:
    return (header >> HDR_REQ_SHIFT) & NODE_FIELD_MASK


def header_acks(header: int) -> int:
    return (header >> HDR_ACK_SHIFT) & 0x3F


# ---------------------------------------------------------------------------
# Builder macros
# ---------------------------------------------------------------------------


def dir_prologue(h: HandlerBuilder) -> None:
    """T0 = &dir[line], T1 = entry, T2 = state, T3 = requester."""
    h.and_(T0, ADDR, LOCAL_MASK)
    h.srlv(T0, T0, LINE_SHIFT)
    h.sllv(T0, T0, ENTRY_SHIFT)
    h.add(T0, T0, DIR_BASE)
    h.ld(T1, T0)
    h.andi(T2, T1, d.STATE_MASK)
    h.srli(T3, HDR, HDR_REQ_SHIFT)
    h.andi(T3, T3, NODE_FIELD_MASK)


def compose_send(
    h: HandlerBuilder,
    mtype: MsgType,
    dest_reg: int,
    req_reg: int,
    hdr_reg: int = T6,
    tmp: int = T7,
    acks_reg: int = None,
) -> None:
    """Emit header composition + sendh/senda for one outgoing message."""
    h.li(hdr_reg, mtype.value)
    h.slli(tmp, dest_reg, HDR_SRC_SHIFT)
    h.or_(hdr_reg, hdr_reg, tmp)
    h.slli(tmp, req_reg, HDR_REQ_SHIFT)
    h.or_(hdr_reg, hdr_reg, tmp)
    if acks_reg is not None:
        h.slli(tmp, acks_reg, HDR_ACK_SHIFT)
        h.or_(hdr_reg, hdr_reg, tmp)
    h.sendh(hdr_reg)
    h.senda(ADDR)


def inval_loop(h: HandlerBuilder, vec_reg: int, req_reg: int) -> None:
    """Send INVAL to every set bit of ``vec_reg`` (destroys T5/T6/T7)."""
    h.label("inv_loop")
    h.beqz(vec_reg, "inv_done")
    h.ctz(T5, vec_reg)
    compose_send(h, MsgType.INVAL, dest_reg=T5, req_reg=req_reg)
    h.addi(T5, vec_reg, -1)
    h.and_(vec_reg, vec_reg, T5)
    h.j("inv_loop")
    h.label("inv_done")


def clear_bit(h: HandlerBuilder, vec_reg: int, bit_reg: int, tmp: int = T5) -> None:
    h.li(tmp, 1)
    h.sllv(tmp, tmp, bit_reg)
    h.nor(tmp, tmp, ZERO)
    h.and_(vec_reg, vec_reg, tmp)


# ---------------------------------------------------------------------------
# Home-side request handlers
# ---------------------------------------------------------------------------


def get_unowned_eager_exclusive(h: HandlerBuilder) -> None:
    """Default GET unowned arm: eager-exclusive reply (paper §3) —
    hand out a writable copy."""
    h.slli(T4, T3, d.OWNER_SHIFT)
    h.ori(T4, T4, d.EXCLUSIVE)
    h.st(T4, T0)
    compose_send(h, MsgType.DATA_EXCL, dest_reg=T3, req_reg=T3)
    h.done()


def get_exclusive_downgrade(h: HandlerBuilder) -> None:
    """Default GET exclusive arm: forward a downgrading intervention
    to the owner; go busy.  On entry T3 = requester, T4 = owner."""
    h.slli(T5, T4, d.OWNER_SHIFT)
    h.ori(T5, T5, d.BUSY_SHARED)
    h.slli(T6, T3, d.WAITER_SHIFT)
    h.or_(T5, T5, T6)
    h.st(T5, T0)
    compose_send(h, MsgType.INT_SHARED, dest_reg=T4, req_reg=T3)
    h.done()


def build_h_get(
    unowned_arm: Callable[[HandlerBuilder], None] = get_unowned_eager_exclusive,
    exclusive_arm: Callable[[HandlerBuilder], None] = get_exclusive_downgrade,
) -> Handler:
    """The GET (read-miss) home handler.

    The unowned and foreign-owner arms are the two places registered
    protocol variants legitimately differ (MSI drops the
    eager-exclusive reply; migratory sharing transfers ownership on a
    read), so they are pluggable; everything else — debt/busy NACKing,
    sharer accounting, the own_req writeback race — is protocol
    invariant and shared by every bundle.
    """
    h = HandlerBuilder("h_get")
    dir_prologue(h)
    h.srli(T4, T1, d.XFER_DEBT_SHIFT)
    h.andi(T4, T4, 1)
    h.bnez(T4, "nack")  # stale XFER still owed: no new transaction
    h.beqz(T2, "unowned")
    h.seqi(T4, T2, d.SHARED)
    h.bnez(T4, "shared")
    h.seqi(T4, T2, d.EXCLUSIVE)
    h.bnez(T4, "exclusive")
    h.label("nack")
    # Busy (or XFER debt outstanding): NACK the requester; it retries.
    compose_send(h, MsgType.NACK, dest_reg=T3, req_reg=T3)
    h.done()

    h.label("unowned")
    unowned_arm(h)

    h.label("shared")
    h.addi(T4, T3, d.VECTOR_SHIFT)
    h.li(T5, 1)
    h.sllv(T5, T5, T4)
    h.or_(T1, T1, T5)
    h.st(T1, T0)
    compose_send(h, MsgType.DATA_SHARED, dest_reg=T3, req_reg=T3)
    h.done()

    h.label("exclusive")
    h.srli(T4, T1, d.OWNER_SHIFT)
    h.andi(T4, T4, d.OWNER_MASK)
    h.seq(T5, T4, T3)
    h.bnez(T5, "own_req")
    exclusive_arm(h)

    h.label("own_req")
    # The recorded owner is requesting again: the only way it can miss
    # while the directory still names it owner is an eviction whose
    # PUT is in flight.  NACK until the PUT arrives and clears
    # ownership — re-granting from memory here would hand out stale
    # data and let the old PUT later erase the new grant's ownership.
    compose_send(h, MsgType.NACK, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


def build_h_getx() -> Handler:
    h = HandlerBuilder("h_getx")
    dir_prologue(h)
    h.srli(T4, T1, d.XFER_DEBT_SHIFT)
    h.andi(T4, T4, 1)
    h.bnez(T4, "nack")  # stale XFER still owed: no new transaction
    h.beqz(T2, "unowned")
    h.seqi(T4, T2, d.SHARED)
    h.bnez(T4, "shared")
    h.seqi(T4, T2, d.EXCLUSIVE)
    h.bnez(T4, "exclusive")
    h.label("nack")
    compose_send(h, MsgType.NACK, dest_reg=T3, req_reg=T3)
    h.done()

    h.label("unowned")
    h.slli(T4, T3, d.OWNER_SHIFT)
    h.ori(T4, T4, d.EXCLUSIVE)
    h.st(T4, T0)
    compose_send(h, MsgType.DATA_EXCL, dest_reg=T3, req_reg=T3)
    h.done()

    h.label("shared")
    h.srli(T4, T1, d.VECTOR_SHIFT)  # sharer vector
    clear_bit(h, T4, T3)  # drop the requester's own bit
    h.popc(T1, T4)  # T1 = ack count (entry no longer needed)
    h.slli(T5, T3, d.OWNER_SHIFT)
    h.ori(T5, T5, d.EXCLUSIVE)
    h.st(T5, T0)
    compose_send(h, MsgType.DATA_EXCL, dest_reg=T3, req_reg=T3, acks_reg=T1)
    inval_loop(h, T4, T3)
    h.done()

    h.label("exclusive")
    h.srli(T4, T1, d.OWNER_SHIFT)
    h.andi(T4, T4, d.OWNER_MASK)
    h.seq(T5, T4, T3)
    h.bnez(T5, "own_req")
    h.slli(T5, T4, d.OWNER_SHIFT)
    h.ori(T5, T5, d.BUSY_EXCLUSIVE)
    h.slli(T6, T3, d.WAITER_SHIFT)
    h.or_(T5, T5, T6)
    h.st(T5, T0)
    compose_send(h, MsgType.INT_EXCL, dest_reg=T4, req_reg=T3)
    h.done()

    h.label("own_req")
    # Writeback race: same reasoning as h_get's own_req arm.
    compose_send(h, MsgType.NACK, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


def build_h_upgrade() -> Handler:
    h = HandlerBuilder("h_upgrade")
    dir_prologue(h)
    h.seqi(T4, T2, d.SHARED)
    h.beqz(T4, "fail")
    h.srli(T4, T1, d.VECTOR_SHIFT)
    h.srlv(T5, T4, T3)
    h.andi(T5, T5, 1)
    h.beqz(T5, "fail")  # requester lost its copy to a racing inval
    clear_bit(h, T4, T3)
    h.popc(T1, T4)
    h.slli(T5, T3, d.OWNER_SHIFT)
    h.ori(T5, T5, d.EXCLUSIVE)
    h.st(T5, T0)
    compose_send(h, MsgType.UPGRADE_ACK, dest_reg=T3, req_reg=T3, acks_reg=T1)
    inval_loop(h, T4, T3)
    h.done()

    h.label("fail")
    compose_send(h, MsgType.NACK_UPGRADE, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


# ---------------------------------------------------------------------------
# Home-side writeback / revision handlers
# ---------------------------------------------------------------------------


def build_h_put() -> Handler:
    h = HandlerBuilder("h_put")
    dir_prologue(h)
    h.srli(T3, HDR, HDR_SRC_SHIFT)  # writer (src), not requester
    h.andi(T3, T3, NODE_FIELD_MASK)
    h.srli(T4, T1, d.OWNER_SHIFT)
    h.andi(T4, T4, d.OWNER_MASK)
    h.seq(T5, T4, T3)
    h.beqz(T5, "foreign")
    h.memwr()
    h.seqi(T5, T2, d.EXCLUSIVE)
    h.bnez(T5, "stable")
    h.seqi(T5, T2, d.BUSY_SHARED)
    h.bnez(T5, "absorb")
    h.seqi(T5, T2, d.BUSY_EXCLUSIVE)
    h.bnez(T5, "absorb")
    h.trap(1)
    h.done()

    h.label("absorb")
    # The owner wrote back mid-transaction: the intervention in flight
    # will find nothing and come back INT_NACK (behind this PUT on the
    # same VN2 FIFO), and h_int_nack completes the waiter from the
    # memory just updated.  Crucially the WB_ACK is withheld until
    # then: an unacknowledged writeback is what lets the old owner
    # answer the stale intervention "not found" and hold back new
    # requests for the line.
    h.done()

    h.label("foreign")
    # Writer is not the recorded owner.  The one legal case: a BUSY_*
    # entry whose *waiter* is the writer — the newly granted owner
    # evicted so fast its PUT overtook the old owner's revision
    # message (XFER travels a different path).  Resolve the
    # transaction here, but record the XFER debt: until the stale
    # revision arrives and h_xfer consumes it, h_get/h_getx NACK so
    # no look-alike BUSY transaction can resurrect it.  Any other
    # writer is a protocol error.
    h.seqi(T5, T2, d.BUSY_SHARED)
    h.bnez(T5, "late")
    h.seqi(T5, T2, d.BUSY_EXCLUSIVE)
    h.beqz(T5, "bad")
    h.label("late")
    h.srli(T5, T1, d.WAITER_SHIFT)
    h.andi(T5, T5, d.WAITER_MASK)
    h.seq(T5, T5, T3)
    h.beqz(T5, "bad")
    h.memwr()
    h.li(T5, 1)
    h.slli(T5, T5, d.XFER_DEBT_SHIFT)
    h.st(T5, T0)  # UNOWNED + XFER debt
    compose_send(h, MsgType.WB_ACK, dest_reg=T3, req_reg=T3)
    h.done()
    h.label("bad")
    h.trap(1)
    h.done()

    h.label("stable")
    h.st(ZERO, T0)  # UNOWNED
    compose_send(h, MsgType.WB_ACK, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


def build_h_swb() -> Handler:
    h = HandlerBuilder("h_swb")
    dir_prologue(h)
    h.seqi(T4, T2, d.BUSY_SHARED)
    h.beqz(T4, "bad")
    h.srli(T4, HDR, HDR_SRC_SHIFT)  # old owner
    h.andi(T4, T4, NODE_FIELD_MASK)
    h.memwr()
    # entry = SHARED | bit(old owner) | bit(requester)
    h.addi(T5, T4, d.VECTOR_SHIFT)
    h.li(T6, 1)
    h.sllv(T6, T6, T5)
    h.ori(T6, T6, d.SHARED)
    h.addi(T5, T3, d.VECTOR_SHIFT)
    h.li(T7, 1)
    h.sllv(T7, T7, T5)
    h.or_(T6, T6, T7)
    h.st(T6, T0)
    h.done()
    h.label("bad")
    h.trap(2)
    h.done()
    return h.build()


def build_h_xfer() -> Handler:
    h = HandlerBuilder("h_xfer")
    dir_prologue(h)
    h.srli(T4, T1, d.XFER_DEBT_SHIFT)
    h.andi(T4, T4, 1)
    h.bnez(T4, "consume")
    h.seqi(T4, T2, d.BUSY_EXCLUSIVE)
    h.beqz(T4, "stale")
    h.srli(T4, T1, d.WAITER_SHIFT)
    h.andi(T4, T4, d.WAITER_MASK)
    h.seq(T4, T4, T3)
    h.beqz(T4, "stale")
    h.slli(T5, T3, d.OWNER_SHIFT)
    h.ori(T5, T5, d.EXCLUSIVE)
    h.st(T5, T0)
    h.done()
    h.label("consume")
    # This is the stale revision h_put's late arm left a debt for.
    # The entry carries only the debt bit (the late arm wrote it over
    # an otherwise-resolved transaction), so clearing the word returns
    # the line to plain UNOWNED and new requests stop NACKing.
    h.st(ZERO, T0)
    h.done()
    h.label("stale")
    # Not this transaction's revision and no debt recorded: h_put
    # already resolved the entry some other way.  Drop it.
    h.done()
    return h.build()


def build_h_int_nack() -> Handler:
    # The intervention missed: the probed owner had written the line
    # back, and its PUT was absorbed by h_put's BUSY arm (the PUT
    # precedes this INT_NACK on the same VN2 FIFO).  Resolve the
    # parked transaction from the freshly updated memory, and only now
    # acknowledge the old owner's writeback — see h_put's absorb arm.
    h = HandlerBuilder("h_int_nack")
    dir_prologue(h)
    h.seqi(T4, T2, d.BUSY_SHARED)
    h.bnez(T4, "resolve")
    h.seqi(T4, T2, d.BUSY_EXCLUSIVE)
    h.bnez(T4, "resolve")
    h.trap(4)
    h.done()

    h.label("resolve")
    h.srli(T4, T1, d.WAITER_SHIFT)
    h.andi(T4, T4, d.WAITER_MASK)  # waiter: the parked requester
    h.srli(T5, HDR, HDR_SRC_SHIFT)
    h.andi(T5, T5, NODE_FIELD_MASK)  # old owner (the probed node)
    h.slli(T6, T4, d.OWNER_SHIFT)
    h.ori(T6, T6, d.EXCLUSIVE)
    h.st(T6, T0)
    compose_send(h, MsgType.DATA_EXCL, dest_reg=T4, req_reg=T4)
    compose_send(h, MsgType.WB_ACK, dest_reg=T5, req_reg=T5)
    h.done()
    return h.build()


# ---------------------------------------------------------------------------
# Probed-node handlers
# ---------------------------------------------------------------------------


def build_h_int_shared() -> Handler:
    h = HandlerBuilder("h_int_shared")
    h.probe(ADDR, PROBE_DOWNGRADE)
    h.done()
    return h.build()


def build_h_int_excl() -> Handler:
    h = HandlerBuilder("h_int_excl")
    h.probe(ADDR, PROBE_INVAL)
    h.done()
    return h.build()


def build_h_inval() -> Handler:
    h = HandlerBuilder("h_inval")
    h.probe(ADDR, PROBE_INVAL)
    h.done()
    return h.build()


def _probe_done(name: str, data_type: MsgType, revision: MsgType) -> Handler:
    h = HandlerBuilder(name)
    h.srli(T3, HDR, HDR_REQ_SHIFT)
    h.andi(T3, T3, NODE_FIELD_MASK)  # requester
    h.srli(T4, HDR, HDR_SRC_SHIFT)
    h.andi(T4, T4, NODE_FIELD_MASK)  # home
    h.srli(T5, HDR, HDR_FOUND_SHIFT)
    h.andi(T5, T5, 1)
    h.beqz(T5, "miss")
    compose_send(h, data_type, dest_reg=T3, req_reg=T3)
    compose_send(h, revision, dest_reg=T4, req_reg=T3)
    h.done()
    h.label("miss")
    compose_send(h, MsgType.INT_NACK, dest_reg=T4, req_reg=T3)
    h.done()
    return h.build()


def build_h_probe_sh_done() -> Handler:
    return _probe_done("h_probe_sh_done", MsgType.DATA_SHARED, MsgType.SWB)


def build_h_probe_ex_done() -> Handler:
    return _probe_done("h_probe_ex_done", MsgType.DATA_EXCL, MsgType.XFER)


def build_h_inval_done() -> Handler:
    h = HandlerBuilder("h_inval_done")
    h.srli(T3, HDR, HDR_REQ_SHIFT)
    h.andi(T3, T3, NODE_FIELD_MASK)
    compose_send(h, MsgType.INV_ACK, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


# ---------------------------------------------------------------------------
# Requester-side reply handlers (the short critical handlers)
# ---------------------------------------------------------------------------


def _reply(name: str) -> Handler:
    h = HandlerBuilder(name)
    h.complete()
    h.done()
    return h.build()


def build_h_reply_wb_ack() -> Handler:
    # WB_ACK is load-bearing: it clears the writeback buffer and
    # releases any request for the line that parked behind the PUT,
    # so it must COMPLETE into the MC like the other replies.
    h = HandlerBuilder("h_reply_wb_ack")
    h.complete()
    h.done()
    return h.build()


def _nack_reply(name: str, mode: int) -> Handler:
    h = HandlerBuilder(name)
    h.resend(mode)
    h.done()
    return h.build()


# ---------------------------------------------------------------------------
# Local-miss forwarding (remote home)
# ---------------------------------------------------------------------------


def _pi_fwd(name: str, mtype: MsgType) -> Handler:
    h = HandlerBuilder(name)
    h.srlv(T3, ADDR, HOME_SHIFT)
    h.li(T4, mtype.value)
    h.slli(T5, T3, HDR_SRC_SHIFT)
    h.or_(T4, T4, T5)
    h.slli(T5, NODE_ID, HDR_REQ_SHIFT)
    h.or_(T4, T4, T5)
    h.sendh(T4)
    h.senda(ADDR)
    h.done()
    return h.build()


# ---------------------------------------------------------------------------
# Assembly of the full table
# ---------------------------------------------------------------------------


def build_handler_table(
    replacements: Optional[Mapping[str, Handler]] = None,
) -> HandlerTable:
    """Assemble every handler at its protocol-code-space PC.

    ``replacements`` maps handler names to substitute programs; the
    registered protocol variants (:mod:`repro.protocol.registry`) use
    it to swap individual handlers while keeping the placement order —
    and therefore the default table's PCs — identical.
    """
    table = HandlerTable(code_base=d.CODE_BASE)
    for handler in (
        build_h_get(),
        build_h_getx(),
        build_h_upgrade(),
        build_h_put(),
        build_h_swb(),
        build_h_xfer(),
        build_h_int_nack(),
        build_h_int_shared(),
        build_h_int_excl(),
        build_h_inval(),
        build_h_probe_sh_done(),
        build_h_probe_ex_done(),
        build_h_inval_done(),
        _reply("h_reply_data_sh"),
        _reply("h_reply_data_ex"),
        _reply("h_reply_upgrade_ack"),
        _reply("h_reply_inv_ack"),
        build_h_reply_wb_ack(),
        _nack_reply("h_reply_nack", RESEND_SAME),
        _nack_reply("h_reply_nack_upgrade", RESEND_AS_GETX),
        _pi_fwd("pi_fwd_get", MsgType.GET),
        _pi_fwd("pi_fwd_getx", MsgType.GETX),
        _pi_fwd("pi_fwd_upgrade", MsgType.UPGRADE),
    ):
        if replacements and handler.name in replacements:
            handler = replacements[handler.name]
        table.place(handler)
    return table


#: Dispatch map: incoming network message type -> home/probed handler.
NETWORK_DISPATCH = {
    MsgType.GET: "h_get",
    MsgType.GETX: "h_getx",
    MsgType.UPGRADE: "h_upgrade",
    MsgType.PUT: "h_put",
    MsgType.SWB: "h_swb",
    MsgType.XFER: "h_xfer",
    MsgType.INT_NACK: "h_int_nack",
    MsgType.INT_SHARED: "h_int_shared",
    MsgType.INT_EXCL: "h_int_excl",
    MsgType.INVAL: "h_inval",
    MsgType.DATA_SHARED: "h_reply_data_sh",
    MsgType.DATA_EXCL: "h_reply_data_ex",
    MsgType.UPGRADE_ACK: "h_reply_upgrade_ack",
    MsgType.INV_ACK: "h_reply_inv_ack",
    MsgType.WB_ACK: "h_reply_wb_ack",
    MsgType.NACK: "h_reply_nack",
    MsgType.NACK_UPGRADE: "h_reply_nack_upgrade",
}

#: Dispatch map for local misses whose home is this node.
LOCAL_HOME_DISPATCH = {
    MsgType.GET: "h_get",
    MsgType.GETX: "h_getx",
    MsgType.UPGRADE: "h_upgrade",
    MsgType.PUT: "h_put",
}

#: Dispatch map for local misses whose home is remote.
LOCAL_REMOTE_DISPATCH = {
    MsgType.GET: "pi_fwd_get",
    MsgType.GETX: "pi_fwd_getx",
    MsgType.UPGRADE: "pi_fwd_upgrade",
}

#: Probe-reply dispatch, keyed by the original intervention type.
PROBE_DISPATCH = {
    MsgType.INT_SHARED: "h_probe_sh_done",
    MsgType.INT_EXCL: "h_probe_ex_done",
    MsgType.INVAL: "h_inval_done",
}


def boot_registers(layout: DirectoryLayout, node_id: int) -> List[int]:
    """Initial values of all 32 protocol registers (the boot sequence).

    Every logical register is initialized so it stays mapped for the
    lifetime of the machine (paper §2.2's single-reserved-register
    argument relies on this).
    """
    regs = [0] * 32
    regs[HOME_SHIFT] = layout.home_shift
    regs[ENTRY_SHIFT] = layout.entry_shift
    regs[LOCAL_MASK] = layout.local_mask
    regs[NODE_ID] = node_id
    regs[DIR_BASE] = layout.dir_base
    regs[LINE_SHIFT] = layout.line_shift
    return regs
