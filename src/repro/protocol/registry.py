"""The protocol registry: coherence protocols as registered bundles.

A protocol is data, not code structure: a :class:`ProtocolBundle`
carries everything the machine, the verifier stack, and the fuzzer
need to run one protocol —

* a handler-table factory (the protocol-ISA programs, with the
  active-memory extension handlers appended, compiled on demand by
  :mod:`repro.protocol.compile` like any other table),
* the four dispatch tables (network, local-home, local-remote, probe),
  owned by the bundle rather than mutated module globals,
* metadata: the stable directory states and the human description.

Machines resolve the bundle from :attr:`MachineParams.protocol`;
``repro analyze``, ``repro fuzz`` and ``repro sweep`` take a
``--protocol`` flag.  The protocol name folds into the sweep cache
key automatically (it is a ``MachineParams`` field) and into fuzz
artifacts, so cached results and replays can never cross protocols.

Three bundles ship (see docs/protocols.md for the contract and the
verification checklist a new bundle must pass):

``smtp-bitvector``
    the default — the paper's SGI-Origin-derived bitvector protocol
    with eager-exclusive replies, bit-identical to the pre-registry
    behavior.
``msi``
    the 3-state MSI baseline (no eager-exclusive replies);
    :mod:`repro.protocol.msi`.
``migratory``
    the migratory-sharing optimization (read misses to exclusive
    lines transfer ownership); :mod:`repro.protocol.migratory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

from repro.common.errors import ConfigError
from repro.network.messages import MsgType
from repro.protocol import extensions, migratory, msi
from repro.protocol.handlers import (
    LOCAL_HOME_DISPATCH,
    LOCAL_REMOTE_DISPATCH,
    NETWORK_DISPATCH,
    PROBE_DISPATCH,
    build_handler_table,
)
from repro.protocol.isa import HandlerTable

#: The paper's protocol; `MachineParams.protocol` defaults to it.
DEFAULT_PROTOCOL = "smtp-bitvector"


@dataclass(frozen=True)
class ProtocolBundle:
    """One registered coherence protocol.

    Frozen and built from module-level callables/constants only, so a
    bundle held by a :class:`repro.core.machine.Machine` pickles by
    reference (machine checkpointing, pool workers).
    """

    name: str
    description: str
    #: Zero-arg factory assembling the coherence handler table; the
    #: registry appends the active-memory extension handlers so every
    #: bundle serves AM_OP/AM_REPLY identically.
    table_factory: Callable[[], HandlerTable]
    #: Incoming network message type -> home/probed handler.
    network_dispatch: Mapping[MsgType, str] = field(repr=False)
    #: Local miss, home is this node.
    local_home_dispatch: Mapping[MsgType, str] = field(repr=False)
    #: Local miss, home is remote.
    local_remote_dispatch: Mapping[MsgType, str] = field(repr=False)
    #: Probe replies, keyed by the original intervention type.
    probe_dispatch: Mapping[MsgType, str] = field(repr=False)
    #: Stable directory-state labels (metadata for docs/reports).
    stable_states: Tuple[str, ...] = ()
    #: Do read misses to unowned lines receive writable copies?
    eager_exclusive: bool = True

    def build_table(self) -> HandlerTable:
        """Assemble the full handler table for this protocol."""
        table = self.table_factory()
        extensions.install(table)
        return table


_REGISTRY: Dict[str, ProtocolBundle] = {}


def register(bundle: ProtocolBundle) -> ProtocolBundle:
    """Register a bundle; names are unique for the process lifetime."""
    if bundle.name in _REGISTRY:
        raise ConfigError(f"protocol {bundle.name!r} is already registered")
    _REGISTRY[bundle.name] = bundle
    return bundle


def get(name: str) -> ProtocolBundle:
    """Resolve a registered protocol by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; registered protocols: "
            f"{', '.join(names())}"
        ) from None


def names() -> Tuple[str, ...]:
    """All registered protocol names, sorted."""
    return tuple(sorted(_REGISTRY))


def _network_dispatch() -> Mapping[MsgType, str]:
    """The shared network dispatch with the extension rows baked in
    (bundles own their tables; nothing mutates globals at run time)."""
    table = dict(NETWORK_DISPATCH)
    table[MsgType.AM_OP] = "h_am_op"
    table[MsgType.AM_REPLY] = "h_am_reply"
    return table


def _shared_dispatch() -> Dict[str, Mapping[MsgType, str]]:
    """All three shipped protocols dispatch identically: they differ
    only in handler *programs*, never in which handler serves a
    message — that is what keeps a variant a pure table substitution."""
    return {
        "network_dispatch": _network_dispatch(),
        "local_home_dispatch": dict(LOCAL_HOME_DISPATCH),
        "local_remote_dispatch": dict(LOCAL_REMOTE_DISPATCH),
        "probe_dispatch": dict(PROBE_DISPATCH),
    }


register(
    ProtocolBundle(
        name=DEFAULT_PROTOCOL,
        description=(
            "SGI-Origin-derived bitvector directory protocol with "
            "eager-exclusive replies (the paper's protocol, §3)"
        ),
        table_factory=build_handler_table,
        stable_states=("UNOWNED", "SHARED", "EXCLUSIVE"),
        eager_exclusive=True,
        **_shared_dispatch(),
    )
)

register(
    ProtocolBundle(
        name="msi",
        description=(
            "3-state MSI baseline: read misses always receive SHARED "
            "copies (no eager-exclusive replies)"
        ),
        table_factory=msi.build_msi_table,
        stable_states=("I (UNOWNED)", "S (SHARED)", "M (EXCLUSIVE)"),
        eager_exclusive=False,
        **_shared_dispatch(),
    )
)

register(
    ProtocolBundle(
        name="migratory",
        description=(
            "bitvector protocol + migratory sharing: a read miss to an "
            "exclusively held line transfers the exclusive copy"
        ),
        table_factory=migratory.build_migratory_table,
        stable_states=("UNOWNED", "SHARED", "EXCLUSIVE"),
        eager_exclusive=True,
        **_shared_dispatch(),
    )
)
