"""Migratory-sharing optimization layered on the bitvector protocol.

Migratory data — a shared structure each processor reads *and then
writes* inside a critical section (counters, reductions, lock-protected
records) — degenerates under the default protocol: the reader's GET
downgrades the previous owner to SHARED, and the write that follows
must come back with an UPGRADE and invalidate it again.  Four protocol
messages and two directory transactions per migration.

The migratory variant recognizes the pattern at the directory: a read
miss to a line another node holds EXCLUSIVE transfers the *exclusive*
copy instead of downgrading — ``h_get``'s foreign-owner arm parks the
entry ``BUSY_EXCLUSIVE`` and forwards an invalidating ``INT_EXCL``,
exactly the shape ``h_getx`` uses.  The follow-up write then hits a
writable line locally; the whole migration costs one transaction.
(Reads to SHARED lines still join the sharer vector, so read-mostly
data keeps its multiple copies; only owner-to-reader handoffs change.)

Every other handler and all four dispatch tables are shared with the
default bundle.  ``h_int_shared``/``h_probe_sh_done``/``h_swb`` become
dynamically unreachable — nothing composes INT_SHARED or SWB anymore —
but stay registered and verified, which is what keeps the variant a
pure table substitution.
"""

from __future__ import annotations

from repro.network.messages import MsgType
from repro.protocol import directory as d
from repro.protocol.handlers import build_h_get, build_handler_table, compose_send
from repro.protocol.isa import T0, T3, T4, T5, T6, Handler, HandlerBuilder, HandlerTable


def get_exclusive_migrate(h: HandlerBuilder) -> None:
    """Migratory GET exclusive arm: transfer ownership to the reader.

    On entry T3 = requester, T4 = recorded owner.  Mirrors h_getx's
    exclusive arm: park BUSY_EXCLUSIVE with the requester as waiter
    and send an invalidating intervention to the owner; the owner's
    probe reply forwards its (possibly dirty) copy straight to the
    requester as DATA_EXCL and revises the home with XFER.
    """
    h.slli(T5, T4, d.OWNER_SHIFT)
    h.ori(T5, T5, d.BUSY_EXCLUSIVE)
    h.slli(T6, T3, d.WAITER_SHIFT)
    h.or_(T5, T5, T6)
    h.st(T5, T0)
    compose_send(h, MsgType.INT_EXCL, dest_reg=T4, req_reg=T3)
    h.done()


def build_h_get_migratory() -> Handler:
    return build_h_get(exclusive_arm=get_exclusive_migrate)


def build_migratory_table() -> HandlerTable:
    """The full migratory handler table (coherence handlers only; the
    registry appends the active-memory extension handlers)."""
    return build_handler_table({"h_get": build_h_get_migratory()})
