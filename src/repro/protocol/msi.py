"""The MSI baseline protocol: 3 stable states, no eager-exclusive replies.

This is the textbook invalidation protocol the paper's bitvector
protocol optimizes: a read miss *always* receives a SHARED copy —
even when the line is unowned — so a private read-modify-write
pattern costs a GET followed by an UPGRADE, where the eager-exclusive
default resolves it in one transaction.  Keeping the baseline
registered makes that difference measurable (`repro sweep` grids can
put ``protocol`` on an axis; see docs/protocols.md).

Only ``h_get``'s unowned arm differs from the default bundle; every
other handler — GETX, UPGRADE, the writeback/revision handlers, the
probed-node and requester-side handlers — is shared verbatim, and the
dispatch tables are identical.  The directory word uses the same
field layout (:mod:`repro.protocol.directory`); the stable states it
can reach are the MSI triple:

====== ==================== =====================================
MSI    directory encoding   meaning
====== ==================== =====================================
I      ``UNOWNED``          no cached copies; memory is current
S      ``SHARED``           read-only copies at the vector's bits
M      ``EXCLUSIVE``        one writable copy at ``owner``
====== ==================== =====================================

plus the two transient ``BUSY_*`` states while an intervention is in
flight.  The helpers below expose that restricted encoding for
Python-side tooling and the Hypothesis round-trip tests.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import ConfigError
from repro.network.messages import MsgType
from repro.protocol import directory as d
from repro.protocol.handlers import build_h_get, build_handler_table, compose_send
from repro.protocol.isa import T0, T3, T4, T5, Handler, HandlerBuilder, HandlerTable

#: MSI state names over the shared directory encoding.
INVALID = d.UNOWNED
SHARED = d.SHARED
MODIFIED = d.EXCLUSIVE

MSI_STATE_NAMES = {
    INVALID: "I",
    SHARED: "S",
    MODIFIED: "M",
    d.BUSY_SHARED: "busy-S",
    d.BUSY_EXCLUSIVE: "busy-M",
}

#: Stable states an MSI directory entry may encode.
STABLE_STATES = (INVALID, SHARED, MODIFIED)


def encode_msi(state: int, owner: int = 0, waiter: int = 0, vector: int = 0) -> int:
    """Encode an MSI directory entry (same word layout as the default
    protocol, restricted to the fields each MSI state uses)."""
    if state not in MSI_STATE_NAMES:
        raise ConfigError(f"not an MSI directory state: {state}")
    if state in (INVALID, SHARED) and owner:
        raise ConfigError(f"{MSI_STATE_NAMES[state]} entries carry no owner")
    if state in (INVALID, MODIFIED) and vector:
        raise ConfigError(f"{MSI_STATE_NAMES[state]} entries carry no sharer vector")
    return d.encode(state, owner=owner, waiter=waiter, vector=vector)


def decode_msi(entry: int) -> Tuple[int, int, int, List[int]]:
    """Decode ``entry`` into (state, owner, waiter, sharers)."""
    state = d.state_of(entry)
    if state not in MSI_STATE_NAMES:
        raise ConfigError(f"not an MSI directory entry: {entry:#x}")
    return state, d.owner_of(entry), d.waiter_of(entry), d.sharers_of(entry)


def describe_msi(entry: int) -> str:
    state, owner, waiter, sharers = decode_msi(entry)
    return (
        f"{MSI_STATE_NAMES[state]} owner={owner} waiter={waiter} "
        f"sharers={sharers}"
    )


def get_unowned_shared(h: HandlerBuilder) -> None:
    """MSI GET unowned arm: grant a SHARED copy, never exclusive.

    The entry word is zero in UNOWNED (h_put/h_xfer store plain zero
    and the debt-bit case was branched away), so the new entry is
    built from scratch: ``SHARED | bit(requester)``.
    """
    h.addi(T4, T3, d.VECTOR_SHIFT)
    h.li(T5, 1)
    h.sllv(T5, T5, T4)
    h.ori(T5, T5, d.SHARED)
    h.st(T5, T0)
    compose_send(h, MsgType.DATA_SHARED, dest_reg=T3, req_reg=T3)
    h.done()


def build_h_get_msi() -> Handler:
    return build_h_get(unowned_arm=get_unowned_shared)


def build_msi_table() -> HandlerTable:
    """The full MSI handler table (coherence handlers only; the
    registry appends the active-memory extension handlers)."""
    return build_handler_table({"h_get": build_h_get_msi()})
