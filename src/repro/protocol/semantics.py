"""Functional semantics of protocol instructions.

One interpreter serves three clients:

* the SMTp frontend's *shadow interpreter*, which resolves protocol
  register values and branch outcomes at fetch time (the pipeline then
  models timing only — see DESIGN.md),
* the embedded dual-issue protocol processor of the non-SMTp models,
* unit tests that run handlers standalone against a directory image.

Arithmetic is 64-bit unsigned, matching the simulated engine width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.errors import ProtocolError
from repro.protocol import compile as pcompile
from repro.protocol.isa import PInstr, POp

MASK64 = (1 << 64) - 1


def alu(op: POp, a: int, b: int) -> int:
    if op is POp.ADD:
        return (a + b) & MASK64
    if op is POp.SUB:
        return (a - b) & MASK64
    if op is POp.AND:
        return a & b
    if op is POp.OR:
        return a | b
    if op is POp.XOR:
        return a ^ b
    if op is POp.NOR:
        return ~(a | b) & MASK64
    if op is POp.SLL:
        return (a << (b & 63)) & MASK64
    if op is POp.SRL:
        return a >> (b & 63)
    if op is POp.SEQ:
        return 1 if a == b else 0
    if op is POp.SLT:
        return 1 if a < b else 0
    if op is POp.POPC:
        return bin(a).count("1")
    if op is POp.CTZ:
        return (a & -a).bit_length() - 1 if a else 64
    raise ValueError(f"not an ALU op: {op}")


@dataclass
class Step:
    """Result of functionally stepping one instruction.

    ``next_index`` is the instruction index to execute next within the
    handler; ``uncached`` marks operations whose *effects* the caller
    must perform through the memory controller; ``mem_addr`` is set for
    LD/ST (the resolved protocol-memory address); ``value`` is the
    register result (LD/ALU) or the ST source value.
    """

    next_index: int
    dest: Optional[int] = None
    value: int = 0
    taken: bool = False
    uncached: bool = False
    mem_addr: Optional[int] = None
    is_store: bool = False


def step(
    instr: PInstr,
    index: int,
    regs: list,
    pmem_read: Callable[[int], int],
) -> Step:
    """Functionally execute ``instr`` (the instruction at ``index``).

    Register writes are *returned*, not applied — the caller owns the
    register file and store/uncached side effects.  ``SWITCH`` and
    ``LDCTXT`` are returned as uncached markers; the dispatch unit
    supplies their values.
    """
    op = instr.op
    if op is POp.LUI:
        return Step(index + 1, dest=instr.rd, value=instr.imm & MASK64)
    if op is POp.LD:
        addr = (regs[instr.rs1] + instr.imm) & MASK64
        return Step(index + 1, dest=instr.rd, value=pmem_read(addr), mem_addr=addr)
    if op is POp.ST:
        addr = (regs[instr.rs1] + instr.imm) & MASK64
        return Step(
            index + 1, value=regs[instr.rd], mem_addr=addr, is_store=True
        )
    if op is POp.BEQZ or op is POp.BNEZ:
        taken = (regs[instr.rs1] == 0) == (op is POp.BEQZ)
        return Step(instr.target if taken else index + 1, taken=taken)
    if op is POp.J:
        return Step(instr.target, taken=True)
    if instr.is_uncached:
        if op is POp.TRAP:
            raise ProtocolError(f"protocol TRAP {instr.imm} at handler index {index}")
        # SENDH/SENDA/PROBE read one register; expose it as the value.
        value = regs[instr.rs1] if op in (POp.SENDH, POp.SENDA, POp.PROBE) else 0
        return Step(index + 1, value=value, uncached=True)
    # Plain ALU.
    b = regs[instr.rs2] if instr.rs2 is not None else instr.imm & MASK64
    if op in (POp.POPC, POp.CTZ):
        result = alu(op, regs[instr.rs1], 0)
    else:
        result = alu(op, regs[instr.rs1], b)
    return Step(index + 1, dest=instr.rd, value=result)


class FunctionalRunner:
    """Run a whole handler functionally (tests and the analyze passes).

    ``on_uncached(instr, value)`` receives every uncached operation in
    program order; SWITCH/LDCTXT terminate the run.

    By default handlers execute through their compiled threaded-code
    program (:mod:`repro.protocol.compile`), which is bit-identical to
    the interpreter below; ``REPRO_INTERP=1`` forces the interpreter.
    """

    def __init__(
        self,
        regs: list,
        pmem_read: Callable[[int], int],
        pmem_write: Callable[[int, int], None],
        on_uncached: Callable[[PInstr, int], None],
        max_steps: int = 10_000,
    ) -> None:
        self.regs = regs
        self.pmem_read = pmem_read
        self.pmem_write = pmem_write
        self.on_uncached = on_uncached
        self.max_steps = max_steps
        self.instructions_executed = 0
        self._interp = pcompile.interp_forced()

    def run(self, handler) -> None:
        if not self._interp:
            pcompile.run_functional(handler, self, self.max_steps)
            return
        index = 0
        for _ in range(self.max_steps):
            instr = handler.instrs[index]
            if instr.op in (POp.SWITCH, POp.LDCTXT):
                self.on_uncached(instr, 0)
                self.instructions_executed += 1
                if instr.op is POp.LDCTXT:
                    return
                index += 1
                continue
            result = step(instr, index, self.regs, self.pmem_read)
            self.instructions_executed += 1
            if result.is_store:
                self.pmem_write(result.mem_addr, result.value)
            elif result.uncached:
                self.on_uncached(instr, result.value)
            elif result.dest is not None and result.dest != 0:
                self.regs[result.dest] = result.value
            index = result.next_index
        raise ProtocolError(f"handler {handler.name} exceeded {self.max_steps} steps")
