"""Coherence invariant checker.

Two kinds of checks:

* **Any-time**: at most one writable (EXCLUSIVE/MODIFIED) copy of any
  application line exists across all nodes.  Stale SHARED copies may
  coexist with a writable copy transiently — that is the documented
  eager-exclusive relaxation — but two writers never may.
* **End-of-run audit**: after draining the machine and flushing every
  cache, each home's memory version for a line must equal the total
  number of stores ever committed to that line.  A lost update (store
  to a stale copy, dropped writeback, misrouted transfer) breaks this
  equality, because versions only increment on the current coherent
  copy.

Directory sanity: at quiesce every entry must be in a stable state and
its owner/sharer information must cover every cached copy.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.caches.coherence import CacheState
from repro.common.errors import CoherenceViolation
from repro.protocol import directory as d


class CoherenceChecker:
    def __init__(self) -> None:
        self.store_counts: Dict[int, int] = defaultdict(int)
        self.checks_run = 0
        # hierarchy -> the on_store callable we chained onto, so detach
        # can restore it.  Empty while not attached.
        self._chained: Dict[object, object] = {}

    # -- hooks -------------------------------------------------------------
    def attach(self, machine) -> "CoherenceChecker":
        """Chain the store-counting hook onto every node's hierarchy.

        Idempotent: attaching while already attached is a no-op, so a
        checker reused across several runs of one machine cannot stack
        hooks (each stacked hook would double-count stores).  Returns
        ``self`` so it can be used as a context manager::

            with CoherenceChecker().attach(machine):
                ... run ...
        """
        for node in machine.nodes:
            hierarchy = node.hierarchy
            if hierarchy in self._chained:
                continue  # already hooked: never stack
            self._chained[hierarchy] = hierarchy.on_store
            hierarchy.on_store = self._make_hook(hierarchy.on_store)
        return self

    def detach(self) -> None:
        """Restore every hooked ``on_store`` to what attach found."""
        for hierarchy, original in self._chained.items():
            hierarchy.on_store = original
        self._chained.clear()

    @property
    def attached(self) -> bool:
        return bool(self._chained)

    def __enter__(self) -> "CoherenceChecker":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    def _make_hook(self, chained):
        def hook(line_addr: int) -> None:
            self.store_counts[line_addr] += 1
            chained(line_addr)

        return hook

    # -- any-time invariant --------------------------------------------------
    def check_single_writer(self, machine) -> None:
        self.checks_run += 1
        writers: Dict[int, List[int]] = defaultdict(list)
        for node in machine.nodes:
            for la, state in node.hierarchy.cached_app_lines().items():
                if state in (CacheState.EXCLUSIVE, CacheState.MODIFIED):
                    writers[la].append(node.node_id)
        for la, nodes in writers.items():
            if len(nodes) > 1:
                raise CoherenceViolation(
                    f"line {la:#x} writable at multiple nodes: {nodes}"
                )

    # -- end-of-run audit ------------------------------------------------------
    def final_audit(self, machine) -> None:
        """Flush all caches and verify no store was ever lost."""
        self.check_single_writer(machine)
        memory: Dict[int, int] = {}
        for node in machine.nodes:
            memory.update(node.memory_versions)
        for node in machine.nodes:
            node.hierarchy.flush_to_memory(
                lambda la, v: memory.__setitem__(la, max(memory.get(la, 0), v))
            )
        for la, count in self.store_counts.items():
            have = memory.get(la, 0)
            if have != count:
                raise CoherenceViolation(
                    f"line {la:#x}: {count} stores committed but final "
                    f"memory version is {have} (lost update or stale data)"
                )

    def audit_directory(self, machine) -> None:
        """At quiesce: stable states, coverage of all cached copies."""
        cached: Dict[int, Dict[int, CacheState]] = defaultdict(dict)
        for node in machine.nodes:
            for la, state in node.hierarchy.cached_app_lines().items():
                cached[la][node.node_id] = state
        layout = machine.layout
        for node in machine.nodes:
            for la in list(cached):
                if layout.home_of(la) != node.node_id:
                    continue
                entry = node.pmem.get(layout.dir_entry_addr(la), 0)
                state = d.state_of(entry)
                if state in (d.BUSY_SHARED, d.BUSY_EXCLUSIVE):
                    raise CoherenceViolation(
                        f"line {la:#x} directory busy at quiesce: "
                        f"{d.describe(entry)}"
                    )
                copies = cached[la]
                for holder, cstate in copies.items():
                    if cstate in (CacheState.EXCLUSIVE, CacheState.MODIFIED):
                        if state != d.EXCLUSIVE or d.owner_of(entry) != holder:
                            raise CoherenceViolation(
                                f"line {la:#x}: node {holder} holds "
                                f"{cstate.name} but directory says "
                                f"{d.describe(entry)}"
                            )
                    elif cstate is CacheState.SHARED:
                        covered = (
                            state == d.SHARED
                            and holder in d.sharers_of(entry)
                        ) or (state == d.EXCLUSIVE and d.owner_of(entry) == holder)
                        if not covered:
                            raise CoherenceViolation(
                                f"line {la:#x}: node {holder} holds SHARED "
                                f"but directory says {d.describe(entry)}"
                            )
