"""Protocol-thread extensions beyond basic cache coherence.

The paper's §1 and §6 argue that SMTp's real power is that the
protocol thread is *programmable*: "schemes such as active memory
address re-mapping or fault tolerance ... can now be implemented as
protocol threads."  This module demonstrates the mechanism with an
**active-memory remote-operation** extension:

* An application issues an uncached fetch-and-op to any word.
* The request travels to the word's *home node* (one ``AM_OP``
  message), where the protocol thread (or the PP engine — extensions
  run identically on every machine model) executes a handler that
  performs the read-modify-write against home memory and replies with
  the old value.
* No cache line ever moves: under contention (shared counters,
  ticket locks, reductions) this wins over ordinary atomics, which
  bounce an exclusive line between nodes.

Handlers are ordinary protocol-ISA programs assembled into the same
handler table as the coherence protocol; installing the extension
just adds table entries and dispatch-map rows — exactly the paper's
"let the business of complex protocols be handled in software" story.

Usage::

    # machines install it automatically; applications use:
    k.atomic(addr, "am_fai", 1)       # remote fetch-and-increment
    old = yield AWAIT
"""

from __future__ import annotations

from repro.network.messages import MsgType
from repro.protocol.handlers import (
    HDR_REQ_SHIFT,
    NODE_FIELD_MASK,
    NETWORK_DISPATCH,
    compose_send,
)
from repro.protocol.isa import ADDR, POp, T3, Handler, HandlerBuilder, HandlerTable, PInstr

#: Active-memory op codes (imm of the AMO protocol instruction and the
#: ``operand``-encoded op selector of AM_OP messages).
AM_FAI = 0  # fetch-and-add
AM_SWAP = 1
AM_TAS = 2

#: Application-visible atomic_op names handled remotely.
AM_OPS = {"am_fai": AM_FAI, "am_swap": AM_SWAP, "am_tas": AM_TAS}


def _amo_instr(h: HandlerBuilder) -> None:
    """Emit the AMO uncached op (hardware RMW against home memory).

    The op selector and operand ride in the request message; the MC
    stashes the old value in the handler context for the reply send.
    """
    h.instrs.append(PInstr(POp.AMO))


def build_h_am_op() -> Handler:
    """Home-side handler: perform the RMW, reply with the old value."""
    h = HandlerBuilder("h_am_op")
    h.srli(T3, 2, HDR_REQ_SHIFT)  # requester from HDR (r2)
    h.andi(T3, T3, NODE_FIELD_MASK)
    _amo_instr(h)
    compose_send(h, MsgType.AM_REPLY, dest_reg=T3, req_reg=T3)
    h.done()
    return h.build()


def build_h_am_reply() -> Handler:
    """Requester-side handler: deliver the value to the waiting op."""
    h = HandlerBuilder("h_am_reply")
    h.complete()
    h.done()
    return h.build()


def install(table: HandlerTable) -> None:
    """Add the extension's handlers and dispatch rows (idempotent)."""
    if "h_am_op" not in table:
        table.place(build_h_am_op())
        table.place(build_h_am_reply())
    NETWORK_DISPATCH.setdefault(MsgType.AM_OP, "h_am_op")
    NETWORK_DISPATCH.setdefault(MsgType.AM_REPLY, "h_am_reply")


def apply_am_op(op_code: int, old: int, operand: int) -> int:
    """The RMW semantics the AMO hardware op performs at home."""
    if op_code == AM_FAI:
        return old + operand
    if op_code == AM_SWAP:
        return operand
    if op_code == AM_TAS:
        return 1
    raise ValueError(f"unknown active-memory op {op_code}")
