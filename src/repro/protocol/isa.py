"""The protocol-thread instruction set and its assembler.

Coherence handlers are *programs*: sequences of MIPS-flavoured ALU,
load/store, branch, and uncached memory-controller operations, exactly
as in FLASH-style programmable protocol engines and the paper's SMTp
protocol thread.  The same programs execute on either

* the SMTp protocol thread (instructions flow through the real SMT
  pipeline, renamed and speculated like any other thread), or
* the embedded dual-issue protocol processor of the non-SMTp machine
  models (:mod:`repro.memctrl.ppengine`).

Register conventions (all 32 logical registers are initialized by the
protocol boot sequence so they stay mapped — paper §2.2):

====  ==========================================================
r0    hardwired zero
r1    ADDR — line address of the current request (set by ldctxt)
r2    HDR — header of the current request (set by switch)
r3+   scratch (T0..)
r26   HOME_SHIFT — log2(per-node local memory)
r27   ENTRY_SHIFT — log2(directory entry bytes)
r28   LOCAL_MASK — per-node local-memory byte mask
r29   NODE_ID
r30   DIR_BASE — base of the directory region in protocol space
r31   LINE_SHIFT — log2(coherence line size)
====  ==========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.errors import ConfigError

if TYPE_CHECKING:  # circular at runtime: compile.py imports this module
    from repro.protocol.compile import CompiledHandler

# Register aliases.
ZERO = 0
ADDR = 1
HDR = 2
T0, T1, T2, T3, T4, T5, T6, T7 = 3, 4, 5, 6, 7, 8, 9, 10
HOME_SHIFT = 26
ENTRY_SHIFT = 27
LOCAL_MASK = 28
NODE_ID = 29
DIR_BASE = 30
LINE_SHIFT = 31

N_PROTOCOL_REGS = 32

#: Byte size of one encoded protocol instruction (for I-cache traffic).
PINSTR_BYTES = 4


class POp(enum.IntEnum):
    # An IntEnum: opcode sets and dispatch dicts are consulted on every
    # interpreted instruction, and IntEnum members hash/compare at C
    # speed.  __str__/__format__ stay the Enum forms ("POp.ADD").
    __str__ = enum.Enum.__str__
    __format__ = enum.Enum.__format__

    # ALU, register-register or register-immediate (imm is not None).
    ADD = enum.auto()
    SUB = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    NOR = enum.auto()
    SEQ = enum.auto()  # rd = (rs1 == rs2/imm)
    SLT = enum.auto()
    POPC = enum.auto()  # population count (special bit-manipulation op)
    CTZ = enum.auto()  # count trailing zeros (special op)
    LUI = enum.auto()  # rd = imm (load constant)

    # Protocol-memory access (through L1D/L2 or the directory cache).
    LD = enum.auto()
    ST = enum.auto()

    # Control flow.
    BEQZ = enum.auto()
    BNEZ = enum.auto()
    J = enum.auto()

    # Uncached operations (execute non-speculatively at graduation).
    SENDH = enum.auto()  # latch outgoing header register
    SENDA = enum.auto()  # latch address register and launch the send
    PROBE = enum.auto()  # ask the local L2 to inval/downgrade a line
    COMPLETE = enum.auto()  # deliver the current reply to the MSHRs
    RESEND = enum.auto()  # retry the NACKed request after backoff
    MEMWR = enum.auto()  # write the message's data payload to memory
    AMO = enum.auto()  # active-memory RMW at home (extensions module)
    TRAP = enum.auto()  # impossible protocol state: abort simulation

    # Handler sequencing (the last two instructions of every handler).
    SWITCH = enum.auto()  # uncached load of the next request's header
    LDCTXT = enum.auto()  # uncached load of the next request's address


UNCACHED_OPS = frozenset(
    {
        POp.SENDH,
        POp.SENDA,
        POp.PROBE,
        POp.COMPLETE,
        POp.RESEND,
        POp.MEMWR,
        POp.AMO,
        POp.TRAP,
        POp.SWITCH,
        POp.LDCTXT,
    }
)

BRANCH_OPS = frozenset({POp.BEQZ, POp.BNEZ, POp.J})

#: PROBE kinds (imm field of the PROBE op).
PROBE_INVAL = 0
PROBE_DOWNGRADE = 1

#: RESEND modes.
RESEND_SAME = 0  # retry the original request kind
RESEND_AS_GETX = 1  # a NACKed upgrade retries as a full GETX


@dataclass
class PInstr:
    """One protocol instruction.

    ``imm`` doubles as the second ALU operand when ``rs2`` is None, the
    load/store displacement, and the sub-opcode of uncached ops.
    ``target`` is the branch destination as an instruction index within
    the handler (resolved by the assembler).
    """

    op: POp
    rd: int = 0
    rs1: int = 0
    rs2: Optional[int] = None
    imm: int = 0
    target: int = -1
    label: Optional[str] = None  # unresolved branch target name

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_uncached(self) -> bool:
        return self.op in UNCACHED_OPS

    @property
    def is_memory(self) -> bool:
        return self.op in (POp.LD, POp.ST)

    def reads(self) -> List[int]:
        op = self.op
        if op in (POp.LUI, POp.J, POp.SWITCH, POp.LDCTXT, POp.TRAP):
            return []
        if op in (POp.COMPLETE, POp.RESEND, POp.MEMWR, POp.AMO):
            return []
        if op in (POp.BEQZ, POp.BNEZ):
            return [self.rs1]
        if op in (POp.SENDH, POp.SENDA, POp.PROBE):
            return [self.rs1]
        if op == POp.LD:
            return [self.rs1]
        if op == POp.ST:
            return [self.rd, self.rs1]  # rd = value source, rs1 = base
        if op in (POp.POPC, POp.CTZ):
            return [self.rs1]
        if self.rs2 is not None:
            return [self.rs1, self.rs2]
        return [self.rs1]

    def writes(self) -> Optional[int]:
        op = self.op
        if op in (POp.LD, POp.LUI) or (
            op not in UNCACHED_OPS and op not in BRANCH_OPS and op != POp.ST
        ):
            return self.rd if self.rd != ZERO else None
        if op == POp.SWITCH:
            return HDR
        if op == POp.LDCTXT:
            return ADDR
        return None


@dataclass
class Handler:
    """An assembled handler: a name, a PC, and its instructions."""

    name: str
    pc: int = 0
    instrs: List[PInstr] = field(default_factory=list)
    #: Threaded-code programs, compiled on first use and invalidated on
    #: re-placement (see :mod:`repro.protocol.compile`).
    compiled: Optional["CompiledHandler"] = field(
        default=None, compare=False, repr=False
    )

    def __len__(self) -> int:
        return len(self.instrs)

    def pc_of(self, index: int) -> int:
        return self.pc + index * PINSTR_BYTES

    # Compiled programs are closures and cannot be pickled; drop the
    # cache on serialization — ``compiled_for`` rebuilds it (the same
    # deterministic threaded code) on first dispatch after a restore.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["compiled"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class HandlerBuilder:
    """Fluent builder for one handler's instruction list."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instrs: List[PInstr] = []
        self._labels: Dict[str, int] = {}

    # -- ALU helpers -----------------------------------------------------
    def _alu(self, op: POp, rd: int, rs1: int, rs2=None, imm: int = 0) -> None:
        if isinstance(rs2, int):
            self.instrs.append(PInstr(op, rd=rd, rs1=rs1, rs2=rs2))
        else:
            self.instrs.append(PInstr(op, rd=rd, rs1=rs1, rs2=None, imm=imm))

    def add(self, rd, rs1, rs2):
        self._alu(POp.ADD, rd, rs1, rs2)

    def addi(self, rd, rs1, imm):
        self._alu(POp.ADD, rd, rs1, None, imm)

    def sub(self, rd, rs1, rs2):
        self._alu(POp.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        self._alu(POp.AND, rd, rs1, rs2)

    def andi(self, rd, rs1, imm):
        self._alu(POp.AND, rd, rs1, None, imm)

    def or_(self, rd, rs1, rs2):
        self._alu(POp.OR, rd, rs1, rs2)

    def ori(self, rd, rs1, imm):
        self._alu(POp.OR, rd, rs1, None, imm)

    def xori(self, rd, rs1, imm):
        self._alu(POp.XOR, rd, rs1, None, imm)

    def nor(self, rd, rs1, rs2):
        self._alu(POp.NOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        self._alu(POp.SLL, rd, rs1, rs2)

    def slli(self, rd, rs1, imm):
        self._alu(POp.SLL, rd, rs1, None, imm)

    def sllv(self, rd, rs1, rs2_reg):
        self._alu(POp.SLL, rd, rs1, rs2_reg)

    def srl(self, rd, rs1, rs2):
        self._alu(POp.SRL, rd, rs1, rs2)

    def srli(self, rd, rs1, imm):
        self._alu(POp.SRL, rd, rs1, None, imm)

    def srlv(self, rd, rs1, rs2_reg):
        self._alu(POp.SRL, rd, rs1, rs2_reg)

    def seqi(self, rd, rs1, imm):
        self._alu(POp.SEQ, rd, rs1, None, imm)

    def seq(self, rd, rs1, rs2):
        self._alu(POp.SEQ, rd, rs1, rs2)

    def popc(self, rd, rs1):
        self._alu(POp.POPC, rd, rs1)

    def ctz(self, rd, rs1):
        self._alu(POp.CTZ, rd, rs1)

    def li(self, rd, imm):
        self.instrs.append(PInstr(POp.LUI, rd=rd, imm=imm))

    # -- memory ----------------------------------------------------------
    def ld(self, rd, base, offset=0):
        self.instrs.append(PInstr(POp.LD, rd=rd, rs1=base, imm=offset))

    def st(self, rsrc, base, offset=0):
        self.instrs.append(PInstr(POp.ST, rd=rsrc, rs1=base, imm=offset))

    # -- control flow ------------------------------------------------------
    def label(self, name: str) -> None:
        if name in self._labels:
            raise ConfigError(f"{self.name}: duplicate label {name}")
        self._labels[name] = len(self.instrs)

    def beqz(self, rs, label: str):
        self.instrs.append(PInstr(POp.BEQZ, rs1=rs, label=label))

    def bnez(self, rs, label: str):
        self.instrs.append(PInstr(POp.BNEZ, rs1=rs, label=label))

    def j(self, label: str):
        self.instrs.append(PInstr(POp.J, label=label))

    # -- uncached ----------------------------------------------------------
    def sendh(self, rhdr):
        self.instrs.append(PInstr(POp.SENDH, rs1=rhdr))

    def senda(self, raddr):
        self.instrs.append(PInstr(POp.SENDA, rs1=raddr))

    def probe(self, raddr, kind: int):
        self.instrs.append(PInstr(POp.PROBE, rs1=raddr, imm=kind))

    def complete(self):
        self.instrs.append(PInstr(POp.COMPLETE))

    def resend(self, mode: int = RESEND_SAME):
        self.instrs.append(PInstr(POp.RESEND, imm=mode))

    def memwr(self):
        self.instrs.append(PInstr(POp.MEMWR))

    def trap(self, code: int = 0):
        self.instrs.append(PInstr(POp.TRAP, imm=code))

    def done(self):
        """Terminate the handler: every handler ends switch; ldctxt."""
        self.instrs.append(PInstr(POp.SWITCH, rd=HDR))
        self.instrs.append(PInstr(POp.LDCTXT, rd=ADDR))

    # -- assembly ----------------------------------------------------------
    def build(self) -> Handler:
        if not self.instrs or self.instrs[-1].op is not POp.LDCTXT:
            raise ConfigError(f"{self.name}: handler must end with done()")
        for i, instr in enumerate(self.instrs):
            if instr.label is not None:
                if instr.label not in self._labels:
                    raise ConfigError(
                        f"{self.name}: undefined label {instr.label!r}"
                    )
                instr.target = self._labels[instr.label]
        return Handler(self.name, instrs=self.instrs)


class HandlerTable:
    """All assembled handlers, placed in protocol code space."""

    def __init__(self, code_base: int) -> None:
        self.code_base = code_base
        self.by_name: Dict[str, Handler] = {}
        self.by_pc: Dict[int, Handler] = {}
        self._next_pc = code_base

    def place(self, handler: Handler) -> Handler:
        handler.pc = self._next_pc
        # Align each handler to a 64-byte I-cache line boundary.
        size = len(handler.instrs) * PINSTR_BYTES
        self._next_pc += (size + 63) // 64 * 64
        self.by_name[handler.name] = handler
        self.by_pc[handler.pc] = handler
        return handler

    def __getitem__(self, name: str) -> Handler:
        return self.by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self.by_name

    def total_instructions(self) -> int:
        return sum(len(h) for h in self.by_name.values())
