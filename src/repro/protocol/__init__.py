"""The directory-based coherence protocol: ISA, handlers, semantics,
directory layout, and the invariant checker."""

from repro.protocol import extensions
from repro.protocol.checker import CoherenceChecker
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import build_handler_table
from repro.protocol.isa import Handler, HandlerBuilder, HandlerTable, PInstr, POp

__all__ = [
    "CoherenceChecker",
    "DirectoryLayout",
    "Handler",
    "HandlerBuilder",
    "HandlerTable",
    "PInstr",
    "POp",
    "build_handler_table",
    "extensions",
]
