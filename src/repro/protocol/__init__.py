"""The directory-based coherence protocol: ISA, handlers, semantics,
directory layout, and the invariant checker."""

from repro.protocol import extensions, registry
from repro.protocol.checker import CoherenceChecker
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import build_handler_table
from repro.protocol.isa import Handler, HandlerBuilder, HandlerTable, PInstr, POp
from repro.protocol.registry import DEFAULT_PROTOCOL, ProtocolBundle

__all__ = [
    "CoherenceChecker",
    "DEFAULT_PROTOCOL",
    "DirectoryLayout",
    "Handler",
    "HandlerBuilder",
    "HandlerTable",
    "PInstr",
    "POp",
    "ProtocolBundle",
    "build_handler_table",
    "extensions",
    "registry",
]
