"""Directory entry layout and protocol address-space map.

Each home node keeps one directory entry per local cache line.  The
paper uses 32-bit entries with a 16-bit sharer vector up to 16 nodes
and 64-bit entries with a 32-bit vector at 32 nodes; our layout
reproduces that sizing:

====== =====================================================
bits   field
====== =====================================================
0-2    state: UNOWNED / SHARED / EXCLUSIVE / BUSY_SHARED /
       BUSY_EXCLUSIVE
3-8    owner (EXCLUSIVE) or intervention target (BUSY)
9-14   waiter: the requester that will receive ownership when
       the BUSY transaction resolves
15     reserved flag
16+    sharer bit-vector (16 or 32 bits)
====== =====================================================

The handlers manipulate these fields with shifts/masks/popcount in the
protocol ISA; this module provides the same encoding for Python-side
tooling (boot, checker, tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.caches.hierarchy import PROTO_SPACE_BIT
from repro.common.errors import ConfigError
from repro.common.params import MachineParams

# Directory states.
UNOWNED = 0
SHARED = 1
EXCLUSIVE = 2
BUSY_SHARED = 3
BUSY_EXCLUSIVE = 4

STATE_MASK = 0x7
OWNER_SHIFT = 3
OWNER_MASK = 0x3F
WAITER_SHIFT = 9
WAITER_MASK = 0x3F
#: "XFER debt": set by h_put's late arm when a writeback resolves a
#: BUSY transaction whose XFER revision is still in flight.  While
#: set, the entry is otherwise UNOWNED and h_get/h_getx NACK, so no
#: look-alike transaction can start; h_xfer consumes the bit instead
#: of interpreting the stale revision.
XFER_DEBT_SHIFT = 15
VECTOR_SHIFT = 16

STATE_NAMES = {
    UNOWNED: "UNOWNED",
    SHARED: "SHARED",
    EXCLUSIVE: "EXCLUSIVE",
    BUSY_SHARED: "BUSY_SHARED",
    BUSY_EXCLUSIVE: "BUSY_EXCLUSIVE",
}

#: Protocol-space regions (offsets below PROTO_SPACE_BIT).
CODE_BASE = PROTO_SPACE_BIT | 0x0000_0000
DIR_BASE_OFFSET = 0x1000_0000
SCRATCH_BASE_OFFSET = 0x3000_0000


def encode(state: int, owner: int = 0, waiter: int = 0, vector: int = 0) -> int:
    return (
        state
        | (owner << OWNER_SHIFT)
        | (waiter << WAITER_SHIFT)
        | (vector << VECTOR_SHIFT)
    )


def state_of(entry: int) -> int:
    return entry & STATE_MASK


def owner_of(entry: int) -> int:
    return (entry >> OWNER_SHIFT) & OWNER_MASK


def waiter_of(entry: int) -> int:
    return (entry >> WAITER_SHIFT) & WAITER_MASK


def vector_of(entry: int) -> int:
    return entry >> VECTOR_SHIFT


def xfer_debt(entry: int) -> bool:
    return bool((entry >> XFER_DEBT_SHIFT) & 1)


def sharers_of(entry: int) -> List[int]:
    vec = vector_of(entry)
    out = []
    node = 0
    while vec:
        if vec & 1:
            out.append(node)
        vec >>= 1
        node += 1
    return out


def describe(entry: int) -> str:
    debt = " xfer-debt" if xfer_debt(entry) else ""
    return (
        f"{STATE_NAMES.get(state_of(entry), '?')} owner={owner_of(entry)} "
        f"waiter={waiter_of(entry)} sharers={sharers_of(entry)}{debt}"
    )


@dataclass(frozen=True)
class DirectoryLayout:
    """Address arithmetic shared by handlers, boot code, and the MC."""

    local_memory_bytes: int
    line_bytes: int
    entry_bytes: int

    def __post_init__(self) -> None:
        if self.local_memory_bytes & (self.local_memory_bytes - 1):
            raise ConfigError("local memory size must be a power of two")
        if self.entry_bytes not in (4, 8):
            raise ConfigError(f"directory entries are 4 or 8 bytes: {self.entry_bytes}")

    @classmethod
    def for_machine(cls, mp: MachineParams) -> "DirectoryLayout":
        return cls(
            local_memory_bytes=mp.local_memory_bytes,
            line_bytes=mp.line_bytes,
            entry_bytes=mp.directory_bits // 8,
        )

    @property
    def home_shift(self) -> int:
        return self.local_memory_bytes.bit_length() - 1

    @property
    def line_shift(self) -> int:
        return self.line_bytes.bit_length() - 1

    @property
    def entry_shift(self) -> int:
        return self.entry_bytes.bit_length() - 1

    @property
    def local_mask(self) -> int:
        return self.local_memory_bytes - 1

    @property
    def dir_base(self) -> int:
        return PROTO_SPACE_BIT | DIR_BASE_OFFSET

    def home_of(self, addr: int) -> int:
        return addr >> self.home_shift

    def line_addr(self, addr: int) -> int:
        return addr >> self.line_shift << self.line_shift

    def dir_entry_addr(self, line_addr: int) -> int:
        """Protocol-space address of the directory entry for a line.

        This is the arithmetic the handlers perform with SRL/SLL/ADD:
        ``DIR_BASE + ((addr & LOCAL_MASK) >> LINE_SHIFT << ENTRY_SHIFT)``.
        """
        local = line_addr & self.local_mask
        return self.dir_base + ((local >> self.line_shift) << self.entry_shift)
