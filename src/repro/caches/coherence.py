"""Cache-side coherence states.

The node caches keep MESI-style states; the directory side (home node)
keeps its own state encoding in :mod:`repro.protocol.directory`.  The
protocol uses eager-exclusive replies, so a read miss to an unowned
line installs EXCLUSIVE (clean, writable) rather than SHARED.
"""

from __future__ import annotations

import enum


class CacheState(enum.IntEnum):
    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2  # clean but writable (sole copy)
    MODIFIED = 3

    @property
    def valid(self) -> bool:
        return self is not CacheState.INVALID

    @property
    def writable(self) -> bool:
        return self in (CacheState.EXCLUSIVE, CacheState.MODIFIED)
