"""Miss status holding registers.

One MSHR file per node sits under the L1D/L2 pair and tracks every
outstanding line miss.  Capacity follows Table 2: 16 entries for
application loads/stores, one extra usable only by retiring stores,
and (SMTp only) one reserved for the protocol thread.

Entries merge secondary misses to the same line, count invalidation
acks for eager-exclusive replies, and remember whether a writable copy
is needed so a SHARED refill can trigger a follow-up upgrade.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional


class MissKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    PREFETCH = "prefetch"
    PREFETCH_EX = "prefetch_ex"

    @property
    def wants_write(self) -> bool:
        return self in (MissKind.WRITE, MissKind.PREFETCH_EX)


#: Waiter callback: ``fn(version)`` invoked when the miss completes.
Waiter = Callable[[int], None]


class MSHREntry:
    __slots__ = (
        "line_addr",
        "kind",
        "protocol",
        "store_class",
        "waiters",
        "pending_acks",
        "data_arrived",
        "data_version",
        "data_state_writable",
        "issued",
        "retries",
        "upgrade_pending",
        "request_upgrade",
        "inval_after_fill",
    )

    def __init__(
        self, line_addr: int, kind: MissKind, protocol: bool, store_class: bool
    ) -> None:
        self.line_addr = line_addr
        self.kind = kind
        self.protocol = protocol
        # True when the slot was granted under the retiring-store
        # reservation (affects release accounting only).
        self.store_class = store_class
        self.waiters: List[Waiter] = []
        self.pending_acks = 0
        self.data_arrived = False
        self.data_version = 0
        self.data_state_writable = False
        self.issued = False
        self.retries = 0
        self.upgrade_pending = False
        # True when the outstanding request is an ownership UPGRADE of
        # a SHARED copy (the MC composes UPGRADE instead of GETX).
        self.request_upgrade = False
        # A stale invalidation raced this fill and was acked early; a
        # non-writable fill must still be discarded after use.
        self.inval_after_fill = False

    @property
    def complete(self) -> bool:
        return self.data_arrived and self.pending_acks == 0 and not self.upgrade_pending

    def want_write(self) -> bool:
        return self.kind.wants_write


class MSHRFile:
    """The per-node MSHR pool with class-based capacity limits."""

    def __init__(self, app_entries: int = 16, protocol_reserved: int = 0) -> None:
        self.app_entries = app_entries
        self.protocol_reserved = protocol_reserved
        self.store_extra = 1  # the "+1 for retiring stores"
        self.entries: Dict[int, MSHREntry] = {}
        self._app_used = 0
        self._store_used = 0
        self._proto_used = 0
        self.peak_proto = 0
        #: Wake hook (activity contract): called whenever an entry is
        #: freed, since that can unblock issue attempts that found the
        #: file full and were never registered as waiters.
        self.on_free: Optional[Callable[[], None]] = None

    # -- capacity ---------------------------------------------------------
    @property
    def total_capacity(self) -> int:
        return self.app_entries + self.store_extra + self.protocol_reserved

    def _can_allocate(self, protocol: bool, store: bool) -> bool:
        # Protocol overflow beyond its reserve occupies shared slots, so
        # every class's admission check must charge the same pool —
        # otherwise interleaved store/app allocations overcommit the
        # file past total_capacity.
        spill = max(0, self._proto_used - self.protocol_reserved)
        shared = self._app_used + self._store_used + spill
        if protocol:
            return (
                self._proto_used < self.protocol_reserved
                or shared < self.app_entries + self.store_extra
            )
        if store:
            return shared < self.app_entries + self.store_extra
        return shared < self.app_entries

    def __len__(self) -> int:
        return len(self.entries)

    # -- lookup / allocate -------------------------------------------------
    def get(self, line_addr: int) -> Optional[MSHREntry]:
        return self.entries.get(line_addr)

    def allocate(
        self,
        line_addr: int,
        kind: MissKind,
        protocol: bool = False,
        store: bool = False,
    ) -> Optional[MSHREntry]:
        """Allocate a fresh entry; returns None when the class is full.

        The caller must have checked :meth:`get` first — allocating on
        top of an existing entry is a bug.
        """
        if line_addr in self.entries:
            raise ValueError(f"MSHR already holds {line_addr:#x}; merge instead")
        if not self._can_allocate(protocol, store):
            return None
        entry = MSHREntry(line_addr, kind, protocol, store_class=store and not protocol)
        self.entries[line_addr] = entry
        if protocol:
            self._proto_used += 1
            self.peak_proto = max(self.peak_proto, self._proto_used)
        elif entry.store_class:
            self._store_used += 1
        else:
            self._app_used += 1
        return entry

    def merge(self, entry: MSHREntry, waiter: Waiter, wants_write: bool) -> None:
        """Attach a secondary miss to an in-flight entry."""
        entry.waiters.append(waiter)
        if wants_write and not entry.want_write():
            # A read miss already in flight must be followed by an
            # ownership upgrade once the (possibly SHARED) data lands.
            entry.upgrade_pending = True

    # -- completion --------------------------------------------------------
    def data_reply(self, line_addr: int, version: int, writable: bool, acks: int) -> MSHREntry:
        entry = self.entries[line_addr]
        entry.data_arrived = True
        entry.data_version = version
        entry.data_state_writable = writable
        entry.pending_acks += acks
        if writable and entry.upgrade_pending:
            entry.upgrade_pending = False
        return entry

    def inval_ack(self, line_addr: int) -> Optional[MSHREntry]:
        """An invalidation ack arrived (may precede the data reply)."""
        entry = self.entries.get(line_addr)
        if entry is None:
            return None
        entry.pending_acks -= 1
        return entry

    def free(self, line_addr: int) -> List[Waiter]:
        """Remove a completed entry, returning its waiters to wake."""
        entry = self.entries.pop(line_addr)
        if entry.protocol:
            self._proto_used -= 1
        elif entry.store_class:
            self._store_used -= 1
        else:
            self._app_used -= 1
        if self.on_free is not None:
            self.on_free()
        return entry.waiters

    def in_flight_line_addrs(self) -> List[int]:
        return list(self.entries)
