"""Cache substrate: set-associative caches, MSHRs, bypass buffers,
and the per-node hierarchy."""

from repro.caches.bypass import BypassBuffer
from repro.caches.coherence import CacheState
from repro.caches.hierarchy import BLOCKED, HIT, MISS, CacheHierarchy, is_protocol_space
from repro.caches.mshr import MissKind, MSHREntry, MSHRFile
from repro.caches.sa_cache import CacheLine, SetAssocCache

__all__ = [
    "BLOCKED",
    "BypassBuffer",
    "CacheHierarchy",
    "CacheLine",
    "CacheState",
    "HIT",
    "MISS",
    "MSHREntry",
    "MSHRFile",
    "MissKind",
    "SetAssocCache",
    "is_protocol_space",
]
