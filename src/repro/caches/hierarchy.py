"""Per-node cache hierarchy: L1I + L1D + unified L2 + bypass buffers.

Responsibilities
----------------
* Service pipeline loads/stores/ifetches/prefetches with Table 2
  latencies (L1 hit 1 cycle, L2 hit 9 cycles round trip) and TLB
  penalties.
* Allocate/merge MSHRs for L2 misses and hand application misses to the
  memory controller (Local Miss Interface) and protocol-space misses to
  the dedicated SDRAM path (paper §2.1: protocol misses bypass the
  Local Miss Interface).
* Maintain inclusion (L2 eviction kills L1 copies), write-back L2 with
  write-through L1D (a modelling simplification documented in
  DESIGN.md), eager-exclusive fills.
* Service coherence interventions (invalidate/downgrade probes) from
  the memory controller, deferring probes that race an in-flight fill.
* Divert protocol-thread lines that conflict with in-flight application
  misses into the fully-associative bypass buffers (paper §2.2).

Data model
----------
Application data is modelled as a per-line *version* (bumped by every
store; the coherence checker uses it to detect lost updates) plus a
global functional word store used by synchronization values.  Stores
only execute once ownership is held, so functional word visibility
follows coherence-ordered timing (see DESIGN.md on eager-exclusive).
"""

from __future__ import annotations

from collections import OrderedDict
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from repro.caches.bypass import BypassBuffer
from repro.caches.coherence import CacheState
from repro.caches.mshr import MissKind, MSHREntry, MSHRFile
from repro.caches.sa_cache import SetAssocCache
from repro.common.errors import ProtocolError
from repro.common.params import MachineParams
from repro.common.stats import NodeStats

#: Access outcome tags returned to the pipeline.
HIT = "hit"
MISS = "miss"
BLOCKED = "blocked"

ProbeResponse = Callable[[bool, bool, int], None]  # (found, dirty, version)


# Picklable default ports (standalone hierarchies in unit tests).
def _discard(*args) -> None:
    pass


def _run_now(delay: int, fn: Callable[[], None]) -> None:
    fn()


def _proto_miss_now(line_addr: int, on_done: Callable[[int], None]) -> None:
    on_done(0)


def _zero_word(addr: int) -> int:
    return 0


class _Waiter:
    """Internal completion record for one memory operation."""

    __slots__ = ("is_store", "addr", "value", "atomic_op", "operand", "callback")

    def __init__(
        self,
        is_store: bool,
        addr: int,
        value: Optional[int],
        callback: Callable[[int], None],
        atomic_op: Optional[str] = None,
        operand: int = 0,
    ) -> None:
        self.is_store = is_store
        self.addr = addr
        self.value = value
        self.atomic_op = atomic_op
        self.operand = operand
        self.callback = callback


class _TLB:
    """Fully-associative LRU TLB."""

    __slots__ = ("entries", "capacity", "page_shift", "misses", "hits")

    def __init__(self, entries: int, page_bytes: int) -> None:
        self.capacity = entries
        self.page_shift = page_bytes.bit_length() - 1
        self.entries: "OrderedDict[int, None]" = OrderedDict()
        self.misses = 0
        self.hits = 0

    def access(self, addr: int) -> bool:
        """Touch the page; returns True on hit."""
        page = addr >> self.page_shift
        if page in self.entries:
            self.entries.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(self.entries) >= self.capacity:
            self.entries.popitem(last=False)
        self.entries[page] = None
        return False


def is_protocol_space(addr: int) -> bool:
    """Protocol (unmapped) physical space lives above bit 56."""
    return bool(addr >> 56 & 1)


PROTO_SPACE_BIT = 1 << 56

#: Application code lives in its own physical region (replicated
#: read-only per node), so instruction lines never alias data lines.
ICODE_SPACE_BIT = 1 << 55


class CacheHierarchy:
    def __init__(self, node_id: int, mp: MachineParams, stats: NodeStats) -> None:
        self.node_id = node_id
        self.mp = mp
        self.pp = mp.proc
        self.stats = stats

        self.l1i = SetAssocCache("l1i", self.pp.l1i, stats.l1i)
        self.l1d = SetAssocCache("l1d", self.pp.l1d, stats.l1d)
        self.l2 = SetAssocCache("l2", self.pp.l2, stats.l2)
        nb = self.pp.bypass_buffer_lines
        self.ibypass = BypassBuffer("ibypass", nb, self.pp.l1i.line_bytes)
        self.dbypass = BypassBuffer("dbypass", nb, self.pp.l1d.line_bytes)
        self.l2bypass = BypassBuffer("l2bypass", nb, self.pp.l2.line_bytes)

        proto_res = self.pp.reserved_mshrs if mp.protocol_engine == "thread" else 0
        self.mshrs = MSHRFile(self.pp.mshrs, protocol_reserved=proto_res)
        # Deferred probes per line: (kind, on_response).
        self._deferred_probes: Dict[int, List[Tuple[str, ProbeResponse]]] = {}
        # Writeback buffer: lines with a PUT sent but not yet WB_ACKed.
        # While a line is pending here, (a) no new request for it is
        # issued (a racing miss parks as the dict value and issues on
        # wb_ack), and (b) interventions for it answer "not found" —
        # they target the copy the PUT already carried away.  The home
        # withholds WB_ACK until no intervention is outstanding, so a
        # pending writeback is proof an arriving intervention is stale.
        self._wb_pending: Dict[int, Optional[MSHREntry]] = {}

        self.itlb = _TLB(self.pp.itlb_entries, self.pp.page_bytes)
        self.dtlb = _TLB(self.pp.dtlb_entries, self.pp.page_bytes)

        # Outstanding instruction-line misses: line -> callbacks.
        self._imisses: Dict[int, List[Callable[[], None]]] = {}

        # ---- wiring installed by the Node ----
        # Defaults are module-level functions (not lambdas) so a
        # hierarchy pickles even before/without Node wiring
        # (:mod:`repro.sim.checkpoint`).
        self.schedule: Callable[[int, Callable[[], None]], None] = _run_now
        # Application-space L2 miss: hand the MSHR entry to the MC.
        self.app_miss_port: Callable[[MSHREntry], None] = _discard
        # Protocol-space L2 miss: dedicated SDRAM path.
        self.proto_miss_port: Callable[[int, Callable[[int], None]], None] = (
            _proto_miss_now
        )
        # Dirty/exclusive eviction of an application line.
        self.writeback_port: Callable[[int, int, bool], None] = _discard
        # Protocol-space writeback (local memory timing only).
        self.proto_writeback_port: Callable[[int], None] = _discard
        # Functional word store (shared machine-wide).
        self.read_word: Callable[[int], int] = _zero_word
        self.write_word: Callable[[int, int], None] = _discard
        # Observer hook for the coherence checker.
        self.on_store: Callable[[int], None] = _discard

    # ------------------------------------------------------------------
    # Pipeline-side API
    # ------------------------------------------------------------------

    def load(
        self,
        addr: int,
        protocol: bool,
        on_complete: Callable[[int], None],
    ):
        """Issue a load.  Returns (HIT, latency, value), (MISS,) with
        ``on_complete(value)`` deferred, or (BLOCKED,)."""
        if not protocol:
            # Application fast path: the TLB touch and the L1D probe
            # loop are inlined — one load per application memory µop
            # lands here, the overwhelmingly common hierarchy call.
            dtlb = self.dtlb
            page = addr >> dtlb.page_shift
            entries = dtlb.entries
            if page in entries:
                entries.move_to_end(page)
                dtlb.hits += 1
                extra = 0
            else:
                dtlb.misses += 1
                if len(entries) >= dtlb.capacity:
                    entries.popitem(last=False)
                entries[page] = None
                extra = self.pp.tlb_miss_penalty
            l1 = self.l1d
            tag = addr >> l1.line_shift
            for line in l1._sets[tag & l1.set_mask]:
                if line.state is not CacheState.INVALID and line.tag == tag:
                    l1._tick += 1
                    line.lru = l1._tick
                    self.stats.l1d.app_hits += 1
                    return (
                        HIT,
                        self.pp.l1d.hit_latency + extra,
                        self.read_word(addr),
                    )
            self.stats.l1d.app_misses += 1
        else:
            if self.pp.perfect_protocol_caches:
                return HIT, self.pp.l1d.hit_latency, self._read_value(addr)
            extra = 0
            # L1D (plus D-bypass for the protocol thread).
            line = self.l1d.access(addr)
            if line is not None:
                self.stats.l1d.record(True, protocol)
                return HIT, self.pp.l1d.hit_latency + extra, self._read_value(addr)
            if self.dbypass.lookup(addr) is not None:
                self.stats.l1d.record(True, protocol)
                return HIT, self.pp.l1d.hit_latency + extra, self._read_value(addr)
            self.stats.l1d.record(False, protocol)

        # L2 (plus L2 bypass).
        l2_line = self.l2.access(addr)
        if l2_line is None and protocol:
            if self.l2bypass.lookup(addr) is not None:
                self._fill_l1d(addr, 0, protocol)
                return HIT, self.pp.l2.hit_latency + extra, self._read_value(addr)
        if l2_line is not None:
            self.stats.l2.record(True, protocol)
            self._fill_l1d(addr, l2_line.version, protocol)
            return HIT, self.pp.l2.hit_latency + extra, self._read_value(addr)
        self.stats.l2.record(False, protocol)

        waiter = _Waiter(False, addr, None, on_complete)
        return self._l2_miss(addr, MissKind.READ, protocol, waiter)

    def store(
        self,
        addr: int,
        protocol: bool,
        value: Optional[int],
        on_complete: Callable[[int], None],
    ):
        """Issue a store (from the store buffer, post-commit)."""
        if protocol and self.pp.perfect_protocol_caches:
            if value is not None:
                self.write_word(addr, value)
            return HIT, self.pp.l1d.hit_latency, 0
        extra = 0
        if not protocol and not self.dtlb.access(addr):
            extra = self.pp.tlb_miss_penalty

        if protocol:
            # Protocol space is node-private: any cached copy is
            # writable.  Check L1D/L2/bypasses.
            if self.l1d.access(addr) is not None or self.dbypass.lookup(addr) is not None:
                self.stats.l1d.record(True, protocol)
                self._execute_store(addr, value, protocol)
                return HIT, self.pp.l1d.hit_latency + extra, 0
            self.stats.l1d.record(False, protocol)
            l2_line = self.l2.access(addr)
            if l2_line is not None or self.l2bypass.lookup(addr) is not None:
                self.stats.l2.record(True, protocol)
                self._execute_store(addr, value, protocol)
                return HIT, self.pp.l2.hit_latency + extra, 0
            self.stats.l2.record(False, protocol)
            waiter = _Waiter(True, addr, value, on_complete)
            return self._l2_miss(addr, MissKind.WRITE, protocol, waiter)

        # Application store: write-through L1D, ownership at L2.
        l1_hit = self.l1d.access(addr) is not None
        self.stats.l1d.record(l1_hit, protocol)
        l2_line = self.l2.access(addr)
        if l2_line is not None and l2_line.state.writable:
            self.stats.l2.record(True, protocol)
            self._execute_store(addr, value, protocol)
            lat = self.pp.l1d.hit_latency if l1_hit else self.pp.l2.hit_latency
            return HIT, lat + extra, 0
        waiter = _Waiter(True, addr, value, on_complete)
        if l2_line is not None:
            # Present but SHARED: ownership upgrade required.
            self.stats.l2.record(True, protocol)
            return self._l2_miss(addr, MissKind.WRITE, protocol, waiter, upgrade=True)
        self.stats.l2.record(False, protocol)
        return self._l2_miss(addr, MissKind.WRITE, protocol, waiter)

    def atomic(
        self,
        addr: int,
        op: str,
        operand: int,
        on_complete: Callable[[int], None],
    ):
        """Atomic read-modify-write (test&set / fetch&inc / swap).

        Requires ownership like a store; returns the *old* word value.
        """
        if not self.dtlb.access(addr):
            extra = self.pp.tlb_miss_penalty
        else:
            extra = 0
        l2_line = self.l2.access(addr)
        if l2_line is not None and l2_line.state.writable:
            self.stats.l2.record(True, False)
            old = self._execute_atomic(addr, op, operand)
            return HIT, self.pp.l2.hit_latency + extra, old
        waiter = _Waiter(True, addr, None, on_complete, atomic_op=op, operand=operand)
        if l2_line is not None:
            self.stats.l2.record(True, False)
            return self._l2_miss(addr, MissKind.WRITE, False, waiter, upgrade=True)
        self.stats.l2.record(False, False)
        return self._l2_miss(addr, MissKind.WRITE, False, waiter)

    def prefetch(self, addr: int, exclusive: bool) -> None:
        """Software prefetch; dropped when it would block."""
        if self.l2.lookup(addr) is not None:
            line = self.l2.lookup(addr)
            if not exclusive or (line is not None and line.state.writable):
                return
        la = self.l2.line_addr(addr)
        entry = self.mshrs.get(la)
        kind = MissKind.PREFETCH_EX if exclusive else MissKind.PREFETCH
        if entry is not None:
            return  # already in flight
        entry = self.mshrs.allocate(la, kind, protocol=False, store=False)
        if entry is None:
            return  # MSHRs full: drop
        self._issue_app_miss(entry)
        entry.issued = True

    def ifetch(self, pc: int, protocol: bool, on_complete: Callable[[], None]):
        """Instruction fetch of the line holding ``pc``.

        Returns (HIT, latency) or (MISS,) with ``on_complete()`` later.
        Code is read-only and node-local, so misses use a fixed
        L2+SDRAM path without coherence.
        """
        if protocol and self.pp.perfect_protocol_caches:
            return HIT, self.pp.l1i.hit_latency
        if not protocol:
            extra = 0 if self.itlb.access(pc) else self.pp.tlb_miss_penalty
            pc |= ICODE_SPACE_BIT  # keep code lines out of the data space
        else:
            extra = 0
        if self.l1i.access(pc) is not None:
            self.stats.l1i.record(True, protocol)
            return HIT, self.pp.l1i.hit_latency + extra
        if protocol and self.ibypass.lookup(pc) is not None:
            self.stats.l1i.record(True, protocol)
            return HIT, self.pp.l1i.hit_latency + extra
        self.stats.l1i.record(False, protocol)
        l2_line = self.l2.access(pc)
        if l2_line is not None or (protocol and self.l2bypass.lookup(pc) is not None):
            self.stats.l2.record(True, protocol)
            self._fill_l1i(pc, protocol)
            return HIT, self.pp.l2.hit_latency + extra
        self.stats.l2.record(False, protocol)
        la = self.l2.line_addr(pc)
        cbs = self._imisses.get(la)
        if cbs is not None:
            cbs.append(on_complete)
            return (MISS,)
        self._imisses[la] = [on_complete]
        delay = self.mp.sdram_access_cycles + self.pp.l2.hit_latency
        self.schedule(delay, partial(self._ifill, la, protocol))
        return (MISS,)

    # ------------------------------------------------------------------
    # Memory-controller-side API
    # ------------------------------------------------------------------

    def refill(
        self,
        line_addr: int,
        writable: bool,
        version: int,
        acks: int = 0,
        dirty: bool = False,
    ) -> None:
        """A data reply landed for an application-space miss."""
        entry = self.mshrs.get(line_addr)
        if entry is None:
            raise ProtocolError(
                f"node {self.node_id}: refill {line_addr:#x} with no MSHR"
            )
        self.mshrs.data_reply(line_addr, version, writable, acks)
        if entry.upgrade_pending and entry.data_arrived and not writable:
            # A read miss with merged stores received only a SHARED
            # copy: install it, satisfy the loads, and convert the
            # entry into an ownership upgrade for the stores.
            self._convert_to_upgrade(entry)
            return
        self._maybe_complete(entry, dirty)

    def upgrade_ack(self, line_addr: int, acks: int) -> None:
        """Home granted ownership of a line we already hold SHARED."""
        entry = self.mshrs.get(line_addr)
        if entry is None:
            raise ProtocolError(
                f"node {self.node_id}: upgrade ack {line_addr:#x} with no MSHR"
            )
        line = self.l2.lookup(line_addr)
        version = line.version if line is not None else 0
        self.mshrs.data_reply(line_addr, version, writable=True, acks=acks)
        self._maybe_complete(entry, dirty=False)

    def inval_ack(self, line_addr: int) -> None:
        entry = self.mshrs.inval_ack(line_addr)
        if entry is None:
            raise ProtocolError(
                f"node {self.node_id}: inval ack {line_addr:#x} with no MSHR"
            )
        self._maybe_complete(entry, dirty=False)

    def mshr_kind(self, line_addr: int) -> Optional[MissKind]:
        entry = self.mshrs.get(line_addr)
        return entry.kind if entry is not None else None

    def record_retry(self, line_addr: int) -> int:
        """A NACK arrived; bump the retry counter.  Returns retries."""
        entry = self.mshrs.get(line_addr)
        if entry is None:
            raise ProtocolError(
                f"node {self.node_id}: NACK {line_addr:#x} with no MSHR"
            )
        entry.retries += 1
        return entry.retries

    def probe(self, line_addr: int, kind: str, on_response: ProbeResponse) -> None:
        """Coherence probe from the home node.

        ``kind`` is 'inval' or 'downgrade'.  Responds (after the L2
        round trip) with (found, dirty, version).  Probes racing an
        in-flight fill of the same line are deferred until the fill.
        """
        if line_addr in self._wb_pending:
            # Writeback-buffer hit: our PUT for this line is in flight
            # and unacknowledged, so this intervention targets the copy
            # the PUT already carried away.  Answer "not found"; any
            # parked miss of ours is serialized after this transaction.
            self.schedule(
                self.pp.l2.hit_latency, partial(on_response, False, False, 0)
            )
            return
        entry = self.mshrs.get(line_addr)
        if entry is not None and not entry.complete:
            if kind == "inval":
                if self.l2.lookup(line_addr) is None:
                    # A stale invalidation (our sharer bit outlived the
                    # copy) racing our own re-fetch.  Ack it right away
                    # — the invalidating writer must not wait on our
                    # fill — and discard a non-writable fill afterwards
                    # (a writable fill was serialized *after* the
                    # invalidating transaction, so it survives).
                    entry.inval_after_fill = True
                    self.schedule(
                        self.pp.l2.hit_latency,
                        partial(on_response, False, False, 0),
                    )
                    return
                # An invalidation racing an in-flight UPGRADE applies to
                # the still-present SHARED copy immediately — deferring
                # it would deadlock the ack chain (the upgrade comes
                # back NACK_UPGRADE and retries as a full GETX).
            else:
                self._deferred_probes.setdefault(line_addr, []).append(
                    (kind, on_response)
                )
                return
        self.schedule(
            self.pp.l2.hit_latency,
            partial(self._do_probe, line_addr, kind, on_response),
        )

    def wb_ack(self, line_addr: int) -> None:
        """Home acknowledged our PUT: the line leaves the writeback
        buffer, and a miss parked behind it issues now."""
        entry = self._wb_pending.pop(line_addr, None)
        if entry is not None and self.mshrs.get(line_addr) is entry:
            self.app_miss_port(entry)

    def proto_refill(self, line_addr: int, version: int = 0) -> None:
        """Protocol-space line arrived over the dedicated SDRAM bus."""
        entry = self.mshrs.get(line_addr)
        if entry is None:
            raise ProtocolError(
                f"node {self.node_id}: proto refill {line_addr:#x} with no MSHR"
            )
        self.mshrs.data_reply(line_addr, version, writable=True, acks=0)
        self._maybe_complete(entry, dirty=False)

    # ------------------------------------------------------------------
    # Checker / teardown helpers
    # ------------------------------------------------------------------

    def flush_to_memory(self, memory_sink: Callable[[int, int], None]) -> None:
        """Drain every dirty/exclusive application line into memory.

        Used by the coherence checker's end-of-run audit.
        """
        for line in list(self.l2.valid_lines()):
            la = self.l2.line_address_of(line)
            if is_protocol_space(la) or la & ICODE_SPACE_BIT:
                continue
            if line.state.writable:
                memory_sink(la, line.version)

    def cached_app_lines(self) -> Dict[int, CacheState]:
        return {
            la: st
            for la, st in self.l2.contents().items()
            if not is_protocol_space(la) and not la & ICODE_SPACE_BIT
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _read_value(self, addr: int) -> int:
        return self.read_word(addr)

    def _fill_l1d(self, addr: int, version: int, protocol: bool) -> None:
        la = self.l1d.line_addr(addr)
        if self.l1d.lookup(la) is not None:
            return
        if protocol and self._conflicts_with_app_miss(self.l1d, la):
            self.dbypass.install(la, version)
            self.stats.bypass_allocations += 1
            return
        # Write-through L1D: the victim is always clean, discard it.
        self.l1d.install(la, CacheState.SHARED, version, protocol)

    def _fill_l1i(self, pc: int, protocol: bool) -> None:
        la = self.l1i.line_addr(pc)
        if self.l1i.lookup(la) is not None:
            return
        if protocol and self._conflicts_with_app_miss(self.l1i, la):
            self.ibypass.install(la, 0)
            self.stats.bypass_allocations += 1
            return
        self.l1i.install(la, CacheState.SHARED, 0, protocol)

    def _ifill(self, line_addr: int, protocol: bool) -> None:
        """Instruction line arrived from local memory: fill L2 + L1I."""
        if self.l2.lookup(line_addr) is None:
            if protocol and self._conflicts_with_app_miss(self.l2, line_addr):
                self.l2bypass.install(line_addr, 0)
                self.stats.bypass_allocations += 1
            else:
                self._install_l2(line_addr, CacheState.SHARED, 0, protocol)
        self._fill_l1i(line_addr, protocol)
        for cb in self._imisses.pop(line_addr, []):
            cb()

    def _conflicts_with_app_miss(self, cache: SetAssocCache, line_addr: int) -> bool:
        """Paper §2.2: does this protocol line index-conflict with any
        in-flight application miss?"""
        target_set = cache.set_index(line_addr)
        for la, entry in self.mshrs.entries.items():
            if not entry.protocol and cache.set_index(la) == target_set:
                return True
        return False

    def _execute_store(self, addr: int, value: Optional[int], protocol: bool) -> None:
        """Perform a store's semantics against owned copies."""
        if value is not None:
            self.write_word(addr, value)
        if protocol:
            # Node-private space: bump whichever copy exists.
            l2_line = self.l2.lookup(addr)
            if l2_line is not None:
                l2_line.version += 1
                l2_line.dirty = True
            else:
                self.l2bypass.write(addr, 1)
            if self.l1d.lookup(addr) is None:
                self.dbypass.write(addr, 1)
            return
        l2_line = self.l2.lookup(addr)
        if l2_line is None or not l2_line.state.writable:
            raise ProtocolError(
                f"node {self.node_id}: store to {addr:#x} without ownership"
            )
        l2_line.state = CacheState.MODIFIED
        l2_line.dirty = True
        l2_line.version += 1
        self.on_store(self.l2.line_addr(addr))
        l1_line = self.l1d.lookup(addr)
        if l1_line is not None:
            l1_line.version = l2_line.version

    def _execute_atomic(self, addr: int, op: str, operand: int) -> int:
        old = self.read_word(addr)
        if op == "tas":
            new = 1
        elif op == "fai":
            new = old + operand
        elif op == "swap":
            new = operand
        else:
            raise ValueError(f"unknown atomic op {op!r}")
        self._execute_store(addr, None, protocol=False)
        self.write_word(addr, new)
        return old

    def _l2_miss(
        self,
        addr: int,
        kind: MissKind,
        protocol: bool,
        waiter: _Waiter,
        upgrade: bool = False,
    ):
        la = self.l2.line_addr(addr)
        entry = self.mshrs.get(la)
        if entry is not None:
            self.mshrs.merge(entry, waiter, kind.wants_write)
            return (MISS,)
        entry = self.mshrs.allocate(
            la, kind, protocol=protocol, store=waiter.is_store and not protocol
        )
        if entry is None:
            return (BLOCKED,)
        entry.waiters.append(waiter)
        if upgrade:
            entry.request_upgrade = True
            line = self.l2.lookup(la)
            if line is not None:
                # Pin the SHARED copy: evicting it while the ownership
                # upgrade is in flight would complete the upgrade
                # against nothing.
                line.locked = True
        if protocol:
            self.proto_miss_port(la, partial(self.proto_refill, la))
        else:
            if upgrade:
                entry.kind = MissKind.WRITE
            self._issue_app_miss(entry)
        entry.issued = True
        self.stats.local_misses += 1
        return (MISS,)

    def _issue_app_miss(self, entry: MSHREntry) -> None:
        """Hand an application miss to the MC — unless the line sits
        in the writeback buffer, in which case it parks until wb_ack
        (issuing before the PUT is acknowledged would let the home
        re-grant us the line while the old PUT can still erase the new
        grant's ownership record)."""
        la = entry.line_addr
        if la in self._wb_pending:
            self._wb_pending[la] = entry
        else:
            self.app_miss_port(entry)

    def _wake(self, waiter: _Waiter, version: int) -> None:
        if waiter.is_store:
            if waiter.atomic_op is not None:
                old = self._execute_atomic(waiter.addr, waiter.atomic_op, waiter.operand)
                waiter.callback(old)
                return
            if is_protocol_space(waiter.addr):
                self._execute_store(waiter.addr, waiter.value, protocol=True)
            else:
                self._execute_store(waiter.addr, waiter.value, protocol=False)
            waiter.callback(0)
            return
        value = self._read_value(waiter.addr)
        self._fill_l1d(waiter.addr, version, is_protocol_space(waiter.addr))
        waiter.callback(value)

    def _convert_to_upgrade(self, entry: MSHREntry) -> None:
        la = entry.line_addr
        line = self.l2.lookup(la)
        if line is None:
            line = self._install_l2(la, CacheState.SHARED, entry.data_version, False)
        line.locked = True  # pinned until the upgrade resolves
        load_waiters = [w for w in entry.waiters if not w.is_store]
        entry.waiters = [w for w in entry.waiters if w.is_store]
        for waiter in load_waiters:
            self._wake(waiter, entry.data_version)
        entry.kind = MissKind.WRITE
        entry.upgrade_pending = False
        entry.request_upgrade = True
        entry.data_arrived = False
        entry.data_state_writable = False
        self._issue_app_miss(entry)

    def _maybe_complete(self, entry: MSHREntry, dirty: bool) -> None:
        if not entry.complete:
            return
        la = entry.line_addr
        protocol_space = is_protocol_space(la)
        if protocol_space:
            if self._conflicts_with_app_miss(self.l2, la):
                self.l2bypass.install(la, entry.data_version)
                self.stats.bypass_allocations += 1
            else:
                self._install_l2(la, CacheState.EXCLUSIVE, entry.data_version, True)
        elif entry.request_upgrade:
            line = self.l2.lookup(la)
            if line is None:
                raise ProtocolError(
                    f"node {self.node_id}: upgrade of {la:#x} completed "
                    "but the pinned SHARED copy is gone"
                )
            line.state = CacheState.MODIFIED if dirty else CacheState.EXCLUSIVE
            line.locked = False
        else:
            state = (
                CacheState.MODIFIED
                if dirty
                else (CacheState.EXCLUSIVE if entry.data_state_writable else CacheState.SHARED)
            )
            line = self.l2.lookup(la)
            if line is None:
                self._install_l2(la, state, entry.data_version, False, dirty=dirty)
            elif state.writable and not line.state.writable:
                # We still held a SHARED copy (an upgrade that lost its
                # race and retried as a full GETX): promote it.
                line.state = state
                line.version = max(line.version, entry.data_version)
                line.dirty = line.dirty or dirty
                line.locked = False
            else:
                line.locked = False
        waiters = self.mshrs.free(la)
        for waiter in waiters:
            self._wake(waiter, entry.data_version)
        if entry.inval_after_fill and not protocol_space:
            line = self.l2.lookup(la)
            if line is not None and not line.state.writable:
                # The early-acked invalidation applies to this copy.
                self._do_probe(la, "inval", _discard)
        # Probes that raced this fill run now, in arrival order.
        for kind, on_response in self._deferred_probes.pop(la, []):
            self._do_probe(la, kind, on_response)

    def _install_l2(
        self,
        line_addr: int,
        state: CacheState,
        version: int,
        protocol: bool,
        dirty: bool = False,
    ) -> None:
        victim = self.l2.victim(line_addr)
        if victim is not None and victim.valid:
            self._evict_l2_line(victim)
        return self.l2.install(line_addr, state, version, protocol, dirty=dirty)

    def _evict_l2_line(self, victim) -> None:
        victim_addr = self.l2.line_address_of(victim)
        # Inclusion: kill L1 copies of the victim.
        for sub in range(victim_addr, victim_addr + self.pp.l2.line_bytes, self.pp.l1d.line_bytes):
            self.l1d.invalidate(sub)
        for sub in range(victim_addr, victim_addr + self.pp.l2.line_bytes, self.pp.l1i.line_bytes):
            self.l1i.invalidate(sub)
        if is_protocol_space(victim_addr):
            if victim.dirty:
                self.proto_writeback_port(victim_addr)
            return
        if victim.state.writable:
            # Dirty data or a clean-exclusive replacement hint: the home
            # must learn ownership ended (avoids the intervention/PUT
            # deadlock described in DESIGN.md).
            self.stats.l2.writebacks += 1
            self._wb_pending[victim_addr] = None
            self.writeback_port(victim_addr, victim.version, victim.dirty)

    def _do_probe(self, line_addr: int, kind: str, on_response: ProbeResponse) -> None:
        line = self.l2.lookup(line_addr)
        if line is None:
            on_response(False, False, 0)
            return
        if kind == "inval" and line.state.writable:
            # Invalidations only ever target sharers; holding a
            # *writable* copy means a transaction serialized after the
            # invalidating one made this node the owner — the INVAL is
            # stale.  Ack it and keep the copy.
            on_response(False, False, 0)
            return
        found_dirty = line.dirty
        version = line.version
        if kind in ("inval", "inval_owner"):
            for sub in range(line_addr, line_addr + self.pp.l2.line_bytes, self.pp.l1d.line_bytes):
                self.l1d.invalidate(sub)
            self.l2.invalidate(line_addr)
            self.stats.l2.external_invalidations += 1
        elif kind == "downgrade":
            line.state = CacheState.SHARED
            line.dirty = False
            self.stats.l2.external_downgrades += 1
        else:
            raise ValueError(f"unknown probe kind {kind!r}")
        on_response(True, found_dirty, version)
