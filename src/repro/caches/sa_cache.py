"""Set-associative cache with true-LRU replacement.

One class serves L1I, L1D, L2 and the direct-mapped directory/protocol
caches (associativity 1).  Lines carry a coherence state, a dirty bit,
a data *version* token (used by the coherence checker to detect lost
updates), and the class of the requester that allocated them
(application vs protocol) so cache-pollution effects are measurable.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.caches.coherence import CacheState
from repro.common.params import CacheParams
from repro.common.stats import CacheStats


class CacheLine:
    __slots__ = ("tag", "state", "dirty", "version", "protocol", "lru", "locked")

    def __init__(self) -> None:
        self.tag = -1
        self.state = CacheState.INVALID
        self.dirty = False
        self.version = 0
        self.protocol = False
        self.lru = 0
        # A locked line may not be chosen as a replacement victim (used
        # for lines with an in-flight transaction).
        self.locked = False

    @property
    def valid(self) -> bool:
        return self.state is not CacheState.INVALID

    def invalidate(self) -> None:
        self.tag = -1
        self.state = CacheState.INVALID
        self.dirty = False
        self.version = 0
        self.protocol = False
        self.locked = False


class SetAssocCache:
    """A blocking-refill set-associative cache model.

    The cache is purely a tag/state store: timing lives in the
    hierarchy and controllers.  ``lookup`` does not update LRU (probes);
    ``access`` does.
    """

    def __init__(self, name: str, params: CacheParams, stats: CacheStats) -> None:
        self.name = name
        self.params = params
        self.stats = stats
        self.line_shift = params.line_bytes.bit_length() - 1
        self.set_mask = params.n_sets - 1
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(params.assoc)] for _ in range(params.n_sets)
        ]
        self._tick = 0

    # -- addressing -----------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr >> self.line_shift << self.line_shift

    def set_index(self, addr: int) -> int:
        return (addr >> self.line_shift) & self.set_mask

    def _tag(self, addr: int) -> int:
        return addr >> self.line_shift

    # -- probes ---------------------------------------------------------
    # The probe loops test ``state``/``tag`` directly rather than the
    # ``valid`` property: a probe runs per way per access on the
    # pipeline's hot path, and a property is a Python-level call.

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Return the valid line holding ``addr`` without touching LRU."""
        tag = addr >> self.line_shift
        for line in self._sets[tag & self.set_mask]:
            if line.state is not CacheState.INVALID and line.tag == tag:
                return line
        return None

    def access(self, addr: int) -> Optional[CacheLine]:
        """Like :meth:`lookup` but promotes the line to MRU."""
        tag = addr >> self.line_shift
        for line in self._sets[tag & self.set_mask]:
            if line.state is not CacheState.INVALID and line.tag == tag:
                self._tick += 1
                line.lru = self._tick
                return line
        return None

    def set_has_locked_conflict(self, addr: int) -> bool:
        """True if every way of ``addr``'s set is valid-and-locked or
        locked-invalid (an in-flight miss reserves its victim way).

        This is the conflict condition that sends protocol thread
        misses to the bypass buffer (paper §2.2).
        """
        return all(line.locked for line in self._sets[self.set_index(addr)])

    # -- fills and evictions ---------------------------------------------
    def victim(self, addr: int) -> Optional[CacheLine]:
        """Choose the replacement victim for a fill of ``addr``.

        Prefers an invalid unlocked way, else the LRU unlocked way.
        Returns ``None`` when every way is locked (caller must retry or
        divert to a bypass buffer).
        """
        candidates = [l for l in self._sets[self.set_index(addr)] if not l.locked]
        if not candidates:
            return None
        for line in candidates:
            if not line.valid:
                return line
        return min(candidates, key=lambda l: l.lru)

    def install(
        self,
        addr: int,
        state: CacheState,
        version: int = 0,
        protocol: bool = False,
        dirty: bool = False,
    ) -> CacheLine:
        """Fill ``addr`` into its chosen victim way (must be available).

        The caller is responsible for having handled the victim's
        eviction (writeback / inclusion) via :meth:`victim` first.
        """
        line = self.victim(addr)
        if line is None:
            raise RuntimeError(f"{self.name}: no victim available for {addr:#x}")
        line.tag = self._tag(addr)
        line.state = state
        line.dirty = dirty
        line.version = version
        line.protocol = protocol
        line.locked = False
        self._tick += 1
        line.lru = self._tick
        return line

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Invalidate the line holding ``addr``; returns the old line."""
        line = self.lookup(addr)
        if line is None:
            return None
        snapshot = CacheLine()
        snapshot.tag = line.tag
        snapshot.state = line.state
        snapshot.dirty = line.dirty
        snapshot.version = line.version
        snapshot.protocol = line.protocol
        line.invalidate()
        return snapshot

    # -- iteration (checker / flush) --------------------------------------
    def valid_lines(self) -> Iterator[CacheLine]:
        for cache_set in self._sets:
            for line in cache_set:
                if line.valid:
                    yield line

    def line_address_of(self, line: CacheLine) -> int:
        return line.tag << self.line_shift

    def flush(self, sink: Callable[[int, CacheLine], None]) -> None:
        """Invalidate everything, handing each valid line to ``sink``."""
        for cache_set in self._sets:
            for line in cache_set:
                if line.valid:
                    sink(self.line_address_of(line), line)
                    line.invalidate()

    def contents(self) -> Dict[int, CacheState]:
        return {
            self.line_address_of(line): line.state for line in self.valid_lines()
        }
