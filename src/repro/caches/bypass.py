"""Protocol-thread bypass buffers (paper §2.2).

A protocol load/store (or instruction fetch) whose line conflicts with
an in-flight application miss cannot wait for the application line —
the application miss may itself be waiting on this very handler, a
deadlock cycle.  Instead the protocol line is allocated in a small
fully-associative bypass buffer that is searched in parallel with the
cache.  The buffer is sized to the MSHR count (16 lines) so that even
the pathological all-conflicting case fits.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple


class BypassBuffer:
    """Fully associative, LRU, cache-line-sized entries, protocol-only."""

    def __init__(self, name: str, n_lines: int, line_bytes: int) -> None:
        self.name = name
        self.n_lines = n_lines
        self.line_shift = line_bytes.bit_length() - 1
        # line address -> (version, dirty, lru)
        self._lines: Dict[int, Tuple[int, bool, int]] = {}
        self._tick = 0
        self.allocations = 0
        self.hits = 0
        #: Wake hook (activity contract): called on every fill so a
        #: core sleeping on a protocol-side miss re-checks fetch/issue.
        self.on_fill: Optional[Callable[[], None]] = None

    def __len__(self) -> int:
        return len(self._lines)

    def line_addr(self, addr: int) -> int:
        return addr >> self.line_shift << self.line_shift

    def lookup(self, addr: int) -> Optional[int]:
        """Return the stored version if ``addr``'s line is present."""
        la = self.line_addr(addr)
        hit = self._lines.get(la)
        if hit is None:
            return None
        self._tick += 1
        self._lines[la] = (hit[0], hit[1], self._tick)
        self.hits += 1
        return hit[0]

    def write(self, addr: int, version: int) -> bool:
        """Update a present line in place; False if absent."""
        la = self.line_addr(addr)
        if la not in self._lines:
            return False
        self._tick += 1
        self._lines[la] = (version, True, self._tick)
        return True

    def install(self, addr: int, version: int, dirty: bool = False) -> Optional[Tuple[int, int, bool]]:
        """Insert a line, evicting LRU if full.

        Returns the evicted ``(line_addr, version, dirty)`` or None.
        """
        la = self.line_addr(addr)
        evicted = None
        if la not in self._lines and len(self._lines) >= self.n_lines:
            victim = min(self._lines, key=lambda a: self._lines[a][2])
            v_version, v_dirty, _ = self._lines.pop(victim)
            evicted = (victim, v_version, v_dirty)
        self._tick += 1
        self._lines[la] = (version, dirty, self._tick)
        self.allocations += 1
        if self.on_fill is not None:
            self.on_fill()
        return evicted

    def evict(self, addr: int) -> Optional[Tuple[int, bool]]:
        """Remove a line, returning (version, dirty) if present."""
        la = self.line_addr(addr)
        entry = self._lines.pop(la, None)
        if entry is None:
            return None
        return entry[0], entry[1]

    def drain(self) -> Dict[int, Tuple[int, bool]]:
        """Remove and return everything (line_addr -> (version, dirty))."""
        out = {la: (v, d) for la, (v, d, _) in self._lines.items()}
        self._lines.clear()
        return out
