"""Replayable failure artifacts.

When a fuzz cell fails, everything needed to reproduce it is dumped to
one JSON file: the cell (seed, machine shape, stress + fault configs),
the exact op list, the protocol-event trace tail (ring buffer), a
machine-state snapshot at death, and — after shrinking — the minimal
reproducing op list.  ``python -m repro fuzz --replay <file>`` rebuilds
the machine and replays the ops; tests and humans can do the same via
:func:`replay_artifact`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.fuzz.stress import FuzzOp
from repro.protocol import directory as d

SCHEMA_VERSION = 1


def machine_snapshot(machine) -> Dict[str, object]:
    """JSON-serializable picture of coherence state at failure time."""
    layout = machine.layout
    cached_lines = set()
    nodes = []
    for node in machine.nodes:
        cached = {
            hex(la): {"state": st.name, }
            for la, st in node.hierarchy.cached_app_lines().items()
        }
        for la_hex in cached:
            cached_lines.add(int(la_hex, 16))
        # Versions come from the L2 lines themselves.
        for la_hex, rec in cached.items():
            line = node.hierarchy.l2.lookup(int(la_hex, 16))
            if line is not None:
                rec["version"] = line.version
                rec["dirty"] = line.dirty
        mshrs = [
            {
                "line": hex(la),
                "kind": e.kind.value,
                "protocol": e.protocol,
                "retries": e.retries,
                "pending_acks": e.pending_acks,
                "data_arrived": e.data_arrived,
                "request_upgrade": e.request_upgrade,
            }
            for la, e in node.hierarchy.mshrs.entries.items()
        ]
        cached_lines.update(node.hierarchy.mshrs.entries)
        mc = node.mc
        nodes.append(
            {
                "node": node.node_id,
                "cached": cached,
                "mshrs": mshrs,
                "queues": {
                    "lmi": len(mc.local_queue),
                    "ni_in": [len(q) for q in mc.ni_in],
                    "probe_replies": len(mc.probe_replies),
                },
                "memory_versions": {
                    hex(la): v for la, v in node.memory_versions.items()
                },
            }
        )
    directory = {}
    for la in sorted(cached_lines):
        home = layout.home_of(la)
        entry = machine.nodes[home].pmem.get(layout.dir_entry_addr(la), 0)
        directory[hex(la)] = {"home": home, "entry": d.describe(entry)}
    return {
        "cycle": machine.cycle,
        "nodes": nodes,
        "directory": directory,
        "sanitizer": machine.sanitizer.report() if machine.sanitizer else None,
    }


def write_artifact(
    path,
    cell,
    ops: List[FuzzOp],
    status: str,
    error: str,
    error_type: str,
    snapshot: Optional[Dict[str, object]],
    trace: Optional[List[dict]],
    shrunk_ops: Optional[List[FuzzOp]] = None,
) -> Path:
    """Atomically write one failure artifact; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": SCHEMA_VERSION,
        "cell": cell.to_dict(),
        "status": status,
        "error": error,
        "error_type": error_type,
        "ops": [op.to_dict() for op in ops],
        "shrunk_ops": (
            [op.to_dict() for op in shrunk_ops]
            if shrunk_ops is not None
            else None
        ),
        "snapshot": snapshot,
        "trace_tail": trace,
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(doc, indent=1, sort_keys=True))
    os.replace(tmp, path)
    return path


def load_artifact(path) -> Dict[str, object]:
    return json.loads(Path(path).read_text())


def replay_artifact(
    path, use_shrunk: bool = True, protocol: Optional[str] = None
) -> Tuple[bool, Optional[BaseException], List[FuzzOp]]:
    """Re-run an artifact's ops on a fresh machine.

    Returns ``(reproduced, failure, ops_used)`` — ``reproduced`` means
    the replay failed in the same status class (violation vs deadlock)
    the artifact recorded.

    ``protocol``, when given, asserts which coherence bundle the
    artifact was fuzzed under; a mismatch is a ``ConfigError`` rather
    than a silent replay against the wrong handlers (the failure would
    be meaningless — or worse, spuriously "fixed").  ``None`` accepts
    whatever the artifact recorded.
    """
    from repro.common.errors import ConfigError
    from repro.fuzz.campaign import FuzzCell, execute, status_of

    doc = load_artifact(path)
    cell = FuzzCell.from_dict(doc["cell"])
    if protocol is not None and protocol != cell.protocol:
        raise ConfigError(
            f"artifact {path} was recorded under protocol "
            f"{cell.protocol!r} but replay requested {protocol!r}; "
            "pass the matching --protocol (or none, to use the "
            "recorded one)"
        )
    op_dicts = doc["ops"]
    if use_shrunk and doc.get("shrunk_ops"):
        op_dicts = doc["shrunk_ops"]
    ops = [FuzzOp.from_dict(o) for o in op_dicts]
    failure, _machine, _tracer = execute(cell, ops)
    reproduced = failure is not None and status_of(failure) == doc["status"]
    return reproduced, failure, ops
