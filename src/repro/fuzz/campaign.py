"""Fuzz cells and campaigns.

One *cell* is a fully-described randomized run: seed, machine shape,
stress config, fault config.  :func:`run_fuzz_cell` executes a cell on
a fresh sanitized machine; on failure it writes a replayable artifact
and greedily shrinks the op list to a minimal reproducer.

A *campaign* fans many cells across the same worker pool the sweep
runner uses (:func:`repro.sim.sweep.pool_map`) and summarizes the
results; ``python -m repro fuzz`` is the CLI face.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    CoherenceViolation,
    DeadlockError,
    ProtocolError,
    SimulationError,
)
from repro.fuzz.artifact import machine_snapshot, write_artifact
from repro.fuzz.faults import FaultConfig, FaultInjector
from repro.fuzz.shrink import DEFAULT_BUDGET, shrink_ops
from repro.fuzz.stress import FuzzOp, StressConfig, generate_ops, run_ops

#: Machine scaling used for fuzz cells (mirrors the test suite's
#: ``small_machine``: tiny caches, small local memory, short watchdog).
FUZZ_MACHINE_KWARGS = dict(
    cache_scale=32,
    dir_scale=256,
    local_memory_bytes=1 << 22,
    check_coherence=True,
    sanitize=True,
    watchdog_cycles=300_000,
)


@dataclass(frozen=True)
class FuzzCell:
    """Everything that determines one fuzz run, seed included."""

    seed: int
    model: str = "base"
    n_nodes: int = 2
    stress: StressConfig = field(default_factory=StressConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    max_cycles: int = 3_000_000
    trace_tail: int = 400
    #: Registered coherence-protocol bundle the machine runs
    #: (``repro.protocol.registry``); recorded in artifacts so
    #: ``--replay`` rebuilds the same protocol.
    protocol: str = "smtp-bitvector"

    @property
    def label(self) -> str:
        proto = (
            f" proto={self.protocol}"
            if self.protocol != "smtp-bitvector" else ""
        )
        return (
            f"seed={self.seed} {self.model} n={self.n_nodes} "
            f"{self.stress.sharing} ops={self.stress.n_ops}"
            f"{proto}{' faults' if self.faults.active else ''}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "model": self.model,
            "n_nodes": self.n_nodes,
            "stress": self.stress.to_dict(),
            "faults": self.faults.to_dict(),
            "max_cycles": self.max_cycles,
            "trace_tail": self.trace_tail,
            "protocol": self.protocol,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FuzzCell":
        return cls(
            seed=int(d["seed"]),
            model=str(d.get("model", "base")),
            n_nodes=int(d.get("n_nodes", 2)),
            stress=StressConfig.from_dict(d.get("stress", {})),
            faults=FaultConfig(**d.get("faults", {})),
            max_cycles=int(d.get("max_cycles", 3_000_000)),
            trace_tail=int(d.get("trace_tail", 400)),
            protocol=str(d.get("protocol", "smtp-bitvector")),
        )


def install_idle_cores(machine) -> None:
    """Give an SMTp machine one idle app thread per node, so the
    protocol-thread engine exists for memory-side traffic."""
    from repro.apps.program import KernelBuilder, ThreadProgram

    def idle(k):
        k.alu()
        yield

    machine.install_cores(
        [
            [
                ThreadProgram(
                    idle,
                    KernelBuilder(0, 0x400000 + n * 0x10000),
                    machine.wheel,
                )
            ]
            for n in range(machine.mp.n_nodes)
        ]
    )


def build_fuzz_machine(cell: FuzzCell):
    """A sanitized scaled machine (plus fault injector) for one cell."""
    from repro.core.machine import Machine
    from repro.core.models import make_machine_params

    mp = make_machine_params(
        cell.model, cell.n_nodes, 1,
        protocol=cell.protocol, **FUZZ_MACHINE_KWARGS,
    )
    machine = Machine(mp)
    if mp.protocol_engine == "thread":
        install_idle_cores(machine)
    if cell.faults.active:
        FaultInjector(cell.faults, cell.seed).install(machine.fabric)
    return machine


def status_of(failure: BaseException) -> str:
    """Map a failure to its campaign status class."""
    if isinstance(failure, (CoherenceViolation, ProtocolError)):
        return "violation"
    if isinstance(failure, DeadlockError):  # includes LivelockError
        return "deadlock"
    return "error"


def execute(cell: FuzzCell, ops: List[FuzzOp], collect_trace: bool = False):
    """Run ``ops`` on a fresh machine built from ``cell``.

    Returns ``(failure_or_None, machine, tracer_or_None)``; the machine
    is returned mid-death for snapshotting.
    """
    machine = build_fuzz_machine(cell)
    tracer = None
    if collect_trace:
        from repro.sim.trace import ProtocolTracer

        tracer = ProtocolTracer(machine, max_events=cell.trace_tail, ring=True)
    try:
        run_ops(
            machine, ops,
            max_outstanding=cell.stress.max_outstanding,
            max_cycles=cell.max_cycles,
        )
        machine.final_checks()
    except SimulationError as exc:
        return exc, machine, tracer
    return None, machine, tracer


@dataclass
class FuzzResult:
    """Outcome of one cell."""

    cell: FuzzCell
    status: str  # "ok" | "violation" | "deadlock" | "error" | pool statuses
    error: str = ""
    error_type: str = ""
    n_ops: int = 0
    shrunk_to: Optional[int] = None
    cycles: int = 0
    elapsed_s: float = 0.0
    artifact: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        d = self.cell.to_dict()
        d.update(
            status=self.status,
            error=self.error,
            error_type=self.error_type,
            n_ops=self.n_ops,
            shrunk_to=self.shrunk_to,
            cycles=self.cycles,
            elapsed_s=round(self.elapsed_s, 3),
            artifact=self.artifact,
        )
        return d


def run_fuzz_cell(
    cell: FuzzCell,
    out_dir="fuzz_artifacts",
    shrink: bool = True,
    shrink_budget: int = DEFAULT_BUDGET,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzResult:
    """Run one cell; on failure, dump an artifact and shrink."""
    start = time.perf_counter()
    ops = generate_ops(cell.seed, cell.stress, cell.n_nodes)
    failure, machine, tracer = execute(cell, ops, collect_trace=True)
    elapsed = time.perf_counter() - start
    if failure is None:
        return FuzzResult(
            cell, "ok", n_ops=len(ops), cycles=machine.cycle,
            elapsed_s=elapsed,
        )

    status = status_of(failure)
    shrunk: Optional[List[FuzzOp]] = None
    if shrink:
        def reproduces(candidate: List[FuzzOp]) -> bool:
            exc, _m, _t = execute(cell, candidate)
            return exc is not None and status_of(exc) == status

        shrunk = shrink_ops(ops, reproduces, budget=shrink_budget,
                            progress=progress)

    artifact_path = Path(out_dir) / (
        f"fuzz_{cell.model}_n{cell.n_nodes}_seed{cell.seed}.json"
    )
    write_artifact(
        artifact_path,
        cell,
        ops,
        status=status,
        error=str(failure),
        error_type=type(failure).__name__,
        snapshot=machine_snapshot(machine),
        trace=tracer.to_dicts() if tracer is not None else None,
        shrunk_ops=shrunk,
    )
    return FuzzResult(
        cell,
        status,
        error=str(failure).splitlines()[0][:500],
        error_type=type(failure).__name__,
        n_ops=len(ops),
        shrunk_to=len(shrunk) if shrunk is not None else None,
        cycles=machine.cycle,
        elapsed_s=time.perf_counter() - start,
        artifact=str(artifact_path),
    )


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------


def make_cells(
    seeds: Sequence[int],
    model: str = "base",
    n_nodes: int = 2,
    stress: Optional[StressConfig] = None,
    faults: Optional[FaultConfig] = None,
    max_cycles: int = 3_000_000,
    protocol: str = "smtp-bitvector",
) -> List[FuzzCell]:
    stress = stress or StressConfig()
    faults = faults or FaultConfig()
    return [
        FuzzCell(
            seed=seed, model=model, n_nodes=n_nodes,
            stress=stress, faults=faults, max_cycles=max_cycles,
            protocol=protocol,
        )
        for seed in seeds
    ]


#: Protocol bundles this worker process has already warm-compiled.
_WARMED_BUNDLES: set = set()


def _warm_start(protocol: str) -> None:
    """Compile the selected bundle's handler table once per worker
    process (imports and first-use caches included), so per-cell fuzz
    timings measure stress execution rather than compiler start-up."""
    if protocol in _WARMED_BUNDLES:
        return
    try:
        from repro.protocol import compile as pcompile
        from repro.protocol import registry

        if not pcompile.interp_forced():
            pcompile.compile_bundle(registry.get(protocol))
    except Exception:
        pass  # the cell run surfaces real configuration errors
    _WARMED_BUNDLES.add(protocol)


def _cell_payload(payload: Tuple[Dict[str, object], str, bool, int]) -> Dict[str, object]:
    """Worker-side entry: rebuild the cell, run it, ship a dict back."""
    cell_dict, out_dir, shrink, shrink_budget = payload
    cell = FuzzCell.from_dict(cell_dict)
    _warm_start(cell.protocol)
    result = run_fuzz_cell(
        cell, out_dir=out_dir, shrink=shrink, shrink_budget=shrink_budget
    )
    return result.to_dict()


def _cell_ident(cell: FuzzCell) -> str:
    """Stable identity of a cell for the durability ledger."""
    import hashlib
    import json

    blob = json.dumps(cell.to_dict(), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _result_from_outcome(cell: FuzzCell, outcome: Dict[str, object]) -> FuzzResult:
    return FuzzResult(
        cell,
        outcome["status"],
        error=outcome["error"],
        error_type=outcome["error_type"],
        n_ops=outcome["n_ops"],
        shrunk_to=outcome["shrunk_to"],
        cycles=outcome["cycles"],
        elapsed_s=outcome["elapsed_s"],
        artifact=outcome["artifact"],
    )


def run_campaign(
    cells: Sequence[FuzzCell],
    jobs: int = 0,
    out_dir="fuzz_artifacts",
    shrink: bool = True,
    shrink_budget: int = DEFAULT_BUDGET,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    ledger=None,
) -> List[FuzzResult]:
    """Run every cell, ``jobs`` at a time (0 = inline), in input order.

    ``ledger`` (a :class:`repro.sim.queue.ResultLedger`) makes the
    campaign durable: finished cells recorded there are replayed
    instead of re-fuzzed, so a killed campaign resumes where it died
    (``python -m repro fuzz --ledger DIR``).
    """
    note = progress or (lambda msg: None)
    results: Dict[int, FuzzResult] = {}
    done = [0]

    def finish(idx: int, result: FuzzResult) -> None:
        results[idx] = result
        done[0] += 1
        tag = result.status
        extra = ""
        if result.shrunk_to is not None:
            extra = f" shrunk {result.n_ops}->{result.shrunk_to}"
        if result.artifact:
            extra += f" artifact={result.artifact}"
        note(
            f"[{done[0]}/{len(cells)}] {result.cell.label}: {tag} "
            f"({result.elapsed_s:.2f}s){extra}"
        )

    if jobs <= 0:
        for idx, cell in enumerate(cells):
            ident = (idx, _cell_ident(cell))
            outcome = ledger.get(ident) if ledger is not None else None
            if outcome is not None:
                finish(idx, _result_from_outcome(cell, outcome))
                continue
            result = run_fuzz_cell(
                cell, out_dir=out_dir, shrink=shrink,
                shrink_budget=shrink_budget,
            )
            if ledger is not None:
                ledger.put(ident, result.to_dict())
            finish(idx, result)
    else:
        from repro.sim.sweep import pool_map

        pending = [
            ((idx, _cell_ident(cell)),
             (cell.to_dict(), str(out_dir), shrink, shrink_budget))
            for idx, cell in enumerate(cells)
        ]

        def on_done(ident, payload, outcome, elapsed, attempts):
            idx = ident[0]
            cell = FuzzCell.from_dict(payload[0])
            if outcome.get("_pool_status") == "crashed":
                finish(idx, FuzzResult(
                    cell, "crashed",
                    error=(
                        f"worker exited with code {outcome.get('exitcode')} "
                        "and no result"
                    ),
                    error_type="WorkerCrash", elapsed_s=elapsed,
                ))
            elif outcome.get("_pool_status") == "timeout":
                finish(idx, FuzzResult(
                    cell, "timeout",
                    error=f"cell exceeded {timeout:g}s wall clock",
                    error_type="FuzzTimeout", elapsed_s=elapsed,
                ))
            else:
                finish(idx, _result_from_outcome(cell, outcome))

        pool_map(pending, _cell_payload, jobs=jobs, timeout=timeout,
                 retries=0, on_done=on_done, ledger=ledger)

    return [results[idx] for idx in range(len(cells))]


def write_fuzz_json(
    out_dir,
    name: str,
    results: Sequence[FuzzResult],
    jobs: int,
    wall_clock_s: float,
) -> Path:
    """Write ``FUZZ_<name>.json``: the campaign's machine-readable record
    (one row per cell plus the summary), sibling to ``BENCH_*.json``."""
    import json
    import os
    import time as _time

    from repro.sim.sweep import code_version

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"FUZZ_{name}.json"
    doc = {
        "schema": 1,
        "name": name,
        "created_unix": round(_time.time(), 3),
        "code_version": code_version(),
        "jobs": jobs,
        "wall_clock_s": round(wall_clock_s, 3),
        **summarize_campaign(results),
        "cells": [r.to_dict() for r in results],
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(doc, indent=1, sort_keys=True))
    os.replace(tmp, path)
    return path


def summarize_campaign(results: Sequence[FuzzResult]) -> Dict[str, object]:
    by_status: Dict[str, int] = {}
    for r in results:
        by_status[r.status] = by_status.get(r.status, 0) + 1
    return {
        "n_cells": len(results),
        "n_ok": sum(1 for r in results if r.ok),
        "n_failed": sum(1 for r in results if not r.ok),
        "by_status": by_status,
        "artifacts": [r.artifact for r in results if r.artifact],
        "sim_seconds_total": round(sum(r.elapsed_s for r in results), 3),
    }
