"""Network fault injection for coherence fuzzing.

The interconnect guarantees delivery but not latency, so a correct
protocol must tolerate arbitrary per-message delay — and delay is also
how you *reorder*: a held-back message is overtaken by everything sent
after it.  The injector perturbs injection times with a seeded RNG,
provoking exactly the races (stale invalidations, writeback/intervention
crossings, NACK storms) that the paper's deadlock-avoidance and bypass
machinery exists to survive.

Message *duplication* is different: the protocol assumes a
non-duplicating fabric (a duplicated data reply hits a freed MSHR), so
``dup_rate > 0`` is an adversarial mode expected to produce failures —
useful for exercising the failure pipeline, never part of a
must-pass-clean campaign.

The hook lives in :class:`repro.network.fabric.Interconnect`
(``fault_plan``); installing nothing keeps the fabric on its
zero-overhead path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Dict, Tuple

from repro.common.errors import ConfigError
from repro.network.messages import Message


@dataclass(frozen=True)
class FaultConfig:
    """Rates and magnitudes for the three perturbation knobs."""

    #: Probability a message's injection is delayed.
    delay_rate: float = 0.0
    #: Maximum extra delay, in processor cycles.
    delay_max: int = 0
    #: Probability a message is injected twice (adversarial mode).
    dup_rate: float = 0.0

    @property
    def active(self) -> bool:
        return (self.delay_rate > 0 and self.delay_max > 0) or self.dup_rate > 0

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Named presets for the ``--faults`` CLI option.
PRESETS: Dict[str, FaultConfig] = {
    "off": FaultConfig(),
    "on": FaultConfig(delay_rate=0.15, delay_max=200),
    "heavy": FaultConfig(delay_rate=0.35, delay_max=1000),
    "dup": FaultConfig(delay_rate=0.15, delay_max=200, dup_rate=0.02),
}


def parse_faults(spec) -> FaultConfig:
    """Parse a ``--faults`` value: a preset name, ``key=value`` pairs
    (``delay_rate=0.2,delay_max=500,dup_rate=0``), or a FaultConfig."""
    if isinstance(spec, FaultConfig):
        return spec
    spec = (spec or "off").strip().lower()
    if spec in PRESETS:
        return PRESETS[spec]
    if "=" not in spec:
        raise ConfigError(
            f"unknown fault preset {spec!r}; pick from {sorted(PRESETS)} "
            "or give key=value pairs"
        )
    valid = {f.name: f.type for f in fields(FaultConfig)}
    kwargs: Dict[str, object] = {}
    for part in spec.split(","):
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in valid:
            raise ConfigError(
                f"unknown fault knob {name!r}; pick from {sorted(valid)}"
            )
        try:
            kwargs[name] = int(value) if name == "delay_max" else float(value)
        except ValueError:
            raise ConfigError(f"bad value for fault knob {name}: {value!r}")
    return FaultConfig(**kwargs)


class FaultInjector:
    """Seeded per-message fault planner; install on a machine's fabric."""

    def __init__(self, config: FaultConfig, seed: int) -> None:
        self.config = config
        # Decorrelate from the traffic generator's RNG stream.
        self.rng = random.Random((seed << 1) ^ 0x5EED_FA17)
        self.planned_delays = 0
        self.planned_dups = 0

    def plan(self, msg: Message) -> Tuple[int, int]:
        """Return ``(extra_delay_cycles, n_copies)`` for one message."""
        cfg = self.config
        rng = self.rng
        delay = 0
        copies = 1
        if cfg.delay_rate and rng.random() < cfg.delay_rate:
            delay = rng.randrange(1, cfg.delay_max + 1)
            self.planned_delays += 1
        if cfg.dup_rate and rng.random() < cfg.dup_rate:
            copies = 2
            self.planned_dups += 1
        return delay, copies

    def install(self, fabric) -> "FaultInjector":
        if self.config.active:
            fabric.fault_plan = self.plan
        return self
