"""The online coherence sanitizer.

Where :class:`repro.protocol.checker.CoherenceChecker` audits at
quiesce, the sanitizer checks invariants *while the machine runs*, so a
protocol bug is caught at the cycle it corrupts state — under exactly
the adversarial schedules (fault injection, contention storms) where a
quiesce-only audit would either never be reached (deadlock) or report a
corpse with no trail.

Checks
------
Per committed store (hooked through ``hierarchy.on_store``):

* **SWMR** — no other node holds a writable copy of the stored line at
  the instant of the store.
* **Store-version data-value invariant** — the k-th store machine-wide
  to a line must leave the owning copy at version k.  A store that
  landed on a stale copy shows up immediately as a version mismatch
  instead of surfacing cycles later as a lost update.

Per sweep (every ``MachineParams.sanitize_interval`` cycles):

* **SWMR sweep** — at most one writable copy across all nodes.
* **Occupancy accounting** — MSHR class counters match the entry map
  and never exceed capacity; bounded queues and bypass buffers respect
  their capacities.
* **Directory encoding** — every directory entry for a cached line has
  a legal state and in-range owner/waiter/sharer fields.
* **Livelock watchdog** — an MSHR entry outstanding for more than
  ``watchdog_cycles`` means the transaction is starving even if
  handlers keep firing (a NACK storm the commit watchdog cannot see);
  the raised :class:`~repro.common.errors.LivelockError` carries a
  structured diagnosis of which queue/MSHR/handler is stuck.

The sanitizer is wired by :class:`repro.core.machine.Machine` when
``MachineParams.sanitize`` is true; with the flag off the machine's
step path is untouched (zero overhead).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.caches.coherence import CacheState
from repro.common.errors import CoherenceViolation, LivelockError
from repro.protocol import directory as d


class Sanitizer:
    def __init__(self, machine) -> None:
        self.machine = machine
        mp = machine.mp
        self.interval = max(1, mp.sanitize_interval)
        self.stuck_age = mp.watchdog_cycles
        self._next_sweep = self.interval
        self.store_counts: Dict[int, int] = defaultdict(int)
        #: (node_id, line_addr) -> (entry object, cycle first seen).  The
        #: entry reference distinguishes a genuinely stuck transaction
        #: from a hot line that misses again and again (each re-miss is
        #: a fresh entry — and fresh entries mean forward progress).
        self._mshr_first_seen: Dict[Tuple[int, int], Tuple[object, int]] = {}
        self.sweeps = 0
        self.store_checks = 0
        self._chained: Dict[object, object] = {}

    # ------------------------------------------------------------------
    # Hook management (same discipline as CoherenceChecker)
    # ------------------------------------------------------------------

    def attach(self) -> "Sanitizer":
        for node in self.machine.nodes:
            hierarchy = node.hierarchy
            if hierarchy in self._chained:
                continue
            self._chained[hierarchy] = hierarchy.on_store
            hierarchy.on_store = self._make_hook(node, hierarchy.on_store)
        return self

    def detach(self) -> None:
        for hierarchy, original in self._chained.items():
            hierarchy.on_store = original
        self._chained.clear()

    def __enter__(self) -> "Sanitizer":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    def _make_hook(self, node, chained):
        def hook(line_addr: int) -> None:
            self._check_store(node, line_addr)
            chained(line_addr)

        return hook

    # ------------------------------------------------------------------
    # Per-store checks
    # ------------------------------------------------------------------

    def _check_store(self, node, line_addr: int) -> None:
        self.store_checks += 1
        count = self.store_counts[line_addr] + 1
        self.store_counts[line_addr] = count
        line = node.hierarchy.l2.lookup(line_addr)
        if line is None or not line.state.writable:
            raise CoherenceViolation(
                f"cycle {self.machine.cycle}: node {node.node_id} committed a "
                f"store to {line_addr:#x} without a writable L2 copy"
            )
        if line.version != count:
            raise CoherenceViolation(
                f"cycle {self.machine.cycle}: store #{count} to "
                f"{line_addr:#x} at node {node.node_id} left version "
                f"{line.version} — the store landed on a stale copy"
            )
        for other in self.machine.nodes:
            if other is node:
                continue
            peer = other.hierarchy.l2.lookup(line_addr)
            if peer is not None and peer.state.writable:
                raise CoherenceViolation(
                    f"cycle {self.machine.cycle}: node {node.node_id} stored "
                    f"to {line_addr:#x} while node {other.node_id} holds a "
                    f"{peer.state.name} copy (SWMR broken)"
                )

    # ------------------------------------------------------------------
    # Periodic sweep
    # ------------------------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        if cycle < self._next_sweep:
            return
        self._next_sweep = cycle + self.interval
        self.sweep(cycle)

    def sweep(self, cycle: int) -> None:
        self.sweeps += 1
        machine = self.machine
        writers: Dict[int, List[int]] = {}
        cached: Dict[int, List[int]] = {}
        for node in machine.nodes:
            self._check_occupancy(node)
            for la, state in node.hierarchy.cached_app_lines().items():
                cached.setdefault(la, []).append(node.node_id)
                if state in (CacheState.EXCLUSIVE, CacheState.MODIFIED):
                    writers.setdefault(la, []).append(node.node_id)
        for la, nodes in writers.items():
            if len(nodes) > 1:
                raise CoherenceViolation(
                    f"cycle {cycle}: line {la:#x} writable at multiple "
                    f"nodes: {nodes}"
                )
        self._check_directory_encoding(cached, cycle)
        self._check_forward_progress(cycle)

    def _check_occupancy(self, node) -> None:
        mshrs = node.hierarchy.mshrs
        used = mshrs._app_used + mshrs._store_used + mshrs._proto_used
        if used != len(mshrs.entries):
            raise CoherenceViolation(
                f"node {node.node_id}: MSHR accounting drift — class "
                f"counters say {used}, entry map holds {len(mshrs.entries)}"
            )
        if len(mshrs.entries) > mshrs.total_capacity:
            raise CoherenceViolation(
                f"node {node.node_id}: {len(mshrs.entries)} MSHRs in use, "
                f"capacity {mshrs.total_capacity}"
            )
        mc = node.mc
        for queue in [mc.local_queue, *mc.ni_in]:
            if len(queue) > queue.capacity:
                raise CoherenceViolation(
                    f"node {node.node_id}: queue {queue.name} holds "
                    f"{len(queue)} > capacity {queue.capacity}"
                )
        h = node.hierarchy
        for buf in (h.ibypass, h.dbypass, h.l2bypass):
            if len(buf) > buf.n_lines:
                raise CoherenceViolation(
                    f"node {node.node_id}: bypass buffer {buf.name} holds "
                    f"{len(buf)} > capacity {buf.n_lines}"
                )

    def _check_directory_encoding(
        self, cached: Dict[int, List[int]], cycle: int
    ) -> None:
        machine = self.machine
        layout = machine.layout
        n_nodes = machine.mp.n_nodes
        vector_mask = ~((1 << n_nodes) - 1)
        for la in cached:
            home = machine.nodes[layout.home_of(la)]
            entry = home.pmem.get(layout.dir_entry_addr(la), 0)
            state = d.state_of(entry)
            if state not in d.STATE_NAMES:
                raise CoherenceViolation(
                    f"cycle {cycle}: line {la:#x} directory entry has "
                    f"illegal state {state} ({entry:#x})"
                )
            if state == d.EXCLUSIVE and d.owner_of(entry) >= n_nodes:
                raise CoherenceViolation(
                    f"cycle {cycle}: line {la:#x} directory owner "
                    f"{d.owner_of(entry)} out of range ({n_nodes} nodes)"
                )
            if d.sharers_of(entry) and (
                self._vector_of(entry) & vector_mask
            ):
                raise CoherenceViolation(
                    f"cycle {cycle}: line {la:#x} sharer vector names a "
                    f"node >= {n_nodes}: {d.describe(entry)}"
                )

    @staticmethod
    def _vector_of(entry: int) -> int:
        return entry >> d.VECTOR_SHIFT

    # ------------------------------------------------------------------
    # Livelock watchdog
    # ------------------------------------------------------------------

    def _check_forward_progress(self, cycle: int) -> None:
        seen: Dict[Tuple[int, int], Tuple[object, int]] = {}
        stuck: List[Tuple[int, int, int]] = []
        for node in self.machine.nodes:
            for la, entry in node.hierarchy.mshrs.entries.items():
                key = (node.node_id, la)
                prev = self._mshr_first_seen.get(key)
                first = prev[1] if prev is not None and prev[0] is entry else cycle
                seen[key] = (entry, first)
                age = cycle - first
                if age > self.stuck_age:
                    stuck.append((node.node_id, la, age))
        self._mshr_first_seen = seen
        if stuck:
            raise LivelockError(self.diagnose(stuck, cycle))

    def diagnose(self, stuck: List[Tuple[int, int, int]], cycle: int) -> str:
        """Structured report of what is wedged and where."""
        machine = self.machine
        layout = machine.layout
        lines = [
            f"cycle {cycle}: {len(stuck)} transaction(s) outstanding for "
            f"more than {self.stuck_age} cycles"
        ]
        for node_id, la, age in stuck:
            node = machine.nodes[node_id]
            entry = node.hierarchy.mshrs.get(la)
            home_id = layout.home_of(la)
            dir_entry = machine.nodes[home_id].pmem.get(
                layout.dir_entry_addr(la), 0
            )
            lines.append(
                f"  node {node_id} line {la:#x}: {entry.kind.value} miss, "
                f"age {age}, retries {entry.retries}, "
                f"acks pending {entry.pending_acks}, "
                f"data {'arrived' if entry.data_arrived else 'missing'}, "
                f"upgrade={entry.request_upgrade} — home {home_id} "
                f"directory: {d.describe(dir_entry)}"
            )
        for node in machine.nodes:
            mc = node.mc
            engine = "none"
            if mc.engine is not None:
                engine = "busy" if not mc.engine.can_accept() else "ready"
            lines.append(
                f"  node {node.node_id} queues: lmi={len(mc.local_queue)} "
                f"ni={[len(q) for q in mc.ni_in]} "
                f"probe_replies={len(mc.probe_replies)} engine={engine}"
            )
        lines.append(machine._deadlock_report())
        return "\n".join(lines)

    # ------------------------------------------------------------------

    def report(self) -> Dict[str, int]:
        return {
            "sweeps": self.sweeps,
            "store_checks": self.store_checks,
            "lines_stored": len(self.store_counts),
        }
