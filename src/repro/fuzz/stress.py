"""Seeded stress-traffic generation and deterministic replay.

Two halves, deliberately decoupled:

* :func:`generate_ops` turns ``(seed, StressConfig, n_nodes)`` into a
  flat list of :class:`FuzzOp` records — pure function of its inputs,
  no machine state involved.
* :func:`run_ops` plays any op list against a machine: issue in order,
  cap outstanding misses, retry blocked issues, step until drained.

Because the op list is data, a failing run's exact traffic can be
serialized into an artifact, replayed bit-for-bit, and *shrunk* — the
minimizer just replays sublists (see :mod:`repro.fuzz.shrink`).

Sharing patterns model the classic DSM access shapes:

``uniform``
    every node hits every line (the PR-0 randomized test's model),
``producer_consumer``
    one writer per line, everyone else reads,
``migratory``
    bursts of read-modify-write from one node at a time, rotating,
``home``
    nodes mostly touch lines homed at other nodes (3-hop heavy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Dict, List

from repro.common.errors import ConfigError, DeadlockError

SHARING_PATTERNS = ("uniform", "producer_consumer", "migratory", "home")

ATOMIC_OPS = ("tas", "fai", "swap")

LINE_BYTES = 128
WORD_STRIDE = 8


@dataclass(frozen=True)
class StressConfig:
    """Traffic shape for one fuzz cell."""

    n_ops: int = 300
    n_lines: int = 4  # per node (homed lines)
    hot_fraction: float = 0.7
    load_w: float = 0.45
    store_w: float = 0.40
    atomic_w: float = 0.10
    prefetch_w: float = 0.05
    sharing: str = "uniform"
    max_outstanding: int = 8
    migratory_burst: int = 16

    def __post_init__(self) -> None:
        if self.sharing not in SHARING_PATTERNS:
            raise ConfigError(
                f"unknown sharing pattern {self.sharing!r}; "
                f"pick from {SHARING_PATTERNS}"
            )
        if self.n_ops <= 0 or self.n_lines <= 0:
            raise ConfigError("n_ops and n_lines must be positive")

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "StressConfig":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in names})


@dataclass(frozen=True)
class FuzzOp:
    """One generated memory operation.

    ``kind`` is load/store/atomic/prefetch; ``arg`` is the store value,
    atomic operand, or prefetch-exclusive flag; ``sub`` names the
    atomic op ('tas'/'fai'/'swap').
    """

    node: int
    kind: str
    addr: int
    arg: int = 0
    sub: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "node": self.node, "kind": self.kind, "addr": self.addr,
            "arg": self.arg, "sub": self.sub,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FuzzOp":
        return cls(
            node=int(d["node"]), kind=str(d["kind"]), addr=int(d["addr"]),
            arg=int(d.get("arg", 0)), sub=str(d.get("sub", "")),
        )


def line_pool(n_nodes: int, n_lines: int) -> List[int]:
    """Application line addresses, ``n_lines`` homed at each node."""
    return [
        (node << 22) | (i * LINE_BYTES)
        for node in range(n_nodes)
        for i in range(1, n_lines + 1)
    ]


def generate_ops(seed: int, cfg: StressConfig, n_nodes: int) -> List[FuzzOp]:
    """Deterministic op list from (seed, config, node count)."""
    rng = random.Random(seed)
    lines = line_pool(n_nodes, cfg.n_lines)
    hot = lines[: max(1, len(lines) // 3)]
    total_w = cfg.load_w + cfg.store_w + cfg.atomic_w + cfg.prefetch_w
    if total_w <= 0:
        raise ConfigError("op-mix weights must sum to a positive value")
    load_cut = cfg.load_w / total_w
    store_cut = load_cut + cfg.store_w / total_w
    atomic_cut = store_cut + cfg.atomic_w / total_w

    def pick_line() -> int:
        pool = hot if rng.random() < cfg.hot_fraction else lines
        return rng.choice(pool)

    ops: List[FuzzOp] = []
    for i in range(cfg.n_ops):
        roll = rng.random()
        if roll < load_cut:
            kind = "load"
        elif roll < store_cut:
            kind = "store"
        elif roll < atomic_cut:
            kind = "atomic"
        else:
            kind = "prefetch"

        line = pick_line()
        if cfg.sharing == "producer_consumer" and kind in ("store", "atomic"):
            # The line's writer is fixed by its position in the pool.
            node = lines.index(line) % n_nodes
        elif cfg.sharing == "migratory":
            node = (i // max(1, cfg.migratory_burst)) % n_nodes
        elif cfg.sharing == "home":
            # Mostly remote lines: 3-hop transactions dominate.
            node = rng.randrange(n_nodes)
            home = line >> 22
            if home == node and rng.random() < 0.8:
                node = (node + 1 + rng.randrange(max(1, n_nodes - 1))) % n_nodes
        else:
            node = rng.randrange(n_nodes)

        if kind == "atomic":
            # Atomics target the line's base word, like lock words do.
            ops.append(FuzzOp(node, "atomic", line, arg=1,
                              sub=rng.choice(ATOMIC_OPS)))
        else:
            addr = line + rng.randrange(0, LINE_BYTES, WORD_STRIDE)
            if kind == "store":
                ops.append(FuzzOp(node, "store", addr, arg=rng.randrange(1000)))
            elif kind == "prefetch":
                ops.append(FuzzOp(node, "prefetch", addr,
                                  arg=int(rng.random() < 0.5)))
            else:
                ops.append(FuzzOp(node, "load", addr))
    return ops


def run_ops(
    machine,
    ops: List[FuzzOp],
    max_outstanding: int = 8,
    max_cycles: int = 3_000_000,
) -> Dict[str, int]:
    """Replay ``ops`` in order against ``machine`` and drain it.

    Issues keep ``max_outstanding`` misses in flight; a blocked issue
    (no MSHR) is retried on a later cycle without reordering.  Raises
    :class:`DeadlockError` if the traffic does not complete within
    ``max_cycles``; any sanitizer/checker violation propagates from
    inside :meth:`machine.step`.
    """
    outstanding = [0]
    issued = [0]
    index = [0]

    def cb(_value: int) -> None:
        outstanding[0] -= 1

    def maybe_issue() -> None:
        while index[0] < len(ops) and outstanding[0] < max_outstanding:
            op = ops[index[0]]
            h = machine.nodes[op.node].hierarchy
            if op.kind == "load":
                r = h.load(op.addr, False, cb)
            elif op.kind == "store":
                r = h.store(op.addr, False, op.arg, cb)
            elif op.kind == "atomic":
                r = h.atomic(op.addr, op.sub, op.arg, cb)
            elif op.kind == "prefetch":
                h.prefetch(op.addr, exclusive=bool(op.arg))
                index[0] += 1
                continue
            else:
                raise ConfigError(f"unknown fuzz op kind {op.kind!r}")
            if r[0] == "blocked":
                return  # retry the same op on a later cycle
            index[0] += 1
            issued[0] += 1
            if r[0] == "miss":
                outstanding[0] += 1

    for _ in range(max_cycles):
        maybe_issue()
        if index[0] >= len(ops) and outstanding[0] == 0 and not machine.busy():
            break
        machine.step()
    else:
        raise DeadlockError(
            f"fuzz traffic incomplete after {max_cycles} cycles: "
            f"{outstanding[0]} outstanding, {len(ops) - index[0]} unissued\n"
            + machine._deadlock_report()
        )
    machine.quiesce()
    return {"issued": issued[0], "cycles": machine.cycle}
