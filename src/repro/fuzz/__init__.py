"""Coherence fuzzing and sanitizing.

The paper's whole argument rests on the protocol thread never losing
coherence, so this package makes adversarial correctness checking a
first-class subsystem:

* :mod:`repro.fuzz.sanitizer` — an always-available online sanitizer
  that validates SWMR, the store-version data-value invariant,
  queue/MSHR occupancy accounting and directory encoding *while the
  machine runs*, plus a livelock watchdog with structured stuck-state
  diagnosis.  Enabled per-machine with ``MachineParams.sanitize``.
* :mod:`repro.fuzz.stress` — a seeded stress-traffic generator with
  configurable op mixes and sharing patterns, and a deterministic
  executor that can replay any recorded op sequence.
* :mod:`repro.fuzz.faults` — opt-in network fault injection (random
  extra delay, message duplication) hooked into the interconnect.
* :mod:`repro.fuzz.campaign` — one fuzz cell = (seed, machine shape,
  stress config, fault config); campaigns fan cells across the sweep
  worker pool.  ``python -m repro fuzz`` is the CLI.
* :mod:`repro.fuzz.artifact` / :mod:`repro.fuzz.shrink` — on failure,
  a replayable JSON artifact (seed, params, op log, trace tail,
  machine snapshot) is written and the op sequence greedily shrunk to
  a minimal reproducer.
"""

from repro.fuzz.faults import FaultConfig, FaultInjector, parse_faults
from repro.fuzz.sanitizer import Sanitizer
from repro.fuzz.stress import FuzzOp, StressConfig, generate_ops, run_ops

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FuzzOp",
    "Sanitizer",
    "StressConfig",
    "generate_ops",
    "parse_faults",
    "run_ops",
]
