"""Greedy op-sequence minimization (delta debugging, ddmin-style).

Given a failing op list, repeatedly try dropping contiguous chunks —
halving the chunk size whenever a full pass removes nothing — and keep
any candidate that still reproduces the failure's status class on a
fresh machine.  Replays are whole-machine runs, so a replay budget caps
the work; shrinking is best-effort, never required for correctness.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.fuzz.stress import FuzzOp

DEFAULT_BUDGET = 150


def shrink_ops(
    ops: List[FuzzOp],
    reproduces: Callable[[List[FuzzOp]], bool],
    budget: int = DEFAULT_BUDGET,
    progress: Optional[Callable[[str], None]] = None,
) -> List[FuzzOp]:
    """Return a minimal-ish op list for which ``reproduces`` holds.

    ``reproduces(candidate)`` must re-run the candidate from scratch
    and report whether the original failure class recurs.  The input
    ``ops`` are assumed to reproduce (callers verified by failing).
    """
    note = progress or (lambda msg: None)
    current = list(ops)
    attempts = 0
    chunk = max(1, len(current) // 2)
    while attempts < budget:
        removed_any = False
        i = 0
        while i < len(current) and attempts < budget:
            candidate = current[:i] + current[i + chunk:]
            if not candidate:
                break
            attempts += 1
            if reproduces(candidate):
                current = candidate
                removed_any = True
                note(f"shrink: {len(current)} ops (chunk {chunk})")
            else:
                i += chunk
        if chunk == 1:
            if not removed_any:
                break
        else:
            chunk = max(1, chunk // 2)
    note(f"shrink: done at {len(current)} ops after {attempts} replays")
    return current
