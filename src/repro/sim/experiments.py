"""Workload registry and scaled problem-size presets.

Table 1 of the paper lists the full problem sizes; pure-Python cycle
simulation needs smaller inputs, so each application defines three
presets with identical *structure* (blocking, communication pattern,
synchronization) at different scales:

* ``tiny``   — unit/integration tests (seconds),
* ``bench``  — the benchmark harness (default; minutes for the suite),
* ``default``— larger runs for closer-to-paper miss-rate behaviour.

The capacity-scaled machine models (``cache_scale=32``,
``dir_scale=256`` in :mod:`repro.core.models`) pair with these sizes so
the working-set-to-cache and directory-to-directory-cache ratios stay
in the paper's regime.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps import fft, fftw, lu, ocean, radix, water

APPS = ("fft", "fftw", "lu", "ocean", "radix", "water")

_MAKERS: Dict[str, Callable] = {
    "fft": fft.make_sources,
    "fftw": fftw.make_sources,
    "lu": lu.make_sources,
    "ocean": ocean.make_sources,
    "radix": radix.make_sources,
    "water": water.make_sources,
}

#: Paper Table 1 sizes, for reference and for paper_exact runs.
PAPER_SIZES = {
    "fft": dict(points=1 << 20),
    "fftw": dict(nx=8192, ny=16, nz=16),
    "lu": dict(n=512, block=16),
    "ocean": dict(grid=514, iters=10),
    "radix": dict(keys=2_000_000, radix=32),
    "water": dict(molecules=1024, steps=3),
}

PRESETS: Dict[str, Dict[str, Dict]] = {
    "tiny": {
        "fft": dict(points=256, block=4),
        "fftw": dict(nx=8, ny=4, nz=4),
        "lu": dict(n=32, block=8),
        "ocean": dict(grid=18, iters=2),
        "radix": dict(keys=512, radix=16),
        "water": dict(molecules=8, steps=1),
    },
    "bench": {
        "fft": dict(points=1024, block=8),
        "fftw": dict(nx=16, ny=8, nz=8),
        "lu": dict(n=64, block=8),
        "ocean": dict(grid=34, iters=3),
        "radix": dict(keys=4096, radix=64),
        "water": dict(molecules=24, steps=2),
    },
    "default": {
        "fft": dict(points=4096, block=8),
        "fftw": dict(nx=32, ny=16, nz=8),
        "lu": dict(n=96, block=8),
        "ocean": dict(grid=66, iters=4),
        "radix": dict(keys=16384, radix=64),
        "water": dict(molecules=48, steps=2),
    },
}


def preset_sizes(app: str, preset: str) -> Dict:
    try:
        return PRESETS[preset][app]
    except KeyError:
        raise KeyError(
            f"unknown app/preset {app!r}/{preset!r}; apps={APPS}, "
            f"presets={tuple(PRESETS)}"
        ) from None


def app_sources(app: str, machine, params: Dict):
    try:
        maker = _MAKERS[app]
    except KeyError:
        raise KeyError(f"unknown app {app!r}; pick from {APPS}") from None
    return maker(machine, **params)
