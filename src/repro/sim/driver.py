"""The experiment driver: build a machine, run a workload, collect stats.

``run_app`` is the single entry point used by examples, tests and every
benchmark: it instantiates one of the five Table 4 machine models, the
requested application at the requested preset size, runs to
completion, drains the memory system, and returns
:class:`~repro.common.stats.MachineStats`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import SimulationError
from repro.common.stats import MachineStats
from repro.core.machine import Machine
from repro.core.models import make_machine_params
from repro.sim.experiments import app_sources, preset_sizes


def build_machine(
    model: str,
    n_nodes: int = 1,
    ways: int = 1,
    freq_ghz: float = 2.0,
    **model_kwargs,
) -> Machine:
    mp = make_machine_params(model, n_nodes, ways, freq_ghz, **model_kwargs)
    return Machine(mp)


def run_machine(machine: Machine, sources_per_node, max_cycles: int) -> MachineStats:
    machine.install_cores(sources_per_node)
    machine.run(max_cycles)
    if not machine.all_done():
        raise SimulationError(
            f"workload did not finish in {max_cycles} cycles\n"
            + machine._deadlock_report()
        )
    machine.quiesce()
    machine.finish()
    machine.final_checks()
    return machine.collect_stats()


def run_app(
    app: str,
    model: str,
    n_nodes: int = 1,
    ways: int = 1,
    freq_ghz: float = 2.0,
    preset: str = "bench",
    max_cycles: int = 30_000_000,
    sizes: Optional[Dict] = None,
    **model_kwargs,
) -> MachineStats:
    """Run ``app`` on ``model`` and return machine statistics.

    ``preset`` selects the scaled workload sizes ('tiny', 'bench',
    'default'); pass ``sizes`` to override individual parameters.
    """
    machine = build_machine(model, n_nodes, ways, freq_ghz, **model_kwargs)
    params = dict(preset_sizes(app, preset))
    if sizes:
        params.update(sizes)
    sources = app_sources(app, machine, params)
    return run_machine(machine, sources, max_cycles)
