"""Experiment harness: driver, presets, report rendering."""

from repro.sim.driver import build_machine, run_app, run_machine
from repro.sim.experiments import APPS, PAPER_SIZES, PRESETS, preset_sizes
from repro.sim.trace import ProtocolTracer

__all__ = [
    "APPS",
    "PAPER_SIZES",
    "PRESETS",
    "ProtocolTracer",
    "build_machine",
    "preset_sizes",
    "run_app",
    "run_machine",
]
