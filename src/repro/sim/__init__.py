"""Experiment harness: driver, presets, sweeps, report rendering."""

from repro.sim.driver import build_machine, run_app, run_machine
from repro.sim.experiments import APPS, PAPER_SIZES, PRESETS, preset_sizes
from repro.sim.sweep import (
    NAMED_GRIDS,
    CellResult,
    ResultCache,
    SweepCell,
    make_grid,
    run_sweep,
    write_bench_json,
)
from repro.sim.trace import ProtocolTracer

__all__ = [
    "APPS",
    "CellResult",
    "NAMED_GRIDS",
    "PAPER_SIZES",
    "PRESETS",
    "ProtocolTracer",
    "ResultCache",
    "SweepCell",
    "build_machine",
    "make_grid",
    "preset_sizes",
    "run_app",
    "run_machine",
    "run_sweep",
    "write_bench_json",
]
