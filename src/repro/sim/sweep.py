"""Parallel experiment sweeps with on-disk result caching.

Every paper table/figure is a grid of fully independent simulations:
(model, app, n_nodes, ways, freq, preset) cells that share nothing but
code.  This module fans such grids out across a ``multiprocessing``
worker pool and memoizes each cell on disk, so

* a re-run of any bench (or of the whole suite) only simulates cells
  whose inputs changed,
* a sweep that died half-way resumes from the completed cells,
* one misbehaving cell (``DeadlockError``, timeout, crash) degrades to
  a recorded failure row instead of killing the sweep.

Cache keys are content hashes over everything that determines a cell's
statistics: the fully-resolved :class:`~repro.common.params.MachineParams`
(so *any* model knob invalidates), the workload's preset sizes, the
cycle budget, and a version hash of the ``repro`` package sources (so a
simulator change invalidates every cell).  See ``benchmarks/README.md``
for the operational view.

Entry points:

* :func:`run_sweep` — run a list of :class:`SweepCell`\\ s.
* :func:`make_grid` / :data:`NAMED_GRIDS` — build cell lists.
* :class:`ResultCache` — the on-disk cell store.
* :func:`write_bench_json` — emit a machine-readable ``BENCH_*.json``
  trajectory file for a finished sweep.
* :func:`pool_map` — the underlying generic worker pool (one
  terminate-able subprocess per in-flight item); also drives
  :func:`repro.fuzz.campaign.run_campaign`.

``python -m repro sweep`` wraps all of this on the command line.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError

#: Bump when the result-record layout changes (invalidates every cell).
SCHEMA_VERSION = 1

DEFAULT_MAX_CYCLES = 30_000_000

# ----------------------------------------------------------------------
# Code version: a stable hash of the simulator sources.
# ----------------------------------------------------------------------

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file (computed once per process).

    Included in every cache key so a simulator change — however small —
    invalidates all cached cells; stale results can never leak across
    commits.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(path.read_bytes())
        _CODE_VERSION = h.hexdigest()[:16]
    return _CODE_VERSION


# ----------------------------------------------------------------------
# Cells and result rows
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One point of an experiment grid.

    ``flags`` holds extra :func:`repro.core.models.make_machine_params`
    keyword arguments (ablation switches, watchdog overrides, …) as a
    sorted tuple of ``(name, value)`` pairs so cells stay hashable.
    """

    app: str
    model: str
    n_nodes: int = 1
    ways: int = 1
    freq_ghz: float = 2.0
    preset: str = "bench"
    flags: Tuple[Tuple[str, object], ...] = ()
    max_cycles: int = DEFAULT_MAX_CYCLES

    @classmethod
    def make(
        cls,
        app: str,
        model: str,
        n_nodes: int = 1,
        ways: int = 1,
        freq_ghz: float = 2.0,
        preset: str = "bench",
        max_cycles: int = DEFAULT_MAX_CYCLES,
        **flags,
    ) -> "SweepCell":
        return cls(
            app=app,
            model=model,
            n_nodes=n_nodes,
            ways=ways,
            freq_ghz=freq_ghz,
            preset=preset,
            flags=tuple(sorted(flags.items())),
            max_cycles=max_cycles,
        )

    @property
    def label(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.flags)
        return (
            f"{self.app}/{self.model} n={self.n_nodes} w={self.ways} "
            f"{self.freq_ghz:g}GHz {self.preset}{extra}"
        )

    def to_dict(self) -> Dict[str, object]:
        d = dataclasses.asdict(self)
        d["flags"] = dict(self.flags)
        return d

    # -- cache identity ------------------------------------------------

    def _key_payload(self) -> Dict[str, object]:
        from repro.apps.compile import (
            APP_COMPILER_VERSION,
            SMT_COMPILER_VERSION,
            app_interp_forced,
            smt_interp_forced,
        )
        from repro.core.models import make_machine_params
        from repro.protocol.compile import COMPILER_VERSION, interp_forced
        from repro.sim.experiments import preset_sizes

        mp = make_machine_params(
            self.model,
            self.n_nodes,
            self.ways,
            self.freq_ghz,
            **dict(self.flags),
        )
        return {
            "schema": SCHEMA_VERSION,
            "code": code_version(),
            "app": self.app,
            "sizes": preset_sizes(self.app, self.preset),
            "machine": dataclasses.asdict(mp),
            "max_cycles": self.max_cycles,
            # Execution-mode escape hatches change per-cell timings
            # (stats are bit-identical by contract, but cached rows
            # carry elapsed_s, which the perf gate consumes), so
            # dense-loop or interpreter-mode runs must never serve
            # cache entries to the other mode.  The compiler version
            # rides along so a compilation-strategy bump re-times
            # every cell even when no source file changed.
            "dense_step": os.environ.get("REPRO_DENSE_STEP", "") == "1",
            "interp": interp_forced(),
            "compiler": COMPILER_VERSION,
            "app_interp": app_interp_forced(),
            "app_compiler": APP_COMPILER_VERSION,
            "smt_interp": smt_interp_forced(),
            "smt_compiler": SMT_COMPILER_VERSION,
        }

    def cache_key(self) -> str:
        """Stable content hash of everything that determines the stats."""
        blob = json.dumps(self._key_payload(), sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()


def summarize_stats(st) -> Dict[str, object]:
    """JSON-serializable scalar summary of one run's MachineStats.

    This is the per-cell record every bench and ``BENCH_*.json`` file
    consumes; it is the *only* thing the cache stores.
    """
    peaks = st.resource_peaks()
    return dict(
        cycles=st.cycles,
        skipped_cycles=st.skipped_cycles,
        committed=st.committed,
        memory_stall_fraction=st.memory_stall_fraction,
        occupancy_peak=st.protocol_occupancy_peak(),
        occupancy_mean=st.protocol_occupancy_mean(),
        br_mispredict=st.protocol_branch_mispredict_rate(),
        squash_fraction=st.protocol_squash_cycle_fraction(),
        retired_share=st.retired_protocol_share(),
        peaks={k: list(v) for k, v in peaks.items()},
        protocol_instructions=st.protocol_instructions,
    )


@dataclass
class CellResult:
    """Outcome of one cell: a stats row or a recorded failure."""

    cell: SweepCell
    status: str  # "ok" | "failed" | "timeout" | "crashed"
    stats: Optional[Dict[str, object]] = None
    error: str = ""
    error_type: str = ""
    elapsed_s: float = 0.0
    #: One-time prebuild/compile CPU seconds (see :func:`warm_start`),
    #: kept out of ``elapsed_s`` so gates time steady-state simulation.
    compile_s: float = 0.0
    cached: bool = False
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def cycles_per_sec(self) -> float:
        """Simulated cycles per CPU-second (0.0 when unknown —
        failed cells, or cache hits that carry no fresh timing)."""
        if not self.ok or self.elapsed_s <= 0 or self.stats is None:
            return 0.0
        return float(self.stats["cycles"]) / self.elapsed_s

    def to_dict(self) -> Dict[str, object]:
        d = self.cell.to_dict()
        d.update(
            status=self.status,
            stats=self.stats,
            error=self.error,
            error_type=self.error_type,
            elapsed_s=round(self.elapsed_s, 3),
            compile_s=round(self.compile_s, 3),
            cycles_per_sec=round(self.cycles_per_sec, 1),
            cached=self.cached,
            attempts=self.attempts,
        )
        return d


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------


class ResultCache:
    """One JSON file per cell, named by the cell's cache key.

    Only successful runs are stored — failures and timeouts are always
    re-attempted on the next sweep.  ``refresh=True`` ignores results
    from previous processes but still reuses (and rewrites) cells
    computed under this cache object, so a refreshed suite stays
    incremental within itself.
    """

    def __init__(self, root, refresh: bool = False) -> None:
        self.root = Path(root)
        self.refresh = refresh
        self._written: set = set()
        # Validate eagerly so a bad --cache-dir fails up front with the
        # offending path, not mid-sweep on the first put().
        from repro.common.errors import ConfigError

        if self.root.exists() and not self.root.is_dir():
            raise ConfigError(
                f"cache directory {self.root} exists but is not a directory"
            )
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigError(
                f"cannot create cache directory {self.root}: {exc}"
            ) from exc

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        if self.refresh and key not in self._written:
            return None
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return record.get("stats")

    def put(self, key: str, result: CellResult) -> None:
        if not result.ok:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": SCHEMA_VERSION,
            "cell": result.cell.to_dict(),
            "stats": result.stats,
            "elapsed_s": round(result.elapsed_s, 3),
        }
        tmp = self._path(key).with_suffix(".tmp")
        tmp.write_text(json.dumps(record, sort_keys=True))
        os.replace(tmp, self._path(key))  # atomic under concurrent sweeps
        self._written.add(key)


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------


#: (model, app, preset, flags) combinations this process has already
#: warm-started — queue workers run many cells per process and only
#: pay the prebuild once per distinct configuration.
_WARMED: set = set()


def warm_start(cell: SweepCell) -> float:
    """Prebuild ``cell``'s compile state; return CPU seconds spent.

    Builds the machine (compiling the selected protocol bundle's
    handler table) and constructs the application thread programs
    (instantiating the per-placement decoded-µop template stores) once
    per worker process per configuration, so the timed repeats in
    :func:`run_cell` measure simulation, not one-time compilation.
    The cost is reported separately as ``compile_s`` in sweep rows.
    Build errors are swallowed here — :func:`run_cell` runs the same
    path under its real error handling and surfaces them as rows.
    """
    key = (cell.model, cell.app, cell.preset, cell.n_nodes, cell.ways,
           cell.flags)
    if key in _WARMED:
        return 0.0
    start = time.process_time()
    try:
        from repro.sim.driver import build_machine
        from repro.sim.experiments import app_sources, preset_sizes

        machine = build_machine(
            cell.model, cell.n_nodes, cell.ways, cell.freq_ghz,
            **dict(cell.flags),
        )
        app_sources(cell.app, machine, dict(preset_sizes(cell.app, cell.preset)))
    except Exception:
        pass
    _WARMED.add(key)
    return time.process_time() - start


def run_cell(cell: SweepCell) -> CellResult:
    """Run one cell in the current process, degrading errors to rows.

    ``elapsed_s`` is CPU time of the simulating process, not wall
    clock: the perf-trajectory gate compares per-cell timings across
    runs, and on a shared box wall clock of sub-second cells swings
    far more than the 25% regression headroom.  Even CPU time of one
    sub-second run is noisy under transient neighbour contention, so
    ``REPRO_BENCH_BEST_OF=N`` re-runs the (deterministic) simulation N
    times and records the *minimum* — the contention-free cost — which
    is what gated sweeps should use.  One-time compile/prebuild cost
    is paid up front by :func:`warm_start` and reported separately
    (``compile_s``), so ``elapsed_s`` tracks steady-state simulation
    throughput.
    """
    from repro.sim.driver import run_app

    compile_s = warm_start(cell)
    repeats = max(1, int(os.environ.get("REPRO_BENCH_BEST_OF", "1")))
    best = float("inf")
    st = None
    for _ in range(repeats):
        start = time.process_time()
        try:
            st = run_app(
                cell.app,
                cell.model,
                n_nodes=cell.n_nodes,
                ways=cell.ways,
                freq_ghz=cell.freq_ghz,
                preset=cell.preset,
                max_cycles=cell.max_cycles,
                **dict(cell.flags),
            )
        except SimulationError as exc:
            return CellResult(
                cell,
                "failed",
                error=str(exc).splitlines()[0][:500],
                error_type=type(exc).__name__,
                elapsed_s=time.process_time() - start,
                compile_s=compile_s,
            )
        best = min(best, time.process_time() - start)
    return CellResult(
        cell, "ok", stats=summarize_stats(st),
        elapsed_s=best, compile_s=compile_s,
    )


def _sweep_entry(cell: SweepCell) -> Dict[str, object]:
    """Worker-side entry for :func:`pool_map`: run one sweep cell."""
    result = run_cell(cell)
    return {
        "status": result.status,
        "stats": result.stats,
        "error": result.error,
        "error_type": result.error_type,
        "elapsed_s": result.elapsed_s,
        "compile_s": result.compile_s,
    }


# ----------------------------------------------------------------------
# The generic worker pool
# ----------------------------------------------------------------------


def _pool_worker(conn, fn, payload) -> None:
    """Subprocess entry: run ``fn(payload)``, ship the result back.

    If ``fn`` raises, the pipe closes without a result and the parent
    records the item as crashed (and retries it, if allowed).
    """
    try:
        conn.send(fn(payload))
    finally:
        conn.close()


def pool_map(
    pending: Sequence[Tuple[object, object]],
    fn: Callable[[object], Dict[str, object]],
    jobs: int,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_done: Optional[
        Callable[[object, object, Optional[Dict[str, object]], float, int], None]
    ] = None,
    ledger=None,
) -> None:
    """Fan ``(ident, payload)`` items over one subprocess per in-flight
    item, calling ``fn(payload)`` in the child.

    One process per item (not a long-lived pool) so an overdue or
    wedged simulation can be ``terminate()``-d without poisoning other
    items' workers.  Item runtimes are seconds-to-minutes, so the spawn
    cost is noise.  ``fn`` must be a module-level (picklable) function
    returning a picklable dict without a ``"_pool_status"`` key.

    ``on_done(ident, payload, outcome, elapsed_s, attempts)`` fires once
    per item, in completion order.  ``outcome`` is the dict ``fn``
    returned, or ``{"_pool_status": "timeout"}`` for an item that
    exceeded ``timeout`` wall-clock seconds, or ``{"_pool_status":
    "crashed", "exitcode": ...}`` for a worker that died with no
    result.  Timeouts and crashes are retried up to ``retries`` extra
    attempts before being reported; ``fn`` results never are.

    ``ledger`` (a :class:`repro.sim.queue.ResultLedger`) makes the map
    durable across process restarts: items the ledger already holds
    are replayed to ``on_done`` (with ``attempts=0``) without spawning
    a worker, and every fresh ``fn`` outcome is recorded.  Timeouts
    and crashes are never recorded, so they stay retryable on the next
    invocation.
    """
    note_done = on_done or (lambda *a: None)
    ctx = multiprocessing.get_context()
    queue: List[Tuple[object, object, int]] = []
    for ident, payload in pending:
        outcome = ledger.get(ident) if ledger is not None else None
        if outcome is not None:
            note_done(ident, payload, outcome, 0.0, 0)
        else:
            queue.append((ident, payload, 1))
    running: Dict[object, Tuple[object, object, object, float, int]] = {}

    def harvest(proc, ident, payload, conn, start, attempt) -> None:
        elapsed = time.perf_counter() - start
        if conn.poll():
            msg = conn.recv()
            proc.join()
            conn.close()
            if ledger is not None:
                ledger.put(ident, msg)
            note_done(ident, payload, msg, elapsed, attempt)
            return
        # No result: the worker crashed or was killed.
        proc.join()
        conn.close()
        if attempt <= retries:
            queue.append((ident, payload, attempt + 1))
            return
        note_done(
            ident,
            payload,
            {"_pool_status": "crashed", "exitcode": proc.exitcode},
            elapsed,
            attempt,
        )

    while queue or running:
        while queue and len(running) < jobs:
            ident, payload, attempt = queue.pop(0)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_pool_worker, args=(child_conn, fn, payload))
            proc.start()
            child_conn.close()
            running[proc] = (ident, payload, parent_conn, time.perf_counter(), attempt)

        now = time.perf_counter()
        finished = []
        overdue = []
        for proc, (ident, payload, conn, start, attempt) in running.items():
            if conn.poll() or not proc.is_alive():
                finished.append(proc)
            elif timeout is not None and now - start > timeout:
                overdue.append(proc)
        for proc in overdue:
            ident, payload, conn, start, attempt = running.pop(proc)
            proc.terminate()
            proc.join()
            conn.close()
            if attempt <= retries:
                queue.append((ident, payload, attempt + 1))
            else:
                note_done(
                    ident, payload, {"_pool_status": "timeout"},
                    now - start, attempt,
                )
        for proc in finished:
            ident, payload, conn, start, attempt = running.pop(proc)
            harvest(proc, ident, payload, conn, start, attempt)
        if running and not finished and not overdue:
            time.sleep(0.02)


# ----------------------------------------------------------------------
# The sweep scheduler
# ----------------------------------------------------------------------


def run_sweep(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> List[CellResult]:
    """Run every cell; return one :class:`CellResult` per input cell,
    in input order (duplicates are simulated once).

    ``jobs``
        Worker processes.  ``0`` runs inline in the current process
        (deterministic single-process mode; ``timeout`` is not
        enforced inline).  ``None`` uses ``os.cpu_count()``.
    ``timeout``
        Wall-clock seconds per cell attempt; an overdue worker is
        terminated and the cell recorded as ``"timeout"``.
    ``retries``
        Extra attempts for *timeout/crash* cells.  Simulation errors
        (``DeadlockError`` etc.) are deterministic and never retried.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    t0 = time.perf_counter()
    results: Dict[str, CellResult] = {}
    order: List[str] = []
    unique: Dict[str, SweepCell] = {}
    for cell in cells:
        key = cell.cache_key()
        order.append(key)
        unique.setdefault(key, cell)

    note = progress or (lambda msg: None)
    total = len(unique)
    done = 0
    miss_elapsed: List[float] = []

    def finish(key: str, result: CellResult) -> None:
        nonlocal done
        results[key] = result
        done += 1
        if cache is not None and not result.cached:
            cache.put(key, result)
        if not result.cached:
            miss_elapsed.append(result.elapsed_s)
        eta = ""
        if miss_elapsed and done < total:
            per_cell = sum(miss_elapsed) / len(miss_elapsed)
            remaining = per_cell * (total - done) / max(1, jobs or 1)
            eta = f"  eta ~{remaining:.0f}s"
        tag = "cached" if result.cached else result.status
        note(
            f"[{done}/{total}] {result.cell.label}: {tag}"
            f" ({result.elapsed_s:.2f}s){eta}"
        )

    # Cache pass.
    pending: List[Tuple[str, SweepCell]] = []
    for key, cell in unique.items():
        stats = cache.get(key) if cache is not None else None
        if stats is not None:
            finish(key, CellResult(cell, "ok", stats=stats, cached=True))
        else:
            pending.append((key, cell))

    if jobs <= 0:
        for key, cell in pending:
            finish(key, run_cell(cell))
    elif pending:

        def on_done(key, cell, outcome, elapsed, attempts):
            status = outcome.get("_pool_status")
            if status == "crashed":
                finish(key, CellResult(
                    cell,
                    "crashed",
                    error=(
                        f"worker exited with code {outcome.get('exitcode')} "
                        "and no result"
                    ),
                    error_type="WorkerCrash",
                    elapsed_s=elapsed,
                    attempts=attempts,
                ))
            elif status == "timeout":
                finish(key, CellResult(
                    cell,
                    "timeout",
                    error=f"cell exceeded {timeout:g}s wall clock",
                    error_type="SweepTimeout",
                    elapsed_s=elapsed,
                    attempts=attempts,
                ))
            else:
                finish(key, CellResult(
                    cell,
                    outcome["status"],
                    stats=outcome["stats"],
                    error=outcome["error"],
                    error_type=outcome["error_type"],
                    elapsed_s=outcome["elapsed_s"],
                    compile_s=outcome.get("compile_s", 0.0),
                    attempts=attempts,
                ))

        pool_map(pending, _sweep_entry, jobs=jobs, timeout=timeout,
                 retries=retries, on_done=on_done)

    wall = time.perf_counter() - t0
    note(
        f"sweep: {total} cells ({total - len(pending)} cached, "
        f"{sum(1 for r in results.values() if not r.ok)} failed) "
        f"in {wall:.1f}s"
    )
    return [results[key] for key in order]


# ----------------------------------------------------------------------
# Grids
# ----------------------------------------------------------------------


def make_grid(
    apps: Iterable[str],
    models: Iterable[str],
    nodes: Iterable[int] = (1,),
    ways: Iterable[int] = (1,),
    freq_ghz: float = 2.0,
    preset: str = "bench",
    **flags,
) -> List[SweepCell]:
    """Cartesian product grid, in deterministic iteration order."""
    return [
        SweepCell.make(
            app, model, n_nodes=n, ways=w, freq_ghz=freq_ghz,
            preset=preset, **flags,
        )
        for app in apps
        for model in models
        for n in nodes
        for w in ways
    ]


def _grid_smoke() -> List[SweepCell]:
    # 2 apps x 2 models at tiny sizes, plus multi-node cells: a
    # CI-sized sweep (seconds).  The n=2 base cells exercise cross-node
    # coherence traffic and the PP-engine dispatch path at scale — the
    # regime the event-driven scheduler accelerates most — while
    # keeping the grid fast enough for `make smoke`.  The n=16 cell is
    # protocol-heavy: most cycles go to handler execution and message
    # dispatch, so the trajectory gate covers the regime the compiled
    # protocol path speeds up (see the ``pre_compile`` floor in
    # ``BENCH_smoke.json``).
    cells = make_grid(("water", "fft"), ("base", "smtp"), preset="tiny")
    cells += make_grid(("water", "fft"), ("base",), nodes=(2,), preset="tiny")
    cells += make_grid(("fft",), ("base",), nodes=(16,), preset="tiny")
    # MSI n=2 cell: same workload/shape as the n=2 bitvector cell
    # above but on the registered "msi" bundle, so the smoke gate
    # covers the protocol-registry seam and the sweep report can emit
    # a cross-protocol comparison row (`protocol` rides in the cell's
    # flags and therefore in its cache key and gate key).
    cells += make_grid(("fft",), ("base",), nodes=(2,), preset="tiny",
                       protocol="msi")
    # Single-node bench-preset cell: long enough (~50k cycles) for
    # stable timing, app-dominated — the regime the superblock-compiled
    # fetch/issue/commit fast path accelerates.  Gated against the
    # ``pre_app_compile`` floor in ``BENCH_smoke.json``.
    cells += make_grid(("ocean",), ("base",), preset="bench")
    # Protocol-heavy SMTp 2-way n=4 cell at the paper's memory
    # latencies (time_scale=1): two app threads + the protocol thread
    # on every core, cross-node coherence traffic on all four nodes —
    # the regime the fused multi-threaded core path (``_step_nt``) and
    # the active-set scheduler accelerate.  Gated against the
    # ``pre_smt_compile`` floor in ``BENCH_smoke.json``.
    cells += make_grid(("fft",), ("smtp",), nodes=(4,), ways=(2,),
                       preset="tiny", time_scale=1)
    return cells


def _grid_fig2() -> List[SweepCell]:
    from repro.core.models import MODELS
    from repro.sim.experiments import APPS

    return make_grid(APPS, MODELS, preset="bench")


def _grid_fig8() -> List[SweepCell]:
    # Reduced 16-node slice of the paper's fig 8 scalability grid: the
    # SMTp frontier cells ROADMAP.md names (16-node × 2-way runs), at
    # tiny preset so the trajectory stays CI-affordable while still
    # exercising the regime the active-set scheduler targets — most of
    # the 16 nodes asleep at any instant, coherence handlers dominating
    # the awake work.  ``make fig8-smoke`` runs this grid and holds it
    # to the committed ``BENCH_fig8.json`` via ``tools/perf_delta.py``.
    cells = make_grid(("fft", "ocean", "radix"), ("smtp",),
                      nodes=(16,), ways=(2,), preset="tiny")
    # One 1-way 16-node cell: the protocol thread shares the core with
    # a single app thread, the dominant paper configuration (fig 8).
    cells += make_grid(("fft",), ("smtp",), nodes=(16,), ways=(1,),
                       preset="tiny")
    return cells


#: Named grids for ``python -m repro sweep --grid <name>``.
NAMED_GRIDS: Dict[str, Callable[[], List[SweepCell]]] = {
    "smoke": _grid_smoke,
    "fig2": _grid_fig2,
    "fig8": _grid_fig8,
}


# ----------------------------------------------------------------------
# Perf-trajectory regression gate
# ----------------------------------------------------------------------

#: A fresh cell may be up to this factor slower than the committed
#: trajectory before the gate fails (timing-noise headroom).
GATE_SLOWDOWN_LIMIT = 1.25

#: Absolute seconds of extra headroom per cell.  Sub-0.1s cells have
#: proportionally larger timer noise than the ratio limit can absorb;
#: 20ms is far below any regression worth gating on.
GATE_SLACK_S = 0.02

#: Default cycles/sec floor for ``pre_compile`` rows that do not carry
#: their own ``min_speedup``: such rows are display-only (floor 0).
PRE_COMPILE_DEFAULT_FLOOR = 0.0


def warm_up_cpu(seconds: float = 1.0) -> None:
    """Busy-spin for ``seconds`` of wall clock before a timed sweep.

    A freshly spawned process occasionally starts on a cold core whose
    clock takes ~1s to ramp to full speed; the cells timed during that
    window read 1.5x slow and trip the gate spuriously.  Burning one
    second first lets the governor settle.
    """
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        for i in range(10_000):
            acc = (acc + i * i) % 1_000_003


def measure_reference_s(repeats: int = 5) -> float:
    """CPU seconds for a fixed pure-Python calibration workload.

    Shared boxes change speed between runs (frequency scaling, noisy
    neighbours) by more than the gate's 25% headroom — uniformly
    across all cells.  Timing the same deterministic busy-loop
    alongside every sweep gives the gate a box-speed yardstick:
    comparisons use ``elapsed_s / reference_s``, so a globally slower
    (or faster) box cancels out and only genuine per-cell regressions
    remain.  Median-of-``repeats``: the old best-of-3 minimum read the
    one contention-free repeat on a loaded box, under-reporting the
    speed the *cells* were actually timed at and biasing every
    normalized comparison fast; the median moves with the same load
    the cells saw while still shedding single-repeat spikes.
    """
    samples = []
    for _ in range(repeats):
        t0 = time.process_time()
        acc = 0
        for i in range(400_000):
            acc = (acc + i * i) % 1_000_003
        samples.append(time.process_time() - t0)
    return statistics.median(samples)


def _gate_key(d: Dict[str, object]) -> Tuple:
    """Identity of a cell row for baseline matching (config, not timing)."""
    flags = d.get("flags") or {}
    return (
        d["app"], d["model"], d["n_nodes"], d["ways"], d["freq_ghz"],
        d["preset"], tuple(sorted(flags.items())),
    )


def gate_results(
    results: Sequence[CellResult],
    baseline_doc: Dict[str, object],
    limit: float = GATE_SLOWDOWN_LIMIT,
    reference_s: Optional[float] = None,
) -> Tuple[int, List[str]]:
    """Compare fresh per-cell CPU times against a committed BENCH doc.

    Returns ``(n_failures, report_lines)``.  A cell fails when its
    fresh ``elapsed_s`` exceeds the baseline's by more than ``limit``
    after box-speed normalization: when both this run's
    ``reference_s`` and the baseline's are known (see
    :func:`measure_reference_s`), each side's timing is divided by its
    calibration first, so a uniformly slower box does not read as a
    regression.  Cells without a fresh timing (cache hits — run the
    sweep with ``refresh``/``--refresh`` to gate) or without a
    baseline entry are reported but never fail; speedups simply become
    the new baseline when the refreshed BENCH file is committed.

    Beyond the slowdown check, two speedup views are reported:

    * each gated cell's cycles/sec ratio vs its baseline row, so a
      refresh shows at a glance what got faster;
    * if the baseline doc carries a ``pre_compile`` block (reference
      timings recorded from the pre-compilation interpreter build, see
      ``benchmarks/README.md``), every matching cell's cycles/sec
      speedup over that recorded build — and a row tagged with
      ``min_speedup`` FAILS the gate if the compiled simulator ever
      drops below that floor.  This keeps the headline win of the
      compilation layer (>=1.5x on the protocol-heavy multi-node
      cell) an enforced property, not a one-off measurement.
    """
    base: Dict[Tuple, Tuple[float, float]] = {}
    for row in baseline_doc.get("cells", []):
        if row.get("status") == "ok" and not row.get("cached"):
            elapsed = float(row.get("elapsed_s") or 0.0)
            stats = row.get("stats") or {}
            if elapsed > 0:
                base[_gate_key(row)] = (
                    elapsed, float(stats.get("cycles") or 0.0)
                )
    scale = 1.0
    base_ref = float(baseline_doc.get("reference_s") or 0.0)
    if reference_s and base_ref > 0:
        # >1 when this box is currently slower than the baseline's.
        # Only ever *excuse* slowness (never tighten the gate): the
        # calibration loop is a rougher workload than the simulator,
        # so a fast calibration on a typical box must not manufacture
        # failures.
        scale = max(1.0, reference_s / base_ref)
    failures = 0
    lines = []
    if scale != 1.0:
        lines.append(
            f"gate: box speed {scale:.2f}x baseline "
            f"(calibration {reference_s:.3f}s vs {base_ref:.3f}s); "
            f"comparing normalized timings"
        )
    for r in results:
        label = r.cell.label
        if not r.ok:
            lines.append(f"gate: {label}: SKIP ({r.status})")
            continue
        if r.cached or r.elapsed_s <= 0:
            lines.append(f"gate: {label}: SKIP (cached; no fresh timing)")
            continue
        entry = base.get(_gate_key(r.cell.to_dict()))
        if entry is None:
            lines.append(
                f"gate: {label}: NEW ({r.elapsed_s:.3f}s, no baseline)"
            )
            continue
        ref, ref_cycles = entry
        ratio = r.elapsed_s / (ref * scale)
        failed = r.elapsed_s > ref * scale * limit + GATE_SLACK_S
        verdict = "FAIL" if failed else "ok"
        if failed:
            failures += 1
        speedup = ""
        if ref_cycles > 0:
            cs = (float(r.stats["cycles"]) / r.elapsed_s) * scale
            cs_ref = ref_cycles / ref
            speedup = f", {cs / cs_ref:.2f}x cyc/s"
        lines.append(
            f"gate: {label}: {verdict} ({r.elapsed_s:.3f}s vs "
            f"{ref:.3f}s baseline, {ratio:.2f}x, limit {limit:.2f}x"
            f"{speedup})"
        )
    for block_key, block_desc in PRE_BUILD_BLOCKS:
        pre_failures, pre_lines = _gate_pre_build(
            results, baseline_doc, block_key, block_desc,
            reference_s=reference_s,
        )
        failures += pre_failures
        lines += pre_lines
    return failures, lines


#: Frozen reference-build blocks a BENCH doc may carry, each gated
#: independently: the pre-handler-compilation interpreter build, the
#: pre-app-compilation build (before the superblock-compiled app
#: programs and the fused fetch/issue/commit fast path), and the
#: pre-SMT-compilation build (before the fused multi-threaded
#: ``_step_nt`` core path and the active-set machine scheduler).
PRE_BUILD_BLOCKS: Tuple[Tuple[str, str], ...] = (
    ("pre_compile", "pre-compile build"),
    ("pre_app_compile", "pre-app-compile build"),
    ("pre_smt_compile", "pre-SMT-compile build"),
)


def _gate_pre_build(
    results: Sequence[CellResult],
    baseline_doc: Dict[str, object],
    block_key: str,
    block_desc: str,
    reference_s: Optional[float] = None,
) -> Tuple[int, List[str]]:
    """Speedup-floor check against one recorded reference build.

    The ``pre_compile``/``pre_app_compile`` blocks of a BENCH doc
    freeze a reference build's per-cell CPU times (and the box
    calibration they were measured under).  Each fresh cell matching a
    recorded row gets a box-normalized cycles/sec speedup line; rows
    carrying ``min_speedup`` turn that line into a hard floor.
    Normalization mirrors the slowdown gate's bias: a slower box
    *excuses* a low raw speedup, but a faster box never inflates one
    past its raw value, so the floor cannot pass on calibration noise
    alone.
    """
    block = baseline_doc.get(block_key)
    if not isinstance(block, dict):
        return 0, []
    pre: Dict[Tuple, Dict[str, object]] = {
        _gate_key(row): row for row in block.get("cells", [])
    }
    pre_ref = float(block.get("reference_s") or 0.0)
    scale = 1.0
    if reference_s and pre_ref > 0:
        scale = max(1.0, reference_s / pre_ref)
    failures = 0
    lines: List[str] = []
    for r in results:
        if not r.ok or r.cached or r.elapsed_s <= 0:
            continue
        row = pre.get(_gate_key(r.cell.to_dict()))
        if row is None:
            continue
        pre_elapsed = float(row.get("elapsed_s") or 0.0)
        pre_cycles = float(row.get("cycles") or 0.0)
        if pre_elapsed <= 0 or pre_cycles <= 0:
            continue
        speedup = (
            (float(r.stats["cycles"]) / r.elapsed_s)
            * scale
            / (pre_cycles / pre_elapsed)
        )
        floor = float(row.get("min_speedup") or PRE_COMPILE_DEFAULT_FLOOR)
        failed = floor > 0 and speedup < floor
        if failed:
            failures += 1
        verdict = "FAIL" if failed else "ok"
        floor_txt = f", floor {floor:.2f}x" if floor > 0 else ""
        lines.append(
            f"gate: {r.cell.label}: {verdict} {speedup:.2f}x cyc/s vs "
            f"{block_desc} ({block.get('commit', '?')}){floor_txt}"
        )
    return failures, lines


# ----------------------------------------------------------------------
# BENCH_*.json trajectory files
# ----------------------------------------------------------------------


def write_bench_json(
    out_dir,
    name: str,
    results: Sequence[CellResult],
    jobs: int,
    wall_clock_s: float,
    reference_s: Optional[float] = None,
    pre_compile: Optional[Dict[str, object]] = None,
    pre_app_compile: Optional[Dict[str, object]] = None,
    pre_smt_compile: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` summarizing a finished sweep.

    The file is the machine-readable perf trajectory: one record per
    cell (status, cycles, elapsed CPU seconds, cache provenance) plus
    sweep-level metadata — including the box-speed calibration
    ``reference_s`` the gate normalizes by — so successive commits'
    files can be diffed or plotted directly.

    ``pre_compile``, ``pre_app_compile`` and ``pre_smt_compile`` are
    the frozen reference-build blocks (see :func:`_gate_pre_build`);
    the sweep CLI carries them over from the gate baseline on every
    refresh so the speedup floors survive file rewrites.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    doc = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "created_unix": round(time.time(), 3),
        "code_version": code_version(),
        "jobs": jobs,
        "wall_clock_s": round(wall_clock_s, 3),
        "reference_s": round(reference_s, 4) if reference_s else None,
        "n_cells": len(results),
        "n_ok": sum(1 for r in results if r.ok),
        "n_failed": sum(1 for r in results if not r.ok),
        "n_cached": sum(1 for r in results if r.cached),
        "sim_seconds_total": round(sum(r.elapsed_s for r in results), 3),
        "cells": [r.to_dict() for r in results],
    }
    if pre_compile is not None:
        doc["pre_compile"] = pre_compile
    if pre_app_compile is not None:
        doc["pre_app_compile"] = pre_app_compile
    if pre_smt_compile is not None:
        doc["pre_smt_compile"] = pre_smt_compile
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(doc, indent=1, sort_keys=True))
    os.replace(tmp, path)
    return path
