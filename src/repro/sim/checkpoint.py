"""Whole-machine checkpointing: suspend a cell, resume it bit-identically.

A checkpoint is a pickle of the entire :class:`~repro.core.machine.Machine`
— cores, pipeline queues, caches, MSHR files, directory/memory
controllers, network fabric queues, the event wheel, and statistics —
plus the little global state that lives outside the machine (the
message-id counter).  Long sweep jobs can therefore be suspended every
N cycles and survive worker kills and machine restarts
(:mod:`repro.sim.queue` drives this from ``repro sweep --worker``).

Two pieces of simulation state cannot pickle directly and are rebuilt
on restore:

* **Application coroutines.**  Python generators do not pickle.  Each
  :class:`~repro.apps.program.ThreadProgram` built with ``record=True``
  keeps a *resume log* (one entry per coroutine resumption); restore
  rebuilds fresh generators from the application spec on a throwaway
  machine and replays each log into them (``graft_from``).  The kernels
  are deterministic given their resume sequence, so the replayed frame
  lands in the exact suspended state.

* **Compiled handler steps.**  The protocol-thread ``_emit`` closure
  and each handler's compiled program are dropped on serialization and
  re-derived from the handler table on restore
  (:meth:`ProtocolThreadSource.__setstate__`).  The checkpoint records
  the handler-compiler version and restore refuses a mismatch — a
  different compiler could sequence µops differently.

The contract is enforced the same way as the event-driven scheduler
and the handler compiler before it: a hypothesis differential
(``tests/test_checkpoint.py``) requires that run-straight and
snapshot/restore-midway produce equal :class:`MachineStats` and equal
protocol trace tails on every machine model.  ``REPRO_NO_CKPT=1`` is
the escape hatch — workers then run jobs straight through without
suspending (crash recovery degrades to job-level retry).

One counter is exempt, as it already is in the dense-vs-event-driven
differential: ``skipped_cycles`` counts cycles the idle fast-forward
jumped over, and a slice boundary densely steps a cycle a straight
run would have skipped.  Machine state and every architectural
statistic are unaffected — only the accounting of the scheduling
optimization shifts by a few cycles per suspend point.

Observers that wrap controller methods with in-process closures
(:class:`~repro.sim.trace.ProtocolTracer`, the coherence checker, the
fuzz sanitizer) make a machine un-picklable *and* un-portable;
:func:`snapshot` refuses with a list of blockers rather than producing
a checkpoint that cannot restore.  Attach tracers after restore
instead.
"""

from __future__ import annotations

import os
import pickle
import types
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.apps import compile as acompile
from repro.common.errors import SimulationError
from repro.common.stats import MachineStats
from repro.core.machine import Machine
from repro.network import messages
from repro.protocol import compile as pcompile

#: Bump when the checkpoint payload layout changes.
CKPT_VERSION = 2

#: Escape hatch: disable checkpointing (workers run jobs straight).
NO_CKPT_ENV = "REPRO_NO_CKPT"


class CheckpointError(RuntimeError):
    """A machine cannot be checkpointed or a checkpoint cannot restore."""


def checkpointing_disabled() -> bool:
    return os.environ.get(NO_CKPT_ENV, "") == "1"


@dataclass
class CheckpointSpec:
    """Everything needed to rebuild a machine's workload from scratch.

    ``params`` holds the fully resolved application sizes (preset
    already applied), so a restore on a different host rebuilds the
    exact same coroutines regardless of preset-table drift.
    """

    app: str
    model: str
    n_nodes: int = 1
    ways: int = 1
    freq_ghz: float = 2.0
    params: Dict = field(default_factory=dict)
    model_kwargs: Dict = field(default_factory=dict)


def make_spec(
    app: str,
    model: str,
    n_nodes: int = 1,
    ways: int = 1,
    freq_ghz: float = 2.0,
    preset: str = "bench",
    sizes: Optional[Dict] = None,
    **model_kwargs,
) -> CheckpointSpec:
    """Resolve a run request (as ``run_app`` takes it) into a spec."""
    from repro.sim.experiments import preset_sizes

    params = dict(preset_sizes(app, preset))
    if sizes:
        params.update(sizes)
    return CheckpointSpec(
        app=app,
        model=model,
        n_nodes=n_nodes,
        ways=ways,
        freq_ghz=freq_ghz,
        params=params,
        model_kwargs=dict(model_kwargs),
    )


def build_checkpointable(spec: CheckpointSpec) -> Machine:
    """Build a machine whose state can be snapshot at any quiet point.

    Identical to the ``run_app`` construction path except that thread
    programs record their resume logs (``machine.record_programs``)
    and the spec is pinned on the machine for :func:`snapshot`.
    """
    from repro.sim.driver import build_machine
    from repro.sim.experiments import app_sources

    machine = build_machine(
        spec.model, spec.n_nodes, spec.ways, spec.freq_ghz,
        **spec.model_kwargs,
    )
    machine.record_programs = True
    machine.ckpt_spec = spec
    sources = app_sources(spec.app, machine, dict(spec.params))
    machine.install_cores(sources)
    return machine


# ----------------------------------------------------------------------
# Snapshot
# ----------------------------------------------------------------------

#: Controller/hierarchy methods that observers shadow with closures.
_WRAPPABLE = (
    ("mc", "_dispatch"),
    ("mc", "send_to_network"),
    ("mc", "writeback"),
    ("hierarchy", "refill"),
    ("hierarchy", "probe"),
)


def checkpoint_blockers(machine: Machine) -> List[str]:
    """Why this machine cannot be snapshot (empty when it can)."""
    blockers: List[str] = []
    if machine.ckpt_spec is None:
        blockers.append(
            "no checkpoint spec: build the machine with "
            "checkpoint.build_checkpointable()"
        )
    if not machine.record_programs:
        blockers.append(
            "thread programs did not record resume logs "
            "(machine.record_programs was false at build time)"
        )
    if machine.sanitizer is not None:
        blockers.append("fuzz sanitizer attached")
    if machine.checker is not None and machine.checker.attached:
        blockers.append("coherence checker attached")
    for node in machine.nodes:
        for owner, name in _WRAPPABLE:
            # Legitimate instance attributes here are bound methods
            # (e.g. the fabric's ``send``); observers shadow them with
            # plain local closures, which is what a FunctionType in the
            # instance dict means.
            value = getattr(node, owner).__dict__.get(name)
            if isinstance(value, types.FunctionType):
                blockers.append(
                    f"node {node.node_id}: {owner}.{name} is wrapped "
                    "(protocol tracer attached?)"
                )
    return blockers


def snapshot(machine: Machine) -> bytes:
    """Serialize the complete simulation state to bytes."""
    blockers = checkpoint_blockers(machine)
    if blockers:
        raise CheckpointError(
            "machine cannot be checkpointed: " + "; ".join(blockers)
        )
    payload = {
        "version": CKPT_VERSION,
        "compiler_version": pcompile.COMPILER_VERSION,
        # None when the interpreter escape hatch was active: compiled
        # and interpreted machines carry different source classes and
        # core structures, so a checkpoint only restores into the same
        # app-execution mode (and app-compiler revision).
        "app_compiler_version": (
            None if acompile.app_interp_forced()
            else acompile.APP_COMPILER_VERSION
        ),
        "msg_next_id": messages._msg_ids.next_id,
        "machine": machine,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------


def restore(data: bytes) -> Machine:
    """Rebuild a machine from :func:`snapshot` bytes.

    The pickled machine comes back with every coroutine and compiled
    closure missing; this replays the resume logs into freshly built
    generators (on a throwaway machine constructed from the spec) and
    grafts them in, then reseats the global message-id counter so
    message uids continue exactly where the suspended run left off.
    """
    try:
        payload = pickle.loads(data)
    except Exception as exc:  # corrupt / truncated checkpoint file
        raise CheckpointError(f"checkpoint does not unpickle: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != CKPT_VERSION:
        raise CheckpointError(
            f"checkpoint version {payload.get('version') if isinstance(payload, dict) else '?'} "
            f"!= supported {CKPT_VERSION}"
        )
    if payload["compiler_version"] != pcompile.COMPILER_VERSION:
        raise CheckpointError(
            "checkpoint was written by handler-compiler version "
            f"{payload['compiler_version']}, this build is "
            f"{pcompile.COMPILER_VERSION}; re-run the job from scratch"
        )
    app_cv = (
        None if acompile.app_interp_forced()
        else acompile.APP_COMPILER_VERSION
    )
    if payload["app_compiler_version"] != app_cv:
        raise CheckpointError(
            "checkpoint was written in app-execution mode "
            f"{payload.get('app_compiler_version')!r} (None = interpreted), "
            f"this session is {app_cv!r}; re-run the job from scratch"
        )
    machine: Machine = payload["machine"]
    spec: CheckpointSpec = machine.ckpt_spec

    # Rebuild the coroutines: fresh sources from the same spec, each
    # replayed through its program's resume log.  The throwaway
    # machine only donates geometry/layout to source construction.
    from repro.sim.driver import build_machine
    from repro.sim.experiments import app_sources

    scratch = build_machine(
        spec.model, spec.n_nodes, spec.ways, spec.freq_ghz,
        **spec.model_kwargs,
    )
    fresh_sources = app_sources(spec.app, scratch, dict(spec.params))
    for node, fresh_node in zip(machine.nodes, fresh_sources):
        for tid, fresh_prog in enumerate(fresh_node):
            node.core.threads[tid].source.graft_from(fresh_prog)

    # Reseat global allocators after the rebuild (the throwaway build
    # must not perturb the restored stream).
    messages._msg_ids.next_id = payload["msg_next_id"]
    return machine


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------


def save(machine: Machine, path: str) -> None:
    """Atomically write a checkpoint file (write-temp + rename)."""
    data = snapshot(machine)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load(path: str) -> Machine:
    with open(path, "rb") as fh:
        return restore(fh.read())


# ----------------------------------------------------------------------
# Chunked execution
# ----------------------------------------------------------------------


def run_chunked(
    machine: Machine,
    max_cycles: int,
    every: int,
    on_checkpoint: Optional[Callable[[Machine], None]] = None,
) -> MachineStats:
    """Run to completion in ``every``-cycle slices.

    Between slices ``on_checkpoint(machine)`` is invoked (unless the
    ``REPRO_NO_CKPT=1`` escape hatch is set) — typically to
    :func:`save` the machine and heartbeat a queue lease.  Chunked
    stepping is bit-identical to one straight ``run`` call: slice
    deadlines are relative to the current cycle, and the idle-fixup
    flush at a slice boundary applies exactly the cycles a straight
    run would have batched (see ``tests/test_checkpoint.py``).
    """
    hatch = checkpointing_disabled()
    deadline = machine.cycle + max_cycles
    while not machine.all_done() and machine.cycle < deadline:
        machine.run(min(every, deadline - machine.cycle))
        if machine.all_done():
            break
        if on_checkpoint is not None and not hatch:
            on_checkpoint(machine)
    if not machine.all_done():
        raise SimulationError(
            f"workload did not finish in {max_cycles} cycles\n"
            + machine._deadlock_report()
        )
    machine.quiesce()
    machine.finish()
    machine.final_checks()
    return machine.collect_stats()
