"""Persistent on-disk job queue: sweeps that survive worker kills.

The in-process sweep (:func:`repro.sim.sweep.run_sweep`) already
resumes from its result cache, but every *in-flight* cell dies with
the sweep process.  This module adds the missing durability layer for
long grids (``fig2`` at paper sizes runs for hours): a
filesystem-backed queue that any number of worker *processes* — on any
number of machine restarts — drain cooperatively.

Layout (everything under one queue directory)::

    <queue-dir>/
        lock                  flock target serializing queue mutations
        jobs/<job-id>.json    one record per job (atomic replace)
        ckpt/<job-id>.ckpt    the job's latest machine checkpoint

Lease/heartbeat semantics: :meth:`JobQueue.claim` moves a job to
``leased`` and stamps the worker id + a heartbeat time.  Workers renew
the heartbeat at every checkpoint interval; a leased job whose
heartbeat is older than ``lease_s`` is presumed orphaned (worker
killed, machine rebooted) and becomes claimable again.  Each reclaim
burns one attempt; a job that exhausts ``max_attempts`` is recorded
``failed`` rather than looping forever.  A worker that discovers its
lease was stolen (its own heartbeat call returns False) abandons the
job — the checkpoint file it was writing is the same one the new
owner resumes from, so the work is not lost either way.

Jobs run through :mod:`repro.sim.checkpoint`: every
``checkpoint_every`` cycles the worker saves the whole machine and
heartbeats, so a killed worker's successor resumes mid-simulation
from the last checkpoint instead of from cycle zero.  The
``REPRO_NO_CKPT=1`` escape hatch degrades this to job-level retry
(jobs run straight through; a kill restarts the job from scratch).

``python -m repro sweep --serve`` / ``--worker`` wrap this on the
command line, and :class:`ResultLedger` gives
:func:`repro.sim.sweep.pool_map` (and therefore fuzz campaigns) the
same restart durability at whole-item granularity.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

try:
    import fcntl
except ImportError:  # non-POSIX: single-process queues still work
    fcntl = None

from repro.common.errors import SimulationError

#: Seconds without a heartbeat after which a lease is presumed dead.
DEFAULT_LEASE_S = 120.0

#: Cycles between checkpoints while running a queued job.
DEFAULT_CHECKPOINT_EVERY = 2_000_000

#: Attempts (first run + reclaims/retries) before a job is failed.
DEFAULT_MAX_ATTEMPTS = 3


class LeaseLost(RuntimeError):
    """This worker's lease was reclaimed by another worker."""


# ----------------------------------------------------------------------
# The queue
# ----------------------------------------------------------------------


class JobQueue:
    """JSON-directory job queue with file locking and leases.

    Every mutation happens under an exclusive ``flock`` on
    ``<root>/lock``, and every job record is rewritten atomically
    (temp file + rename), so concurrent workers — including workers
    that die mid-write — can never corrupt the queue or double-claim
    a job.
    """

    def __init__(self, root, lease_s: float = DEFAULT_LEASE_S) -> None:
        self.root = Path(root)
        self.lease_s = lease_s
        self.jobs_dir = self.root / "jobs"
        self.ckpt_dir = self.root / "ckpt"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.ckpt_dir.mkdir(parents=True, exist_ok=True)
        self._lock_path = self.root / "lock"
        self._lock_path.touch(exist_ok=True)

    # -- locking -------------------------------------------------------
    @contextmanager
    def _locked(self):
        if fcntl is None:
            yield
            return
        with open(self._lock_path, "r+b") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    # -- job records ---------------------------------------------------
    def _job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def checkpoint_path(self, job_id: str) -> Path:
        return self.ckpt_dir / f"{job_id}.ckpt"

    def _read(self, job_id: str) -> Optional[Dict]:
        try:
            return json.loads(self._job_path(job_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _write(self, job: Dict) -> None:
        path = self._job_path(job["id"])
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(job, sort_keys=True))
        os.replace(tmp, path)

    def job_ids(self) -> List[str]:
        return sorted(p.stem for p in self.jobs_dir.glob("*.json"))

    def get(self, job_id: str) -> Optional[Dict]:
        return self._read(job_id)

    # -- producer side -------------------------------------------------
    def submit(
        self,
        job_id: str,
        payload: Dict,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        refresh: bool = False,
    ) -> bool:
        """Enqueue a job; idempotent per ``job_id``.

        An existing record is left alone (so resubmitting a grid never
        disturbs running or finished jobs) unless ``refresh`` is set,
        which re-queues finished jobs from scratch.  Returns True when
        a fresh pending record was written.
        """
        with self._locked():
            existing = self._read(job_id)
            if existing is not None and not refresh:
                return False
            if existing is not None and existing.get("state") == "leased":
                return False  # never yank a job out from under a worker
            self._write({
                "id": job_id,
                "payload": payload,
                "state": "pending",
                "attempts": 0,
                "max_attempts": max_attempts,
                "worker": None,
                "heartbeat_unix": None,
                "submitted_unix": round(time.time(), 3),
                "finished_unix": None,
                "result": None,
                "error": "",
            })
            ckpt = self.checkpoint_path(job_id)
            if refresh and ckpt.exists():
                ckpt.unlink()
            return True

    # -- worker side ---------------------------------------------------
    def claim(self, worker: str) -> Optional[Dict]:
        """Lease the first claimable job (pending, or leased with an
        expired heartbeat); None when nothing is claimable right now."""
        now = time.time()
        with self._locked():
            for job_id in self.job_ids():
                job = self._read(job_id)
                if job is None:
                    continue
                state = job["state"]
                expired = (
                    state == "leased"
                    and now - (job["heartbeat_unix"] or 0) > self.lease_s
                )
                if state != "pending" and not expired:
                    continue
                job["attempts"] += 1
                if job["attempts"] > job["max_attempts"]:
                    job["state"] = "failed"
                    job["error"] = (
                        f"gave up after {job['max_attempts']} attempts "
                        f"(last worker: {job['worker']})"
                    )
                    job["finished_unix"] = round(now, 3)
                    self._write(job)
                    continue
                job["state"] = "leased"
                job["worker"] = worker
                job["heartbeat_unix"] = round(now, 3)
                self._write(job)
                return job
        return None

    def heartbeat(self, job_id: str, worker: str) -> bool:
        """Renew the lease; False means the lease is no longer ours."""
        with self._locked():
            job = self._read(job_id)
            if job is None or job["state"] != "leased" or job["worker"] != worker:
                return False
            job["heartbeat_unix"] = round(time.time(), 3)
            self._write(job)
            return True

    def complete(self, job_id: str, worker: str, result: Dict) -> bool:
        """Record a finished job (any terminal ``fn`` outcome, including
        deterministic failures — those must not be retried)."""
        with self._locked():
            job = self._read(job_id)
            if job is None or job["state"] != "leased" or job["worker"] != worker:
                return False  # lease was stolen; the new owner reports
            job["state"] = "done"
            job["result"] = result
            job["finished_unix"] = round(time.time(), 3)
            self._write(job)
        ckpt = self.checkpoint_path(job_id)
        if ckpt.exists():
            ckpt.unlink()
        return True

    def fail(self, job_id: str, worker: str, error: str) -> bool:
        """Release a job after an infrastructure error (not a simulation
        verdict): it returns to ``pending`` until attempts run out."""
        with self._locked():
            job = self._read(job_id)
            if job is None or job["state"] != "leased" or job["worker"] != worker:
                return False
            if job["attempts"] >= job["max_attempts"]:
                job["state"] = "failed"
                job["finished_unix"] = round(time.time(), 3)
            else:
                job["state"] = "pending"
                job["worker"] = None
            job["error"] = error
            self._write(job)
            return True

    # -- observation ---------------------------------------------------
    def counts(self) -> Dict[str, int]:
        counts = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
        for job_id in self.job_ids():
            job = self._read(job_id)
            if job is not None:
                counts[job["state"]] = counts.get(job["state"], 0) + 1
        return counts

    def unfinished(self) -> int:
        counts = self.counts()
        return counts["pending"] + counts["leased"]

    def all_done(self) -> bool:
        return self.unfinished() == 0


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


# ----------------------------------------------------------------------
# Sweep jobs
# ----------------------------------------------------------------------


def _cell_from_dict(d: Dict):
    from repro.sim.sweep import SweepCell

    return SweepCell.make(
        d["app"], d["model"], n_nodes=d["n_nodes"], ways=d["ways"],
        freq_ghz=d["freq_ghz"], preset=d["preset"],
        max_cycles=d["max_cycles"], **(d.get("flags") or {}),
    )


def run_cell_with_checkpoints(
    cell,
    ckpt_path,
    every: int = DEFAULT_CHECKPOINT_EVERY,
    heartbeat: Optional[Callable[[], bool]] = None,
):
    """Run one sweep cell, checkpointing to ``ckpt_path`` as it goes.

    Resumes from an existing checkpoint file when one is present
    (stale or corrupt checkpoints — wrong compiler version, truncated
    write — silently restart the cell from cycle zero).  Produces the
    same :class:`CellResult` rows as the in-process
    :func:`repro.sim.sweep.run_cell`; statistics are bit-identical to
    an uninterrupted run by the checkpoint contract.  Falls back to
    the straight runner when checkpointing is disabled
    (``REPRO_NO_CKPT=1``) or the cell's flags make the machine
    un-snapshottable (e.g. ``check_coherence`` attaches closures).
    """
    from repro.sim import checkpoint as ck
    from repro.sim.sweep import CellResult, run_cell, summarize_stats

    if ck.checkpointing_disabled():
        return run_cell(cell)

    ckpt_path = Path(ckpt_path)
    start = time.process_time()
    machine = None
    if ckpt_path.exists():
        try:
            machine = ck.load(str(ckpt_path))
        except ck.CheckpointError:
            machine = None
    if machine is None:
        spec = ck.make_spec(
            cell.app, cell.model, n_nodes=cell.n_nodes, ways=cell.ways,
            freq_ghz=cell.freq_ghz, preset=cell.preset, **dict(cell.flags),
        )
        machine = ck.build_checkpointable(spec)

    def on_checkpoint(m) -> None:
        ck.save(m, str(ckpt_path))
        if heartbeat is not None and not heartbeat():
            raise LeaseLost(f"lease on {cell.label} reclaimed mid-run")

    budget = cell.max_cycles - machine.cycle
    try:
        st = ck.run_chunked(
            machine, max(budget, 1), every=every, on_checkpoint=on_checkpoint
        )
    except SimulationError as exc:
        return CellResult(
            cell, "failed",
            error=str(exc).splitlines()[0][:500],
            error_type=type(exc).__name__,
            elapsed_s=time.process_time() - start,
        )
    except ck.CheckpointError:
        # The machine cannot snapshot (observer flags); run it straight.
        return run_cell(cell)
    return CellResult(
        cell, "ok", stats=summarize_stats(st),
        elapsed_s=time.process_time() - start,
    )


def submit_cells(queue: JobQueue, cells: Sequence, refresh: bool = False) -> int:
    """Enqueue one job per unique cell (job id = the cell's cache key,
    so queue identity and result-cache identity never diverge)."""
    fresh = 0
    for cell in cells:
        if queue.submit(
            cell.cache_key(), {"kind": "sweep", "cell": cell.to_dict()},
            refresh=refresh,
        ):
            fresh += 1
    return fresh


def worker_loop(
    queue: JobQueue,
    worker_id: Optional[str] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    poll_s: float = 2.0,
    max_jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> int:
    """Drain the queue: claim, run (checkpointing), report, repeat.

    Runs until the queue is fully drained (every job ``done`` or
    ``failed``) or ``max_jobs`` jobs have been executed; while other
    workers hold leases it polls, so it also picks up jobs orphaned by
    a killed neighbour.  Returns the number of jobs this worker ran.
    """
    worker_id = worker_id or default_worker_id()
    note = progress or (lambda msg: None)
    ran = 0
    while max_jobs is None or ran < max_jobs:
        job = queue.claim(worker_id)
        if job is None:
            if queue.all_done():
                break
            time.sleep(poll_s)
            continue
        job_id = job["id"]
        cell = _cell_from_dict(job["payload"]["cell"])
        ckpt = queue.checkpoint_path(job_id)
        resumed = " (resuming from checkpoint)" if ckpt.exists() else ""
        note(f"worker {worker_id}: {cell.label}{resumed}")
        try:
            result = run_cell_with_checkpoints(
                cell, ckpt, every=checkpoint_every,
                heartbeat=lambda: queue.heartbeat(job_id, worker_id),
            )
        except LeaseLost:
            note(f"worker {worker_id}: lost lease on {cell.label}")
            continue
        except Exception as exc:  # infrastructure failure: release for retry
            queue.fail(job_id, worker_id, f"{type(exc).__name__}: {exc}")
            note(f"worker {worker_id}: {cell.label}: error {exc}")
            ran += 1
            continue
        queue.complete(job_id, worker_id, {
            "status": result.status,
            "stats": result.stats,
            "error": result.error,
            "error_type": result.error_type,
            "elapsed_s": result.elapsed_s,
        })
        note(f"worker {worker_id}: {cell.label}: {result.status} "
             f"({result.elapsed_s:.2f}s)")
        ran += 1
    return ran


def gather_results(queue: JobQueue, cells: Sequence) -> List:
    """Map finished queue records back onto ``cells`` (input order),
    as :class:`CellResult` rows — the same shape ``run_sweep`` returns."""
    from repro.sim.sweep import CellResult

    out = []
    for cell in cells:
        job = queue.get(cell.cache_key())
        if job is None or job["state"] not in ("done", "failed"):
            out.append(CellResult(
                cell, "crashed",
                error=f"job {job['state'] if job else 'missing'} at gather time",
                error_type="QueueIncomplete",
            ))
        elif job["state"] == "failed":
            out.append(CellResult(
                cell, "crashed", error=job.get("error", ""),
                error_type="QueueJobFailed",
                attempts=job.get("attempts", 0),
            ))
        else:
            r = job["result"]
            out.append(CellResult(
                cell, r["status"], stats=r["stats"], error=r["error"],
                error_type=r["error_type"], elapsed_s=r["elapsed_s"],
                attempts=job.get("attempts", 1),
            ))
    return out


def serve_sweep(
    queue: JobQueue,
    cells: Sequence,
    cache=None,
    refresh: bool = False,
    poll_s: float = 2.0,
    progress: Optional[Callable[[str], None]] = None,
) -> List:
    """Producer side of ``repro sweep --serve``.

    Cache-satisfied cells never reach the queue; the rest are enqueued
    (idempotently — a restarted server re-attaches to the same queue)
    and polled until workers finish them.  Successful rows are written
    back to the result cache, so a later in-process sweep of the same
    grid is a pure cache hit.
    """
    note = progress or (lambda msg: None)
    unique: Dict[str, object] = {}
    for cell in cells:
        unique.setdefault(cell.cache_key(), cell)

    from repro.sim.sweep import CellResult

    cached: Dict[str, object] = {}
    pending = []
    for key, cell in unique.items():
        stats = cache.get(key) if cache is not None else None
        if stats is not None:
            cached[key] = CellResult(cell, "ok", stats=stats, cached=True)
        else:
            pending.append(cell)
    fresh = submit_cells(queue, pending, refresh=refresh)
    note(
        f"serve: {len(unique)} cells ({len(cached)} cached, "
        f"{fresh} newly queued, {len(pending) - fresh} already queued)"
    )
    keys = {cell.cache_key() for cell in pending}
    while True:
        states = {
            key: (queue.get(key) or {}).get("state", "missing") for key in keys
        }
        left = sum(1 for s in states.values() if s not in ("done", "failed"))
        if left == 0:
            break
        counts = queue.counts()
        note(
            f"serve: waiting on {left} cells "
            f"(queue: {counts['pending']} pending, {counts['leased']} leased)"
        )
        time.sleep(poll_s)
    results = gather_results(queue, pending)
    if cache is not None:
        for result in results:
            if result.ok:
                cache.put(result.cell.cache_key(), result)
    by_key = {r.cell.cache_key(): r for r in results}
    by_key.update(cached)
    order = []
    for cell in cells:
        order.append(by_key[cell.cache_key()])
    return order


# ----------------------------------------------------------------------
# pool_map durability (fuzz campaigns)
# ----------------------------------------------------------------------


class ResultLedger:
    """Durable completed-item store for :func:`repro.sim.sweep.pool_map`.

    One JSON file per finished item, keyed by a hash of the item's
    identity.  ``pool_map`` consults the ledger before spawning a
    worker and records every ``fn`` outcome after, so a killed
    campaign replays finished items instantly on restart and only
    re-runs the interrupted ones.  Timeouts and crashes are never
    recorded — they stay retryable.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, ident: object) -> Path:
        digest = hashlib.sha256(repr(ident).encode()).hexdigest()[:32]
        return self.root / f"{digest}.json"

    def get(self, ident: object) -> Optional[Dict]:
        try:
            return json.loads(self._path(ident).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, ident: object, outcome: Dict) -> None:
        path = self._path(ident)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(outcome, sort_keys=True))
        os.replace(tmp, path)
