"""Paper-style table and figure rendering.

Each experiment produces a dict of results; these helpers print rows
the way the paper's tables/figures read, so a benchmark run can be
compared against the published numbers side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.stats import MachineStats

MODEL_LABELS = {
    "base": "Base",
    "intperfect": "IntPerfect",
    "int512kb": "Int512KB",
    "int64kb": "Int64KB",
    "smtp": "SMTp",
}


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def speedup_table(results: Dict[str, Dict[int, float]], ways: Sequence[int]) -> str:
    """Tables 5/6: rows = applications, columns = n-way speedups."""
    headers = ["Application"] + [f"{w}-way" for w in ways]
    rows = []
    for app, per_way in results.items():
        rows.append([app] + [f"{per_way[w]:.2f}" for w in ways])
    return format_table(headers, rows)


def normalized_exec_table(
    results: Dict[str, Dict[str, MachineStats]], models: Sequence[str]
) -> str:
    """Figures 2-11: normalized execution time + memory-stall split.

    Each cell shows ``total (memory-stall fraction)`` normalized to the
    Base model of the same application — the textual equivalent of the
    paper's stacked bars.
    """
    headers = ["Application"] + [MODEL_LABELS.get(m, m) for m in models]
    rows = []
    for app, per_model in results.items():
        base_cycles = per_model[models[0]].cycles
        cells = [app]
        for m in models:
            st = per_model[m]
            norm = st.cycles / base_cycles
            cells.append(f"{norm:.3f} (mem {st.memory_stall_fraction:.2f})")
        rows.append(cells)
    return format_table(headers, rows)


def occupancy_table(results: Dict[str, Dict[str, MachineStats]],
                    models: Sequence[str]) -> str:
    """Table 7: peak protocol occupancy percentage per model."""
    headers = ["App."] + [MODEL_LABELS.get(m, m) for m in models]
    rows = []
    for app, per_model in results.items():
        rows.append(
            [app]
            + [f"{100 * per_model[m].protocol_occupancy_peak():.1f}%" for m in models]
        )
    return format_table(headers, rows)


def protocol_thread_table(results: Dict[str, MachineStats]) -> str:
    """Table 8: protocol-thread characteristics under SMTp."""
    headers = ["App.", "Br.Mis. Rate", "Squash %", "Retired Ins."]
    rows = []
    for app, st in results.items():
        rows.append(
            [
                app,
                f"{100 * st.protocol_branch_mispredict_rate():.2f}%",
                f"{100 * st.protocol_squash_cycle_fraction():.2f}%",
                f"{100 * st.retired_protocol_share():.2f}% of all",
            ]
        )
    return format_table(headers, rows)


def resource_occupancy_table(results: Dict[str, MachineStats]) -> str:
    """Table 9: peak active protocol-thread resource occupancy."""
    headers = ["App.", "Br. Stack", "Int. Regs", "IQ", "LSQ"]
    rows = []
    for app, st in results.items():
        peaks = st.resource_peaks()
        cells = [app]
        for key in ("branch_stack", "int_regs", "int_queue", "lsq"):
            mx, mean = peaks[key]
            cells.append(f"{mx}, {mean:.0f}")
        rows.append(cells)
    return format_table(headers, rows)


def protocol_comparison_table(results) -> Optional[str]:
    """Cross-protocol comparison rows for a finished sweep.

    Groups sweep results whose cells differ *only* in their
    ``protocol`` flag (same app/model/nodes/ways/preset and other
    flags) and prints their cycle counts side by side, normalized to
    the default ``smtp-bitvector`` bundle when it is present in the
    group.  Returns ``None`` when no cell pair is comparable — the
    caller simply skips the section.
    """
    groups: Dict[tuple, Dict[str, object]] = {}
    for r in results:
        flags = dict(r.cell.flags)
        proto = str(flags.pop("protocol", "smtp-bitvector"))
        key = (
            r.cell.app, r.cell.model, r.cell.n_nodes, r.cell.ways,
            r.cell.preset, tuple(sorted(flags.items())),
        )
        groups.setdefault(key, {})[proto] = r
    rows: List[List[object]] = []
    for key, by_proto in sorted(groups.items()):
        if len(by_proto) < 2:
            continue
        base = by_proto.get("smtp-bitvector")
        base_cycles = (
            base.stats["cycles"] if base is not None and base.ok else None
        )
        for proto, r in sorted(by_proto.items()):
            cycles = r.stats["cycles"] if r.ok else None
            rel = (
                f"{cycles / base_cycles:.3f}x"
                if cycles is not None and base_cycles else "-"
            )
            rows.append([
                key[0], key[1], key[2], key[4], proto,
                cycles if cycles is not None else r.status, rel,
            ])
    if not rows:
        return None
    return format_table(
        ["app", "model", "nodes", "preset", "protocol", "cycles",
         "vs default"],
        rows,
    )


def summarize(st: MachineStats) -> str:
    """One-paragraph run summary used by examples."""
    lines = [
        f"model={st.model} nodes={st.n_nodes} ways={st.ways} "
        f"freq={st.freq_ghz:g}GHz",
        f"cycles={st.cycles}  exec={st.exec_seconds * 1e6:.1f}us  "
        f"committed={st.committed}",
        f"memory-stall fraction={st.memory_stall_fraction:.3f}  "
        f"protocol occupancy (peak node)={100 * st.protocol_occupancy_peak():.1f}%",
    ]
    return "\n".join(lines)
