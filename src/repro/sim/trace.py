"""Protocol event tracing — the debugging tool for coherence work.

Attach a :class:`ProtocolTracer` to a machine (before running) and it
records a timeline of coherence events, optionally filtered to one
cache line: handler dispatches, outgoing messages, refills, probes and
writebacks, each tagged with cycle and node. The textual timeline
reads like the protocol walkthroughs in DSM papers::

    tracer = ProtocolTracer(machine, line=0x2000)
    ... run ...
    print(tracer.render())

Tracing wraps the memory controllers' dispatch/send paths; overhead is
one Python call per event, so keep it out of benchmark runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import List, Optional

from repro.network.messages import Message


@dataclass
class TraceEvent:
    cycle: int
    node: int
    kind: str  # dispatch | send | refill | probe | writeback
    detail: str
    addr: int

    def render(self) -> str:
        return (
            f"{self.cycle:>10d}  node {self.node}  {self.kind:<9s} "
            f"{self.addr:#012x}  {self.detail}"
        )


class ProtocolTracer:
    """Records protocol events.

    ``ring=False`` (debugging): record the first ``max_events`` events
    and then stop.  ``ring=True`` (failure artifacts): keep the *last*
    ``max_events`` events in a ring buffer, so the tail leading up to a
    violation survives however long the run was.
    """

    def __init__(self, machine, line: Optional[int] = None,
                 max_events: int = 100_000, ring: bool = False) -> None:
        self.machine = machine
        self.line_mask = ~(machine.mp.line_bytes - 1)
        self.line = line & self.line_mask if line is not None else None
        self.max_events = max_events
        self.ring = ring
        self.events = deque(maxlen=max_events) if ring else []
        for node in machine.nodes:
            self._wrap(node)

    # ------------------------------------------------------------------
    def _interesting(self, addr: int) -> bool:
        if not self.ring and len(self.events) >= self.max_events:
            return False
        return self.line is None or (addr & self.line_mask) == self.line

    def _record(self, node: int, kind: str, addr: int, detail: str) -> None:
        self.events.append(
            TraceEvent(self.machine.cycle, node, kind, detail, addr)
        )

    def _wrap(self, node) -> None:
        mc = node.mc
        nid = node.node_id

        orig_dispatch = mc._dispatch

        def dispatch(msg: Message):
            if self._interesting(msg.addr):
                self._record(
                    nid, "dispatch", msg.addr,
                    f"{msg.mtype.name} src={msg.src} req={msg.requester} "
                    f"v{msg.version}",
                )
            return orig_dispatch(msg)

        mc._dispatch = dispatch

        orig_send = mc.send_to_network

        def send(msg: Message):
            if self._interesting(msg.addr):
                self._record(
                    nid, "send", msg.addr,
                    f"{msg.mtype.name} -> node {msg.dest} v{msg.version}"
                    f"{' dirty' if msg.dirty else ''}"
                    f"{f' acks={msg.acks}' if msg.acks else ''}",
                )
            return orig_send(msg)

        mc.send_to_network = send

        h = node.hierarchy
        orig_refill = h.refill

        def refill(line_addr, writable, version, acks=0, dirty=False):
            if self._interesting(line_addr):
                self._record(
                    nid, "refill", line_addr,
                    f"{'writable' if writable else 'shared'} v{version}"
                    f"{f' acks={acks}' if acks else ''}",
                )
            return orig_refill(line_addr, writable, version, acks, dirty)

        h.refill = refill

        orig_probe = h.probe

        def probe(line_addr, kind, on_response):
            if self._interesting(line_addr):
                self._record(nid, "probe", line_addr, kind)
            return orig_probe(line_addr, kind, on_response)

        h.probe = probe

        orig_wb = mc.writeback

        def writeback(line_addr, version, dirty):
            if self._interesting(line_addr):
                self._record(
                    nid, "writeback", line_addr,
                    f"v{version}{' dirty' if dirty else ' clean'}",
                )
            return orig_wb(line_addr, version, dirty)

        mc.writeback = writeback

    # ------------------------------------------------------------------
    def render(self, limit: Optional[int] = None) -> str:
        events = list(self.events)
        if limit is not None:
            events = events[-limit:]
        header = f"{'cycle':>10s}  {'where':8s} {'event':9s} {'line':12s}  detail"
        return "\n".join([header] + [e.render() for e in events])

    def to_dicts(self, limit: Optional[int] = None) -> List[dict]:
        """JSON-serializable event tail (for failure artifacts)."""
        events = list(self.events)
        if limit is not None:
            events = events[-limit:]
        return [asdict(e) for e in events]

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)
