"""The dynamic instruction (µop) record flowing through the pipeline.

Both instruction sources produce these:

* application thread programs (:mod:`repro.apps`) — trace-driven, so
  branch outcomes, memory addresses and store values are filled in at
  creation,
* the protocol-thread shadow interpreter
  (:mod:`repro.core.protocol_thread`) — handler instructions resolved
  against live directory state at fetch time.

The pipeline treats µops purely as timing tokens afterwards: renaming,
issue, cache access, completion, commit.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple


class UopKind(enum.Enum):
    ALU = enum.auto()  # single-cycle integer op
    MUL = enum.auto()
    DIV = enum.auto()
    FALU = enum.auto()  # pipelined FP op
    FDIV = enum.auto()
    NOP = enum.auto()
    LOAD = enum.auto()
    STORE = enum.auto()
    PREFETCH = enum.auto()
    ATOMIC = enum.auto()  # tas / fai / swap: non-speculative RMW
    BRANCH = enum.auto()
    CALL = enum.auto()
    RETURN = enum.auto()
    UNCACHED = enum.auto()  # protocol SENDH/SENDA/PROBE/COMPLETE/...
    SWITCH = enum.auto()  # protocol: load next request header
    LDCTXT = enum.auto()  # protocol: load next request address
    SYNTH = enum.auto()  # injected wrong-path filler


MEMORY_KINDS = frozenset(
    {UopKind.LOAD, UopKind.STORE, UopKind.PREFETCH, UopKind.ATOMIC}
)
BRANCH_KINDS = frozenset({UopKind.BRANCH, UopKind.CALL, UopKind.RETURN})
COMMIT_STAGE_KINDS = frozenset(
    {UopKind.UNCACHED, UopKind.SWITCH, UopKind.LDCTXT}
)

#: Logical register namespaces: 0-31 integer, 32-63 floating point.
FP_BASE = 32
N_LOGICAL = 64


class Uop:
    __slots__ = (
        # static (from the source)
        "kind",
        "thread",
        "pc",
        "srcs",
        "dest",
        "taken",
        "target_pc",
        "addr",
        "value",
        "atomic_op",
        "operand",
        "exclusive",
        "latency",
        "pinstr",
        "ctx",
        "on_value",
        "protocol",
        # kind predicates, precomputed (issue/commit hot path)
        "is_memory",
        "is_branch",
        "commit_stage",
        "is_fp",
        # dynamic (pipeline state)
        "seq",
        "psrcs",
        "pdest",
        "pdest_old",
        "checkpoint",
        "mem_seq",
        "predicted_taken",
        "mispredicted",
        "issued",
        "completed",
        "complete_cycle",
        "squashed",
        "in_lsq",
        "in_sb",
        "result_value",
    )

    def __init__(
        self,
        kind: UopKind,
        thread: int,
        pc: int = 0,
        srcs: Tuple[int, ...] = (),
        dest: Optional[int] = None,
        taken: bool = False,
        target_pc: int = 0,
        addr: int = 0,
        value: Optional[int] = None,
        atomic_op: Optional[str] = None,
        operand: int = 0,
        exclusive: bool = False,
        latency: int = 1,
        pinstr=None,
        ctx=None,
        on_value=None,
        protocol: bool = False,
    ) -> None:
        self.kind = kind
        self.thread = thread
        self.pc = pc
        self.srcs = srcs
        self.dest = dest
        self.taken = taken
        self.target_pc = target_pc
        self.addr = addr
        self.value = value
        self.atomic_op = atomic_op
        self.operand = operand
        self.exclusive = exclusive
        self.latency = latency
        self.pinstr = pinstr
        self.ctx = ctx
        #: Callback fed the load/atomic result (spin & lock feedback).
        self.on_value = on_value
        self.protocol = protocol

        # ``kind`` never changes after construction, so the class
        # predicates are paid once here instead of on every pipeline
        # stage's query.
        self.is_memory = kind in MEMORY_KINDS
        self.is_branch = kind in BRANCH_KINDS
        self.commit_stage = kind in COMMIT_STAGE_KINDS
        self.is_fp = kind is UopKind.FALU or kind is UopKind.FDIV

        self.seq = 0
        self.psrcs: Tuple[int, ...] = ()
        self.pdest = -1
        self.pdest_old = -1
        self.checkpoint = None
        self.mem_seq = -1
        self.predicted_taken = False
        self.mispredicted = False
        self.issued = False
        self.completed = False
        self.complete_cycle = -1
        self.squashed = False
        self.in_lsq = False
        self.in_sb = False
        self.result_value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Uop({self.kind.name}, t{self.thread}, pc={self.pc:#x}, "
            f"seq={self.seq})"
        )
