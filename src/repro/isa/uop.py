"""The dynamic instruction (µop) record flowing through the pipeline.

Both instruction sources produce these:

* application thread programs (:mod:`repro.apps`) — trace-driven, so
  branch outcomes, memory addresses and store values are filled in at
  creation,
* the protocol-thread shadow interpreter
  (:mod:`repro.core.protocol_thread`) — handler instructions resolved
  against live directory state at fetch time.

The pipeline treats µops purely as timing tokens afterwards: renaming,
issue, cache access, completion, commit.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple


class UopKind(enum.IntEnum):
    """µop kinds.

    An ``IntEnum`` so the pipeline's per-stage dict lookups and
    frozenset membership tests hash at C speed (plain ``Enum`` hashes
    through a Python-level ``__hash__``, which profiling showed on the
    issue/commit hot path).  ``__str__``/``__format__`` are pinned to
    the ``Enum`` forms so messages keep reading ``UopKind.ALU``.
    """

    __str__ = enum.Enum.__str__
    __format__ = enum.Enum.__format__

    ALU = enum.auto()  # single-cycle integer op
    MUL = enum.auto()
    DIV = enum.auto()
    FALU = enum.auto()  # pipelined FP op
    FDIV = enum.auto()
    NOP = enum.auto()
    LOAD = enum.auto()
    STORE = enum.auto()
    PREFETCH = enum.auto()
    ATOMIC = enum.auto()  # tas / fai / swap: non-speculative RMW
    BRANCH = enum.auto()
    CALL = enum.auto()
    RETURN = enum.auto()
    UNCACHED = enum.auto()  # protocol SENDH/SENDA/PROBE/COMPLETE/...
    SWITCH = enum.auto()  # protocol: load next request header
    LDCTXT = enum.auto()  # protocol: load next request address
    SYNTH = enum.auto()  # injected wrong-path filler


MEMORY_KINDS = frozenset(
    {UopKind.LOAD, UopKind.STORE, UopKind.PREFETCH, UopKind.ATOMIC}
)
BRANCH_KINDS = frozenset({UopKind.BRANCH, UopKind.CALL, UopKind.RETURN})
COMMIT_STAGE_KINDS = frozenset(
    {UopKind.UNCACHED, UopKind.SWITCH, UopKind.LDCTXT}
)

#: (is_memory, is_branch, commit_stage, is_fp) per kind, indexed by the
#: kind's integer value — one list index replaces four frozenset tests
#: on every µop construction.
_KIND_FLAGS: List[Tuple[bool, bool, bool, bool]] = [
    (False, False, False, False)
] * (max(UopKind) + 1)
for _k in UopKind:
    _KIND_FLAGS[_k] = (
        _k in MEMORY_KINDS,
        _k in BRANCH_KINDS,
        _k in COMMIT_STAGE_KINDS,
        _k is UopKind.FALU or _k is UopKind.FDIV,
    )

#: Logical register namespaces: 0-31 integer, 32-63 floating point.
FP_BASE = 32
N_LOGICAL = 64


class Uop:
    __slots__ = (
        # static (from the source)
        "kind",
        "thread",
        "pc",
        "srcs",
        "dest",
        "taken",
        "target_pc",
        "addr",
        "value",
        "atomic_op",
        "operand",
        "exclusive",
        "latency",
        "pinstr",
        "ctx",
        "on_value",
        "protocol",
        "spin",
        # kind predicates, precomputed (issue/commit hot path)
        "is_memory",
        "is_branch",
        "commit_stage",
        "is_fp",
        # dynamic (pipeline state)
        "seq",
        "iq_pos",
        "psrcs",
        "n_wait",
        "pdest",
        "pdest_old",
        "checkpoint",
        "mem_seq",
        "predicted_taken",
        "mispredicted",
        "issued",
        "completed",
        "complete_cycle",
        "squashed",
        "in_lsq",
        "in_sb",
        "result_value",
    )

    def __init__(
        self,
        kind: UopKind,
        thread: int,
        pc: int = 0,
        srcs: Tuple[int, ...] = (),
        dest: Optional[int] = None,
        taken: bool = False,
        target_pc: int = 0,
        addr: int = 0,
        value: Optional[int] = None,
        atomic_op: Optional[str] = None,
        operand: int = 0,
        exclusive: bool = False,
        latency: int = 1,
        pinstr=None,
        ctx=None,
        on_value=None,
        protocol: bool = False,
    ) -> None:
        self.kind = kind
        self.thread = thread
        self.pc = pc
        self.srcs = srcs
        self.dest = dest
        self.taken = taken
        self.target_pc = target_pc
        self.addr = addr
        self.value = value
        self.atomic_op = atomic_op
        self.operand = operand
        self.exclusive = exclusive
        self.latency = latency
        self.pinstr = pinstr
        self.ctx = ctx
        #: Callback fed the load/atomic result (spin & lock feedback).
        self.on_value = on_value
        self.protocol = protocol
        #: Emitted by a spin-synchronization loop (spin_until /
        #: SpinLock.acquire): its retirement count is timing-dependent
        #: and excluded from cross-protocol differential comparisons.
        self.spin = False

        # ``kind`` never changes after construction, so the class
        # predicates are paid once here instead of on every pipeline
        # stage's query.
        (
            self.is_memory,
            self.is_branch,
            self.commit_stage,
            self.is_fp,
        ) = _KIND_FLAGS[kind]

        self.seq = 0
        #: IQ admission order (the compiled issue path's heap key; the
        #: interpreted path's list order carries the same information).
        self.iq_pos = 0
        self.psrcs: Tuple[int, ...] = ()
        #: Unready physical sources (maintained by the rename unit's
        #: wakeup lists); the issue stage tests this instead of
        #: re-scanning ``psrcs`` every cycle.
        self.n_wait = 0
        self.pdest = -1
        self.pdest_old = -1
        self.checkpoint = None
        self.mem_seq = -1
        self.predicted_taken = False
        self.mispredicted = False
        self.issued = False
        self.completed = False
        self.complete_cycle = -1
        self.squashed = False
        self.in_lsq = False
        self.in_sb = False
        self.result_value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Uop({self.kind.name}, t{self.thread}, pc={self.pc:#x}, "
            f"seq={self.seq})"
        )

    def clone(self) -> "Uop":
        """A fresh µop with this one's static fields and pristine
        pipeline state — the decoded-µop cache's template stamp.

        Equivalent to re-running ``__init__`` with the same arguments,
        but skips argument binding and the flags lookup; callers patch
        the per-instance fields (``addr``, ``value``, ``taken``, …)
        afterwards.
        """
        u = Uop.__new__(Uop)
        u.kind = self.kind
        u.thread = self.thread
        u.pc = self.pc
        u.srcs = self.srcs
        u.dest = self.dest
        u.taken = self.taken
        u.target_pc = self.target_pc
        u.addr = self.addr
        u.value = self.value
        u.atomic_op = self.atomic_op
        u.operand = self.operand
        u.exclusive = self.exclusive
        u.latency = self.latency
        u.pinstr = self.pinstr
        u.ctx = self.ctx
        u.on_value = self.on_value
        u.protocol = self.protocol
        u.spin = self.spin
        u.is_memory = self.is_memory
        u.is_branch = self.is_branch
        u.commit_stage = self.commit_stage
        u.is_fp = self.is_fp
        u.seq = 0
        u.iq_pos = 0
        u.psrcs = ()
        u.n_wait = 0
        u.pdest = -1
        u.pdest_old = -1
        u.checkpoint = None
        u.mem_seq = -1
        u.predicted_taken = False
        u.mispredicted = False
        u.issued = False
        u.completed = False
        u.complete_cycle = -1
        u.squashed = False
        u.in_lsq = False
        u.in_sb = False
        u.result_value = 0
        return u


def protocol_uop(
    kind: UopKind,
    thread: int,
    pc: int,
    srcs: Tuple[int, ...],
    dest: Optional[int],
    addr: int,
    value: Optional[int],
    taken: bool,
    target_pc: int,
    latency: int,
    pinstr: object,
    ctx: object,
) -> Uop:
    """Positional fast constructor for protocol-thread µops.

    Field-for-field identical to ``Uop(kind, thread, pc=..., ...,
    protocol=True)``; the compiled µop feed
    (:mod:`repro.protocol.compile`) calls this once per emitted µop, so
    it avoids keyword-argument binding on the hot path.
    """
    u = Uop.__new__(Uop)
    u.kind = kind
    u.thread = thread
    u.pc = pc
    u.srcs = srcs
    u.dest = dest
    u.taken = taken
    u.target_pc = target_pc
    u.addr = addr
    u.value = value
    u.atomic_op = None
    u.operand = 0
    u.exclusive = False
    u.latency = latency
    u.pinstr = pinstr
    u.ctx = ctx
    u.on_value = None
    u.protocol = True
    u.spin = False
    (
        u.is_memory,
        u.is_branch,
        u.commit_stage,
        u.is_fp,
    ) = _KIND_FLAGS[kind]
    u.seq = 0
    u.iq_pos = 0
    u.psrcs = ()
    u.n_wait = 0
    u.pdest = -1
    u.pdest_old = -1
    u.checkpoint = None
    u.mem_seq = -1
    u.predicted_taken = False
    u.mispredicted = False
    u.issued = False
    u.completed = False
    u.complete_cycle = -1
    u.squashed = False
    u.in_lsq = False
    u.in_sb = False
    u.result_value = 0
    return u
