"""Dynamic instruction (µop) representation shared by the application
programs, the protocol-thread shadow interpreter, and the pipeline."""

from repro.isa.uop import (
    BRANCH_KINDS,
    COMMIT_STAGE_KINDS,
    FP_BASE,
    MEMORY_KINDS,
    Uop,
    UopKind,
)

__all__ = [
    "BRANCH_KINDS",
    "COMMIT_STAGE_KINDS",
    "FP_BASE",
    "MEMORY_KINDS",
    "Uop",
    "UopKind",
]
