"""smtp-repro: a reproduction of "SMTp: An Architecture for
Next-generation Scalable Multi-threading" (Chaudhuri & Heinrich,
ISCA 2004).

Quickstart::

    from repro import run_app
    stats = run_app("fft", "smtp", n_nodes=4, ways=2, preset="bench")
    print(stats.cycles, stats.memory_stall_fraction)

The package layers:

* ``repro.core``     — the paper's contribution: the SMTp protocol
  thread, node/machine assembly, the five Table 4 machine models.
* ``repro.pipeline`` — the out-of-order SMT core.
* ``repro.protocol`` — the directory coherence protocol as executable
  handler programs in a mini protocol ISA.
* ``repro.caches`` / ``repro.memctrl`` / ``repro.network`` — the
  memory-system substrates.
* ``repro.apps``     — the six workloads (Table 1) and the runtime
  (tree barriers, locks) they are built on.
* ``repro.sim``      — the experiment driver and paper-style reports.
"""

from repro.common.params import (
    PERFECT,
    CacheParams,
    MachineParams,
    MemoryParams,
    NetworkParams,
    ProcessorParams,
)
from repro.common.stats import MachineStats, speedup
from repro.core.machine import Machine
from repro.core.models import MODELS, make_machine_params, paper_exact_params
from repro.sim.driver import build_machine, run_app, run_machine
from repro.sim.experiments import APPS, PRESETS

__version__ = "1.0.0"

__all__ = [
    "APPS",
    "CacheParams",
    "Machine",
    "MachineParams",
    "MachineStats",
    "MemoryParams",
    "MODELS",
    "NetworkParams",
    "PERFECT",
    "PRESETS",
    "ProcessorParams",
    "build_machine",
    "make_machine_params",
    "paper_exact_params",
    "run_app",
    "run_machine",
    "speedup",
]
