"""Handler dispatch: contexts and handler-name resolution.

The handler dispatch unit (paper §2.1, Figure 1) selects a message
from the Local Miss Interface or the Network Interface, extracts its
address and header, initiates the memory access in parallel when the
transaction expects a cache-line reply, and looks up the handler PC.
"""

from __future__ import annotations

from typing import Optional

from repro.network.messages import Message, MsgType
from repro.protocol.handlers import (
    LOCAL_REMOTE_DISPATCH,
    NETWORK_DISPATCH,
    PROBE_DISPATCH,
    make_header,
)
from repro.protocol.isa import Handler


class HandlerContext:
    """Everything one handler invocation needs from the hardware."""

    __slots__ = (
        "msg",
        "handler",
        "header",
        "out_header",
        "data_ready_at",
        "probe_kind",
        "dispatched_at",
        "index",
        "am_result",
    )

    def __init__(self, msg: Message, handler: Handler, header: int) -> None:
        self.msg = msg
        self.handler = handler
        #: Incoming header word (becomes the thread's HDR register).
        self.header = header
        #: Outgoing header latched by SENDH, consumed by SENDA.
        self.out_header: Optional[int] = None
        #: Cycle at which memory data for this transaction is available.
        self.data_ready_at = 0
        self.probe_kind: Optional[MsgType] = None
        self.dispatched_at = 0
        #: Dispatch order (used by the SMTp port's SWITCH handshake).
        self.index = -1
        #: Old value captured by an active-memory AMO (extensions).
        self.am_result = 0


def handler_name_for(msg: Message, node_id: int, bundle=None) -> str:
    """Resolve which handler services ``msg`` at ``node_id``.

    ``bundle`` is the machine's :class:`repro.protocol.registry.
    ProtocolBundle`; None falls back to the default protocol's
    module-level dispatch tables (memory-only harnesses and tests).
    """
    if bundle is None:
        network, local_remote = NETWORK_DISPATCH, LOCAL_REMOTE_DISPATCH
    else:
        network = bundle.network_dispatch
        local_remote = bundle.local_remote_dispatch
    if msg.mtype is MsgType.L2_PROBE_REPLY:
        raise ValueError("probe replies resolve via their probe kind")
    if msg.mtype in (MsgType.GET, MsgType.GETX, MsgType.UPGRADE):
        if msg.dest == node_id:
            return network[msg.mtype]
        return local_remote[msg.mtype]
    return network[msg.mtype]


def incoming_header(msg: Message) -> int:
    """Compose the HDR register value the handler will see."""
    return make_header(
        msg.mtype,
        peer=msg.src,
        requester=msg.requester,
        found=msg.found,
        dirty=msg.dirty,
    )
