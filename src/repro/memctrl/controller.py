"""The per-node memory controller.

In every machine model the controller owns the Local Miss Interface,
the Network Interface queues, the SDRAM, and the handler dispatch
unit.  What differs per model (Table 4) is *where handlers execute*:

* ``Base`` / ``Int*``: an embedded dual-issue protocol processor
  (:class:`repro.memctrl.ppengine.PPEngine`) with a directory data
  cache — plugged in as ``self.engine``.
* ``SMTp``: the protocol thread context of the main pipeline — the
  core installs an engine adapter exposing the same interface.

The engine interface is duck-typed::

    engine.can_accept() -> bool      # ready for a new handler?
    engine.dispatch(ctx) -> None     # begin executing ctx.handler

and during execution the engine calls back into
:meth:`MemoryController.uncached_op` for every SENDH/SENDA/PROBE/
COMPLETE/RESEND/MEMWR the handler graduates.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Protocol

from repro.caches.hierarchy import CacheHierarchy
from repro.caches.mshr import MissKind, MSHREntry
from repro.common.errors import ProtocolError
from repro.common.events import EventWheel
from repro.common.params import MachineParams
from repro.common.queues import BoundedQueue
from repro.common.stats import NodeStats
from repro.memctrl.dispatch import HandlerContext, handler_name_for, incoming_header
from repro.memctrl.sdram import SDRAM
from repro.network.messages import EXPECTS_MEMORY_DATA, Message, MsgType
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import (
    PROBE_DISPATCH,
    header_acks,
    header_peer,
    header_type,
    make_header,
)
from repro.protocol.isa import HandlerTable, PInstr, POp, RESEND_AS_GETX

#: Fixed latencies (processor cycles).
LOCAL_REPLY_LATENCY = 4  # hardware path MC -> MSHR/refill
LOCAL_QUEUE_LATENCY = 4  # send-to-self re-enqueue
RETRY_BASE = 100  # NACK retry backoff
RETRY_STEP = 50

_REPLY_TYPES = frozenset(
    {
        MsgType.DATA_SHARED,
        MsgType.DATA_EXCL,
        MsgType.UPGRADE_ACK,
        MsgType.NACK,
        MsgType.NACK_UPGRADE,
        MsgType.INV_ACK,
        MsgType.WB_ACK,
        MsgType.AM_REPLY,
    }
)

_MTYPE_BY_VALUE = {m.value: m for m in MsgType}


class ProtocolEngine(Protocol):
    """What the controller needs from a handler-execution engine.

    Implemented by :class:`repro.memctrl.ppengine.PPEngine` (embedded
    protocol processor) and the SMTp port adapter the core installs;
    see the module docstring for the calling convention.
    """

    def can_accept(self) -> bool: ...

    def dispatch(self, ctx: HandlerContext) -> None: ...

    def ready_cycle(self) -> Optional[int]: ...


class MemoryController:
    def __init__(
        self,
        node_id: int,
        mp: MachineParams,
        wheel: EventWheel,
        hierarchy: CacheHierarchy,
        layout: DirectoryLayout,
        handler_table: HandlerTable,
        stats: NodeStats,
        memory_versions: Dict[int, int],
        send_to_network: Callable[[Message], None],
        bundle=None,
    ) -> None:
        self.node_id = node_id
        self.mp = mp
        self.wheel = wheel
        self.hierarchy = hierarchy
        self.layout = layout
        self.handlers = handler_table
        #: The protocol bundle whose dispatch tables route messages;
        #: None (memory-only harnesses) falls back to the default
        #: protocol's module-level tables.
        self.bundle = bundle
        self.stats = stats
        self.memory_versions = memory_versions
        self.send_to_network = send_to_network

        self.sdram = SDRAM(mp, stats)
        self.local_queue: BoundedQueue[Message] = BoundedQueue(
            "lmi", mp.mem.local_miss_queue
        )
        self.ni_in: List[BoundedQueue[Message]] = [
            BoundedQueue(f"ni_in{v}", mp.mem.ni_input_queue)
            for v in range(mp.mem.virtual_networks)
        ]
        self.probe_replies: List[Message] = []
        #: Installed by the node (PPEngine or the SMTp port adapter).
        self.engine: Optional[ProtocolEngine] = None
        self._lmi_vs_vn0 = False  # cycling priority
        # Dispatchable messages across probe_replies/local_queue/ni_in,
        # maintained at every enqueue/dequeue: the dispatch poll and the
        # machine's wake scan test this instead of walking the queues
        # on every MC-clock edge of every controller.
        self._n_input = 0
        #: Active-set scheduler state: first MC-clock cycle not stepped
        #: densely (0 = in the machine's active set).  While sleeping,
        #: the owed dispatch-poll side effects (the arbitration-parity
        #: flips of :meth:`step`) are replayed by :meth:`mc_wake` via
        #: :meth:`fast_forward`; every input-arrival site settles
        #: *before* mutating state so engine readiness and queue
        #: emptiness are constant over the replayed window.
        self._sleep_from = 0
        #: Backref installed by :class:`repro.core.machine.Machine`.
        self.machine = None
        # Active-memory extension: waiters per word, FIFO.
        self._am_pending: Dict[int, List[Callable[[int], None]]] = {}

    # ------------------------------------------------------------------
    # Ports wired to the hierarchy
    # ------------------------------------------------------------------

    def app_miss(self, entry: MSHREntry) -> None:
        """Hierarchy reported an application L2 miss."""
        if entry.request_upgrade:
            mtype = MsgType.UPGRADE
        elif entry.kind in (MissKind.WRITE, MissKind.PREFETCH_EX):
            mtype = MsgType.GETX
        else:
            mtype = MsgType.GET
        home = self.layout.home_of(entry.line_addr)
        msg = Message(
            mtype, entry.line_addr, src=self.node_id, dest=home,
            requester=self.node_id,
        )
        self._enqueue_local(msg)

    def writeback(self, line_addr: int, version: int, dirty: bool) -> None:
        """Hierarchy evicted a writable line: compose the PUT."""
        home = self.layout.home_of(line_addr)
        msg = Message(
            MsgType.PUT, line_addr, src=self.node_id, dest=home,
            requester=self.node_id, version=version, dirty=dirty,
        )
        if home == self.node_id:
            self._enqueue_local(msg)
        else:
            self.stats.messages_out += 1
            self.send_to_network(msg)

    def proto_miss(self, line_addr: int, on_done: Callable[[int], None]) -> None:
        """Protocol-space miss on the dedicated 64-bit SDRAM bus."""
        ready = self.sdram.access(self.wheel.now)
        self.wheel.schedule_at(ready, partial(on_done, 0))

    def proto_writeback(self, line_addr: int) -> None:
        self.sdram.access(self.wheel.now)

    def _enqueue_local(self, msg: Message) -> None:
        if self.local_queue.push(msg):
            if self._sleep_from:
                self.mc_wake()
            self._n_input += 1
        else:
            self.wheel.schedule(
                LOCAL_QUEUE_LATENCY, partial(self._enqueue_local, msg)
            )

    # ------------------------------------------------------------------
    # Active-memory extension (repro.protocol.extensions)
    # ------------------------------------------------------------------

    def am_request(
        self,
        addr: int,
        op_code: int,
        operand: int,
        on_value: Callable[[int], None],
    ) -> None:
        """Issue an uncached remote fetch-and-op to ``addr``'s home.

        The home's protocol engine runs ``h_am_op``; replies return in
        per-word FIFO order, so a deque of waiters per word suffices.
        """
        self._am_pending.setdefault(addr, []).append(on_value)
        home = self.layout.home_of(addr)
        msg = Message(
            MsgType.AM_OP, addr, src=self.node_id, dest=home,
            requester=self.node_id, version=operand, acks=op_code,
        )
        if home == self.node_id:
            self._enqueue_local(msg)
        else:
            self.stats.messages_out += 1
            self.send_to_network(msg)

    def _am_execute(self, ctx: HandlerContext) -> None:
        """The AMO hardware op: RMW against home memory words."""
        from repro.protocol.extensions import apply_am_op

        msg = ctx.msg
        old = self.hierarchy.read_word(msg.addr)
        self.hierarchy.write_word(msg.addr, apply_am_op(msg.acks, old, msg.version))
        ctx.am_result = old
        self.sdram.access(self.wheel.now)

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    def ni_receive(self, msg: Message) -> bool:
        """Fabric delivery; False applies backpressure."""
        if not self.ni_in[msg.vn].push(msg):
            return False
        if self._sleep_from:
            self.mc_wake()
        self._n_input += 1
        self.stats.messages_in += 1
        if msg.mtype in (MsgType.GET, MsgType.GETX, MsgType.UPGRADE):
            self.stats.remote_requests_in += 1
        return True

    # ------------------------------------------------------------------
    # Dispatch (one attempt per MC cycle)
    # ------------------------------------------------------------------

    def step(self) -> None:
        engine = self.engine
        if engine is None or not engine.can_accept():
            return
        if not self._n_input:
            # An empty poll's only effect in _select_message is the
            # LMI/VN0 arbitration-parity flip; do just that.
            self._lmi_vs_vn0 = not self._lmi_vs_vn0
            return
        msg = self._select_message()
        if msg is None:
            return
        self._dispatch(msg)

    def has_pending_input(self) -> bool:
        """Any dispatchable message queued (activity-contract probe)."""
        return self._n_input > 0

    def mc_wake(self) -> None:
        """Leave per-controller sleep: replay the owed dispatch-poll
        side effects over the slept window and rejoin the machine's
        active set.  Called by every input-arrival site (before the
        enqueue) and by the SMTp port when its handler graduates
        (before acceptance flips) — so the window replayed by
        :meth:`fast_forward` saw constant engine readiness and empty
        queues, exactly the conditions its closed form assumes."""
        sf = self._sleep_from
        if sf:
            self._sleep_from = 0
            m = self.machine
            m._mc_dirty = True
            end = m._mc_edge_done
            if end >= sf:
                self.fast_forward(sf, end, m._mc_divisor)

    def fast_forward(self, start: int, end: int, divisor: int) -> None:
        """Replay the side effect of the idle dispatch polls this MC
        would have made on the MC-clock edges in ``[start, end]``.

        With every queue empty and the engine accepting, a dense
        :meth:`step` still flips the LMI/VN0 arbitration parity via
        :meth:`_select_message`; the machine's fast-forward path calls
        this instead so arbitration stays bit-identical.  Engine
        readiness is constant across the window — the machine wakes at
        ``engine.ready_cycle()`` edges — so one endpoint test suffices.
        """
        engine = self.engine
        if engine is None:
            return
        ready = engine.ready_cycle()
        if ready is None or ready > end:
            return  # not accepting anywhere in the window: no polls
        if self.has_pending_input():
            return  # defensive: an accepting MC with input never sleeps
        lo = max(start, ready)
        polls = end // divisor - (lo - 1) // divisor
        if polls & 1:
            self._lmi_vs_vn0 = not self._lmi_vs_vn0

    def _select_message(self) -> Optional[Message]:
        if self.probe_replies:
            self._n_input -= 1
            return self.probe_replies.pop(0)
        ni = self.ni_in
        if ni[1]._items:
            self._n_input -= 1
            return ni[1].pop()
        if ni[2]._items:
            self._n_input -= 1
            return ni[2].pop()
        first, second = (
            (self.local_queue, ni[0])
            if self._lmi_vs_vn0
            else (ni[0], self.local_queue)
        )
        self._lmi_vs_vn0 = not self._lmi_vs_vn0
        if first._items:
            self._n_input -= 1
            return first.pop()
        if second._items:
            self._n_input -= 1
            return second.pop()
        return None

    def _dispatch(self, msg: Message) -> None:
        engine = self.engine
        assert engine is not None  # step() only dispatches with one
        if msg.mtype is MsgType.L2_PROBE_REPLY:
            kind = msg.probe_kind
            assert kind is not None  # stamped by _execute_probe's reply
            probe = self.bundle.probe_dispatch if self.bundle else PROBE_DISPATCH
            name = probe[kind]
        else:
            name = handler_name_for(msg, self.node_id, self.bundle)
        ctx = HandlerContext(msg, self.handlers[name], incoming_header(msg))
        ctx.dispatched_at = self.wheel.now
        if msg.mtype in EXPECTS_MEMORY_DATA and msg.dest == self.node_id:
            # Start the line fetch in parallel with the handler.
            ctx.data_ready_at = self.sdram.access(self.wheel.now)
        self.stats.protocol.count_handler(name)
        engine.dispatch(ctx)

    # ------------------------------------------------------------------
    # Uncached operations called back by the executing engine
    # ------------------------------------------------------------------

    def uncached_op(self, ctx: HandlerContext, instr: PInstr, value: int) -> None:
        op = instr.op
        if op is POp.SENDH:
            ctx.out_header = value
        elif op is POp.SENDA:
            self._execute_send(ctx, value)
        elif op is POp.PROBE:
            self._execute_probe(ctx, instr.imm, value)
        elif op is POp.COMPLETE:
            self._apply_reply(ctx.msg)
        elif op is POp.RESEND:
            self._resend(ctx.msg.addr, as_getx=instr.imm == RESEND_AS_GETX)
        elif op is POp.MEMWR:
            self._memwr(ctx)
        elif op is POp.AMO:
            self._am_execute(ctx)
        elif op in (POp.SWITCH, POp.LDCTXT):
            pass  # sequencing handled by the engine itself
        else:
            raise ValueError(f"not an uncached op: {op}")

    def _memwr(self, ctx: HandlerContext) -> None:
        msg = ctx.msg
        if msg.dirty:
            self.memory_versions[msg.addr] = msg.version
        else:
            self.memory_versions.setdefault(msg.addr, msg.version)
        self.sdram.access(self.wheel.now)  # the write occupies the bus

    def _execute_send(self, ctx: HandlerContext, addr_value: int) -> None:
        if ctx.out_header is None:
            raise ValueError("SENDA without a latched header (missing SENDH)")
        header = ctx.out_header
        ctx.out_header = None
        mtype = _MTYPE_BY_VALUE[header_type(header)]
        dest = header_peer(header)
        # Active-memory replies address exact words, not lines.
        addr = (
            addr_value
            if mtype is MsgType.AM_REPLY
            else self.layout.line_addr(addr_value)
        )
        msg = Message(
            mtype,
            addr,
            src=self.node_id,
            dest=dest,
            requester=(header >> 16) & 0x3F,
            acks=header_acks(header),
        )
        if mtype is MsgType.AM_REPLY:
            msg.version = ctx.am_result
        ready = self.wheel.now
        if msg.carries_data:
            if ctx.msg.mtype is MsgType.L2_PROBE_REPLY:
                # Data came out of the local L2 probe.
                msg.version = ctx.msg.version
                msg.dirty = ctx.msg.dirty
            else:
                # Data comes from home memory (fetched at dispatch or
                # just written by MEMWR).
                msg.version = self.memory_versions.get(msg.addr, 0)
                msg.dirty = False
                ready = max(ready, ctx.data_ready_at)
        self.stats.protocol.messages_sent += 1
        if mtype is MsgType.NACK:
            self.stats.protocol.nacks_sent += 1
        if dest == self.node_id:
            self._deliver_local(msg, ready)
        else:
            self.stats.messages_out += 1
            if ready <= self.wheel.now:
                self.send_to_network(msg)
            else:
                self.wheel.schedule_at(ready, partial(self.send_to_network, msg))

    def _deliver_local(self, msg: Message, ready: int) -> None:
        delay = max(0, ready - self.wheel.now) + LOCAL_REPLY_LATENCY
        if msg.mtype in _REPLY_TYPES:
            self.wheel.schedule(delay, partial(self._apply_reply, msg))
        else:
            self.wheel.schedule(delay, partial(self._enqueue_local, msg))

    def _execute_probe(self, ctx: HandlerContext, kind_imm: int, addr_value: int) -> None:
        line = self.layout.line_addr(addr_value)
        probe_kind = ctx.msg.mtype  # INT_SHARED / INT_EXCL / INVAL
        origin = ctx.msg  # carries home (src) and requester

        if probe_kind is MsgType.INT_SHARED:
            kind = "downgrade"
        elif probe_kind is MsgType.INT_EXCL:
            kind = "inval_owner"  # ownership transfer: must yield data
        else:
            kind = "inval"  # sharer invalidation
        self.hierarchy.probe(
            line, kind, partial(self._probe_response, line, probe_kind, origin)
        )

    def _probe_response(
        self,
        line: int,
        probe_kind: "MsgType",
        origin: Message,
        found: bool,
        dirty: bool,
        version: int,
    ) -> None:
        reply = Message(
            MsgType.L2_PROBE_REPLY,
            line,
            src=origin.src,
            dest=self.node_id,
            requester=origin.requester,
            version=version,
            dirty=dirty,
            found=found,
        )
        reply.probe_kind = probe_kind
        if self._sleep_from:
            self.mc_wake()
        self.probe_replies.append(reply)
        self._n_input += 1

    def _apply_reply(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype is MsgType.DATA_SHARED:
            self.hierarchy.refill(msg.addr, writable=False, version=msg.version,
                                  acks=msg.acks, dirty=False)
        elif mtype is MsgType.DATA_EXCL:
            self.hierarchy.refill(msg.addr, writable=True, version=msg.version,
                                  acks=msg.acks, dirty=msg.dirty)
        elif mtype is MsgType.UPGRADE_ACK:
            self.hierarchy.upgrade_ack(msg.addr, msg.acks)
        elif mtype is MsgType.INV_ACK:
            self.hierarchy.inval_ack(msg.addr)
        elif mtype is MsgType.WB_ACK:
            self.hierarchy.wb_ack(msg.addr)
        elif mtype is MsgType.AM_REPLY:
            waiters = self._am_pending.get(msg.addr)
            if not waiters:
                raise ProtocolError(
                    f"node {self.node_id}: AM reply {msg.addr:#x} with no waiter"
                )
            waiters.pop(0)(msg.version)
            if not waiters:
                del self._am_pending[msg.addr]
        elif mtype is MsgType.NACK:
            self._resend(msg.addr, as_getx=False)
        elif mtype is MsgType.NACK_UPGRADE:
            self._resend(msg.addr, as_getx=True)
        else:
            raise ValueError(f"not a reply: {msg}")

    def _resend(self, line_addr: int, as_getx: bool) -> None:
        entry = self.hierarchy.mshrs.get(line_addr)
        if entry is None:
            return  # transaction already completed (stale NACK)
        retries = self.hierarchy.record_retry(line_addr)
        self.stats.protocol.retries += 1
        if as_getx:
            entry.request_upgrade = False
        if entry.request_upgrade:
            mtype = MsgType.UPGRADE
        elif entry.kind in (MissKind.WRITE, MissKind.PREFETCH_EX):
            mtype = MsgType.GETX
        else:
            mtype = MsgType.GET
        home = self.layout.home_of(line_addr)
        msg = Message(mtype, line_addr, src=self.node_id, dest=home,
                      requester=self.node_id)
        backoff = RETRY_BASE + min(retries, 8) * RETRY_STEP
        if home == self.node_id:
            self.wheel.schedule(backoff, partial(self._enqueue_local, msg))
        else:
            self.wheel.schedule(backoff, partial(self._send_retry, msg))

    def _send_retry(self, msg: Message) -> None:
        self.stats.messages_out += 1
        self.send_to_network(msg)
