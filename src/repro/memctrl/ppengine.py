"""The embedded dual-issue protocol processor (Base / Int* models).

Executes the same handler programs as the SMTp protocol thread, but on
a simple in-order dual-issue engine clocked at the memory controller
frequency, with a direct-mapped directory data cache and a 32 KB
direct-mapped protocol instruction cache (paper §3).

Timing model (per handler dispatch):

* 2 MC cycles of dispatch overhead,
* ALU/branch instructions issue two per cycle; a taken branch ends its
  issue pair and costs one refetch cycle,
* LD/ST occupy one cycle on a directory-cache hit and stall for the
  SDRAM access on a miss,
* protocol I-cache misses stall for the SDRAM access (once per 64-byte
  code line),
* uncached operations issue one per cycle; their effects fire at their
  issue time through :meth:`MemoryController.uncached_op`.

The engine is busy from dispatch until the handler's LDCTXT; Table 7's
protocol occupancy is exactly this busy time.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Dict

from repro.common.errors import ProtocolError
from repro.common.params import MachineParams
from repro.common.stats import NodeStats
from repro.memctrl.dircache import DirectMappedCache, make_directory_cache
from repro.memctrl.dispatch import HandlerContext
from repro.protocol import compile as pcompile
from repro.protocol import semantics
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import boot_registers
from repro.protocol.isa import ADDR, HDR, POp

if TYPE_CHECKING:
    from repro.memctrl.controller import MemoryController

DISPATCH_MC_CYCLES = 2
MAX_HANDLER_STEPS = 10_000


class PPEngine:
    def __init__(
        self,
        node_id: int,
        mp: MachineParams,
        mc: "MemoryController",  # circular: installed as mc.engine
        layout: DirectoryLayout,
        pmem: Dict[int, int],
        stats: NodeStats,
    ) -> None:
        self.node_id = node_id
        self.mp = mp
        self.mc = mc
        self.pmem = pmem
        self.stats = stats
        self.regs = boot_registers(layout, node_id)
        self.dir_cache = make_directory_cache(mp.dir_cache)
        self.picache = DirectMappedCache(mp.protocol_icache_bytes, line_bytes=64)
        self.mc_divisor = mp.mc_divisor
        self.sdram_mc_cycles = max(1, mp.sdram_access_cycles // self.mc_divisor)
        self._busy_until = 0
        # Compiled threaded-code execution (bit-identical to _execute);
        # REPRO_INTERP=1 keeps the interpreter (read at build time,
        # like Machine's REPRO_DENSE_STEP).
        self._use_compiled = not pcompile.interp_forced()
        self._ppstate = pcompile.PPState()
        st = self._ppstate
        st.regs = self.regs
        st.pmem = pmem
        st.dcache = self.dir_cache
        st.picache = self.picache
        st.sdram = self.sdram_mc_cycles
        st.mc = mc
        st.mcdiv = self.mc_divisor
        st.wheel = mc.wheel

    # -- engine interface -------------------------------------------------
    def can_accept(self) -> bool:
        return self.mc.wheel.now >= self._busy_until

    def ready_cycle(self) -> int:
        """Cycle from which :meth:`can_accept` holds (timed sleep)."""
        return self._busy_until

    def idle(self) -> bool:
        return self.can_accept()

    def dispatch(self, ctx: HandlerContext) -> None:
        now = self.mc.wheel.now
        self.regs[HDR] = ctx.header
        self.regs[ADDR] = ctx.msg.addr
        if self._use_compiled:
            mc_cycles = self._execute_compiled(ctx)
        else:
            mc_cycles = self._execute(ctx)
        busy = mc_cycles * self.mc_divisor
        self._busy_until = now + busy
        self.stats.protocol.busy_cycles += busy

    def _execute_compiled(self, ctx: HandlerContext) -> int:
        """Trampoline over the handler's compiled PP program.

        Cycle accounting, cache touch order, uncached-op scheduling and
        stats totals are bit-identical to :meth:`_execute`; per-
        instruction counters accumulate on the state object and flush
        in one step (also on the TRAP path, so aborted dispatches
        report the same partial counts as the interpreter)."""
        st = self._ppstate
        st.ctx = ctx
        st.now = st.wheel.now
        st.t = DISPATCH_MC_CYCLES
        st.slot = 0
        st.seen = set()
        st.phits = 0
        st.pmiss = 0
        st.dhits = 0
        st.dmiss = 0
        st.branches = 0
        step = pcompile.compiled_for(ctx.handler).pp_entry
        n = 0
        p = self.stats.protocol
        try:
            while step is not None:
                if n >= MAX_HANDLER_STEPS:
                    raise ProtocolError(
                        f"node {self.node_id}: handler {ctx.handler.name} "
                        f"exceeded {MAX_HANDLER_STEPS} steps"
                    )
                n += 1
                step = step(st)
        finally:
            p.instructions += n
            p.picache_hits += st.phits
            p.picache_misses += st.pmiss
            p.dir_cache_hits += st.dhits
            p.dir_cache_misses += st.dmiss
            p.branches += st.branches
        return st.t

    # -- execution ----------------------------------------------------------
    def _execute(self, ctx: HandlerContext) -> int:
        """Walk the handler functionally, accumulating MC cycles."""
        handler = ctx.handler
        now = self.mc.wheel.now
        t = DISPATCH_MC_CYCLES
        slot = 0  # dual-issue pairing within the current cycle
        index = 0
        seen_code_lines = set()
        for _ in range(MAX_HANDLER_STEPS):
            instr = handler.instrs[index]
            code_line = handler.pc_of(index) >> 6
            if code_line not in seen_code_lines:
                seen_code_lines.add(code_line)
                if self.picache.access(code_line << 6):
                    self.stats.protocol.picache_hits += 1
                else:
                    self.stats.protocol.picache_misses += 1
                    t += self.sdram_mc_cycles
                    slot = 0
            self.stats.protocol.instructions += 1
            op = instr.op
            if op in (POp.SWITCH, POp.LDCTXT):
                t += 1
                slot = 0
                if op is POp.LDCTXT:
                    return t
                index += 1
                continue
            result = semantics.step(
                instr, index, self.regs, lambda a: self.pmem.get(a, 0)
            )
            if instr.is_memory:
                addr = result.mem_addr
                assert addr is not None  # LD/ST always resolve one
                slot = 0
                if self.dir_cache.access(addr):
                    self.stats.protocol.dir_cache_hits += 1
                    t += 1
                else:
                    self.stats.protocol.dir_cache_misses += 1
                    t += self.sdram_mc_cycles
                if result.is_store:
                    self.pmem[addr] = result.value
                else:
                    dest = result.dest
                    assert dest is not None  # LD always carries rd
                    self.regs[dest] = result.value
            elif result.uncached:
                t += 1
                slot = 0
                self.mc.wheel.schedule_at(
                    max(now, now + t * self.mc_divisor),
                    partial(self.mc.uncached_op, ctx, instr, result.value),
                )
            elif instr.is_branch:
                self.stats.protocol.branches += 1
                slot = 0
                t += 2 if result.taken else 1
            else:
                # Plain ALU: two per cycle.
                if slot == 0:
                    t += 1
                    slot = 1
                else:
                    slot = 0
                if result.dest is not None and result.dest != 0:
                    self.regs[result.dest] = result.value
            index = result.next_index
        raise ProtocolError(
            f"node {self.node_id}: handler {handler.name} exceeded "
            f"{MAX_HANDLER_STEPS} steps"
        )
