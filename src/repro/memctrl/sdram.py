"""SDRAM timing model (Table 3: 80 ns access, 3.2 GB/s, 16-entry queue).

A single-resource occupancy model: each line access holds the SDRAM
data bus for the line-transfer time, and the requester sees data after
the access latency measured from when the bus accepted the request.
All times are in *processor* cycles; the memory controller converts.
"""

from __future__ import annotations

from repro.common.params import MachineParams
from repro.common.stats import NodeStats


class SDRAM:
    def __init__(self, mp: MachineParams, stats: NodeStats) -> None:
        self.access_cycles = mp.sdram_access_cycles
        self.occupancy_cycles = mp.sdram_line_cycles
        self.queue_capacity = mp.mem.sdram_queue
        self.stats = stats
        self._free_at = 0

    def queue_depth(self, now: int) -> int:
        """Approximate queued accesses implied by the busy horizon."""
        backlog = max(0, self._free_at - now)
        return backlog // self.occupancy_cycles

    def access(self, now: int) -> int:
        """Issue a line access at ``now``; returns data-ready cycle."""
        start = max(now, self._free_at)
        self._free_at = start + self.occupancy_cycles
        self.stats.sdram_accesses += 1
        self.stats.sdram_busy_cycles += self.occupancy_cycles
        return start + self.access_cycles
