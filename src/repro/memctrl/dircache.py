"""Directory data cache and protocol instruction cache for the
embedded protocol-processor machine models (Table 4).

``Base``, ``Int512KB`` and ``Int64KB`` give their protocol processor a
direct-mapped directory data cache (512 KB or 64 KB); ``IntPerfect``
uses a perfect one.  All four share a fixed 32 KB direct-mapped
protocol instruction cache.  SMTp has neither: its protocol thread
uses the regular L1/L2 hierarchy.

These are timing-only structures — directory *values* live in the
node's protocol memory.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.common.params import PERFECT


class DirectMappedCache:
    """Tag-only direct-mapped cache with power-of-two geometry."""

    def __init__(self, size_bytes: int, line_bytes: int = 64) -> None:
        self.line_shift = line_bytes.bit_length() - 1
        self.n_lines = max(1, size_bytes // line_bytes)
        self._tags: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch ``addr``; True on hit (miss allocates)."""
        line = addr >> self.line_shift
        index = line % self.n_lines
        if self._tags.get(index) == line:
            self.hits += 1
            return True
        self.misses += 1
        self._tags[index] = line
        return False


class PerfectCache:
    """Always hits (IntPerfect's directory data cache)."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        self.hits += 1
        return True


#: Either timing model satisfies the ``access(addr) -> bool`` shape
#: the protocol-processor engine drives.
DirectoryCache = Union[DirectMappedCache, PerfectCache]


def make_directory_cache(spec: object) -> DirectoryCache:
    """Build the directory data cache from a Table 4 spec value.

    ``spec`` is a byte size, :data:`repro.common.params.PERFECT`, or
    None (SMTp: no directory cache — callers must not ask for one).
    """
    if spec == PERFECT:
        return PerfectCache()
    if isinstance(spec, int):
        return DirectMappedCache(spec)
    raise ValueError(f"no directory cache for spec {spec!r}")
