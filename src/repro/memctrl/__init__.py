"""Memory controller: SDRAM, directory caches, handler dispatch, the
controller proper, and the embedded protocol processor."""

from repro.memctrl.controller import MemoryController
from repro.memctrl.dircache import DirectMappedCache, PerfectCache, make_directory_cache
from repro.memctrl.dispatch import HandlerContext, handler_name_for
from repro.memctrl.ppengine import PPEngine
from repro.memctrl.sdram import SDRAM

__all__ = [
    "DirectMappedCache",
    "HandlerContext",
    "MemoryController",
    "PPEngine",
    "PerfectCache",
    "SDRAM",
    "handler_name_for",
    "make_directory_cache",
]
