"""Branch prediction hardware: 21264-style tournament predictor, BTB,
and per-thread return address stacks with mis-speculation repair.

Per the paper (§3): each thread has a private local-history table,
global path history, and choice history; the local and global pattern
(saturating-counter) tables are shared between threads.  The global
path history is not updated speculatively — it is updated at branch
resolution.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


def _sat_inc(v: int, max_v: int = 3) -> int:
    return v + 1 if v < max_v else v


def _sat_dec(v: int) -> int:
    return v - 1 if v > 0 else v


class TournamentPredictor:
    def __init__(
        self,
        n_threads: int,
        local_history_bits: int = 10,
        global_history_bits: int = 12,
    ) -> None:
        self.n_threads = n_threads
        self.local_bits = local_history_bits
        self.global_bits = global_history_bits
        local_entries = 1 << local_history_bits
        # Private per-thread local histories; shared pattern tables.
        self._local_history: List[List[int]] = [
            [0] * 1024 for _ in range(n_threads)
        ]
        self._local_pht = [1] * local_entries  # 2-bit counters
        self._global_pht = [1] * (1 << global_history_bits)
        self._choice_pht = [1] * (1 << global_history_bits)
        self._global_history = [0] * n_threads

    def _indices(self, thread: int, pc: int) -> Tuple[int, int, int]:
        local_slot = (pc >> 2) & 1023
        local_index = self._local_history[thread][local_slot] & (
            (1 << self.local_bits) - 1
        )
        ghist = self._global_history[thread]
        global_index = (ghist ^ (pc >> 2)) & ((1 << self.global_bits) - 1)
        return local_slot, local_index, global_index

    def predict(self, thread: int, pc: int) -> bool:
        _, local_index, global_index = self._indices(thread, pc)
        local_pred = self._local_pht[local_index] >= 2
        global_pred = self._global_pht[global_index] >= 2
        use_global = self._choice_pht[global_index] >= 2
        return global_pred if use_global else local_pred

    def update(self, thread: int, pc: int, taken: bool) -> None:
        """Resolve a branch: train tables and shift histories."""
        local_slot, local_index, global_index = self._indices(thread, pc)
        local_pred = self._local_pht[local_index] >= 2
        global_pred = self._global_pht[global_index] >= 2
        if local_pred != global_pred:
            # Train the chooser toward whichever component was right.
            if global_pred == taken:
                self._choice_pht[global_index] = _sat_inc(
                    self._choice_pht[global_index]
                )
            else:
                self._choice_pht[global_index] = _sat_dec(
                    self._choice_pht[global_index]
                )
        if taken:
            self._local_pht[local_index] = _sat_inc(self._local_pht[local_index])
            self._global_pht[global_index] = _sat_inc(self._global_pht[global_index])
        else:
            self._local_pht[local_index] = _sat_dec(self._local_pht[local_index])
            self._global_pht[global_index] = _sat_dec(self._global_pht[global_index])
        hist = self._local_history[thread]
        hist[local_slot] = ((hist[local_slot] << 1) | int(taken)) & (
            (1 << self.local_bits) - 1
        )
        self._global_history[thread] = (
            (self._global_history[thread] << 1) | int(taken)
        ) & ((1 << self.global_bits) - 1)


class BTB:
    """Set-associative branch target buffer (256 sets, 4-way)."""

    def __init__(self, sets: int = 256, assoc: int = 4) -> None:
        self.sets = sets
        self.assoc = assoc
        self._entries: List[List[Tuple[int, int]]] = [[] for _ in range(sets)]

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.sets

    def lookup(self, pc: int) -> Optional[int]:
        ways = self._entries[self._index(pc)]
        for i, (tag, target) in enumerate(ways):
            if tag == pc:
                ways.insert(0, ways.pop(i))  # MRU
                return target
        return None

    def install(self, pc: int, target: int) -> None:
        ways = self._entries[self._index(pc)]
        for i, (tag, _) in enumerate(ways):
            if tag == pc:
                ways[i] = (pc, target)
                ways.insert(0, ways.pop(i))
                return
        ways.insert(0, (pc, target))
        if len(ways) > self.assoc:
            ways.pop()


class ReturnAddressStack:
    """Per-thread RAS with top-of-stack repair (paper cites [37])."""

    def __init__(self, entries: int = 32) -> None:
        self.entries = entries
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.entries:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        return self._stack.pop() if self._stack else None

    def snapshot(self) -> Tuple[int, Optional[int]]:
        """Checkpoint: top index and its value (cheap repair state)."""
        top = self._stack[-1] if self._stack else None
        return len(self._stack), top

    def repair(self, snap: Tuple[int, Optional[int]]) -> None:
        depth, top = snap
        del self._stack[depth:]
        while len(self._stack) < depth:
            self._stack.append(0)
        if top is not None and self._stack:
            self._stack[-1] = top
