"""The out-of-order SMT core.

Nine logical stages (fetch, decode, rename, issue, two register-read
stages, execute, cache access, commit) modelled as four simulation
stages with queue latencies in between; the front-end depth shows up
in the mispredict redirect penalty and in issue-to-complete latencies.

SMT mechanics per the paper:

* ICOUNT(2,8) fetch: the two least-occupying threads share an 8-wide
  fetch, first thread until a predicted-taken branch.
* Dynamically shared decode/rename queues, IQ, LSQ, store buffer,
  MSHRs and physical registers, with one reserved instance of each for
  the protocol thread (deadlock avoidance, §2.2).
* Round-robin commit within and across cycles.
* Per-thread active lists (128 entries).
* The protocol thread's uncached operations execute non-speculatively
  at graduation; SWITCH stalls at the head until the dispatch unit
  supplies the next request.

Trace-driven speculation: sources supply oracle outcomes, the
predictor supplies guesses; on a mispredict the thread fetches
synthetic wrong-path µops that consume real resources until the branch
resolves, at which point the thread's younger µops are squashed and
the map/RAS checkpoints restored.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.caches.hierarchy import BLOCKED, HIT, MISS
from repro.common.params import ProcessorParams
from repro.common.queues import DualQueue, ReservedPool
from repro.common.stats import ThreadStats
from repro.isa.uop import Uop, UopKind
from repro.pipeline.branch import BTB, ReturnAddressStack, TournamentPredictor
from repro.pipeline.regfile import RenameUnit
from repro.protocol.extensions import AM_OPS

#: Extra cycles from issue to execute (the two register-read stages).
READ_STAGES = 2
#: Synthetic wrong-path µop cap per mispredict (resource back-pressure
#: throttles well before this).
WRONG_PATH_CAP = 64

_EXEC_LATENCY = {
    UopKind.ALU: 1,
    UopKind.SYNTH: 1,
    UopKind.NOP: 1,
    UopKind.MUL: 6,
    UopKind.DIV: 35,
    UopKind.FALU: 1,
    UopKind.FDIV: 19,
    UopKind.BRANCH: 1,
    UopKind.CALL: 1,
    UopKind.RETURN: 1,
}


class ThreadContext:
    """Per-hardware-context front-end and window state."""

    __slots__ = (
        "tid",
        "source",
        "protocol",
        "rob",
        "icount",
        "fetch_stalled",
        "cur_fetch_line",
        "wrongpath_branch",
        "wp_emitted",
        "wp_pc",
        "mem_seq_next",
        "mem_issue_next",
        "ras",
        "stats",
        "done",
    )

    def __init__(self, tid: int, source, protocol: bool, stats: ThreadStats) -> None:
        self.tid = tid
        self.source = source
        self.protocol = protocol
        self.rob: Deque[Uop] = deque()
        self.icount = 0
        self.fetch_stalled = False
        self.cur_fetch_line = -1
        self.wrongpath_branch: Optional[Uop] = None
        self.wp_emitted = 0
        self.wp_pc = 0
        self.mem_seq_next = 0
        self.mem_issue_next = 0
        self.ras = ReturnAddressStack()
        self.stats = stats
        self.done = False


class SMTCore:
    def __init__(self, node, sources: List, proto_source=None) -> None:
        """``sources`` are the application thread programs; the optional
        ``proto_source`` is the protocol-thread shadow interpreter."""
        self.node = node
        self.pp: ProcessorParams = node.mp.proc
        self.hierarchy = node.hierarchy
        self.wheel = node.wheel
        self.machine = None  # set by the machine for progress notes

        pp = self.pp
        self.rename = RenameUnit(pp)
        self.predictor = TournamentPredictor(
            pp.total_threads, pp.local_history_bits, pp.global_history_bits
        )
        self.btb = BTB(pp.btb_sets, pp.btb_assoc)

        res = pp.protocol_thread
        self.decode_q: DualQueue[Uop] = DualQueue(
            "decode", pp.decode_queue_slots, pp.reserved_decode_slots if res else 0
        )
        self.rename_q: DualQueue[Uop] = DualQueue(
            "rename", pp.rename_queue_slots, pp.reserved_rename_slots if res else 0
        )
        self.iq_pool = ReservedPool(
            "iq", pp.int_queue, pp.reserved_int_queue if res else 0
        )
        self.fq_pool = ReservedPool("fq", pp.fp_queue, 0)
        self.lsq_pool = ReservedPool(
            "lsq", pp.lsq_slots, pp.reserved_lsq_slots if res else 0
        )
        self.sb_pool = ReservedPool(
            "sb", pp.store_buffer, pp.reserved_store_buffer if res else 0
        )
        self.bstack_pool = ReservedPool(
            "bstack", pp.branch_stack, pp.reserved_branch_stack if res else 0
        )
        self.iq: List[Uop] = []
        self.fq: List[Uop] = []

        self.threads: List[ThreadContext] = []
        for tid, source in enumerate(sources):
            tstats = ThreadStats(node=node.node_id, context=tid)
            node.stats.threads.append(tstats)
            self.threads.append(ThreadContext(tid, source, False, tstats))
        self.proto_tid = -1
        if proto_source is not None:
            tid = len(self.threads)
            self.proto_tid = tid
            tstats = ThreadStats(node=node.node_id, context=tid)
            self.threads.append(ThreadContext(tid, proto_source, True, tstats))

        self._seq = 0
        self._rr = 0
        self.cycle = 0
        self.div_free_at = 0
        self.fdiv_free_at = 0
        # Activity contract (see DESIGN.md): ``_worked`` records whether
        # the last step changed any state that per-cycle polling could
        # not replay analytically; ``_wake_flag`` is set by asynchronous
        # completion paths (wheel callbacks, MC dispatch, MSHR frees) to
        # force the next step to run densely; ``_unit_wake`` is the
        # earliest cycle a busy div/fdiv unit frees while gating an
        # otherwise-ready µop (a timed sleep).
        self._worked = True
        self._wake_flag = True
        self._unit_wake = 0
        # Cached idle fixup (see fast_forward); invalidated by any step.
        self._ff_plan: Optional[list] = None
        # First skipped cycle of the current sleep period.  While
        # ``_ff_plan`` is pinned the owed fixup count is just
        # ``wheel.now - _ff_anchor`` (the plan is constant per sleep
        # period), so the event loop does no per-cycle bookkeeping at
        # all for a sleeping core (see flush_idle_fixup).
        self._ff_anchor = 0
        self._done_sticky = False
        # Wrong-path filler templates, keyed (tid, dest) — see
        # _make_synth.
        self._synth_tmpl: Dict[Tuple[int, int], Uop] = {}
        # Same-thread store->load forwarding values (word granularity).
        self._pending_stores: Dict[Tuple[int, int], List[int]] = {}
        # Per-thread store-buffer FIFO: stores drain strictly in program
        # order (the paper's processor is sequentially consistent).
        self._sb_fifo: Dict[int, Deque[Uop]] = {
            t.tid: deque() for t in self.threads
        }

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        # Thread completion is monotone (ThreadContext.done is only
        # ever set True, in _commit), so the all-done answer is sticky
        # and the per-call thread walk can stop after the first True.
        if self._done_sticky:
            return True
        for t in self.threads:
            if not t.protocol and not t.done:
                return False
        self._done_sticky = True
        return True

    def protocol_quiescent(self) -> bool:
        """True when the protocol thread has no effects left to apply —
        at most a SWITCH/LDCTXT pair stalled waiting for traffic."""
        if self.proto_tid < 0:
            return True
        t = self.threads[self.proto_tid]
        if t.source.fetching or t.source._buffer:
            return False
        return all(
            u.kind in (UopKind.SWITCH, UopKind.LDCTXT) for u in t.rob
        )

    def describe_state(self) -> str:
        parts = []
        for t in self.threads:
            head = t.rob[0] if t.rob else None
            parts.append(
                f"t{t.tid}{'p' if t.protocol else ''}: rob={len(t.rob)} "
                f"ic={t.icount} head={head}"
            )
        return f"core {self.node.node_id}: " + " | ".join(parts)

    # ------------------------------------------------------------------
    def wake(self) -> None:
        """Asynchronous input state changed: step densely next cycle.

        Called by MSHR frees, bypass-buffer fills, thread-program sleep
        expiry, handler dispatch, and the core's own completion events.
        A spurious wake costs one dense no-op step and is always safe;
        a missed one is what the conservative ``_worked`` accounting in
        :meth:`step` guards against.
        """
        self._wake_flag = True

    def fast_forward(self, skipped: int) -> None:
        """Replay ``skipped`` idle steps' per-cycle side effects.

        Only valid when the previous step reported no work: with frozen
        inputs a dense step then mutates nothing but the stall-cycle
        and protocol-busy counters (linear in cycles), the commit
        round-robin pointer, and the decode/rename section-priority
        toggles — all replayed here in closed form.

        The counter targets are computed once per sleep period: port
        idleness and ROB-head retirability can only change through this
        core's own work or through an input change, and every input
        change fires :meth:`wake`, which forces a dense :meth:`step`
        (invalidating the cached plan) before the next fast-forward.
        """
        plan = self._ff_plan
        if plan is None:
            plan = self._ff_plan = self._build_ff_plan()
        for stats, attr in plan:
            setattr(stats, attr, getattr(stats, attr) + skipped)
        self._rr = (self._rr + skipped) % len(self.threads)
        if skipped & 1:
            self.decode_q._proto_first = not self.decode_q._proto_first
            self.rename_q._proto_first = not self.rename_q._proto_first

    def flush_idle_fixup(self, through: bool = False) -> None:
        """Apply the sleep period's batched idle-cycle fixups.

        The event loop does not call :meth:`fast_forward` once per
        skipped cycle; it pins ``_ff_plan`` and ``_ff_anchor`` at sleep
        start (when the inputs froze) and the owed count is derived
        from the clock here in one shot — immediately before the next
        dense step or a stats read.  Since the fixup is linear in
        cycles and the plan is constant for the whole sleep period, one
        n-cycle application is identical to n unit ones.

        ``through=False`` (a core about to step at ``wheel.now``): the
        core skipped ``[_ff_anchor, wheel.now - 1]``.  ``through=True``
        (an end-of-run or stats flush, no step at ``wheel.now``): the
        current cycle was skipped too.
        """
        if self._ff_plan is None:
            return
        pending = self.wheel.now - self._ff_anchor + (1 if through else 0)
        if pending > 0:
            self.fast_forward(pending)
            m = self.machine
            if m is not None:
                m.skipped_core_steps += pending
        self._ff_plan = None

    def _build_ff_plan(self) -> list:
        """The per-idle-cycle counter increments, as (object, attribute)
        pairs — frozen for the duration of one sleep period."""
        plan = []
        if self.proto_tid >= 0:
            port = self.threads[self.proto_tid].source.port
            if port is not None and not port.idle():
                plan.append((self.node.stats.protocol, "busy_cycles"))
        for t in self.threads:
            if t.rob and not self._retirable(t.rob[0]):
                if t.rob[0].is_memory:
                    plan.append((t.stats, "memory_stall_cycles"))
                else:
                    plan.append((t.stats, "other_stall_cycles"))
        return plan

    def _note_unit_wake(self, free_at: int) -> None:
        if self._unit_wake == 0 or free_at < self._unit_wake:
            self._unit_wake = free_at

    # ------------------------------------------------------------------
    def step(self) -> None:
        if self._ff_plan is not None:
            self.flush_idle_fixup()
        self.cycle = self.wheel.now
        self._worked = self._wake_flag
        self._wake_flag = False
        self._unit_wake = 0
        if self.proto_tid >= 0:
            port = self.threads[self.proto_tid].source.port
            if port is not None and not port.idle():
                # Table 7: the protocol thread is "active" while a
                # handler has effects in flight.  A SWITCH idling at
                # the head waiting for traffic does not count.
                self.node.stats.protocol.busy_cycles += 1
        self._commit()
        # Empty-stage guards: a skipped stage call must still advance
        # the section-priority parity its body would have toggled.
        if self.iq or self.fq:
            self._issue()
        rq = self.rename_q
        if rq.proto or rq.app:
            self._rename_stage()
        else:
            rq._proto_first = not rq._proto_first
        dq = self.decode_q
        if dq.proto or dq.app:
            self._decode_stage()
        else:
            dq._proto_first = not dq._proto_first
        self._fetch()

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _fetchable(self, t: ThreadContext) -> bool:
        if t.done or t.fetch_stalled:
            return False
        if t.wrongpath_branch is not None:
            return t.wp_emitted < WRONG_PATH_CAP
        return t.source.peek_available()

    def _fetch(self) -> None:
        # ICOUNT(2,8).  Threads whose decode-queue section is full are
        # not candidates (they would waste a fetch slot), and ICOUNT
        # ties break toward the protocol thread — together with the
        # reserved decode slot this guarantees the protocol thread is
        # never starved of fetch by stalled application threads.
        dq = self.decode_q
        occupancy = len(dq.app) + len(dq.proto)
        app_room = occupancy < dq.capacity - dq.reserved
        proto_room = occupancy < dq.capacity
        threads = self.threads
        if len(threads) == 1:
            # Single-thread cores (every non-SMTp model at ways=1):
            # ICOUNT selection degenerates to one candidate test.
            t = threads[0]
            if (proto_room if t.protocol else app_room) and self._fetchable(t):
                self._fetch_thread(t, self.pp.fetch_width)
            return
        fetchable = self._fetchable
        candidates = [
            t
            for t in threads
            if (proto_room if t.protocol else app_room) and fetchable(t)
        ]
        if not candidates:
            return
        if len(candidates) > 1:
            candidates.sort(key=lambda t: (t.icount, not t.protocol))
        budget = self.pp.fetch_width
        for t in candidates[: self.pp.fetch_threads_per_cycle]:
            if budget <= 0:
                break
            budget = self._fetch_thread(t, budget)

    def _fetch_thread(self, t: ThreadContext, budget: int) -> int:
        while budget > 0:
            if not self.decode_q.can_push(t.protocol):
                break
            if t.wrongpath_branch is not None:
                if t.wp_emitted >= WRONG_PATH_CAP:
                    break
                uop = self._make_synth(t)
            else:
                uop = t.source.next_uop()
                if uop is None:
                    break
                if not self._icache_ok(t, uop):
                    # I-miss: the µop stays un-consumed? No — sources
                    # hand out µops destructively, so probe first.
                    # (_icache_ok fetches the line; on a miss it stalls
                    # the thread and we re-buffer the µop.)
                    self._worked = True  # the probe recorded I-side stats
                    t.source.push_back(uop)
                    break
            self._worked = True
            self._seq += 1
            uop.seq = self._seq
            budget -= 1
            t.icount += 1
            taken_redirect = False
            if uop.is_branch:
                taken_redirect = self._predict(t, uop)
            self.decode_q.push(uop, t.protocol)
            if uop.kind is UopKind.LDCTXT:
                break  # handler fetch complete; PPCV cleared by source
            if uop.mispredicted and t.wrongpath_branch is None:
                t.wrongpath_branch = uop
                t.wp_emitted = 0
                t.wp_pc = uop.pc + 4
                break
            if taken_redirect:
                break  # fetch run ends at a predicted-taken branch
        return budget

    def _icache_ok(self, t: ThreadContext, uop: Uop) -> bool:
        line = uop.pc >> 6
        if line == t.cur_fetch_line:
            return True
        result = self.hierarchy.ifetch(
            uop.pc, t.protocol, on_complete=partial(self._ifill_done, t)
        )
        if result[0] == HIT:
            t.cur_fetch_line = line
            return True
        t.fetch_stalled = True
        return False

    def _ifill_done(self, t: ThreadContext) -> None:
        t.fetch_stalled = False
        t.cur_fetch_line = -1
        self.wake()

    def _make_synth(self, t: ThreadContext) -> Uop:
        t.wp_emitted += 1
        t.wp_pc += 4
        # Wrong-path filler: integer ops chained through a rotating
        # logical register window, consuming rename/IQ resources.  The
        # window has 8 shapes per thread (src is a function of dest),
        # so filler µops clone from a tiny template cache.
        dest = 8 + (t.wp_emitted % 8)
        key = (t.tid, dest)
        tmpl = self._synth_tmpl.get(key)
        if tmpl is None:
            src = 8 + ((t.wp_emitted - 1) % 8)
            tmpl = self._synth_tmpl[key] = Uop(
                UopKind.SYNTH, t.tid, srcs=(src,), dest=dest,
                protocol=t.protocol,
            )
        uop = tmpl.clone()
        uop.pc = t.wp_pc
        return uop

    def _predict(self, t: ThreadContext, uop: Uop) -> bool:
        """Predict a branch; returns True when fetch redirects (predicted
        taken).  Sets ``uop.mispredicted`` from the oracle outcome."""
        t.stats.branches += 1
        if t.protocol:
            self.node.stats.protocol.branches += 1
        if uop.kind is UopKind.CALL:
            t.ras.push(uop.pc + 4)
            predicted_taken = True
            target_ok = True
        elif uop.kind is UopKind.RETURN:
            predicted = t.ras.pop()
            predicted_taken = True
            target_ok = predicted == uop.target_pc
        else:
            predicted_taken = self.predictor.predict(t.tid, uop.pc)
            if predicted_taken and self.btb.lookup(uop.pc) is None:
                predicted_taken = False  # no target available
            target_ok = True
        uop.predicted_taken = predicted_taken
        uop.mispredicted = (predicted_taken != uop.taken) or (
            uop.taken and not target_ok
        )
        if uop.taken:
            self.btb.install(uop.pc, uop.target_pc)
        if uop.mispredicted:
            t.stats.mispredicts += 1
            if t.protocol:
                self.node.stats.protocol.mispredicts += 1
        return predicted_taken and not uop.mispredicted

    # ------------------------------------------------------------------
    # Decode and rename
    # ------------------------------------------------------------------

    def _decode_stage(self) -> None:
        dq = self.decode_q
        first_proto = dq._proto_first
        dq._proto_first = not first_proto
        if not dq.proto and not dq.app:
            return  # empty stage: only the priority parity advances
        moved = 0
        sections = (True, False) if first_proto else (False, True)
        for protocol in sections:
            src = dq.proto if protocol else dq.app
            while src and moved < self.pp.front_end_width:
                if not self.rename_q.can_push(protocol):
                    break
                self.rename_q.push(src.popleft(), protocol)
                moved += 1
        if moved:
            self._worked = True

    def _rename_stage(self) -> None:
        rq = self.rename_q
        first_proto = rq._proto_first
        rq._proto_first = not first_proto
        if not rq.proto and not rq.app:
            return  # empty stage: only the priority parity advances
        renamed = 0
        sections = (True, False) if first_proto else (False, True)
        for protocol in sections:
            src = rq.proto if protocol else rq.app
            while src and renamed < self.pp.front_end_width:
                if not self._try_rename(src[0]):
                    break
                src.popleft()
                renamed += 1
        if renamed:
            self._worked = True

    def _try_rename(self, uop: Uop) -> bool:
        t = self.threads[uop.thread]
        if len(t.rob) >= self.pp.active_list_per_thread:
            return False
        if not self.rename.can_rename(uop):
            return False
        protocol = uop.protocol
        needs_iq = not uop.commit_stage
        pool = self.fq_pool if uop.is_fp else self.iq_pool
        if needs_iq and not pool.can_acquire(protocol):
            return False
        # SWITCH/LDCTXT are uncached loads: they hold LSQ slots until
        # they graduate (the paper's "switch stalls the head of the
        # load/store queue").
        needs_lsq = uop.is_memory or uop.kind in (UopKind.SWITCH, UopKind.LDCTXT)
        if needs_lsq and not self.lsq_pool.can_acquire(protocol):
            return False
        if uop.is_branch and not self.bstack_pool.can_acquire(protocol):
            return False

        if uop.is_branch:
            self.bstack_pool.acquire(protocol)
            uop.checkpoint = self.rename.checkpoint(uop.thread, t.ras.snapshot())
        if needs_lsq:
            self.lsq_pool.acquire(protocol)
            uop.in_lsq = True
            if uop.is_memory and uop.kind is not UopKind.PREFETCH:
                uop.mem_seq = t.mem_seq_next
                t.mem_seq_next += 1
        self.rename.rename(uop)
        t.rob.append(uop)
        if needs_iq:
            pool.acquire(protocol)
            (self.fq if uop.is_fp else self.iq).append(uop)
        # Table 9 peaks are tracked by the pools / rename unit.
        return True

    # ------------------------------------------------------------------
    # Issue and execute
    # ------------------------------------------------------------------

    def _issue(self) -> None:
        alu = 6
        agu = 1
        fpu = 3
        if self.iq:
            threads = self.threads
            kept: List[Uop] = []
            keep = kept.append
            for uop in self.iq:
                if uop.squashed:
                    continue
                if alu <= 0 and agu <= 0:
                    keep(uop)
                    continue
                issued = False
                if uop.is_memory:
                    if agu > 0 and not uop.n_wait and self._can_issue_mem(uop):
                        # Even a BLOCKED attempt records hierarchy stats,
                        # so an issuable memory µop keeps the core awake.
                        self._worked = True
                        issued = self._issue_mem(uop)
                        if issued:
                            agu -= 1
                else:
                    if alu > 0 and not uop.n_wait:
                        if uop.kind is UopKind.DIV:
                            if self.div_free_at > self.cycle:
                                keep(uop)
                                self._note_unit_wake(self.div_free_at)
                                continue
                            self.div_free_at = self.cycle + self.pp.int_div_latency
                        issued = True
                        alu -= 1
                        self._schedule_complete(uop, self._latency_of(uop))
                if issued:
                    self._worked = True
                    uop.issued = True
                    threads[uop.thread].icount -= 1
                    self.iq_pool.release(uop.protocol)
                else:
                    keep(uop)
            self.iq = kept
        if self.fq:
            kept = []
            keep = kept.append
            for uop in self.fq:
                if uop.squashed:
                    continue
                if fpu > 0 and not uop.n_wait:
                    if uop.kind is UopKind.FDIV:
                        if self.fdiv_free_at > self.cycle:
                            keep(uop)
                            self._note_unit_wake(self.fdiv_free_at)
                            continue
                        self.fdiv_free_at = self.cycle + self.pp.fp_div_dp_latency
                    fpu -= 1
                    self._worked = True
                    uop.issued = True
                    self.threads[uop.thread].icount -= 1
                    self.fq_pool.release(uop.protocol)
                    self._schedule_complete(uop, self._latency_of(uop))
                else:
                    keep(uop)
            self.fq = kept

    def _latency_of(self, uop: Uop) -> int:
        base = _EXEC_LATENCY.get(uop.kind, uop.latency)
        if uop.latency > 1 and uop.kind is UopKind.ALU:
            base = uop.latency  # e.g. slow POPC/CTZ ablation
        return READ_STAGES + base

    def _can_issue_mem(self, uop: Uop) -> bool:
        t = self.threads[uop.thread]
        if uop.kind is UopKind.PREFETCH:
            return True
        if uop.mem_seq != t.mem_issue_next:
            return False
        if uop.kind is UopKind.ATOMIC:
            # Non-speculative and SC-ordered: all older instructions
            # retired and all older stores globally performed.
            return bool(t.rob) and t.rob[0] is uop and not self._sb_fifo[t.tid]
        return True

    def _issue_mem(self, uop: Uop) -> bool:
        t = self.threads[uop.thread]
        if uop.kind is UopKind.PREFETCH:
            self.hierarchy.prefetch(uop.addr, uop.exclusive)
            t.stats.prefetches += 1
            self._schedule_complete(uop, READ_STAGES + 1)
            return True
        if uop.kind is UopKind.STORE:
            # Address resolution only; data goes to memory post-commit.
            word = uop.addr & ~7
            self._pending_stores.setdefault((uop.thread, word), []).append(
                uop.value if uop.value is not None else 0
            )
            t.mem_issue_next += 1
            self._schedule_complete(uop, READ_STAGES + 1)
            return True
        if uop.kind is UopKind.ATOMIC:
            if uop.atomic_op in AM_OPS:
                # Active-memory extension: uncached remote op at home.
                self.node.mc.am_request(
                    uop.addr, AM_OPS[uop.atomic_op], uop.operand,
                    partial(self._mem_value_done, uop),
                )
                t.mem_issue_next += 1
                return True
            result = self.hierarchy.atomic(
                uop.addr, uop.atomic_op, uop.operand,
                on_complete=partial(self._mem_value_done, uop),
            )
            if result[0] == BLOCKED:
                return False
            t.mem_issue_next += 1
            if result[0] == HIT:
                uop.result_value = result[2]
                self._schedule_complete(uop, READ_STAGES + result[1], carry_value=True)
            return True
        # LOAD: same-thread store forwarding first.
        word = uop.addr & ~7
        pending = self._pending_stores.get((uop.thread, word))
        if pending:
            uop.result_value = pending[-1]
            t.mem_issue_next += 1
            self._schedule_complete(uop, READ_STAGES + 2, carry_value=True)
            return True
        result = self.hierarchy.load(
            uop.addr, uop.protocol,
            on_complete=partial(self._mem_value_done, uop),
        )
        if result[0] == BLOCKED:
            return False
        t.mem_issue_next += 1
        if result[0] == HIT:
            uop.result_value = result[2]
            self._schedule_complete(uop, READ_STAGES + result[1], carry_value=True)
        return True

    def _mem_value_done(self, uop: Uop, value: int) -> None:
        """A miss completed (callback from the memory system)."""
        uop.result_value = value
        self._complete(uop, carry_value=True)

    def _schedule_complete(self, uop: Uop, latency: int, carry_value: bool = False) -> None:
        self.wheel.schedule(
            max(1, latency), partial(self._complete, uop, carry_value)
        )

    def _complete(self, uop: Uop, carry_value: bool = False) -> None:
        self.wake()
        if uop.squashed or uop.completed:
            return
        uop.completed = True
        uop.complete_cycle = self.wheel.now
        if uop.pdest != -1:
            self.rename.mark_ready(uop.pdest)
        if uop.is_branch:
            self._resolve_branch(uop)
        if carry_value and uop.on_value is not None:
            uop.on_value(uop.result_value)

    # ------------------------------------------------------------------
    # Branch resolution and recovery
    # ------------------------------------------------------------------

    def _resolve_branch(self, uop: Uop) -> None:
        if uop.kind is UopKind.BRANCH:
            self.predictor.update(uop.thread, uop.pc, uop.taken)
        if not uop.mispredicted:
            return
        t = self.threads[uop.thread]
        squashed_any = False
        while t.rob and t.rob[-1] is not uop:
            victim = t.rob.pop()
            self._squash(victim)
            squashed_any = True
        # Front-end squash: wrong-path µops still sitting in the decode
        # or rename queues are flushed too (they own no registers or
        # window slots yet — only ICOUNT).
        for q in (self.decode_q, self.rename_q):
            section = q.proto if t.protocol else q.app
            for queued in list(section):
                if queued.thread == t.tid and queued.seq > uop.seq:
                    section.remove(queued)
                    queued.squashed = True
                    t.icount -= 1
                    t.stats.squashed += 1
                    if t.protocol:
                        self.node.stats.protocol.squashed += 1
                    squashed_any = True
        self.rename.restore(uop.checkpoint)
        t.ras.repair(uop.checkpoint.ras_snap)
        t.wrongpath_branch = None
        t.cur_fetch_line = -1  # refetch redirects the I-stream
        if squashed_any and t.protocol:
            self.node.stats.protocol.squash_cycles += 1

    def _squash(self, victim: Uop) -> None:
        victim.squashed = True
        t = self.threads[victim.thread]
        t.stats.squashed += 1
        if t.protocol:
            self.node.stats.protocol.squashed += 1
        if not victim.issued and not victim.commit_stage:
            t.icount -= 1
            pool = self.fq_pool if victim.is_fp else self.iq_pool
            pool.release(victim.protocol)
        elif victim.commit_stage:
            t.icount -= 1
        if victim.in_lsq:
            self.lsq_pool.release(victim.protocol)
            if victim.mem_seq >= 0:
                t.mem_seq_next = min(t.mem_seq_next, victim.mem_seq)
        if victim.is_branch:
            self.bstack_pool.release(victim.protocol)
        self.rename.squash_free(victim)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        # Memory-stall accounting (paper §4: per application thread).
        # The head-retirability scan doubles as the retire-loop gate:
        # _retirable is side-effect free, and stall counting mutates
        # nothing it reads, so "no head retirable here" still holds at
        # the retire loop — skipping it retires exactly what the full
        # scan would (nothing).
        threads = self.threads
        retirable = self._retirable
        any_ready = False
        for t in threads:
            if t.rob:
                head = t.rob[0]
                if retirable(head):
                    any_ready = True
                elif head.is_memory:
                    t.stats.memory_stall_cycles += 1
                else:
                    t.stats.other_stall_cycles += 1
        n = len(threads)
        committed_any = False
        if any_ready:
            budget = self.pp.commit_width
            for i in range(n):
                t = threads[(self._rr + i) % n]
                while budget > 0 and t.rob:
                    head = t.rob[0]
                    if not retirable(head):
                        break
                    self._retire(t, head)
                    t.rob.popleft()
                    budget -= 1
                    committed_any = True
                if budget <= 0:
                    break
        self._rr = (self._rr + 1) % n
        if committed_any:
            self._worked = True
            if self.machine is not None:
                self.machine.note_progress()
        for t in threads:
            if not t.protocol and not t.done:
                if t.source.done and not t.rob and t.icount == 0:
                    t.done = True
                    t.stats.finish_cycle = self.cycle
                    t.stats.done = True
                    self._worked = True

    def _retirable(self, uop: Uop) -> bool:
        if uop.commit_stage:
            if uop.kind in (UopKind.SWITCH, UopKind.LDCTXT):
                return uop.ctx is not None and self.threads[
                    uop.thread
                ].source.next_ctx_available(uop.ctx)
            return True  # UNCACHED executes right at retirement
        if uop.kind is UopKind.STORE:
            return uop.completed and self.sb_pool.can_acquire(uop.protocol)
        return uop.completed

    def _retire(self, t: ThreadContext, uop: Uop) -> None:
        if uop.commit_stage:
            t.icount -= 1  # commit-stage µops never joined the IQ
            if uop.kind is UopKind.UNCACHED:
                self.node.mc.uncached_op(uop.ctx, uop.pinstr, uop.value or 0)
            elif uop.kind is UopKind.LDCTXT:
                if uop.pdest != -1:
                    self.rename.mark_ready(uop.pdest)
                t.source.handler_committed(uop.ctx)
            else:  # SWITCH
                if uop.pdest != -1:
                    self.rename.mark_ready(uop.pdest)
        if uop.kind is UopKind.STORE:
            self.sb_pool.acquire(uop.protocol)
            fifo = self._sb_fifo[uop.thread]
            fifo.append(uop)
            if len(fifo) == 1:
                self._drain_store(uop)
        if uop.in_lsq:
            self.lsq_pool.release(uop.protocol)
        if uop.is_branch:
            self.bstack_pool.release(uop.protocol)
        self.rename.commit_free(uop)
        t.stats.committed += 1
        if t.protocol:
            self.node.stats.protocol.instructions += 1
        if uop.kind is UopKind.LOAD:
            t.stats.loads += 1
        elif uop.kind is UopKind.STORE:
            t.stats.stores += 1

    def _drain_store(self, uop: Uop) -> None:
        self.wake()
        result = self.hierarchy.store(
            uop.addr, uop.protocol, uop.value,
            on_complete=partial(self._store_drained, uop),
        )
        if result[0] == BLOCKED:
            self.wheel.schedule(2, partial(self._drain_store, uop))
            return
        if result[0] == HIT:
            self.wheel.schedule(result[1], partial(self._store_drained, uop))

    def _store_drained(self, uop: Uop, _value: Optional[int] = None) -> None:
        self.wake()
        self.sb_pool.release(uop.protocol)
        word = uop.addr & ~7
        pending = self._pending_stores.get((uop.thread, word))
        if pending:
            pending.pop(0)
            if not pending:
                del self._pending_stores[(uop.thread, word)]
        fifo = self._sb_fifo[uop.thread]
        if fifo and fifo[0] is uop:
            fifo.popleft()
            if fifo:
                self._drain_store(fifo[0])

    # ------------------------------------------------------------------
    # Table 9 sampling hook
    # ------------------------------------------------------------------

    def sample_protocol_peaks(self) -> None:
        peaks = self.node.stats.peaks
        peaks.branch_stack = max(peaks.branch_stack, self.bstack_pool.proto_peak)
        peaks.int_regs = max(peaks.int_regs, self.rename.proto_int_peak)
        peaks.int_queue = max(peaks.int_queue, self.iq_pool.proto_peak)
        peaks.lsq = max(peaks.lsq, self.lsq_pool.proto_peak)
