"""The out-of-order SMT core.

Nine logical stages (fetch, decode, rename, issue, two register-read
stages, execute, cache access, commit) modelled as four simulation
stages with queue latencies in between; the front-end depth shows up
in the mispredict redirect penalty and in issue-to-complete latencies.

SMT mechanics per the paper:

* ICOUNT(2,8) fetch: the two least-occupying threads share an 8-wide
  fetch, first thread until a predicted-taken branch.
* Dynamically shared decode/rename queues, IQ, LSQ, store buffer,
  MSHRs and physical registers, with one reserved instance of each for
  the protocol thread (deadlock avoidance, §2.2).
* Round-robin commit within and across cycles.
* Per-thread active lists (128 entries).
* The protocol thread's uncached operations execute non-speculatively
  at graduation; SWITCH stalls at the head until the dispatch unit
  supplies the next request.

Trace-driven speculation: sources supply oracle outcomes, the
predictor supplies guesses; on a mispredict the thread fetches
synthetic wrong-path µops that consume real resources until the branch
resolves, at which point the thread's younger µops are squashed and
the map/RAS checkpoints restored.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from functools import partial
from heapq import heappop, heappush
from operator import attrgetter
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.apps.compile import app_interp_forced, smt_interp_forced
from repro.caches.hierarchy import BLOCKED, HIT, MISS
from repro.common.params import ProcessorParams
from repro.common.queues import DualQueue, ReservedPool
from repro.common.stats import ThreadStats
from repro.isa.uop import FP_BASE, Uop, UopKind
from repro.pipeline.branch import BTB, ReturnAddressStack, TournamentPredictor
from repro.pipeline.regfile import RenameUnit
from repro.protocol.extensions import AM_OPS

#: Extra cycles from issue to execute (the two register-read stages).
READ_STAGES = 2
#: Synthetic wrong-path µop cap per mispredict (resource back-pressure
#: throttles well before this).
WRONG_PATH_CAP = 64

_EXEC_LATENCY = {
    UopKind.ALU: 1,
    UopKind.SYNTH: 1,
    UopKind.NOP: 1,
    UopKind.MUL: 6,
    UopKind.DIV: 35,
    UopKind.FALU: 1,
    UopKind.FDIV: 19,
    UopKind.BRANCH: 1,
    UopKind.CALL: 1,
    UopKind.RETURN: 1,
}

#: ``READ_STAGES + _latency_of`` for µops whose own ``latency`` field is
#: the default 1 (every µop the application tier emits), indexed by
#: kind — the compiled issue path's table form of :meth:`SMTCore._latency_of`.
_LAT1 = [READ_STAGES + _EXEC_LATENCY.get(UopKind(_k), 1) if _k else 0
         for _k in range(max(UopKind) + 1)]


class ThreadContext:
    """Per-hardware-context front-end and window state."""

    __slots__ = (
        "tid",
        "source",
        "protocol",
        "compiled_src",
        "rob",
        "icount",
        "fetch_stalled",
        "cur_fetch_line",
        "wrongpath_branch",
        "wp_emitted",
        "wp_pc",
        "mem_seq_next",
        "mem_issue_next",
        "ras",
        "stats",
        "done",
    )

    def __init__(self, tid: int, source, protocol: bool, stats: ThreadStats) -> None:
        self.tid = tid
        self.source = source
        self.protocol = protocol
        # Sampled once: the superblock-compiled fetch path needs the
        # source's cursor/boundary state (repro.apps.compile).
        self.compiled_src = bool(getattr(source, "compiled", False))
        self.rob: Deque[Uop] = deque()
        self.icount = 0
        self.fetch_stalled = False
        self.cur_fetch_line = -1
        self.wrongpath_branch: Optional[Uop] = None
        self.wp_emitted = 0
        self.wp_pc = 0
        self.mem_seq_next = 0
        self.mem_issue_next = 0
        self.ras = ReturnAddressStack()
        self.stats = stats
        self.done = False


class SMTCore:
    def __init__(self, node, sources: List, proto_source=None) -> None:
        """``sources`` are the application thread programs; the optional
        ``proto_source`` is the protocol-thread shadow interpreter."""
        self.node = node
        self.pp: ProcessorParams = node.mp.proc
        self.hierarchy = node.hierarchy
        self.wheel = node.wheel
        self.machine = None  # set by the machine for progress notes

        pp = self.pp
        self.rename = RenameUnit(pp)
        self.predictor = TournamentPredictor(
            pp.total_threads, pp.local_history_bits, pp.global_history_bits
        )
        self.btb = BTB(pp.btb_sets, pp.btb_assoc)

        res = pp.protocol_thread
        self.decode_q: DualQueue[Uop] = DualQueue(
            "decode", pp.decode_queue_slots, pp.reserved_decode_slots if res else 0
        )
        self.rename_q: DualQueue[Uop] = DualQueue(
            "rename", pp.rename_queue_slots, pp.reserved_rename_slots if res else 0
        )
        self.iq_pool = ReservedPool(
            "iq", pp.int_queue, pp.reserved_int_queue if res else 0
        )
        self.fq_pool = ReservedPool("fq", pp.fp_queue, 0)
        self.lsq_pool = ReservedPool(
            "lsq", pp.lsq_slots, pp.reserved_lsq_slots if res else 0
        )
        self.sb_pool = ReservedPool(
            "sb", pp.store_buffer, pp.reserved_store_buffer if res else 0
        )
        self.bstack_pool = ReservedPool(
            "bstack", pp.branch_stack, pp.reserved_branch_stack if res else 0
        )
        self.iq: List[Uop] = []
        self.fq: List[Uop] = []

        self.threads: List[ThreadContext] = []
        for tid, source in enumerate(sources):
            tstats = ThreadStats(node=node.node_id, context=tid)
            node.stats.threads.append(tstats)
            self.threads.append(ThreadContext(tid, source, False, tstats))
        self.proto_tid = -1
        if proto_source is not None:
            tid = len(self.threads)
            self.proto_tid = tid
            tstats = ThreadStats(node=node.node_id, context=tid)
            self.threads.append(ThreadContext(tid, proto_source, True, tstats))

        self._seq = 0
        self._rr = 0
        self.cycle = 0
        # Static-parameter and thread-subset caches for the per-cycle
        # stages (two attribute loads each on the reference path).
        self._active_list = pp.active_list_per_thread
        self._few = pp.front_end_width
        self._commit_width = pp.commit_width
        self._fetch_width = pp.fetch_width
        self._app_threads = [t for t in self.threads if not t.protocol]
        self.div_free_at = 0
        self.fdiv_free_at = 0
        # Activity contract (see DESIGN.md): ``_worked`` records whether
        # the last step changed any state that per-cycle polling could
        # not replay analytically; ``_wake_flag`` is set by asynchronous
        # completion paths (wheel callbacks, MC dispatch, MSHR frees) to
        # force the next step to run densely; ``_unit_wake`` is the
        # earliest cycle a busy div/fdiv unit frees while gating an
        # otherwise-ready µop (a timed sleep).
        self._worked = True
        self._wake_flag = True
        self._unit_wake = 0
        # Out of the machine's active set (active-set scheduler): set
        # by Machine._event_step when idle with no pending unit wake,
        # cleared by wake().  While True the machine pays nothing per
        # cycle for this core.
        self._asleep = False
        # Cached idle fixup (see fast_forward); invalidated by any step.
        self._ff_plan: Optional[list] = None
        # First skipped cycle of the current sleep period.  While
        # ``_ff_plan`` is pinned the owed fixup count is just
        # ``wheel.now - _ff_anchor`` (the plan is constant per sleep
        # period), so the event loop does no per-cycle bookkeeping at
        # all for a sleeping core (see flush_idle_fixup).
        self._ff_anchor = 0
        self._done_sticky = False
        # Wrong-path filler templates, keyed (tid, dest) — see
        # _make_synth.
        self._synth_tmpl: Dict[Tuple[int, int], Uop] = {}
        # Same-thread store->load forwarding values (word granularity).
        self._pending_stores: Dict[Tuple[int, int], List[int]] = {}
        # Per-thread store-buffer FIFO: stores drain strictly in program
        # order (the paper's processor is sequentially consistent).
        self._sb_fifo: Dict[int, Deque[Uop]] = {
            t.tid: deque() for t in self.threads
        }
        # Compiled fetch/issue fast path (repro.apps.compile).  The
        # reference scan keeps every waiting µop in one list and
        # re-tests n_wait/budgets per µop per cycle; the compiled path
        # splits the window by *why* a µop is waiting — ready non-memory
        # µops in per-side heaps keyed by IQ admission order (admitted
        # by the rename unit's on_ready hook the moment their last
        # source completes), memory µops in per-thread program-order
        # FIFOs whose heads are the only possible issue candidates
        # (mem_seq gating), prefetches in their own FIFO — so each
        # issue cycle touches only actionable µops.  Bit-identical to
        # _issue: candidates are processed in admission order, exactly
        # the reference list order.  REPRO_APP_INTERP=1 restores the
        # reference scan (and the per-µop fetch/decode loops).
        self._fast = not app_interp_forced()
        self._iq_pos = 0
        self._iqr: List[Tuple[int, Uop]] = []
        self._fqr: List[Tuple[int, Uop]] = []
        self._pf_fifo: Deque[Uop] = deque()
        self._mem_fifo: Dict[int, Deque[Uop]] = {
            t.tid: deque() for t in self.threads
        }
        # Memory µops in the FIFOs whose sources are all ready.  Only a
        # FIFO *head* can issue, but heads are the oldest entries, so
        # "no ready µop anywhere" ⇒ "no candidate head" and the issue
        # stage can be skipped without losing the reference's
        # blocked-attempt recurrence (an attempt needs n_wait == 0).
        self._mem_ready = 0
        if self._fast:
            self.rename.on_ready = self._uop_ready
        # Rename-stall latch: nonzero when the rename-queue head
        # bounced off a full resource, coded by what blocked it —
        # 1 = issue-queue pool (freed only by issue or squash),
        # 2 = window/register/LSQ/branch-stack (freed by retire or
        # squash).  Issue and squash clear the latch outright; retire
        # clears only code 2 (``&= 1``) since it frees no IQ slot.
        # While latched, the fused step skips the per-cycle rename
        # retry — the reference retries every cycle, but a retry
        # between two frees is a guaranteed failure, so skipping it
        # changes nothing.
        self._rn_wait = 0
        # Fully fused per-cycle path for the single-compiled-app-thread
        # core (every non-SMTp model at ways=1) — see _step_1t.  The
        # app-side pool/queue limits are immutable after construction,
        # so the fused stages read one precomputed bound instead of
        # re-deriving ``total - reserved`` per cycle.
        self._t0 = self.threads[0]
        self._t0_fifo = self._mem_fifo[self._t0.tid]
        self._t0_sb = self._sb_fifo[self._t0.tid]
        # No protocol context exists on the fused core, so ``proto_used``
        # is identically 0 for every pool and the app-side occupancy
        # tests reduce to ``app_used >= cap``.
        self._sb_cap = self.sb_pool.total - self.sb_pool.reserved
        self._iq_cap = self.iq_pool.total - self.iq_pool.reserved
        self._fq_cap = self.fq_pool.total - self.fq_pool.reserved
        self._lsq_cap = self.lsq_pool.total - self.lsq_pool.reserved
        self._bs_cap = self.bstack_pool.total - self.bstack_pool.reserved
        self._dq_room = self.decode_q.capacity - self.decode_q.reserved
        self._rq_room = self.rename_q.capacity - self.rename_q.reserved
        # Scratch list for DIV/FDIV µops parked while their unit is
        # busy (rare) — reused across cycles so the common all-clear
        # issue pass allocates nothing.
        self._gated: List[Tuple[int, Uop]] = []
        self._use_1t = (
            self._fast and len(self.threads) == 1 and self._t0.compiled_src
        )
        # Fused multi-threaded path (_step_nt): SMTp cores (app +
        # protocol contexts) and ways>=2 cells.  Requires the compiled
        # app tier (the superblock fetch feeds it) and the standard
        # ICOUNT(2,8) fetch (the inlined top-2 selection assumes two
        # fetch slots).  REPRO_SMT_INTERP=1 keeps such cores on the
        # generic step() reference.
        self._use_nt = (
            self._fast
            and not smt_interp_forced()
            and len(self.threads) >= 2
            and self.pp.fetch_threads_per_cycle == 2
        )
        self._tproto = (
            self.threads[self.proto_tid] if self.proto_tid >= 0 else None
        )
        # Per-section rename-stall latches for _step_nt — the two-
        # section generalization of _rn_wait: a section whose queue
        # head bounced off a full resource is skipped until issue,
        # retire (code 2 only), or squash frees something.  Renames
        # only consume resources, so one section renaming never
        # unblocks the other; the clears are shared with _rn_wait's
        # (conservative: any free clears both sections).
        self._rn_wait_app = 0
        self._rn_wait_proto = 0
        # Fixed thread set after construction: the per-thread memory
        # FIFOs as a list, saving the dict-items walk per issue cycle.
        self._mem_items = list(self._mem_fifo.items())
        # Quiet-stage latches for _step_nt.  In a stall-only cycle the
        # commit scan's outcome (which threads charge which stall
        # counter, no head retirable) and the fetch scan's no-candidate
        # verdict are pure functions of state that only changes through
        # wake()/_complete() events or this core's own retire/rename/
        # squash work — every such site clears the latches, so the
        # ~70% of awake cycles that neither retire nor fetch shrink to
        # a few counter bumps.
        self._cm_stall: Optional[List[Tuple[ThreadStats, bool]]] = None
        self._fetch_idle = False

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        # Thread completion is monotone (ThreadContext.done is only
        # ever set True, in _commit), so the all-done answer is sticky
        # and the per-call thread walk can stop after the first True.
        if self._done_sticky:
            return True
        for t in self.threads:
            if not t.protocol and not t.done:
                return False
        self._done_sticky = True
        return True

    def protocol_quiescent(self) -> bool:
        """True when the protocol thread has no effects left to apply —
        at most a SWITCH/LDCTXT pair stalled waiting for traffic."""
        if self.proto_tid < 0:
            return True
        t = self.threads[self.proto_tid]
        if t.source.fetching or t.source._buffer:
            return False
        return all(
            u.kind in (UopKind.SWITCH, UopKind.LDCTXT) for u in t.rob
        )

    def describe_state(self) -> str:
        parts = []
        for t in self.threads:
            head = t.rob[0] if t.rob else None
            parts.append(
                f"t{t.tid}{'p' if t.protocol else ''}: rob={len(t.rob)} "
                f"ic={t.icount} head={head}"
            )
        return f"core {self.node.node_id}: " + " | ".join(parts)

    # ------------------------------------------------------------------
    def wake(self) -> None:
        """Asynchronous input state changed: step densely next cycle.

        Called by MSHR frees, bypass-buffer fills, thread-program sleep
        expiry, handler dispatch, and the core's own completion events.
        A spurious wake costs one dense no-op step and is always safe;
        a missed one is what the conservative ``_worked`` accounting in
        :meth:`step` guards against.
        """
        self._wake_flag = True
        self._cm_stall = None
        self._fetch_idle = False
        if self._asleep:
            # Rejoin the machine's active set (active-set scheduler).
            self._asleep = False
            m = self.machine
            if m is not None:
                m._cores_dirty = True

    def wake_fetch(self) -> None:
        """:meth:`wake` for events that can only create fetch
        candidates (thread-program sleep expiry / sync unpark): the
        commit scan's cached stall verdict still holds."""
        self._wake_flag = True
        self._fetch_idle = False
        if self._asleep:
            self._asleep = False
            m = self.machine
            if m is not None:
                m._cores_dirty = True

    def wake_quiet(self) -> None:
        """:meth:`wake` for pure progress pokes (MSHR frees, bypass
        fills): they unblock deferred *issue* retries, which touch
        neither the commit heads nor the fetch candidate set — any
        state change they lead to arrives later via
        :meth:`_complete`."""
        self._wake_flag = True
        if self._asleep:
            self._asleep = False
            m = self.machine
            if m is not None:
                m._cores_dirty = True

    def fast_forward(self, skipped: int) -> None:
        """Replay ``skipped`` idle steps' per-cycle side effects.

        Only valid when the previous step reported no work: with frozen
        inputs a dense step then mutates nothing but the stall-cycle
        and protocol-busy counters (linear in cycles), the commit
        round-robin pointer, and the decode/rename section-priority
        toggles — all replayed here in closed form.

        The counter targets are computed once per sleep period: port
        idleness and ROB-head retirability can only change through this
        core's own work or through an input change, and every input
        change fires :meth:`wake`, which forces a dense :meth:`step`
        (invalidating the cached plan) before the next fast-forward.
        """
        plan = self._ff_plan
        if plan is None:
            plan = self._ff_plan = self._build_ff_plan()
        for stats, attr in plan:
            setattr(stats, attr, getattr(stats, attr) + skipped)
        self._rr = (self._rr + skipped) % len(self.threads)
        if skipped & 1:
            self.decode_q._proto_first = not self.decode_q._proto_first
            self.rename_q._proto_first = not self.rename_q._proto_first

    def flush_idle_fixup(self, through: bool = False) -> None:
        """Apply the sleep period's batched idle-cycle fixups.

        The event loop does not call :meth:`fast_forward` once per
        skipped cycle; it pins ``_ff_plan`` and ``_ff_anchor`` at sleep
        start (when the inputs froze) and the owed count is derived
        from the clock here in one shot — immediately before the next
        dense step or a stats read.  Since the fixup is linear in
        cycles and the plan is constant for the whole sleep period, one
        n-cycle application is identical to n unit ones.

        ``through=False`` (a core about to step at ``wheel.now``): the
        core skipped ``[_ff_anchor, wheel.now - 1]``.  ``through=True``
        (an end-of-run or stats flush, no step at ``wheel.now``): the
        current cycle was skipped too.
        """
        if self._ff_plan is None:
            return
        pending = self.wheel.now - self._ff_anchor + (1 if through else 0)
        if pending > 0:
            self.fast_forward(pending)
            m = self.machine
            if m is not None:
                m.skipped_core_steps += pending
        self._ff_plan = None
        if through and self._asleep:
            # Mid-sleep stats flush (collect_stats / end of a run
            # loop): the machine's event loop no longer visits this
            # core, so re-pin the plan here — inputs are still frozen,
            # the rebuilt plan equals the one just flushed — or the
            # sleep period's remaining idle cycles would go unaccounted.
            self._ff_plan = self._build_ff_plan()
            self._ff_anchor = self.wheel.now + 1

    def _build_ff_plan(self) -> list:
        """The per-idle-cycle counter increments, as (object, attribute)
        pairs — frozen for the duration of one sleep period."""
        plan = []
        if self.proto_tid >= 0:
            port = self.threads[self.proto_tid].source.port
            if port is not None and not port.idle():
                plan.append((self.node.stats.protocol, "busy_cycles"))
        for t in self.threads:
            if t.rob and not self._retirable(t.rob[0]):
                if t.rob[0].is_memory:
                    plan.append((t.stats, "memory_stall_cycles"))
                else:
                    plan.append((t.stats, "other_stall_cycles"))
        return plan

    def _note_unit_wake(self, free_at: int) -> None:
        if self._unit_wake == 0 or free_at < self._unit_wake:
            self._unit_wake = free_at

    # ------------------------------------------------------------------
    def step(self) -> None:
        if self._use_1t:
            self._step_1t()
            return
        if self._use_nt:
            self._step_nt()
            return
        if self._ff_plan is not None:
            self.flush_idle_fixup()
        self.cycle = self.wheel.now
        self._worked = self._wake_flag
        self._wake_flag = False
        self._unit_wake = 0
        if self.proto_tid >= 0:
            port = self.threads[self.proto_tid].source.port
            if port is not None and not port.idle():
                # Table 7: the protocol thread is "active" while a
                # handler has effects in flight.  A SWITCH idling at
                # the head waiting for traffic does not count.
                self.node.stats.protocol.busy_cycles += 1
        self._commit()
        # Empty-stage guards: a skipped stage call must still advance
        # the section-priority parity its body would have toggled.
        if self._fast:
            if self._iqr or self._fqr or self._mem_ready:
                self._issue_fast()
        elif self.iq or self.fq:
            self._issue()
        rq = self.rename_q
        if rq.proto or rq.app:
            self._rename_stage()
        else:
            rq._proto_first = not rq._proto_first
        dq = self.decode_q
        if dq.proto or dq.app:
            if self._fast:
                self._decode_stage_fast()
            else:
                self._decode_stage()
        else:
            dq._proto_first = not dq._proto_first
        self._fetch()

    def _step_1t(self) -> None:
        """:meth:`step`, fused for one compiled application thread.

        Every non-SMTp model at ways=1 runs exactly one app context and
        no protocol context, so ICOUNT selection, section-priority
        scheduling, and the commit round-robin all degenerate; this
        path inlines the stage bodies with those degenerate branches
        removed.  Observationally identical to :meth:`step`: same stage
        order, same per-cycle side effects (stall counters), same
        ``_worked`` accounting.  The decode/rename section-priority
        parity is not toggled — it only arbitrates between the app and
        protocol sections and the protocol section does not exist here.
        Application sources never produce commit-stage µops, so head
        retirability reduces to ``completed`` (+ store-buffer room for
        stores).
        """
        if self._ff_plan is not None:
            self.flush_idle_fixup()
        self.cycle = self.wheel.now
        self._worked = self._wake_flag
        self._wake_flag = False
        self._unit_wake = 0
        t = self._t0
        # -- commit ----------------------------------------------------
        rob = t.rob
        if rob:
            head = rob[0]
            sb = self.sb_pool
            sb_cap = self._sb_cap
            if head.completed and (
                head.kind is not UopKind.STORE
                or sb.app_used < sb_cap
            ):
                # Retirement loop with :meth:`_retire` inlined in its
                # app-specialized form: no commit-stage kinds, no
                # protocol thread, pool/regfile releases as plain
                # app-side arithmetic.  Code 1 of the rename latch
                # stays latched (retirement frees no issue-queue slot).
                budget = self._commit_width
                stats = t.stats
                rn = self.rename
                free_fp = rn._free_fp
                free_int = rn._free_int
                committed = 0
                spin_committed = 0
                while True:
                    self._rn_wait &= 1
                    if head.spin:
                        spin_committed += 1
                    kind = head.kind
                    if kind is UopKind.STORE:
                        sb.app_used += 1
                        sfifo = self._t0_sb
                        sfifo.append(head)
                        if len(sfifo) == 1:
                            self._drain_store(head)
                        stats.stores += 1
                    elif kind is UopKind.LOAD:
                        stats.loads += 1
                    if head.in_lsq:
                        self.lsq_pool.app_used -= 1
                    if head.is_branch:
                        self.bstack_pool.app_used -= 1
                    p = head.pdest_old
                    if p != -1:
                        if p >= 1 << 20:
                            free_fp.append(p - (1 << 20))
                        else:
                            free_int.append(p)
                    committed += 1
                    rob.popleft()
                    budget -= 1
                    if budget <= 0 or not rob:
                        break
                    head = rob[0]
                    if not head.completed or (
                        head.kind is UopKind.STORE
                        and sb.app_used >= sb_cap
                    ):
                        break
                stats.committed += committed
                stats.spin_committed += spin_committed
                self._worked = True
                m = self.machine
                if m is not None:
                    m._progress_cycle = m.cycle  # note_progress, inlined
            elif head.is_memory:
                t.stats.memory_stall_cycles += 1
            else:
                t.stats.other_stall_cycles += 1
        if not t.done and not rob and t.icount == 0 and t.source.done:
            t.done = True
            t.stats.finish_cycle = self.cycle
            t.stats.done = True
            self._worked = True
        # -- issue -----------------------------------------------------
        fifo = self._t0_fifo
        if (
            self._iqr
            or self._fqr
            or self._pf_fifo
            or (fifo and not fifo[0].n_wait)
        ):
            self._issue_1t()
        # -- rename ----------------------------------------------------
        rqa = self.rename_q.app
        if rqa and not self._rn_wait:
            self._rename_1t(rqa)
        # -- decode ----------------------------------------------------
        dqa = self.decode_q.app
        if dqa:
            take = self._rq_room - len(rqa)
            n = len(dqa)
            if take > n:
                take = n
            width = self._few
            if take > width:
                take = width
            if take > 0:
                pop = dqa.popleft
                push = rqa.append
                for _ in range(take):
                    push(pop())
                self._worked = True
        # -- fetch -----------------------------------------------------
        if (
            not t.done
            and not t.fetch_stalled
            and len(dqa) < self._dq_room
        ):
            if t.wrongpath_branch is not None:
                if t.wp_emitted < WRONG_PATH_CAP:
                    self._fetch_thread(t, self._fetch_width)
            elif t.source.peek_available():
                self._fetch_thread_fast(t, self._fetch_width)

    def _step_nt(self) -> None:
        """:meth:`step`, fused for multi-threaded cores — SMTp cores
        (application thread(s) + protocol thread) and ways>=2 cells.

        Observationally identical to :meth:`step`: same stage order,
        same per-cycle side effects (stall counters, section-priority
        parity), same ``_worked``/``_unit_wake`` accounting.  The stage
        bodies are the fused forms: :meth:`_commit_nt` (retire loop
        with the app-side :meth:`_retire` inlined), :meth:`_issue_nt`
        (:meth:`_issue_fast` with per-issue bookkeeping inlined), an
        inline rename loop gated by *per-section* stall latches (the
        two-section generalization of ``_rn_wait``), and
        :meth:`_fetch_nt` (ICOUNT selection without the sort, fetching
        through the superblock/compiled-PP fast loops).
        ``REPRO_SMT_INTERP=1`` keeps such cores on :meth:`step`.
        """
        if self._ff_plan is not None:
            self.flush_idle_fixup()
        self.cycle = self.wheel.now
        self._worked = self._wake_flag
        self._wake_flag = False
        self._unit_wake = 0
        tp = self._tproto
        if tp is not None:
            src = tp.source
            port = src.port
            if port is not None:
                # port.idle() inlined (Table 7): the protocol thread is
                # "active" while a handler has effects in flight; a
                # SWITCH idling at the head waiting for traffic does
                # not count.
                if port.pending is not None or src.fetching or src._buffer:
                    self.node.stats.protocol.busy_cycles += 1
                else:
                    for u in tp.rob:
                        k = u.kind
                        if k is not UopKind.SWITCH and k is not UopKind.LDCTXT:
                            self.node.stats.protocol.busy_cycles += 1
                            break
        self._commit_nt()
        if self._iqr or self._fqr or self._mem_ready:
            self._issue_nt()
        # -- rename (per-section stall latches) ------------------------
        rq = self.rename_q
        first_proto = rq._proto_first
        rq._proto_first = not first_proto
        rqp = rq.proto
        rqa = rq.app
        if rqp or rqa:
            renamed = 0
            width = self._few
            for protocol in ((True, False) if first_proto else (False, True)):
                src = rqp if protocol else rqa
                if not src:
                    continue
                if self._rn_wait_proto if protocol else self._rn_wait_app:
                    # Latched head: nothing freed since it last bounced,
                    # so the reference's per-cycle retry is a guaranteed
                    # failure (see __init__) — skip the section.
                    continue
                renamed += self._rename_nt(src, protocol, width - renamed)
                if renamed >= width:
                    break
            if renamed:
                self._worked = True
        # -- decode ----------------------------------------------------
        dq = self.decode_q
        if dq.proto or dq.app:
            self._decode_stage_fast()
            # Decode may have freed decode-queue room: a fetch scan
            # latched on a full queue must re-run.
            self._fetch_idle = False
        else:
            dq._proto_first = not dq._proto_first
        self._fetch_nt()

    def _rename_nt(self, src: Deque[Uop], protocol: bool, budget: int) -> int:
        """One rename-queue section of :meth:`_step_nt`'s rename stage:
        :meth:`_try_rename` and :meth:`RegfileUnit.rename` fused into a
        single loop (the two-section generalization of
        :meth:`_rename_1t`).  ``protocol`` fixes the pool bounds and
        register-floor for the whole section, so every resource check
        is plain arithmetic over hoisted locals; check order, acquire
        order and issue routing match :meth:`_try_rename` exactly.
        Returns the number renamed; a resource bounce latches the
        section's ``_rn_wait_*`` code and stops the section.
        """
        threads = self.threads
        rn = self.rename
        al = self._active_list
        int_map = rn.int_map
        fp_map = rn.fp_map
        int_ready = rn.int_ready
        fp_ready = rn.fp_ready
        waiters = rn._waiters
        free_int = rn._free_int
        free_fp = rn._free_fp
        int_floor = 0 if protocol else rn.reserved_int
        iq_pool = self.iq_pool
        fq_pool = self.fq_pool
        lsq_pool = self.lsq_pool
        bstack_pool = self.bstack_pool
        if protocol:
            iq_cap = iq_pool.total
            fq_cap = fq_pool.total
            lsq_cap = lsq_pool.total
            bs_cap = bstack_pool.total
        else:
            iq_cap = self._iq_cap
            fq_cap = self._fq_cap
            lsq_cap = self._lsq_cap
            bs_cap = self._bs_cap
        renamed = 0
        while renamed < budget:
            uop = src[0]
            tid = uop.thread
            t = threads[tid]
            commit_stage = uop.commit_stage
            is_fp = uop.is_fp
            if not commit_stage:
                if is_fp:
                    if fq_pool.app_used + fq_pool.proto_used >= fq_cap:
                        code = 1
                        break
                elif iq_pool.app_used + iq_pool.proto_used >= iq_cap:
                    code = 1
                    break
            if len(t.rob) >= al:
                code = 2
                break
            dest = uop.dest
            if dest is not None:
                if dest >= FP_BASE:
                    if not free_fp:
                        code = 2
                        break
                elif len(free_int) <= int_floor:
                    code = 2
                    break
            is_mem = uop.is_memory
            needs_lsq = is_mem or (
                commit_stage and uop.kind is not UopKind.UNCACHED
            )
            if needs_lsq and (
                lsq_pool.app_used + lsq_pool.proto_used >= lsq_cap
            ):
                code = 2
                break
            is_branch = uop.is_branch
            if is_branch:
                if bstack_pool.app_used + bstack_pool.proto_used >= bs_cap:
                    code = 2
                    break
                if protocol:
                    bp_used = bstack_pool.proto_used + 1
                    bstack_pool.proto_used = bp_used
                    if bp_used > bstack_pool.proto_peak:
                        bstack_pool.proto_peak = bp_used
                else:
                    bstack_pool.app_used += 1
                uop.checkpoint = rn.checkpoint(tid, t.ras.snapshot())
            if needs_lsq:
                if protocol:
                    lp_used = lsq_pool.proto_used + 1
                    lsq_pool.proto_used = lp_used
                    if lp_used > lsq_pool.proto_peak:
                        lsq_pool.proto_peak = lp_used
                else:
                    lsq_pool.app_used += 1
                uop.in_lsq = True
                if is_mem and uop.kind is not UopKind.PREFETCH:
                    uop.mem_seq = t.mem_seq_next
                    t.mem_seq_next += 1
            # rename.rename(uop), inlined (identical source mapping,
            # waiter registration and dest allocation).
            imap = int_map[tid]
            fmap = fp_map[tid]
            srcs = uop.srcs
            if srcs:
                n_wait = 0
                psrcs: List[int] = []
                for s in srcs:
                    if s >= FP_BASE:
                        r = fmap[s - FP_BASE]
                        p = r + (1 << 20)
                        ready = fp_ready[r]
                    else:
                        p = imap[s]
                        ready = int_ready[p]
                    psrcs.append(p)
                    if not ready:
                        n_wait += 1
                        lst = waiters.get(p)
                        if lst is None:
                            waiters[p] = [uop]
                        else:
                            lst.append(uop)
                uop.psrcs = tuple(psrcs)
                uop.n_wait = n_wait
            else:
                uop.psrcs = ()
            if dest is not None:
                if dest >= FP_BASE:
                    preg = free_fp.pop()
                    fp_ready[preg] = False
                    uop.pdest = preg + (1 << 20)
                    uop.pdest_old = fmap[dest - FP_BASE] + (1 << 20)
                    fmap[dest - FP_BASE] = preg
                else:
                    preg = free_int.pop()
                    int_ready[preg] = False
                    uop.pdest = preg
                    uop.pdest_old = imap[dest]
                    imap[dest] = preg
                    if protocol:
                        held = rn.proto_int_held + 1
                        rn.proto_int_held = held
                        if held > rn.proto_int_peak:
                            rn.proto_int_peak = held
            rob = t.rob
            if not rob:
                # A new head appears on an empty window: the commit
                # scan's cached stall verdict no longer holds.
                self._cm_stall = None
            rob.append(uop)
            if not commit_stage:
                if protocol:
                    pool = fq_pool if is_fp else iq_pool
                    p_used = pool.proto_used + 1
                    pool.proto_used = p_used
                    if p_used > pool.proto_peak:
                        pool.proto_peak = p_used
                elif is_fp:
                    fq_pool.app_used += 1
                else:
                    iq_pool.app_used += 1
                pos = self._iq_pos + 1
                self._iq_pos = pos
                uop.iq_pos = pos
                if is_mem:
                    if uop.kind is UopKind.PREFETCH:
                        self._pf_fifo.append(uop)
                    else:
                        self._mem_fifo[tid].append(uop)
                    if not uop.n_wait:
                        self._mem_ready += 1
                elif not uop.n_wait:
                    heappush(
                        self._fqr if is_fp else self._iqr, (pos, uop)
                    )
            src.popleft()
            renamed += 1
            if not src:
                return renamed
        else:
            return renamed
        # Resource bounce: latch the section (loop exited via break).
        self._rn_wait = code
        if protocol:
            self._rn_wait_proto = code
        else:
            self._rn_wait_app = code
        return renamed

    def _commit_nt(self) -> None:
        """:meth:`_commit` with the application-side :meth:`_retire`
        inlined (plain app-pool arithmetic and free-list pushes, as in
        :meth:`_step_1t`'s commit).  Protocol and commit-stage µops
        take the shared :meth:`_retire` — they are rare and carry the
        commit-stage kinds (UNCACHED/LDCTXT/SWITCH) and protocol stats.
        """
        threads = self.threads
        cache = self._cm_stall
        if cache is not None:
            # Stall-only fast path: since the cache was built, no event
            # that could change any head's retirability has fired (see
            # the latch contract in __init__), so the scan's outcome is
            # the same per-thread stall charges, no head ready.
            for stats, mem in cache:
                if mem:
                    stats.memory_stall_cycles += 1
                else:
                    stats.other_stall_cycles += 1
            self._rr = (self._rr + 1) % len(threads)
            for t in self._app_threads:
                if not t.done and not t.rob and t.icount == 0 and t.source.done:
                    t.done = True
                    t.stats.finish_cycle = self.cycle
                    t.stats.done = True
                    self._worked = True
            return
        sb = self.sb_pool
        sb_total = sb.total
        sb_app_cap = sb_total - sb.reserved
        tp = self._tproto
        proto_port = tp.source.port if tp is not None else None
        any_ready = False
        stalls: List[Tuple[ThreadStats, bool]] = []
        for t in threads:
            rob = t.rob
            if rob:
                head = rob[0]
                if head.completed:
                    if head.kind is not UopKind.STORE or (
                        sb.app_used + sb.proto_used
                        < (sb_total if head.protocol else sb_app_cap)
                    ):
                        any_ready = True
                        continue
                elif head.commit_stage:
                    # _retirable, inlined: UNCACHED executes right at
                    # retirement; SWITCH/LDCTXT graduate once the
                    # dispatch unit has handed out the next request
                    # (port.switch_satisfied).
                    if head.kind is UopKind.UNCACHED:
                        any_ready = True
                        continue
                    ctx = head.ctx
                    if (
                        ctx is not None
                        and proto_port.dispatched_count >= ctx.index + 2
                    ):
                        any_ready = True
                        continue
                if head.is_memory:
                    t.stats.memory_stall_cycles += 1
                    stalls.append((t.stats, True))
                else:
                    t.stats.other_stall_cycles += 1
                    stalls.append((t.stats, False))
        if not any_ready:
            self._cm_stall = stalls
        n = len(threads)
        committed_any = False
        if any_ready:
            # Retires can create fetch candidates (SWITCH/LDCTXT
            # graduation pumps try_start; icount drops; threads finish).
            self._fetch_idle = False
            budget = self._commit_width
            rr = self._rr
            rn = self.rename
            free_fp = rn._free_fp
            free_int = rn._free_int
            for i in range(n):
                t = threads[(rr + i) % n]
                rob = t.rob
                if not rob:
                    continue
                stats = t.stats
                committed = 0
                spin_committed = 0
                proto_inline = 0
                while budget > 0 and rob:
                    head = rob[0]
                    if head.completed:
                        if head.kind is UopKind.STORE and (
                            sb.app_used + sb.proto_used
                            >= (sb_total if head.protocol else sb_app_cap)
                        ):
                            break
                    elif head.commit_stage:
                        # _retirable, inlined (as in the stall scan).
                        if head.kind is not UopKind.UNCACHED:
                            ctx = head.ctx
                            if (
                                ctx is None
                                or proto_port.dispatched_count
                                < ctx.index + 2
                            ):
                                break
                    else:
                        break
                    if head.commit_stage:
                        self._retire(t, head)
                    elif head.protocol:
                        # Protocol µop, no commit-stage kind: _retire
                        # inlined with proto-side pool/register
                        # arithmetic (release is a plain decrement;
                        # sb acquire tracks the Table 9 peak).
                        self._rn_wait &= 1
                        self._rn_wait_app &= 1
                        self._rn_wait_proto &= 1
                        kind = head.kind
                        if kind is UopKind.STORE:
                            sbp = sb.proto_used + 1
                            sb.proto_used = sbp
                            if sbp > sb.proto_peak:
                                sb.proto_peak = sbp
                            fifo = self._sb_fifo[head.thread]
                            fifo.append(head)
                            if len(fifo) == 1:
                                self._drain_store(head)
                            stats.stores += 1
                        elif kind is UopKind.LOAD:
                            stats.loads += 1
                        if head.in_lsq:
                            self.lsq_pool.proto_used -= 1
                        if head.is_branch:
                            self.bstack_pool.proto_used -= 1
                        p = head.pdest_old
                        if p != -1:
                            if p >= 1 << 20:
                                free_fp.append(p - (1 << 20))
                            else:
                                free_int.append(p)
                                rn.proto_int_held -= 1
                        committed += 1
                        proto_inline += 1
                        if head.spin:
                            spin_committed += 1
                    else:
                        # App µop: _retire inlined (no commit-stage
                        # kinds, releases as plain app-side arithmetic).
                        self._rn_wait &= 1
                        self._rn_wait_app &= 1
                        self._rn_wait_proto &= 1
                        kind = head.kind
                        if kind is UopKind.STORE:
                            sb.app_used += 1
                            fifo = self._sb_fifo[head.thread]
                            fifo.append(head)
                            if len(fifo) == 1:
                                self._drain_store(head)
                            stats.stores += 1
                        elif kind is UopKind.LOAD:
                            stats.loads += 1
                        if head.in_lsq:
                            self.lsq_pool.app_used -= 1
                        if head.is_branch:
                            self.bstack_pool.app_used -= 1
                        p = head.pdest_old
                        if p != -1:
                            if p >= 1 << 20:
                                free_fp.append(p - (1 << 20))
                            else:
                                free_int.append(p)
                        committed += 1
                        if head.spin:
                            spin_committed += 1
                    rob.popleft()
                    budget -= 1
                    committed_any = True
                if committed:
                    stats.committed += committed
                    stats.spin_committed += spin_committed
                if proto_inline:
                    self.node.stats.protocol.instructions += proto_inline
                if budget <= 0:
                    break
        self._rr = (self._rr + 1) % n
        if committed_any:
            self._worked = True
            m = self.machine
            if m is not None:
                m._progress_cycle = m.cycle  # note_progress, inlined
        for t in self._app_threads:
            if not t.done and not t.rob and t.icount == 0 and t.source.done:
                t.done = True
                t.stats.finish_cycle = self.cycle
                t.stats.done = True
                self._worked = True

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _fetchable(self, t: ThreadContext) -> bool:
        if t.done or t.fetch_stalled:
            return False
        if t.wrongpath_branch is not None:
            return t.wp_emitted < WRONG_PATH_CAP
        return t.source.peek_available()

    def _fetch(self) -> None:
        # ICOUNT(2,8).  Threads whose decode-queue section is full are
        # not candidates (they would waste a fetch slot), and ICOUNT
        # ties break toward the protocol thread — together with the
        # reserved decode slot this guarantees the protocol thread is
        # never starved of fetch by stalled application threads.
        dq = self.decode_q
        occupancy = len(dq.app) + len(dq.proto)
        app_room = occupancy < dq.capacity - dq.reserved
        proto_room = occupancy < dq.capacity
        threads = self.threads
        if len(threads) == 1:
            # Single-thread cores (every non-SMTp model at ways=1):
            # ICOUNT selection degenerates to one candidate test.
            t = threads[0]
            if (proto_room if t.protocol else app_room) and self._fetchable(t):
                self._fetch_thread(t, self._fetch_width)
            return
        fetchable = self._fetchable
        candidates = [
            t
            for t in threads
            if (proto_room if t.protocol else app_room) and fetchable(t)
        ]
        if not candidates:
            return
        if len(candidates) > 1:
            candidates.sort(key=lambda t: (t.icount, not t.protocol))
        budget = self._fetch_width
        for t in candidates[: self.pp.fetch_threads_per_cycle]:
            if budget <= 0:
                break
            budget = self._fetch_thread(t, budget)

    def _fetch_thread(self, t: ThreadContext, budget: int) -> int:
        if self._fast and t.compiled_src and t.wrongpath_branch is None:
            return self._fetch_thread_fast(t, budget)
        while budget > 0:
            if not self.decode_q.can_push(t.protocol):
                break
            if t.wrongpath_branch is not None:
                if t.wp_emitted >= WRONG_PATH_CAP:
                    break
                uop = self._make_synth(t)
            else:
                uop = t.source.next_uop()
                if uop is None:
                    break
                if not self._icache_ok(t, uop):
                    # I-miss: the µop stays un-consumed? No — sources
                    # hand out µops destructively, so probe first.
                    # (_icache_ok fetches the line; on a miss it stalls
                    # the thread and we re-buffer the µop.)
                    self._worked = True  # the probe recorded I-side stats
                    t.source.push_back(uop)
                    break
            self._worked = True
            self._seq += 1
            uop.seq = self._seq
            budget -= 1
            t.icount += 1
            taken_redirect = False
            if uop.is_branch:
                taken_redirect = self._predict(t, uop)
            self.decode_q.push(uop, t.protocol)
            if uop.kind is UopKind.LDCTXT:
                break  # handler fetch complete; PPCV cleared by source
            if uop.mispredicted and t.wrongpath_branch is None:
                t.wrongpath_branch = uop
                t.wp_emitted = 0
                t.wp_pc = uop.pc + 4
                break
            if taken_redirect:
                break  # fetch run ends at a predicted-taken branch
        return budget

    def _fetch_thread_fast(self, t: ThreadContext, budget: int) -> int:
        """Superblock fetch for a compiled app source.

        Consumes straight-line runs between the source's memoized
        branch boundaries (``breaks``) directly off its buffer cursor,
        probing the I-cache only on a line change and handing branches
        to the shared predictor path.  Observationally identical to the
        per-µop loop in :meth:`_fetch_thread`: same µops in the same
        order, same stats, same stall/redirect points.  Only entered on
        the correct path (wrong-path fill stays on the reference loop,
        which never touches the source).
        """
        dq = self.decode_q
        room = self._dq_room - len(dq.app) - len(dq.proto)
        if room <= 0:
            return budget
        src = t.source
        buf = src.k.buffer
        i = src.pos
        n = len(buf)
        breaks = src.breaks
        b_idx = bisect_left(breaks, i)
        seq = self._seq
        line = t.cur_fetch_line
        dq_app = dq.app
        hierarchy = self.hierarchy
        limit = budget if budget < room else room
        consumed = 0
        stalled = False
        while limit > 0:
            if i >= n:
                src.pos = i
                if not src.peek_available():
                    break
                # The refill compacted the buffer: reload every local.
                buf = src.k.buffer
                i = src.pos
                n = len(buf)
                breaks = src.breaks
                b_idx = bisect_left(breaks, i)
            nb = breaks[b_idx] if b_idx < len(breaks) else n
            if i < nb:
                # Straight-line run: no branches until nb.
                end = i + limit
                if end > nb:
                    end = nb
                while i < end:
                    uop = buf[i]
                    pc_line = uop.pc >> 6
                    if pc_line != line:
                        # Line change is the rare case: build the fill
                        # callback only when a probe actually happens.
                        result = hierarchy.ifetch(
                            uop.pc, False,
                            on_complete=partial(self._ifill_done, t),
                        )
                        if result[0] != HIT:
                            t.fetch_stalled = True
                            self._worked = True  # the probe recorded stats
                            stalled = True
                            break
                        line = pc_line
                    seq += 1
                    uop.seq = seq
                    dq_app.append(uop)
                    i += 1
                    consumed += 1
                    limit -= 1
                if stalled:
                    break
                continue
            # Fetch-run boundary: one branch µop through the shared
            # predict path, then stop on a redirect exactly as the
            # reference loop does.
            uop = buf[i]
            pc_line = uop.pc >> 6
            if pc_line != line:
                result = hierarchy.ifetch(
                    uop.pc, False, on_complete=partial(self._ifill_done, t)
                )
                if result[0] != HIT:
                    t.fetch_stalled = True
                    self._worked = True
                    stalled = True
                    break
                line = pc_line
            seq += 1
            uop.seq = seq
            taken_redirect = self._predict(t, uop)
            dq_app.append(uop)
            i += 1
            b_idx += 1
            consumed += 1
            limit -= 1
            if uop.mispredicted:
                t.wrongpath_branch = uop
                t.wp_emitted = 0
                t.wp_pc = uop.pc + 4
                break
            if taken_redirect:
                break
        src.pos = i
        t.cur_fetch_line = line
        if consumed:
            self._seq = seq
            t.icount += consumed
            self._worked = True
        return budget - consumed

    def _fetch_nt(self) -> None:
        """ICOUNT(2,8) fetch for the fused multi-threaded path.

        Same candidate set and selection as :meth:`_fetch`, with the
        build-list-and-sort replaced by a single top-2 scan: the sort
        key ``(icount, not protocol)`` packs into one integer
        (``icount`` is non-negative) and strict-less-than comparisons
        keep the earlier thread on ties, exactly like the stable sort.
        Selected threads fetch through the compiled loops — superblock
        fetch for compiled app sources, the inline protocol-buffer loop
        for the protocol thread — falling back to the reference
        :meth:`_fetch_thread` for wrong-path fill and interpreted
        sources.
        """
        if self._fetch_idle:
            # Latched no-candidate verdict: every thread was done,
            # stalled, parked, or out of decode room at the last scan,
            # and no event that could change that has fired since (see
            # the latch contract in __init__).  In particular no source
            # refill is skipped: a latched thread's source was parked
            # (waiting/sleeping/done) or blocked before its
            # peek_available test, so the reference scan would not have
            # advanced it either.
            return
        dq = self.decode_q
        occupancy = len(dq.app) + len(dq.proto)
        app_room = occupancy < dq.capacity - dq.reserved
        proto_room = occupancy < dq.capacity
        best = None
        second = None
        bk = sk = 0
        for t in self.threads:
            if t.protocol:
                if not proto_room:
                    continue
            elif not app_room:
                continue
            if t.done or t.fetch_stalled:
                continue
            if t.wrongpath_branch is not None:
                if t.wp_emitted >= WRONG_PATH_CAP:
                    continue
            elif t.protocol:
                src = t.source
                if not src._buffer and not src.fetching:
                    continue  # peek_available, inlined
            elif t.compiled_src:
                src = t.source
                if src.pos >= len(src.k.buffer) and (
                    # peek_available's parked fast-reject, inlined: in
                    # these states it returns False with no refill.
                    src._waiting
                    or src._sleeping
                    or src._done
                    or not src.peek_available()
                ):
                    continue
            elif not t.source.peek_available():
                continue
            k = (t.icount << 1) | (not t.protocol)
            if best is None:
                best = t
                bk = k
            elif k < bk:
                second = best
                sk = bk
                best = t
                bk = k
            elif second is None or k < sk:
                second = t
                sk = k
        if best is None:
            self._fetch_idle = True
            return
        budget = self._fetch_width
        if best.wrongpath_branch is not None:
            budget = self._fetch_thread(best, budget)
        elif best.protocol:
            budget = self._fetch_thread_proto(best, budget)
        elif best.compiled_src:
            budget = self._fetch_thread_fast(best, budget)
        else:
            budget = self._fetch_thread(best, budget)
        if second is not None and budget > 0:
            t = second
            if t.wrongpath_branch is not None:
                self._fetch_thread(t, budget)
            elif t.protocol:
                self._fetch_thread_proto(t, budget)
            elif t.compiled_src:
                self._fetch_thread_fast(t, budget)
            else:
                self._fetch_thread(t, budget)

    def _fetch_thread_proto(self, t: ThreadContext, budget: int) -> int:
        """Correct-path fetch for the protocol thread.

        The per-µop loop of :meth:`_fetch_thread` with the source
        interface inlined for :class:`ProtocolThreadSource` — buffered
        µops off the list head, then the compiled PP engine's emit
        closure (or the reference ``_make_uop``) while a handler is
        fetching — and the I-cache probe reduced to a line-change test.
        Same µops in the same order, same stats, same stall/redirect
        points as the reference loop.
        """
        dq = self.decode_q
        room = dq.capacity - len(dq.app) - len(dq.proto)
        if room <= 0:
            return budget
        src = t.source
        buf = src._buffer
        dqp = dq.proto
        seq = self._seq
        line = t.cur_fetch_line
        hierarchy = self.hierarchy
        consumed = 0
        while budget > 0 and room > 0:
            if buf:
                uop = buf.pop(0)
            elif src.fetching:
                emit = src._emit
                uop = emit(src) if emit is not None else src._make_uop()
                if uop is None:
                    break
            else:
                break
            pc_line = uop.pc >> 6
            if pc_line != line:
                result = hierarchy.ifetch(
                    uop.pc, True, on_complete=partial(self._ifill_done, t)
                )
                if result[0] != HIT:
                    t.fetch_stalled = True
                    self._worked = True  # the probe recorded I-side stats
                    buf.insert(0, uop)  # push_back, inlined
                    break
                line = pc_line
            seq += 1
            uop.seq = seq
            budget -= 1
            room -= 1
            consumed += 1
            taken_redirect = False
            if uop.is_branch:
                taken_redirect = self._predict(t, uop)
            dqp.append(uop)
            if uop.kind is UopKind.LDCTXT:
                break  # handler fetch complete; PPCV cleared by source
            if uop.mispredicted and t.wrongpath_branch is None:
                t.wrongpath_branch = uop
                t.wp_emitted = 0
                t.wp_pc = uop.pc + 4
                break
            if taken_redirect:
                break  # fetch run ends at a predicted-taken branch
        t.cur_fetch_line = line
        if consumed:
            self._seq = seq
            t.icount += consumed
            self._worked = True
        return budget

    def _icache_ok(self, t: ThreadContext, uop: Uop) -> bool:
        line = uop.pc >> 6
        if line == t.cur_fetch_line:
            return True
        result = self.hierarchy.ifetch(
            uop.pc, t.protocol, on_complete=partial(self._ifill_done, t)
        )
        if result[0] == HIT:
            t.cur_fetch_line = line
            return True
        t.fetch_stalled = True
        return False

    def _ifill_done(self, t: ThreadContext) -> None:
        t.fetch_stalled = False
        t.cur_fetch_line = -1
        self.wake_fetch()

    def _make_synth(self, t: ThreadContext) -> Uop:
        t.wp_emitted += 1
        t.wp_pc += 4
        # Wrong-path filler: integer ops chained through a rotating
        # logical register window, consuming rename/IQ resources.  The
        # window has 8 shapes per thread (src is a function of dest),
        # so filler µops clone from a tiny template cache.
        dest = 8 + (t.wp_emitted % 8)
        key = (t.tid, dest)
        tmpl = self._synth_tmpl.get(key)
        if tmpl is None:
            src = 8 + ((t.wp_emitted - 1) % 8)
            tmpl = self._synth_tmpl[key] = Uop(
                UopKind.SYNTH, t.tid, srcs=(src,), dest=dest,
                protocol=t.protocol,
            )
        uop = tmpl.clone()
        uop.pc = t.wp_pc
        return uop

    def _predict(self, t: ThreadContext, uop: Uop) -> bool:
        """Predict a branch; returns True when fetch redirects (predicted
        taken).  Sets ``uop.mispredicted`` from the oracle outcome."""
        t.stats.branches += 1
        if t.protocol:
            self.node.stats.protocol.branches += 1
        if uop.kind is UopKind.CALL:
            t.ras.push(uop.pc + 4)
            predicted_taken = True
            target_ok = True
        elif uop.kind is UopKind.RETURN:
            predicted = t.ras.pop()
            predicted_taken = True
            target_ok = predicted == uop.target_pc
        else:
            predicted_taken = self.predictor.predict(t.tid, uop.pc)
            if predicted_taken and self.btb.lookup(uop.pc) is None:
                predicted_taken = False  # no target available
            target_ok = True
        uop.predicted_taken = predicted_taken
        uop.mispredicted = (predicted_taken != uop.taken) or (
            uop.taken and not target_ok
        )
        if uop.taken:
            self.btb.install(uop.pc, uop.target_pc)
        if uop.mispredicted:
            t.stats.mispredicts += 1
            if t.protocol:
                self.node.stats.protocol.mispredicts += 1
        return predicted_taken and not uop.mispredicted

    # ------------------------------------------------------------------
    # Decode and rename
    # ------------------------------------------------------------------

    def _decode_stage(self) -> None:
        dq = self.decode_q
        first_proto = dq._proto_first
        dq._proto_first = not first_proto
        if not dq.proto and not dq.app:
            return  # empty stage: only the priority parity advances
        moved = 0
        sections = (True, False) if first_proto else (False, True)
        for protocol in sections:
            src = dq.proto if protocol else dq.app
            while src and moved < self.pp.front_end_width:
                if not self.rename_q.can_push(protocol):
                    break
                self.rename_q.push(src.popleft(), protocol)
                moved += 1
        if moved:
            self._worked = True

    def _decode_stage_fast(self) -> None:
        """Bulk decode->rename move.

        Equivalent to :meth:`_decode_stage`: the per-µop ``can_push``
        test is monotone within one cycle (only this loop pushes), so
        the admissible count per section is computable up front and the
        µops move in one run.
        """
        dq = self.decode_q
        first_proto = dq._proto_first
        dq._proto_first = not first_proto
        rq = self.rename_q
        width = self._few
        rq_occ = len(rq.proto) + len(rq.app)
        moved = 0
        sections = (True, False) if first_proto else (False, True)
        for protocol in sections:
            src = dq.proto if protocol else dq.app
            if not src:
                continue
            cap = rq.capacity if protocol else rq.capacity - rq.reserved
            take = min(len(src), width - moved, cap - rq_occ)
            if take <= 0:
                continue
            dst = rq.proto if protocol else rq.app
            pop = src.popleft
            push = dst.append
            for _ in range(take):
                push(pop())
            moved += take
            rq_occ += take
        if moved:
            self._worked = True

    def _rename_stage(self) -> None:
        rq = self.rename_q
        first_proto = rq._proto_first
        rq._proto_first = not first_proto
        if not rq.proto and not rq.app:
            return  # empty stage: only the priority parity advances
        renamed = 0
        width = self._few
        sections = (True, False) if first_proto else (False, True)
        for protocol in sections:
            src = rq.proto if protocol else rq.app
            while src and renamed < width:
                if not self._try_rename(src[0]):
                    break
                src.popleft()
                renamed += 1
        if renamed:
            self._worked = True

    def _rename_1t(self, rqa: Deque[Uop]) -> None:
        """Rename-stage loop of :meth:`_step_1t`, specialized for
        application µops: no protocol context (every pool bound is the
        app-side ``total - reserved`` and acquires are plain ``app_used``
        increments) and no commit-stage kinds (application sources never
        emit them — SYNTH wrong-path fillers are plain ALU-class µops).
        Check order and routing match :meth:`_try_rename` exactly.
        """
        t = self._t0
        rn = self.rename
        rob = t.rob
        renamed = 0
        width = self._few
        al = self._active_list
        imap = rn.int_map[t.tid]
        fmap = rn.fp_map[t.tid]
        int_ready = rn.int_ready
        fp_ready = rn.fp_ready
        waiters = rn._waiters
        free_int = rn._free_int
        free_fp = rn._free_fp
        reserved_int = rn.reserved_int
        while renamed < width:
            uop = rqa[0]
            if uop.is_fp:
                pool = self.fq_pool
                if pool.app_used >= self._fq_cap:
                    self._rn_wait = 1
                    break
            else:
                pool = self.iq_pool
                if pool.app_used >= self._iq_cap:
                    self._rn_wait = 1
                    break
            if len(rob) >= al:
                self._rn_wait = 2
                break
            dest = uop.dest
            if dest is not None:
                if dest >= FP_BASE:
                    if not free_fp:
                        self._rn_wait = 2
                        break
                elif len(free_int) <= reserved_int:
                    self._rn_wait = 2
                    break
            is_mem = uop.is_memory
            if is_mem:
                if self.lsq_pool.app_used >= self._lsq_cap:
                    self._rn_wait = 2
                    break
            if uop.is_branch:
                bp = self.bstack_pool
                if bp.app_used >= self._bs_cap:
                    self._rn_wait = 2
                    break
                bp.app_used += 1
                uop.checkpoint = rn.checkpoint(t.tid, t.ras.snapshot())
            if is_mem:
                self.lsq_pool.app_used += 1
                uop.in_lsq = True
                if uop.kind is not UopKind.PREFETCH:
                    uop.mem_seq = t.mem_seq_next
                    t.mem_seq_next += 1
            # rename.rename(uop), inlined for the app thread (no
            # protocol register accounting); one call per renamed uop
            # otherwise.
            srcs = uop.srcs
            if srcs:
                n_wait = 0
                psrcs: List[int] = []
                for s in srcs:
                    if s >= FP_BASE:
                        r = fmap[s - FP_BASE]
                        p = r + (1 << 20)
                        ready = fp_ready[r]
                    else:
                        p = imap[s]
                        ready = int_ready[p]
                    psrcs.append(p)
                    if not ready:
                        n_wait += 1
                        lst = waiters.get(p)
                        if lst is None:
                            waiters[p] = [uop]
                        else:
                            lst.append(uop)
                uop.psrcs = tuple(psrcs)
                uop.n_wait = n_wait
            else:
                uop.psrcs = ()
            if dest is not None:
                if dest >= FP_BASE:
                    preg = free_fp.pop()
                    fp_ready[preg] = False
                    uop.pdest = preg + (1 << 20)
                    uop.pdest_old = fmap[dest - FP_BASE] + (1 << 20)
                    fmap[dest - FP_BASE] = preg
                else:
                    preg = free_int.pop()
                    int_ready[preg] = False
                    uop.pdest = preg
                    uop.pdest_old = imap[dest]
                    imap[dest] = preg
            rob.append(uop)
            pool.app_used += 1
            pos = self._iq_pos + 1
            self._iq_pos = pos
            uop.iq_pos = pos
            if is_mem:
                if uop.kind is UopKind.PREFETCH:
                    self._pf_fifo.append(uop)
                else:
                    self._t0_fifo.append(uop)
                if not uop.n_wait:
                    self._mem_ready += 1
            elif not uop.n_wait:
                heappush(
                    self._fqr if uop.is_fp else self._iqr, (pos, uop)
                )
            rqa.popleft()
            renamed += 1
            if not rqa:
                break
        if renamed:
            self._worked = True

    def _try_rename(self, uop: Uop) -> bool:
        # Rename-stage resource gate.  Retried every cycle for a
        # stalled queue head, so the failure checks are inlined pool
        # arithmetic (can_rename/can_acquire bodies) rather than method
        # calls — the semantics are identical.
        t = self.threads[uop.thread]
        protocol = uop.protocol
        commit_stage = uop.commit_stage
        # The issue-queue pool is by far the most frequent blocker, so
        # it is tested first (the checks are independent and pure).
        # Every failure latches _rn_wait: until some resource frees,
        # retrying this same head is pointless (see __init__).
        if not commit_stage:
            pool = self.fq_pool if uop.is_fp else self.iq_pool
            if pool.app_used + pool.proto_used >= (
                pool.total if protocol else pool.total - pool.reserved
            ):
                self._rn_wait = 1
                return False
        if len(t.rob) >= self._active_list:
            self._rn_wait = 2
            return False
        rn = self.rename
        dest = uop.dest
        if dest is not None:
            if dest >= FP_BASE:
                if not rn._free_fp:
                    self._rn_wait = 2
                    return False
            elif len(rn._free_int) <= (0 if protocol else rn.reserved_int):
                self._rn_wait = 2
                return False
        # SWITCH/LDCTXT are uncached loads: they hold LSQ slots until
        # they graduate (the paper's "switch stalls the head of the
        # load/store queue").
        needs_lsq = uop.is_memory or (
            commit_stage and uop.kind is not UopKind.UNCACHED
        )
        if needs_lsq:
            lp = self.lsq_pool
            if lp.app_used + lp.proto_used >= (
                lp.total if protocol else lp.total - lp.reserved
            ):
                self._rn_wait = 2
                return False
        if uop.is_branch:
            bp = self.bstack_pool
            if bp.app_used + bp.proto_used >= (
                bp.total if protocol else bp.total - bp.reserved
            ):
                self._rn_wait = 2
                return False

        if uop.is_branch:
            self.bstack_pool.acquire(protocol)
            uop.checkpoint = rn.checkpoint(uop.thread, t.ras.snapshot())
        if needs_lsq:
            self.lsq_pool.acquire(protocol)
            uop.in_lsq = True
            if uop.is_memory and uop.kind is not UopKind.PREFETCH:
                uop.mem_seq = t.mem_seq_next
                t.mem_seq_next += 1
        rn.rename(uop)
        t.rob.append(uop)
        if not commit_stage:
            pool.acquire(protocol)
            if self._fast:
                # Compiled issue path: route by wait reason instead of
                # appending to the flat scan list.  iq_pos freezes the
                # reference scan order (= admission order) so the
                # heaps/FIFOs replay it exactly.
                self._iq_pos += 1
                uop.iq_pos = self._iq_pos
                if uop.is_memory:
                    if uop.kind is UopKind.PREFETCH:
                        self._pf_fifo.append(uop)
                    else:
                        self._mem_fifo[uop.thread].append(uop)
                    if not uop.n_wait:
                        self._mem_ready += 1
                elif not uop.n_wait:
                    heappush(
                        self._fqr if uop.is_fp else self._iqr,
                        (self._iq_pos, uop),
                    )
                # else: admitted by _uop_ready when n_wait hits 0.
            else:
                (self.fq if uop.is_fp else self.iq).append(uop)
        # Table 9 peaks are tracked by the pools / rename unit.
        return True

    # ------------------------------------------------------------------
    # Issue and execute
    # ------------------------------------------------------------------

    def _issue(self) -> None:
        alu = 6
        agu = 1
        fpu = 3
        if self.iq:
            threads = self.threads
            kept: List[Uop] = []
            keep = kept.append
            for uop in self.iq:
                if uop.squashed:
                    continue
                if alu <= 0 and agu <= 0:
                    keep(uop)
                    continue
                issued = False
                if uop.is_memory:
                    if agu > 0 and not uop.n_wait and self._can_issue_mem(uop):
                        # Even a BLOCKED attempt records hierarchy stats,
                        # so an issuable memory µop keeps the core awake.
                        self._worked = True
                        issued = self._issue_mem(uop)
                        if issued:
                            agu -= 1
                else:
                    if alu > 0 and not uop.n_wait:
                        if uop.kind is UopKind.DIV:
                            if self.div_free_at > self.cycle:
                                keep(uop)
                                self._note_unit_wake(self.div_free_at)
                                continue
                            self.div_free_at = self.cycle + self.pp.int_div_latency
                        issued = True
                        alu -= 1
                        self._schedule_complete(uop, self._latency_of(uop))
                if issued:
                    self._worked = True
                    uop.issued = True
                    threads[uop.thread].icount -= 1
                    self.iq_pool.release(uop.protocol)
                else:
                    keep(uop)
            self.iq = kept
        if self.fq:
            kept = []
            keep = kept.append
            for uop in self.fq:
                if uop.squashed:
                    continue
                if fpu > 0 and not uop.n_wait:
                    if uop.kind is UopKind.FDIV:
                        if self.fdiv_free_at > self.cycle:
                            keep(uop)
                            self._note_unit_wake(self.fdiv_free_at)
                            continue
                        self.fdiv_free_at = self.cycle + self.pp.fp_div_dp_latency
                    fpu -= 1
                    self._worked = True
                    uop.issued = True
                    self.threads[uop.thread].icount -= 1
                    self.fq_pool.release(uop.protocol)
                    self._schedule_complete(uop, self._latency_of(uop))
                else:
                    keep(uop)
            self.fq = kept

    def _uop_ready(self, uop: Uop) -> None:
        """Rename-unit hook: ``uop``'s last pending source completed.

        Memory µops are issue-gated by their per-thread FIFO head scan
        (and commit-stage µops never join the window), so only waiting
        non-memory µops are admitted to the ready heaps here; memory
        µops bump the ready count that gates the FIFO scan.  The count
        is bumped even for a squashed µop so the lazy drop's
        ``n_wait == 0`` decrement always balances.
        """
        if uop.is_memory:
            self._mem_ready += 1
            return
        if uop.squashed or uop.commit_stage:
            return
        heappush(self._fqr if uop.is_fp else self._iqr, (uop.iq_pos, uop))

    def _issue_fast(self) -> None:
        """Compiled issue: process only actionable µops, in the exact
        order the reference :meth:`_issue` scan would reach them.

        Candidates and their order are fixed at entry: completions are
        wheel-scheduled at least one cycle out and active-memory
        requests are asynchronous, so nothing becomes ready mid-scan;
        with one AGU a successful memory issue cannot enable a second
        same-thread candidate within the cycle.  Memory candidates are
        the per-thread FIFO heads (an older un-issued access always
        blocks younger ones via ``mem_issue_next``) plus the oldest
        prefetch; they interleave with the ready-heap µops by admission
        order, mirroring the reference's single-list walk, and a
        BLOCKED attempt leaves the head in place to retry — and mutate
        hierarchy stats — every cycle, exactly like the kept-list scan.
        """
        cycle = self.cycle
        threads = self.threads
        # -- collect memory candidates --------------------------------
        mem: List[Uop] = []
        if self._mem_ready:
            sb_fifo = self._sb_fifo
            for tid, fifo in self._mem_fifo.items():
                while fifo and fifo[0].squashed:
                    if not fifo[0].n_wait:
                        self._mem_ready -= 1
                    fifo.popleft()
                if not fifo:
                    continue
                head = fifo[0]
                if head.n_wait:
                    continue
                t = threads[tid]
                if head.mem_seq != t.mem_issue_next:
                    continue
                if head.kind is UopKind.ATOMIC and not (
                    t.rob and t.rob[0] is head and not sb_fifo[tid]
                ):
                    continue
                mem.append(head)
            pf = self._pf_fifo
            while pf and pf[0].squashed:
                self._mem_ready -= 1  # prefetches are always ready
                pf.popleft()
            if pf:
                mem.append(pf[0])
            if len(mem) == 2:
                if mem[0].iq_pos > mem[1].iq_pos:
                    mem.reverse()
            elif len(mem) > 2:
                mem.sort(key=attrgetter("iq_pos"))
        # -- integer + memory, merged in admission order ---------------
        alu = 6
        agu = 1
        iqr = self._iqr
        gated: List[Tuple[int, Uop]] = []
        if not mem:
            # Common case — no issuable memory head this cycle: a pure
            # heap drain, no merge bookkeeping.
            while alu > 0 and iqr:
                pos, uop = heappop(iqr)
                if uop.squashed:
                    continue
                if uop.kind is UopKind.DIV:
                    if self.div_free_at > cycle:
                        self._note_unit_wake(self.div_free_at)
                        gated.append((pos, uop))
                        continue
                    self.div_free_at = cycle + self.pp.int_div_latency
                alu -= 1
                self._worked = True
                uop.issued = True
                threads[uop.thread].icount -= 1
                self.iq_pool.release(uop.protocol)
                self._schedule_complete(uop, self._latency_of(uop))
        else:
            inf = 1 << 62
            mi = 0
            mn = len(mem)
            while True:
                hpos = iqr[0][0] if (alu > 0 and iqr) else inf
                mpos = mem[mi].iq_pos if (agu > 0 and mi < mn) else inf
                if hpos <= mpos:
                    if hpos == inf:
                        break
                    pos, uop = heappop(iqr)
                    if uop.squashed:
                        continue
                    if uop.kind is UopKind.DIV:
                        if self.div_free_at > cycle:
                            # Unit busy: park outside the heap so the
                            # scan moves past it, re-admit after.
                            self._note_unit_wake(self.div_free_at)
                            gated.append((pos, uop))
                            continue
                        self.div_free_at = cycle + self.pp.int_div_latency
                    alu -= 1
                    self._worked = True
                    uop.issued = True
                    threads[uop.thread].icount -= 1
                    self.iq_pool.release(uop.protocol)
                    self._schedule_complete(uop, self._latency_of(uop))
                else:
                    uop = mem[mi]
                    mi += 1
                    # Even a BLOCKED attempt records hierarchy stats, so
                    # an issuable memory µop keeps the core awake.
                    self._worked = True
                    if self._issue_mem(uop):
                        agu -= 1
                        uop.issued = True
                        threads[uop.thread].icount -= 1
                        self.iq_pool.release(uop.protocol)
                        if uop.kind is UopKind.PREFETCH:
                            self._pf_fifo.popleft()
                        else:
                            self._mem_fifo[uop.thread].popleft()
                        self._mem_ready -= 1  # an issued head was ready
        for entry in gated:
            heappush(iqr, entry)
        # -- floating point -------------------------------------------
        fpu = 3
        fqr = self._fqr
        if fqr:
            del gated[:]
            while fpu > 0 and fqr:
                pos, uop = heappop(fqr)
                if uop.squashed:
                    continue
                if uop.kind is UopKind.FDIV:
                    if self.fdiv_free_at > cycle:
                        self._note_unit_wake(self.fdiv_free_at)
                        gated.append((pos, uop))
                        continue
                    self.fdiv_free_at = cycle + self.pp.fp_div_dp_latency
                fpu -= 1
                self._worked = True
                uop.issued = True
                threads[uop.thread].icount -= 1
                self.fq_pool.release(uop.protocol)
                self._schedule_complete(uop, self._latency_of(uop))
            for entry in gated:
                heappush(fqr, entry)

    def _issue_1t(self) -> None:
        """:meth:`_issue_fast`, specialized for the fused one-app-thread
        core (:meth:`_step_1t`).

        The only possible memory candidates are this thread's FIFO head
        and the oldest prefetch, so the per-thread collection walk is
        gone.  Application memory µops are never squashed — wrong-path
        fetch emits SYNTH fillers only, and SYNTH is not a memory kind —
        so the FIFO lazy squash-drops vanish too; SYNTH µops do reach
        the integer heap, so its squash test stays.  Pool releases are
        inlined for the app side (``release(False)`` is a plain
        ``app_used`` decrement).
        """
        cycle = self.cycle
        t = self._t0
        wheel = self.wheel
        wheel_heap = wheel._heap
        now = wheel.now
        mem: List[Uop] = []
        fifo = self._t0_fifo
        if fifo:
            head = fifo[0]
            if (
                not head.n_wait
                and head.mem_seq == t.mem_issue_next
                and (
                    head.kind is not UopKind.ATOMIC
                    or (t.rob and t.rob[0] is head and not self._t0_sb)
                )
            ):
                mem.append(head)
        pf = self._pf_fifo
        if pf:
            mem.append(pf[0])
            if len(mem) == 2 and mem[0].iq_pos > mem[1].iq_pos:
                mem.reverse()
        alu = 6
        iqr = self._iqr
        gated = self._gated  # persistent scratch; always left empty
        if not mem:
            while alu > 0 and iqr:
                pos, uop = heappop(iqr)
                if uop.squashed:
                    continue
                if uop.kind is UopKind.DIV:
                    if self.div_free_at > cycle:
                        self._note_unit_wake(self.div_free_at)
                        gated.append((pos, uop))
                        continue
                    self.div_free_at = cycle + self.pp.int_div_latency
                alu -= 1
                self._worked = True
                uop.issued = True
                t.icount -= 1
                self.iq_pool.app_used -= 1
                self._rn_wait = 0
                # _schedule_complete, inlined (once per issued µop).
                lat = _LAT1[uop.kind] if uop.latency == 1 else self._latency_of(uop)
                wheel._seq += 1
                heappush(
                    wheel_heap,
                    (now + lat, wheel._seq, partial(self._complete, uop, False)),
                )
        else:
            inf = 1 << 62
            agu = 1
            mi = 0
            mn = len(mem)
            while True:
                hpos = iqr[0][0] if (alu > 0 and iqr) else inf
                mpos = mem[mi].iq_pos if (agu > 0 and mi < mn) else inf
                if hpos <= mpos:
                    if hpos == inf:
                        break
                    pos, uop = heappop(iqr)
                    if uop.squashed:
                        continue
                    if uop.kind is UopKind.DIV:
                        if self.div_free_at > cycle:
                            self._note_unit_wake(self.div_free_at)
                            gated.append((pos, uop))
                            continue
                        self.div_free_at = cycle + self.pp.int_div_latency
                    alu -= 1
                    self._worked = True
                    uop.issued = True
                    t.icount -= 1
                    self.iq_pool.app_used -= 1
                    self._rn_wait = 0
                    lat = (_LAT1[uop.kind] if uop.latency == 1
                           else self._latency_of(uop))
                    wheel._seq += 1
                    heappush(
                        wheel_heap,
                        (now + lat, wheel._seq,
                         partial(self._complete, uop, False)),
                    )
                else:
                    uop = mem[mi]
                    mi += 1
                    # Even a BLOCKED attempt records hierarchy stats, so
                    # an issuable memory µop keeps the core awake.
                    self._worked = True
                    if self._issue_mem(uop):
                        agu -= 1
                        uop.issued = True
                        t.icount -= 1
                        self.iq_pool.app_used -= 1
                        self._rn_wait = 0
                        if uop.kind is UopKind.PREFETCH:
                            pf.popleft()
                        else:
                            fifo.popleft()
                        self._mem_ready -= 1  # an issued head was ready
        if gated:
            for entry in gated:
                heappush(iqr, entry)
            del gated[:]
        fqr = self._fqr
        if fqr:
            fpu = 3
            while fpu > 0 and fqr:
                pos, uop = heappop(fqr)
                if uop.squashed:
                    continue
                if uop.kind is UopKind.FDIV:
                    if self.fdiv_free_at > cycle:
                        self._note_unit_wake(self.fdiv_free_at)
                        gated.append((pos, uop))
                        continue
                    self.fdiv_free_at = cycle + self.pp.fp_div_dp_latency
                fpu -= 1
                self._worked = True
                uop.issued = True
                t.icount -= 1
                self.fq_pool.app_used -= 1
                self._rn_wait = 0
                lat = (_LAT1[uop.kind] if uop.latency == 1
                       else self._latency_of(uop))
                wheel._seq += 1
                heappush(
                    wheel_heap,
                    (now + lat, wheel._seq,
                     partial(self._complete, uop, False)),
                )
            if gated:
                for entry in gated:
                    heappush(fqr, entry)
                del gated[:]

    def _issue_nt(self) -> None:
        """:meth:`_issue_fast` with the per-issue bookkeeping inlined
        for the fused multi-threaded core: completion scheduling as a
        direct wheel-heap push (:meth:`_schedule_complete` flattened),
        pool releases as plain used-counter arithmetic, and every issue
        clearing the rename-stall latches (an issue frees an IQ/FQ
        slot, so a latched rename head may now succeed).  Candidate set
        and order are exactly :meth:`_issue_fast`'s.
        """
        cycle = self.cycle
        threads = self.threads
        wheel = self.wheel
        wheel_heap = wheel._heap
        now = wheel.now
        iq_pool = self.iq_pool
        # -- collect memory candidates --------------------------------
        mem: List[Uop] = []
        if self._mem_ready:
            sb_fifo = self._sb_fifo
            for tid, fifo in self._mem_items:
                while fifo and fifo[0].squashed:
                    if not fifo[0].n_wait:
                        self._mem_ready -= 1
                    fifo.popleft()
                if not fifo:
                    continue
                head = fifo[0]
                if head.n_wait:
                    continue
                t = threads[tid]
                if head.mem_seq != t.mem_issue_next:
                    continue
                if head.kind is UopKind.ATOMIC and not (
                    t.rob and t.rob[0] is head and not sb_fifo[tid]
                ):
                    continue
                mem.append(head)
            pf = self._pf_fifo
            while pf and pf[0].squashed:
                self._mem_ready -= 1  # prefetches are always ready
                pf.popleft()
            if pf:
                mem.append(pf[0])
            if len(mem) == 2:
                if mem[0].iq_pos > mem[1].iq_pos:
                    mem.reverse()
            elif len(mem) > 2:
                mem.sort(key=attrgetter("iq_pos"))
        # -- integer + memory, merged in admission order ---------------
        alu = 6
        iqr = self._iqr
        gated = self._gated  # persistent scratch; always left empty
        if not mem:
            while alu > 0 and iqr:
                pos, uop = heappop(iqr)
                if uop.squashed:
                    continue
                if uop.kind is UopKind.DIV:
                    if self.div_free_at > cycle:
                        self._note_unit_wake(self.div_free_at)
                        gated.append((pos, uop))
                        continue
                    self.div_free_at = cycle + self.pp.int_div_latency
                alu -= 1
                self._worked = True
                uop.issued = True
                threads[uop.thread].icount -= 1
                if uop.protocol:
                    iq_pool.proto_used -= 1
                else:
                    iq_pool.app_used -= 1
                self._rn_wait = 0
                self._rn_wait_app = 0
                self._rn_wait_proto = 0
                lat = (_LAT1[uop.kind] if uop.latency == 1
                       else self._latency_of(uop))
                wheel._seq += 1
                heappush(
                    wheel_heap,
                    (now + lat, wheel._seq,
                     partial(self._complete, uop, False)),
                )
        else:
            inf = 1 << 62
            agu = 1
            mi = 0
            mn = len(mem)
            while True:
                hpos = iqr[0][0] if (alu > 0 and iqr) else inf
                mpos = mem[mi].iq_pos if (agu > 0 and mi < mn) else inf
                if hpos <= mpos:
                    if hpos == inf:
                        break
                    pos, uop = heappop(iqr)
                    if uop.squashed:
                        continue
                    if uop.kind is UopKind.DIV:
                        if self.div_free_at > cycle:
                            self._note_unit_wake(self.div_free_at)
                            gated.append((pos, uop))
                            continue
                        self.div_free_at = cycle + self.pp.int_div_latency
                    alu -= 1
                    self._worked = True
                    uop.issued = True
                    threads[uop.thread].icount -= 1
                    if uop.protocol:
                        iq_pool.proto_used -= 1
                    else:
                        iq_pool.app_used -= 1
                    self._rn_wait = 0
                    self._rn_wait_app = 0
                    self._rn_wait_proto = 0
                    lat = (_LAT1[uop.kind] if uop.latency == 1
                           else self._latency_of(uop))
                    wheel._seq += 1
                    heappush(
                        wheel_heap,
                        (now + lat, wheel._seq,
                         partial(self._complete, uop, False)),
                    )
                else:
                    uop = mem[mi]
                    mi += 1
                    # Even a BLOCKED attempt records hierarchy stats, so
                    # an issuable memory µop keeps the core awake.
                    self._worked = True
                    if self._issue_mem(uop):
                        agu -= 1
                        uop.issued = True
                        threads[uop.thread].icount -= 1
                        if uop.protocol:
                            iq_pool.proto_used -= 1
                        else:
                            iq_pool.app_used -= 1
                        self._rn_wait = 0
                        self._rn_wait_app = 0
                        self._rn_wait_proto = 0
                        if uop.kind is UopKind.PREFETCH:
                            self._pf_fifo.popleft()
                        else:
                            self._mem_fifo[uop.thread].popleft()
                        self._mem_ready -= 1  # an issued head was ready
        if gated:
            for entry in gated:
                heappush(iqr, entry)
            del gated[:]
        # -- floating point -------------------------------------------
        fqr = self._fqr
        if fqr:
            fpu = 3
            fq_pool = self.fq_pool
            while fpu > 0 and fqr:
                pos, uop = heappop(fqr)
                if uop.squashed:
                    continue
                if uop.kind is UopKind.FDIV:
                    if self.fdiv_free_at > cycle:
                        self._note_unit_wake(self.fdiv_free_at)
                        gated.append((pos, uop))
                        continue
                    self.fdiv_free_at = cycle + self.pp.fp_div_dp_latency
                fpu -= 1
                self._worked = True
                uop.issued = True
                threads[uop.thread].icount -= 1
                if uop.protocol:
                    fq_pool.proto_used -= 1
                else:
                    fq_pool.app_used -= 1
                self._rn_wait = 0
                self._rn_wait_app = 0
                self._rn_wait_proto = 0
                lat = (_LAT1[uop.kind] if uop.latency == 1
                       else self._latency_of(uop))
                wheel._seq += 1
                heappush(
                    wheel_heap,
                    (now + lat, wheel._seq,
                     partial(self._complete, uop, False)),
                )
            if gated:
                for entry in gated:
                    heappush(fqr, entry)
                del gated[:]

    def _latency_of(self, uop: Uop) -> int:
        base = _EXEC_LATENCY.get(uop.kind, uop.latency)
        if uop.latency > 1 and uop.kind is UopKind.ALU:
            base = uop.latency  # e.g. slow POPC/CTZ ablation
        return READ_STAGES + base

    def _can_issue_mem(self, uop: Uop) -> bool:
        t = self.threads[uop.thread]
        if uop.kind is UopKind.PREFETCH:
            return True
        if uop.mem_seq != t.mem_issue_next:
            return False
        if uop.kind is UopKind.ATOMIC:
            # Non-speculative and SC-ordered: all older instructions
            # retired and all older stores globally performed.
            return bool(t.rob) and t.rob[0] is uop and not self._sb_fifo[t.tid]
        return True

    def _issue_mem(self, uop: Uop) -> bool:
        t = self.threads[uop.thread]
        if uop.kind is UopKind.PREFETCH:
            self.hierarchy.prefetch(uop.addr, uop.exclusive)
            t.stats.prefetches += 1
            self._schedule_complete(uop, READ_STAGES + 1)
            return True
        if uop.kind is UopKind.STORE:
            # Address resolution only; data goes to memory post-commit.
            word = uop.addr & ~7
            self._pending_stores.setdefault((uop.thread, word), []).append(
                uop.value if uop.value is not None else 0
            )
            t.mem_issue_next += 1
            self._schedule_complete(uop, READ_STAGES + 1)
            return True
        if uop.kind is UopKind.ATOMIC:
            if uop.atomic_op in AM_OPS:
                # Active-memory extension: uncached remote op at home.
                self.node.mc.am_request(
                    uop.addr, AM_OPS[uop.atomic_op], uop.operand,
                    partial(self._mem_value_done, uop),
                )
                t.mem_issue_next += 1
                return True
            result = self.hierarchy.atomic(
                uop.addr, uop.atomic_op, uop.operand,
                on_complete=partial(self._mem_value_done, uop),
            )
            if result[0] == BLOCKED:
                return False
            t.mem_issue_next += 1
            if result[0] == HIT:
                uop.result_value = result[2]
                self._schedule_complete(uop, READ_STAGES + result[1], carry_value=True)
            return True
        # LOAD: same-thread store forwarding first.
        word = uop.addr & ~7
        pending = self._pending_stores.get((uop.thread, word))
        if pending:
            uop.result_value = pending[-1]
            t.mem_issue_next += 1
            self._schedule_complete(uop, READ_STAGES + 2, carry_value=True)
            return True
        result = self.hierarchy.load(
            uop.addr, uop.protocol,
            on_complete=partial(self._mem_value_done, uop),
        )
        if result[0] == BLOCKED:
            return False
        t.mem_issue_next += 1
        if result[0] == HIT:
            uop.result_value = result[2]
            self._schedule_complete(uop, READ_STAGES + result[1], carry_value=True)
        return True

    def _mem_value_done(self, uop: Uop, value: int) -> None:
        """A miss completed (callback from the memory system)."""
        uop.result_value = value
        self._complete(uop, carry_value=True)

    def _schedule_complete(self, uop: Uop, latency: int, carry_value: bool = False) -> None:
        # wheel.schedule(max(1, latency), ...), with the wrapper calls
        # flattened — this runs once per issued µop.
        wheel = self.wheel
        wheel._seq += 1
        heappush(
            wheel._heap,
            (
                wheel.now + (latency if latency > 1 else 1),
                wheel._seq,
                partial(self._complete, uop, carry_value),
            ),
        )

    def _complete(self, uop: Uop, carry_value: bool = False) -> None:
        self._wake_flag = True
        # Only a completion of a thread's *window head* can change the
        # commit scan's verdict (the scan examines heads only, and a
        # valid cache pins the heads); the fetch candidate set only
        # changes on the value-carrying path (a load value can unpark
        # its source) or a mispredict squash (_resolve_branch clears
        # both latches).
        if self._cm_stall is not None:
            rob = self.threads[uop.thread].rob
            if rob and rob[0] is uop:
                self._cm_stall = None
        if self._asleep:
            # wake(), inlined: rejoin the machine's active set.
            self._asleep = False
            m = self.machine
            if m is not None:
                m._cores_dirty = True
        if uop.squashed or uop.completed:
            return
        uop.completed = True
        uop.complete_cycle = self.wheel.now
        preg = uop.pdest
        if preg != -1:
            # rename.mark_ready, inlined (once per completed µop).
            rn = self.rename
            if preg >= 1 << 20:
                rn.fp_ready[preg - (1 << 20)] = True
            else:
                rn.int_ready[preg] = True
            lst = rn._waiters.pop(preg, None)
            if lst is not None:
                cb = rn.on_ready
                if cb is None:
                    for u in lst:
                        u.n_wait -= 1
                else:
                    for u in lst:
                        n = u.n_wait - 1
                        u.n_wait = n
                        # Fire only on the decrement that completes the
                        # last dependence (repeated sources appear twice).
                        if n == 0:
                            cb(u)
        if uop.is_branch:
            self._resolve_branch(uop)
        if carry_value and uop.on_value is not None:
            self._fetch_idle = False
            uop.on_value(uop.result_value)

    # ------------------------------------------------------------------
    # Branch resolution and recovery
    # ------------------------------------------------------------------

    def _resolve_branch(self, uop: Uop) -> None:
        if uop.kind is UopKind.BRANCH:
            self.predictor.update(uop.thread, uop.pc, uop.taken)
        if not uop.mispredicted:
            return
        # The front-end flush below can remove the stalled rename-queue
        # head itself (a new head may rename without anything freeing).
        self._rn_wait = 0
        self._rn_wait_app = 0
        self._rn_wait_proto = 0
        # Squash changes front-end occupancy and wrong-path state, and
        # mutates the window: drop both quiet-stage latches.
        self._cm_stall = None
        self._fetch_idle = False
        t = self.threads[uop.thread]
        squashed_any = False
        while t.rob and t.rob[-1] is not uop:
            victim = t.rob.pop()
            self._squash(victim)
            squashed_any = True
        # Front-end squash: wrong-path µops still sitting in the decode
        # or rename queues are flushed too (they own no registers or
        # window slots yet — only ICOUNT).
        for q in (self.decode_q, self.rename_q):
            section = q.proto if t.protocol else q.app
            for queued in list(section):
                if queued.thread == t.tid and queued.seq > uop.seq:
                    section.remove(queued)
                    queued.squashed = True
                    t.icount -= 1
                    t.stats.squashed += 1
                    if t.protocol:
                        self.node.stats.protocol.squashed += 1
                    squashed_any = True
        self.rename.restore(uop.checkpoint)
        t.ras.repair(uop.checkpoint.ras_snap)
        t.wrongpath_branch = None
        t.cur_fetch_line = -1  # refetch redirects the I-stream
        if squashed_any and t.protocol:
            self.node.stats.protocol.squash_cycles += 1

    def _squash(self, victim: Uop) -> None:
        self._rn_wait = 0  # the victim's resources come back
        self._rn_wait_app = 0
        self._rn_wait_proto = 0
        victim.squashed = True
        t = self.threads[victim.thread]
        t.stats.squashed += 1
        if t.protocol:
            self.node.stats.protocol.squashed += 1
        if not victim.issued and not victim.commit_stage:
            t.icount -= 1
            pool = self.fq_pool if victim.is_fp else self.iq_pool
            pool.release(victim.protocol)
        elif victim.commit_stage:
            t.icount -= 1
        if victim.in_lsq:
            self.lsq_pool.release(victim.protocol)
            if victim.mem_seq >= 0:
                t.mem_seq_next = min(t.mem_seq_next, victim.mem_seq)
        if victim.is_branch:
            self.bstack_pool.release(victim.protocol)
        self.rename.squash_free(victim)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        # Memory-stall accounting (paper §4: per application thread).
        # The head-retirability scan doubles as the retire-loop gate:
        # _retirable is side-effect free, and stall counting mutates
        # nothing it reads, so "no head retirable here" still holds at
        # the retire loop — skipping it retires exactly what the full
        # scan would (nothing).
        threads = self.threads
        retirable = self._retirable
        sb = self.sb_pool
        any_ready = False
        for t in threads:
            rob = t.rob
            if rob:
                head = rob[0]
                # _retirable, inlined for the dominant cases: completed
                # non-store (and completed store with SB room) retires;
                # commit-stage µops take the slow predicate.
                if head.completed:
                    if head.kind is not UopKind.STORE or (
                        sb.app_used + sb.proto_used
                        < (sb.total if head.protocol else sb.total - sb.reserved)
                    ):
                        any_ready = True
                        continue
                elif head.commit_stage and retirable(head):
                    any_ready = True
                    continue
                if head.is_memory:
                    t.stats.memory_stall_cycles += 1
                else:
                    t.stats.other_stall_cycles += 1
        n = len(threads)
        committed_any = False
        if any_ready:
            budget = self._commit_width
            rr = self._rr
            for i in range(n):
                t = threads[(rr + i) % n]
                rob = t.rob
                while budget > 0 and rob:
                    head = rob[0]
                    if head.completed:
                        if head.kind is UopKind.STORE and (
                            sb.app_used + sb.proto_used
                            >= (sb.total if head.protocol else sb.total - sb.reserved)
                        ):
                            break
                    elif not (head.commit_stage and retirable(head)):
                        break
                    self._retire(t, head)
                    rob.popleft()
                    budget -= 1
                    committed_any = True
                if budget <= 0:
                    break
        self._rr = (self._rr + 1) % n
        if committed_any:
            self._worked = True
            if self.machine is not None:
                self.machine.note_progress()
        for t in self._app_threads:
            if not t.done and not t.rob and t.icount == 0 and t.source.done:
                t.done = True
                t.stats.finish_cycle = self.cycle
                t.stats.done = True
                self._worked = True

    def _retirable(self, uop: Uop) -> bool:
        if uop.commit_stage:
            if uop.kind in (UopKind.SWITCH, UopKind.LDCTXT):
                return uop.ctx is not None and self.threads[
                    uop.thread
                ].source.next_ctx_available(uop.ctx)
            return True  # UNCACHED executes right at retirement
        if uop.kind is UopKind.STORE:
            return uop.completed and self.sb_pool.can_acquire(uop.protocol)
        return uop.completed

    def _retire(self, t: ThreadContext, uop: Uop) -> None:
        # Retirement frees window/register/LSQ/branch-stack resources,
        # but no issue-queue slot: code 1 stays latched.
        self._rn_wait &= 1
        self._rn_wait_app &= 1
        self._rn_wait_proto &= 1
        if uop.commit_stage:
            t.icount -= 1  # commit-stage µops never joined the IQ
            if uop.kind is UopKind.UNCACHED:
                self.node.mc.uncached_op(uop.ctx, uop.pinstr, uop.value or 0)
            elif uop.kind is UopKind.LDCTXT:
                if uop.pdest != -1:
                    self.rename.mark_ready(uop.pdest)
                t.source.handler_committed(uop.ctx)
            else:  # SWITCH
                if uop.pdest != -1:
                    self.rename.mark_ready(uop.pdest)
        if uop.kind is UopKind.STORE:
            self.sb_pool.acquire(uop.protocol)
            fifo = self._sb_fifo[uop.thread]
            fifo.append(uop)
            if len(fifo) == 1:
                self._drain_store(uop)
        if uop.in_lsq:
            self.lsq_pool.release(uop.protocol)
        if uop.is_branch:
            self.bstack_pool.release(uop.protocol)
        self.rename.commit_free(uop)
        t.stats.committed += 1
        if uop.spin:
            t.stats.spin_committed += 1
        if t.protocol:
            self.node.stats.protocol.instructions += 1
        if uop.kind is UopKind.LOAD:
            t.stats.loads += 1
        elif uop.kind is UopKind.STORE:
            t.stats.stores += 1

    def _drain_store(self, uop: Uop) -> None:
        self.wake_quiet()
        result = self.hierarchy.store(
            uop.addr, uop.protocol, uop.value,
            on_complete=partial(self._store_drained, uop),
        )
        if result[0] == BLOCKED:
            self.wheel.schedule(2, partial(self._drain_store, uop))
            return
        if result[0] == HIT:
            self.wheel.schedule(result[1], partial(self._store_drained, uop))

    def _store_drained(self, uop: Uop, _value: Optional[int] = None) -> None:
        # Store-buffer release: an sb-blocked STORE head may now
        # retire; the fetch candidate set is untouched.
        self._wake_flag = True
        self._cm_stall = None
        if self._asleep:
            self._asleep = False
            m = self.machine
            if m is not None:
                m._cores_dirty = True
        self.sb_pool.release(uop.protocol)
        word = uop.addr & ~7
        pending = self._pending_stores.get((uop.thread, word))
        if pending:
            pending.pop(0)
            if not pending:
                del self._pending_stores[(uop.thread, word)]
        fifo = self._sb_fifo[uop.thread]
        if fifo and fifo[0] is uop:
            fifo.popleft()
            if fifo:
                self._drain_store(fifo[0])

    # ------------------------------------------------------------------
    # Table 9 sampling hook
    # ------------------------------------------------------------------

    def sample_protocol_peaks(self) -> None:
        peaks = self.node.stats.peaks
        peaks.branch_stack = max(peaks.branch_stack, self.bstack_pool.proto_peak)
        peaks.int_regs = max(peaks.int_regs, self.rename.proto_int_peak)
        peaks.int_queue = max(peaks.int_queue, self.iq_pool.proto_peak)
        peaks.lsq = max(peaks.lsq, self.lsq_pool.proto_peak)
