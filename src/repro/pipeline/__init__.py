"""The out-of-order SMT core: branch prediction, renaming, and the
pipeline proper."""

from repro.pipeline.branch import BTB, ReturnAddressStack, TournamentPredictor
from repro.pipeline.core import SMTCore, ThreadContext
from repro.pipeline.regfile import Checkpoint, RenameUnit

__all__ = [
    "BTB",
    "Checkpoint",
    "RenameUnit",
    "ReturnAddressStack",
    "SMTCore",
    "ThreadContext",
    "TournamentPredictor",
]
