"""Register renaming: map tables, free lists, branch-stack checkpoints.

Physical register provisioning follows the paper: ``32*(n+1) + 96``
integer and floating-point registers for an ``n``-application-thread
machine, whether or not the protocol context is enabled (baselines get
the same file sizes).  One integer register is reserved for the
protocol thread; because the protocol boot sequence maps all 32
protocol logicals, a single reserved register suffices for forward
progress (paper §2.2).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.common.params import ProcessorParams
from repro.isa.uop import FP_BASE, Uop


class Checkpoint:
    __slots__ = ("thread", "int_map", "fp_map", "ras_snap")

    def __init__(self, thread: int, int_map: List[int], fp_map: List[int], ras_snap) -> None:
        self.thread = thread
        self.int_map = int_map
        self.fp_map = fp_map
        self.ras_snap = ras_snap


class RenameUnit:
    def __init__(self, pp: ProcessorParams) -> None:
        self.pp = pp
        n_int = pp.physical_int_regs
        n_fp = pp.physical_fp_regs
        self.int_ready = [False] * n_int
        self.fp_ready = [False] * n_fp
        self._free_int: List[int] = list(range(n_int))
        self._free_fp: List[int] = list(range(n_fp))
        self.reserved_int = (
            pp.reserved_int_regs if pp.protocol_thread else 0
        )
        # Per-thread logical->physical maps (32 int + 32 fp each).
        self.int_map: List[List[int]] = []
        self.fp_map: List[List[int]] = []
        for _ in range(pp.total_threads):
            imap = [self._free_int.pop() for _ in range(32)]
            fmap = [self._free_fp.pop() for _ in range(32)]
            for r in imap:
                self.int_ready[r] = True
            for r in fmap:
                self.fp_ready[r] = True
            self.int_map.append(imap)
            self.fp_map.append(fmap)
        # Table 9: protocol-thread integer register occupancy.
        self.proto_int_held = 32 if pp.protocol_thread else 0
        self.proto_int_peak = self.proto_int_held
        # Wakeup lists: µops waiting on a (tagged) physical register,
        # appended at rename, drained by mark_ready.  Stale entries can
        # only belong to squashed µops — a waiter's producer being
        # squashed implies the (same-thread, younger) waiter was
        # squashed with it — so draining them is harmless.
        self._waiters: dict = {}
        #: Wakeup-admission hook (compiled issue path): called with a
        #: µop exactly when its last pending source becomes ready
        #: (``n_wait`` hits 0).  None in interpreter mode — the
        #: reference issue stage re-tests ``n_wait`` by scanning.
        self.on_ready: Optional[Callable[[Uop], None]] = None

    # ------------------------------------------------------------------
    def free_int_count(self) -> int:
        return len(self._free_int)

    def can_rename(self, uop: Uop) -> bool:
        if uop.dest is None:
            return True
        if uop.dest >= FP_BASE:
            return bool(self._free_fp)
        floor = 0 if uop.protocol else self.reserved_int
        return len(self._free_int) > floor

    def rename(self, uop: Uop) -> None:
        """Map sources and allocate the destination (must fit)."""
        t = uop.thread
        imap, fmap = self.int_map[t], self.fp_map[t]
        srcs = uop.srcs
        if srcs:
            # One pass: map each source, test readiness, and register
            # the waiter — equivalent to mapping first and re-scanning.
            int_ready = self.int_ready
            fp_ready = self.fp_ready
            waiters = self._waiters
            n_wait = 0
            psrcs: List[int] = []
            for s in srcs:
                if s >= FP_BASE:
                    r = fmap[s - FP_BASE]
                    p = r + (1 << 20)
                    ready = fp_ready[r]
                else:
                    p = imap[s]
                    ready = int_ready[p]
                psrcs.append(p)
                if not ready:
                    n_wait += 1
                    lst = waiters.get(p)
                    if lst is None:
                        waiters[p] = [uop]
                    else:
                        lst.append(uop)
            uop.psrcs = tuple(psrcs)
            uop.n_wait = n_wait
        else:
            uop.psrcs = ()
        if uop.dest is None:
            return
        if uop.dest >= FP_BASE:
            preg = self._free_fp.pop()
            self.fp_ready[preg] = False
            uop.pdest = preg + (1 << 20)
            uop.pdest_old = fmap[uop.dest - FP_BASE] + (1 << 20)
            fmap[uop.dest - FP_BASE] = preg
        else:
            preg = self._free_int.pop()
            self.int_ready[preg] = False
            uop.pdest = preg
            uop.pdest_old = imap[uop.dest]
            imap[uop.dest] = preg
            if uop.protocol:
                self.proto_int_held += 1
                if self.proto_int_held > self.proto_int_peak:
                    self.proto_int_peak = self.proto_int_held

    # -- readiness ---------------------------------------------------------
    def is_ready(self, preg: int) -> bool:
        if preg >= (1 << 20):
            return self.fp_ready[preg - (1 << 20)]
        return self.int_ready[preg]

    def all_ready(self, uop: Uop) -> bool:
        # Issue-stage hot path: called for every waiting uop every
        # cycle, so the per-register is_ready() call is inlined.
        int_ready = self.int_ready
        fp_ready = self.fp_ready
        for p in uop.psrcs:
            if p >= (1 << 20):
                if not fp_ready[p - (1 << 20)]:
                    return False
            elif not int_ready[p]:
                return False
        return True

    def mark_ready(self, preg: int) -> None:
        if preg >= (1 << 20):
            self.fp_ready[preg - (1 << 20)] = True
        else:
            self.int_ready[preg] = True
        lst = self._waiters.pop(preg, None)
        if lst is None:
            return
        cb = self.on_ready
        if cb is None:
            for u in lst:
                u.n_wait -= 1
        else:
            for u in lst:
                n = u.n_wait - 1
                u.n_wait = n
                # A µop waiting on the same register twice (repeated
                # source) appears twice in the list; fire only on the
                # decrement that completes the last dependence.
                if n == 0:
                    cb(u)

    # -- free-list management -----------------------------------------------
    def _release(self, preg: int, protocol: bool) -> None:
        if preg >= (1 << 20):
            self._free_fp.append(preg - (1 << 20))
        else:
            self._free_int.append(preg)
            if protocol:
                self.proto_int_held -= 1

    def commit_free(self, uop: Uop) -> None:
        """At commit the *previous* mapping of the dest is freed."""
        if uop.pdest_old != -1:
            self._release(uop.pdest_old, uop.protocol)

    def squash_free(self, uop: Uop) -> None:
        """A squashed µop returns its *new* register; the map is
        restored from the branch checkpoint."""
        if uop.pdest != -1:
            self._release(uop.pdest, uop.protocol)

    # -- checkpoints ---------------------------------------------------------
    def checkpoint(self, thread: int, ras_snap) -> Checkpoint:
        return Checkpoint(
            thread, list(self.int_map[thread]), list(self.fp_map[thread]), ras_snap
        )

    def restore(self, cp: Checkpoint) -> None:
        self.int_map[cp.thread][:] = cp.int_map
        self.fp_map[cp.thread][:] = cp.fp_map
