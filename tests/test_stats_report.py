"""Stats containers and paper-style report rendering."""

import pytest

from repro.common.stats import (
    CacheStats,
    MachineStats,
    NodeStats,
    ProtocolStats,
    ThreadStats,
)
from repro.sim import report


def make_stats(cycles=1000, model="smtp", n_nodes=2):
    st = MachineStats(model=model, n_nodes=n_nodes, ways=1, freq_ghz=2.0,
                      cycles=cycles)
    for i in range(n_nodes):
        ns = NodeStats(node=i)
        ts = ThreadStats(node=i, context=0, committed=500,
                         memory_stall_cycles=300, branches=50, mispredicts=5)
        ns.threads.append(ts)
        ns.protocol.busy_cycles = 100 * (i + 1)
        ns.protocol.instructions = 40
        ns.protocol.branches = 10
        ns.protocol.mispredicts = 1
        ns.peaks.branch_stack = 5 + i
        ns.peaks.int_regs = 40
        ns.peaks.int_queue = 8
        ns.peaks.lsq = 6
        st.nodes.append(ns)
    return st


class TestCacheStats:
    def test_record_and_rates(self):
        c = CacheStats()
        c.record(True, False)
        c.record(False, False)
        c.record(False, True)
        assert c.hits == 1 and c.misses == 2
        assert c.miss_rate() == pytest.approx(2 / 3)
        assert c.proto_misses == 1

    def test_empty_rate(self):
        assert CacheStats().miss_rate() == 0.0


class TestMachineStats:
    def test_memory_stall_is_mean_over_threads(self):
        st = make_stats()
        assert st.memory_stall_cycles == 300
        assert st.memory_stall_fraction == pytest.approx(0.3)

    def test_occupancy_peak_is_max_node(self):
        st = make_stats()
        assert st.protocol_occupancy_peak() == pytest.approx(0.2)
        assert st.protocol_occupancy_mean() == pytest.approx(0.15)

    def test_retired_share(self):
        st = make_stats()
        assert st.retired_protocol_share() == pytest.approx(80 / 1080)

    def test_mispredict_rate(self):
        st = make_stats()
        assert st.protocol_branch_mispredict_rate() == pytest.approx(0.1)

    def test_resource_peaks(self):
        st = make_stats()
        mx, mean = st.resource_peaks()["branch_stack"]
        assert mx == 6 and mean == 5.5

    def test_exec_seconds(self):
        st = make_stats(cycles=2_000_000_000)
        assert st.exec_seconds == pytest.approx(1.0)

    def test_thread_mispredict_rate(self):
        t = ThreadStats(branches=10, mispredicts=3)
        assert t.mispredict_rate == pytest.approx(0.3)

    def test_handler_counting(self):
        p = ProtocolStats()
        p.count_handler("h_get")
        p.count_handler("h_get")
        assert p.handlers == 2
        assert p.handlers_by_type == {"h_get": 2}


class TestReport:
    def test_format_table_aligns(self):
        out = report.format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_speedup_table(self):
        out = report.speedup_table(
            {"FFT": {1: 13.87, 2: 19.32}}, ways=[1, 2]
        )
        assert "13.87" in out and "FFT" in out

    def test_normalized_exec_table(self):
        results = {
            "FFT": {
                "base": make_stats(1000, "base"),
                "smtp": make_stats(800, "smtp"),
            }
        }
        out = report.normalized_exec_table(results, ["base", "smtp"])
        assert "1.000" in out and "0.800" in out

    def test_occupancy_table(self):
        out = report.occupancy_table(
            {"FFT": {"base": make_stats()}}, ["base"]
        )
        assert "%" in out

    def test_protocol_thread_table(self):
        out = report.protocol_thread_table({"FFT": make_stats()})
        assert "of all" in out

    def test_resource_table(self):
        out = report.resource_occupancy_table({"FFT": make_stats()})
        assert "Int. Regs" in out

    def test_summary(self):
        out = report.summarize(make_stats())
        assert "smtp" in out and "cycles" in out
