"""Driver API, paper-exact configuration, and failure injection."""

import pytest

from repro.common.errors import DeadlockError, SimulationError
from repro.core.models import paper_exact_params
from repro.core.machine import Machine
from repro.sim.driver import build_machine, run_app, run_machine
from tests.conftest import Completion, small_machine

pytestmark = pytest.mark.slow


class TestDriver:
    def test_run_app_returns_stats(self):
        st = run_app("water", "base", n_nodes=1, ways=1, preset="tiny")
        assert st.model == "base"
        assert st.cycles > 0

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError, match="unknown app"):
            run_app("linpack", "base", preset="tiny")

    def test_timeout_raises_with_report(self):
        m = build_machine("base", 1, 1)
        from repro.apps.program import KernelBuilder, ThreadProgram

        def endless(k):
            top = k.here()
            i = 0
            while True:
                k.set_pc(top)
                k.alu()
                k.branch(True, top)
                yield
                i += 1

        prog = ThreadProgram(endless, KernelBuilder(0, 0x400000), m.wheel)
        with pytest.raises(SimulationError, match="did not finish"):
            run_machine(m, [[prog]], max_cycles=2_000)

    def test_model_kwargs_flow_through(self):
        st = run_app("water", "smtp", n_nodes=1, ways=1, preset="tiny",
                     look_ahead_scheduling=False)
        assert st.cycles > 0


class TestPaperExact:
    def test_paper_exact_machine_runs(self):
        """The unscaled Table 2/3/4 configuration is usable (slow, but
        functional) — here with a tiny workload."""
        mp = paper_exact_params("smtp", n_nodes=2, ways=1)
        m = Machine(mp)
        from repro.sim.experiments import app_sources, preset_sizes

        sources = app_sources("water", m, dict(preset_sizes("water", "tiny")))
        st = run_machine(m, sources, max_cycles=10_000_000)
        assert st.cycles > 0
        # Full-size caches: the tiny working set has no capacity misses.
        assert st.nodes[0].l2.misses < 500


class TestFailureInjection:
    def test_dropped_reply_hits_watchdog(self):
        """If the network silently eats a data reply, the machine must
        report a deadlock with a useful dump rather than hang."""
        m = small_machine("base", n_nodes=2, watchdog_cycles=3_000)
        # Sabotage: node 1's NI drops everything (claims delivery).
        m.fabric.attach(1, lambda msg: True)
        done = Completion(m)
        m.nodes[1].hierarchy.load(0x80, False, done.cb("never"))
        with pytest.raises(DeadlockError) as err:
            for _ in range(200_000):
                m.step()
        assert "mshrs=1" in str(err.value)

    def test_stalled_engine_hits_watchdog(self):
        m = small_machine("base", n_nodes=1, watchdog_cycles=3_000)
        m.nodes[0].mc.engine = None  # controller with no protocol engine
        m.nodes[0].hierarchy.load(0x80, False, lambda v: None)
        with pytest.raises(DeadlockError):
            for _ in range(200_000):
                m.step()

    def test_corrupted_directory_traps(self):
        """A nonsense directory state must abort with ProtocolError,
        not corrupt data silently."""
        from repro.common.errors import ProtocolError
        from repro.protocol import directory as d

        m = small_machine("base", n_nodes=1)
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x1000, False, 1, done.cb("w"))
        m.quiesce()
        # Claim an impossible owner, then force a writeback race.
        entry_addr = m.layout.dir_entry_addr(0x1000)
        m.nodes[0].pmem[entry_addr] = d.encode(d.EXCLUSIVE, owner=55)
        n_sets = m.nodes[0].hierarchy.l2.params.n_sets
        line = m.nodes[0].hierarchy.l2.params.line_bytes
        with pytest.raises(ProtocolError):
            # Evict the dirty line -> PUT -> owner mismatch -> TRAP.
            for i in range(1, 10):
                m.nodes[0].hierarchy.store(
                    0x1000 + i * n_sets * line, False, i, done.cb(str(i))
                )
                m.quiesce()
