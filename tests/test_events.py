"""EventWheel ordering and scheduling semantics."""

import pytest

from repro.common.events import EventWheel


class TestEventWheel:
    def test_fires_at_cycle(self):
        w = EventWheel()
        fired = []
        w.schedule_at(5, lambda: fired.append("a"))
        assert w.tick(4) == 0
        assert w.tick(5) == 1
        assert fired == ["a"]

    def test_relative_schedule(self):
        w = EventWheel()
        w.tick(10)
        fired = []
        w.schedule(3, lambda: fired.append(1))
        w.tick(12)
        assert not fired
        w.tick(13)
        assert fired == [1]

    def test_same_cycle_insertion_order(self):
        w = EventWheel()
        fired = []
        for i in range(5):
            w.schedule_at(2, lambda i=i: fired.append(i))
        w.tick(2)
        assert fired == [0, 1, 2, 3, 4]

    def test_past_schedule_raises(self):
        w = EventWheel()
        w.tick(10)
        with pytest.raises(ValueError):
            w.schedule_at(5, lambda: None)

    def test_zero_delay_clamps_to_now(self):
        w = EventWheel()
        w.tick(7)
        fired = []
        w.schedule(0, lambda: fired.append(1))
        w.tick(7)
        assert fired == [1]

    def test_event_scheduling_event(self):
        w = EventWheel()
        fired = []

        def first():
            fired.append("first")
            w.schedule(0, lambda: fired.append("second"))

        w.schedule_at(1, first)
        w.tick(1)
        assert fired == ["first", "second"]

    def test_next_event_cycle(self):
        w = EventWheel()
        assert w.next_event_cycle() == -1
        w.schedule_at(9, lambda: None)
        w.schedule_at(4, lambda: None)
        assert w.next_event_cycle() == 4

    def test_len_counts_pending(self):
        w = EventWheel()
        w.schedule_at(1, lambda: None)
        w.schedule_at(2, lambda: None)
        assert len(w) == 2
        w.tick(1)
        assert len(w) == 1
