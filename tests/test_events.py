"""EventWheel ordering and scheduling semantics."""

import pytest

from repro.common.events import EventWheel


class TestEventWheel:
    def test_fires_at_cycle(self):
        w = EventWheel()
        fired = []
        w.schedule_at(5, lambda: fired.append("a"))
        assert w.tick(4) == 0
        assert w.tick(5) == 1
        assert fired == ["a"]

    def test_relative_schedule(self):
        w = EventWheel()
        w.tick(10)
        fired = []
        w.schedule(3, lambda: fired.append(1))
        w.tick(12)
        assert not fired
        w.tick(13)
        assert fired == [1]

    def test_same_cycle_insertion_order(self):
        w = EventWheel()
        fired = []
        for i in range(5):
            w.schedule_at(2, lambda i=i: fired.append(i))
        w.tick(2)
        assert fired == [0, 1, 2, 3, 4]

    def test_past_schedule_raises(self):
        w = EventWheel()
        w.tick(10)
        with pytest.raises(ValueError):
            w.schedule_at(5, lambda: None)

    def test_zero_delay_clamps_to_now(self):
        w = EventWheel()
        w.tick(7)
        fired = []
        w.schedule(0, lambda: fired.append(1))
        w.tick(7)
        assert fired == [1]

    def test_event_scheduling_event(self):
        w = EventWheel()
        fired = []

        def first():
            fired.append("first")
            w.schedule(0, lambda: fired.append("second"))

        w.schedule_at(1, first)
        w.tick(1)
        assert fired == ["first", "second"]

    def test_next_event_cycle(self):
        w = EventWheel()
        assert w.next_event_cycle() == -1
        w.schedule_at(9, lambda: None)
        w.schedule_at(4, lambda: None)
        assert w.next_event_cycle() == 4

    def test_len_counts_pending(self):
        w = EventWheel()
        w.schedule_at(1, lambda: None)
        w.schedule_at(2, lambda: None)
        assert len(w) == 2
        w.tick(1)
        assert len(w) == 1

    # The scheduler's idle fast-forward leans on next_event_cycle for
    # its wake target; pin down its behaviour around drains.

    def test_next_event_cycle_after_partial_drain(self):
        w = EventWheel()
        w.schedule_at(3, lambda: None)
        w.schedule_at(8, lambda: None)
        w.schedule_at(8, lambda: None)
        w.tick(3)
        assert w.next_event_cycle() == 8
        w.tick(8)
        assert w.next_event_cycle() == -1
        assert len(w) == 0

    def test_next_event_cycle_sees_rescheduled_work(self):
        w = EventWheel()

        def again():
            w.schedule(5, lambda: None)

        w.schedule_at(2, again)
        w.tick(2)
        assert w.next_event_cycle() == 7

    def test_same_cycle_fifo_interleaved_schedules(self):
        # FIFO must hold even when same-cycle insertions are
        # interleaved with insertions for other cycles.
        w = EventWheel()
        fired = []
        w.schedule_at(4, lambda: fired.append("a"))
        w.schedule_at(9, lambda: fired.append("late"))
        w.schedule_at(4, lambda: fired.append("b"))
        w.schedule_at(2, lambda: fired.append("early"))
        w.schedule_at(4, lambda: fired.append("c"))
        w.tick(2)
        w.tick(4)
        assert fired == ["early", "a", "b", "c"]
        w.tick(9)
        assert fired == ["early", "a", "b", "c", "late"]

    def test_past_schedule_rejected_after_drain(self):
        # Draining a cycle advances "now"; scheduling at or before a
        # fully drained cycle must still raise, not silently drop.
        w = EventWheel()
        w.schedule_at(6, lambda: None)
        w.tick(6)
        with pytest.raises(ValueError):
            w.schedule_at(5, lambda: None)
