"""Cross-model behaviour: the paper's headline orderings, ablations,
and clock scaling — at test (tiny) scale."""

import pytest

from repro.sim.driver import run_app

pytestmark = pytest.mark.slow


class TestHeadlineOrderings:
    @pytest.fixture(scope="class")
    def fft_by_model(self):
        return {
            model: run_app("fft", model, n_nodes=2, ways=1, preset="tiny")
            for model in ("base", "intperfect", "int512kb", "int64kb", "smtp")
        }

    def test_smtp_beats_base(self, fft_by_model):
        # The paper: "SMTp is always faster than Base".
        assert fft_by_model["smtp"].cycles < fft_by_model["base"].cycles

    def test_integration_helps(self, fft_by_model):
        assert fft_by_model["intperfect"].cycles < fft_by_model["base"].cycles

    def test_smtp_tracks_int512kb(self, fft_by_model):
        ratio = fft_by_model["smtp"].cycles / fft_by_model["int512kb"].cycles
        assert 0.7 < ratio < 1.3

    def test_occupancy_ordering(self, fft_by_model):
        # Table 7: Base >> Int512KB >= IntPerfect.
        occ = {
            m: st.protocol_occupancy_peak() for m, st in fft_by_model.items()
        }
        assert occ["base"] > occ["int512kb"]
        assert occ["int512kb"] >= occ["intperfect"]

    def test_protocol_work_exists_everywhere(self, fft_by_model):
        for st in fft_by_model.values():
            assert st.nodes[0].protocol.handlers > 0


class TestSMTScaling:
    def test_two_way_helps_memory_bound_app(self):
        one = run_app("radix", "smtp", n_nodes=1, ways=1, preset="tiny")
        two = run_app("radix", "smtp", n_nodes=1, ways=2, preset="tiny")
        assert two.cycles < one.cycles


class TestAblations:
    def test_las_toggle_runs(self):
        on = run_app("fft", "smtp", n_nodes=2, ways=1, preset="tiny",
                     look_ahead_scheduling=True)
        off = run_app("fft", "smtp", n_nodes=2, ways=1, preset="tiny",
                      look_ahead_scheduling=False)
        # LAS is a small win (paper: up to 3.9%); allow noise but it
        # must not be a big loss.
        assert on.cycles <= off.cycles * 1.05

    def test_bitops_ablation_small_effect(self):
        fast = run_app("fft", "smtp", n_nodes=2, ways=1, preset="tiny",
                       protocol_bitops=True)
        slow = run_app("fft", "smtp", n_nodes=2, ways=1, preset="tiny",
                       protocol_bitops=False)
        # Paper §2.1: less than ~1% impact.
        assert slow.cycles <= fast.cycles * 1.10

    def test_perfect_protocol_caches_no_slower(self):
        shared = run_app("fft", "smtp", n_nodes=2, ways=1, preset="tiny")
        perfect = run_app("fft", "smtp", n_nodes=2, ways=1, preset="tiny",
                          perfect_protocol_caches=True)
        assert perfect.cycles <= shared.cycles * 1.02


class TestClockScaling:
    def test_4ghz_trends_match_2ghz(self):
        """Figure 10/11: relative ordering unchanged as frequency
        scales (gap vs Base widens or holds)."""
        r = {}
        for freq in (2.0, 4.0):
            base = run_app("fft", "base", n_nodes=2, ways=1, preset="tiny",
                           freq_ghz=freq)
            smtp = run_app("fft", "smtp", n_nodes=2, ways=1, preset="tiny",
                           freq_ghz=freq)
            r[freq] = smtp.cycles / base.cycles
        assert r[2.0] < 1.0 and r[4.0] < 1.0
        assert r[4.0] <= r[2.0] * 1.1


class TestTableStats:
    def test_table8_quantities_populated(self):
        st = run_app("fft", "smtp", n_nodes=2, ways=1, preset="tiny")
        assert st.protocol_branch_mispredict_rate() >= 0
        # At tiny scale protocol work is a much larger share than the
        # paper's (its Table 8 shares are per full-size runs).
        assert 0 < st.retired_protocol_share() < 0.8
        assert st.protocol_squash_cycle_fraction() < 0.05

    def test_table9_peaks_populated(self):
        st = run_app("fft", "smtp", n_nodes=2, ways=1, preset="tiny")
        peaks = st.resource_peaks()
        mx, mean = peaks["int_regs"]
        assert mx >= 32
        assert mean <= mx
        assert peaks["lsq"][0] >= 1
