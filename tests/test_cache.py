"""Set-associative cache: LRU, install/evict/invalidate, and a
property-based comparison against a reference LRU model."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.coherence import CacheState
from repro.caches.sa_cache import SetAssocCache
from repro.common.params import CacheParams
from repro.common.stats import CacheStats


def make_cache(size=1024, line=32, assoc=2):
    return SetAssocCache(
        "t", CacheParams(size, line, assoc, hit_latency=1), CacheStats()
    )


class TestBasics:
    def test_miss_then_hit(self):
        c = make_cache()
        assert c.lookup(0x100) is None
        c.install(0x100, CacheState.SHARED)
        assert c.lookup(0x100) is not None
        assert c.lookup(0x11F) is not None  # same 32B line
        assert c.lookup(0x120) is None  # next line

    def test_line_addr_masks_offset(self):
        c = make_cache()
        assert c.line_addr(0x13F) == 0x120

    def test_install_sets_fields(self):
        c = make_cache()
        line = c.install(0x200, CacheState.MODIFIED, version=7, dirty=True)
        assert line.state is CacheState.MODIFIED
        assert line.version == 7
        assert line.dirty

    def test_invalidate_returns_snapshot(self):
        c = make_cache()
        c.install(0x200, CacheState.MODIFIED, version=3, dirty=True)
        snap = c.invalidate(0x200)
        assert snap.version == 3 and snap.dirty
        assert c.lookup(0x200) is None

    def test_invalidate_absent_returns_none(self):
        assert make_cache().invalidate(0x999) is None

    def test_lru_victim_selection(self):
        c = make_cache(size=128, line=32, assoc=2)  # 2 sets
        # Fill both ways of set 0 (addresses 0x00 and 0x40 map to set 0).
        c.install(0x00, CacheState.SHARED)
        c.install(0x40, CacheState.SHARED)
        c.access(0x00)  # make 0x00 MRU
        victim = c.victim(0x80)  # also set 0
        assert c.line_address_of(victim) == 0x40

    def test_lookup_does_not_touch_lru(self):
        c = make_cache(size=128, line=32, assoc=2)
        c.install(0x00, CacheState.SHARED)
        c.install(0x40, CacheState.SHARED)
        c.lookup(0x00)  # probe only
        victim = c.victim(0x80)
        assert c.line_address_of(victim) == 0x00

    def test_flush_hands_lines_to_sink(self):
        c = make_cache()
        c.install(0x100, CacheState.MODIFIED, version=4)
        c.install(0x200, CacheState.SHARED, version=1)
        seen = {}
        c.flush(lambda la, line: seen.__setitem__(la, line.version))
        assert seen == {0x100: 4, 0x200: 1}
        assert not list(c.valid_lines())

    def test_contents(self):
        c = make_cache()
        c.install(0x100, CacheState.EXCLUSIVE)
        assert c.contents() == {0x100: CacheState.EXCLUSIVE}

    def test_direct_mapped(self):
        c = make_cache(size=128, line=32, assoc=1)
        c.install(0x00, CacheState.SHARED)
        c.install(0x80, CacheState.SHARED)  # same set, evicts
        assert c.lookup(0x00) is None or c.lookup(0x80) is None


class TestCacheStates:
    @pytest.mark.parametrize(
        "state,valid,writable",
        [
            (CacheState.INVALID, False, False),
            (CacheState.SHARED, True, False),
            (CacheState.EXCLUSIVE, True, True),
            (CacheState.MODIFIED, True, True),
        ],
    )
    def test_state_predicates(self, state, valid, writable):
        assert state.valid == valid
        assert state.writable == writable


class ReferenceLRU:
    """Per-set OrderedDict reference model."""

    def __init__(self, n_sets, assoc, line_shift):
        self.sets = [OrderedDict() for _ in range(n_sets)]
        self.assoc = assoc
        self.line_shift = line_shift
        self.n_sets = n_sets

    def access(self, addr):
        tag = addr >> self.line_shift
        s = self.sets[tag % self.n_sets]
        hit = tag in s
        if hit:
            s.move_to_end(tag)
        else:
            if len(s) >= self.assoc:
                s.popitem(last=False)
            s[tag] = None
        return hit


@settings(max_examples=60)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
def test_lru_matches_reference_model(addresses):
    """access+install behaviour must match a canonical LRU cache."""
    c = make_cache(size=256, line=32, assoc=2)  # 4 sets
    ref = ReferenceLRU(n_sets=4, assoc=2, line_shift=5)
    for a in addresses:
        addr = a * 16  # half-line granularity
        hit = c.access(addr) is not None
        if not hit:
            victim = c.victim(addr)
            assert victim is not None
            c.install(addr, CacheState.SHARED)
        assert hit == ref.access(addr)
