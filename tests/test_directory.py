"""Directory entry encoding and the protocol address-space layout."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.protocol import directory as d
from repro.protocol.directory import DirectoryLayout


class TestEncoding:
    def test_roundtrip_fields(self):
        e = d.encode(d.BUSY_SHARED, owner=13, waiter=7, vector=0b1011)
        assert d.state_of(e) == d.BUSY_SHARED
        assert d.owner_of(e) == 13
        assert d.waiter_of(e) == 7
        assert d.vector_of(e) == 0b1011

    def test_sharers_list(self):
        e = d.encode(d.SHARED, vector=(1 << 0) | (1 << 5) | (1 << 31))
        assert d.sharers_of(e) == [0, 5, 31]

    def test_unowned_is_zero(self):
        assert d.encode(d.UNOWNED) == 0

    def test_describe_readable(self):
        e = d.encode(d.EXCLUSIVE, owner=3)
        assert "EXCLUSIVE" in d.describe(e)
        assert "owner=3" in d.describe(e)

    @given(
        st.sampled_from([d.UNOWNED, d.SHARED, d.EXCLUSIVE, d.BUSY_SHARED,
                         d.BUSY_EXCLUSIVE]),
        st.integers(0, 63),
        st.integers(0, 63),
        st.integers(0, (1 << 32) - 1),
    )
    def test_roundtrip_property(self, state, owner, waiter, vector):
        e = d.encode(state, owner, waiter, vector)
        assert d.state_of(e) == state
        assert d.owner_of(e) == owner
        assert d.waiter_of(e) == waiter
        assert d.vector_of(e) == vector

    def test_32_node_entry_fits_64_bits(self):
        e = d.encode(d.SHARED, vector=(1 << 32) - 1)
        assert e < (1 << 64)

    def test_16_node_entry_fits_32_bits(self):
        e = d.encode(d.SHARED, owner=15, vector=(1 << 16) - 1)
        assert e < (1 << 32)


class TestLayout:
    def layout(self, mem=1 << 22, entry=4):
        return DirectoryLayout(
            local_memory_bytes=mem, line_bytes=128, entry_bytes=entry
        )

    def test_home_partitioning(self):
        lay = self.layout()
        assert lay.home_of(0) == 0
        assert lay.home_of((1 << 22) - 1) == 0
        assert lay.home_of(1 << 22) == 1
        assert lay.home_of(5 << 22) == 5

    def test_line_addr(self):
        lay = self.layout()
        assert lay.line_addr(0x1234) == 0x1200
        assert lay.line_addr(0x1280) == 0x1280

    def test_dir_entry_addresses_unique_per_line(self):
        lay = self.layout()
        a = lay.dir_entry_addr(0x0000)
        b = lay.dir_entry_addr(0x0080)
        assert b - a == 4

    def test_dir_entry_in_protocol_space(self):
        from repro.caches.hierarchy import is_protocol_space

        lay = self.layout()
        assert is_protocol_space(lay.dir_entry_addr(0x1000))

    def test_dir_entry_local_only(self):
        # Entries for lines homed at different nodes use the same
        # node-local offsets (protocol space is per node).
        lay = self.layout()
        assert lay.dir_entry_addr(0x80) == lay.dir_entry_addr((1 << 22) + 0x80)

    def test_8_byte_entries(self):
        lay = self.layout(entry=8)
        a = lay.dir_entry_addr(0x0000)
        b = lay.dir_entry_addr(0x0080)
        assert b - a == 8

    def test_rejects_bad_entry_size(self):
        with pytest.raises(ConfigError):
            self.layout(entry=6)

    def test_rejects_non_pow2_memory(self):
        with pytest.raises(ConfigError):
            self.layout(mem=3 << 20)

    def test_for_machine_uses_directory_bits(self):
        from repro.common.params import MachineParams, ProcessorParams

        mp = MachineParams(
            model="base", n_nodes=32, proc=ProcessorParams(),
            protocol_engine="pp", dir_cache=1024,
        )
        lay = DirectoryLayout.for_machine(mp)
        assert lay.entry_bytes == 8
