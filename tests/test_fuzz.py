"""The coherence fuzzing subsystem: sanitizer, faults, shrink, replay."""

import json

import pytest

from repro.caches.coherence import CacheState
from repro.caches.hierarchy import CacheHierarchy
from repro.caches.mshr import MissKind
from repro.common.errors import (
    CoherenceViolation,
    ConfigError,
    LivelockError,
)
from repro.fuzz.artifact import load_artifact, replay_artifact
from repro.fuzz.campaign import (
    FuzzCell,
    run_campaign,
    run_fuzz_cell,
    summarize_campaign,
)
from repro.fuzz.faults import FaultConfig, FaultInjector, PRESETS, parse_faults
from repro.fuzz.sanitizer import Sanitizer
from repro.fuzz.shrink import shrink_ops
from repro.fuzz.stress import FuzzOp, StressConfig, generate_ops, run_ops
from repro.protocol import directory as d
from tests.conftest import Completion, small_machine


def sanitized_machine(model="base", n_nodes=2, **overrides):
    overrides.setdefault("sanitize", True)
    return small_machine(model, n_nodes=n_nodes, **overrides)


class TestGenerateOps:
    def test_deterministic(self):
        cfg = StressConfig(n_ops=100)
        assert generate_ops(7, cfg, 2) == generate_ops(7, cfg, 2)
        assert generate_ops(7, cfg, 2) != generate_ops(8, cfg, 2)

    def test_ops_respect_machine_shape(self):
        cfg = StressConfig(n_ops=200, n_lines=3)
        for op in generate_ops(3, cfg, 4):
            assert 0 <= op.node < 4
            assert op.kind in ("load", "store", "atomic", "prefetch")

    def test_producer_consumer_has_one_writer_per_line(self):
        cfg = StressConfig(n_ops=300, sharing="producer_consumer")
        writers = {}
        for op in generate_ops(11, cfg, 4):
            if op.kind in ("store", "atomic"):
                la = op.addr & ~127
                writers.setdefault(la, set()).add(op.node)
        assert writers and all(len(w) == 1 for w in writers.values())

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            StressConfig(sharing="bogus")
        with pytest.raises(ConfigError):
            StressConfig(n_ops=0)

    def test_op_roundtrip(self):
        op = FuzzOp(1, "atomic", 0x400080, arg=1, sub="fai")
        assert FuzzOp.from_dict(op.to_dict()) == op


class TestSanitizerWiring:
    def test_flag_off_leaves_step_untouched(self):
        m = small_machine("base")
        assert m.sanitizer is None
        assert "step" not in m.__dict__  # class method: zero overhead

    def test_flag_on_installs_sanitizer(self):
        m = sanitized_machine()
        assert isinstance(m.sanitizer, Sanitizer)
        assert "step" in m.__dict__

    def test_clean_traffic_passes(self):
        m = sanitized_machine()
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x1000, False, 1, done.cb("a"))
        m.quiesce()
        m.nodes[1].hierarchy.load(0x1000, False, done.cb("b"))
        m.quiesce()
        m.final_checks()
        report = m.sanitizer.report()
        assert report["store_checks"] == 1
        assert report["sweeps"] > 0

    def test_detach_restores_hooks(self):
        m = sanitized_machine()
        original = m.sanitizer._chained[m.nodes[0].hierarchy]
        m.sanitizer.detach()
        assert m.nodes[0].hierarchy.on_store is original
        # Re-attach never stacks hooks.
        m.sanitizer.attach().attach()
        assert len(m.sanitizer._chained) == m.mp.n_nodes
        m.sanitizer.detach()


class TestSanitizerCatchesBugs:
    def test_swmr_sweep_detects_second_writer(self):
        m = sanitized_machine()
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x1000, False, 1, done.cb("a"))
        m.quiesce()
        m.nodes[1].hierarchy.l2.install(0x1000, CacheState.MODIFIED, version=1)
        with pytest.raises(CoherenceViolation, match="writable at multiple"):
            m.sanitizer.sweep(m.cycle)

    def test_store_on_stale_copy_detected_at_the_store(self):
        m = sanitized_machine()
        done = Completion(m)
        m.nodes[0].hierarchy.store(0x1000, False, 1, done.cb("a"))
        m.quiesce()
        # Pretend 4 earlier stores happened elsewhere: this copy is stale.
        m.sanitizer.store_counts[0x1000] = 5
        with pytest.raises(CoherenceViolation, match="stale copy"):
            m.nodes[0].hierarchy.store(0x1008, False, 2, done.cb("b"))
            m.quiesce()

    def test_mshr_accounting_drift_detected(self):
        m = sanitized_machine()
        m.nodes[0].hierarchy.mshrs._app_used += 1
        with pytest.raises(CoherenceViolation, match="accounting drift"):
            m.sanitizer.sweep(m.cycle)

    def test_illegal_directory_state_detected(self):
        m = sanitized_machine()
        done = Completion(m)
        m.nodes[0].hierarchy.load(0x1000, False, done.cb("a"))
        m.quiesce()
        m.nodes[0].pmem[m.layout.dir_entry_addr(0x1000)] = 7  # no such state
        with pytest.raises(CoherenceViolation, match="illegal state"):
            m.sanitizer.sweep(m.cycle)

    def test_livelock_watchdog_fires_with_diagnosis(self):
        m = sanitized_machine()
        m.nodes[0].hierarchy.mshrs.allocate(0x2000, MissKind.READ)
        m.sanitizer.sweep(0)
        with pytest.raises(LivelockError) as exc:
            m.sanitizer.sweep(m.mp.watchdog_cycles + 100)
        msg = str(exc.value)
        assert "node 0 line 0x2000" in msg
        assert "queues" in msg  # the structured queue/engine dump

    def test_fresh_entries_are_progress_not_livelock(self):
        # A hot line that re-misses gets a new MSHR entry each time;
        # entry identity must reset the age clock.
        m = sanitized_machine()
        mshrs = m.nodes[0].hierarchy.mshrs
        step = m.mp.watchdog_cycles // 2 + 1
        for i in range(5):
            mshrs.allocate(0x2000, MissKind.READ)
            m.sanitizer.sweep(i * step)
            mshrs.free(0x2000)


class TestFaults:
    def test_parse_presets_and_pairs(self):
        assert parse_faults("off") == FaultConfig()
        assert not parse_faults("off").active
        assert parse_faults("on").active
        cfg = parse_faults("delay_rate=0.2,delay_max=500")
        assert cfg == FaultConfig(delay_rate=0.2, delay_max=500)
        with pytest.raises(ConfigError):
            parse_faults("bogus")
        with pytest.raises(ConfigError):
            parse_faults("delay_rate=x")
        with pytest.raises(ConfigError):
            parse_faults("warp_rate=0.5")

    def test_injector_is_seed_deterministic(self):
        cfg = PRESETS["heavy"]
        a = FaultInjector(cfg, 42)
        b = FaultInjector(cfg, 42)
        plans = [(a.plan(None), b.plan(None)) for _ in range(200)]
        assert all(pa == pb for pa, pb in plans)
        assert a.planned_delays > 0

    def test_delayed_traffic_stays_coherent(self):
        cell = FuzzCell(
            seed=5, stress=StressConfig(n_ops=150), faults=PRESETS["heavy"]
        )
        result = run_fuzz_cell(cell, shrink=False)
        assert result.status == "ok", result.error

    def test_fabric_counts_injected_faults(self):
        from repro.fuzz.campaign import build_fuzz_machine

        cell = FuzzCell(
            seed=5, stress=StressConfig(n_ops=150), faults=PRESETS["heavy"]
        )
        machine = build_fuzz_machine(cell)
        ops = generate_ops(cell.seed, cell.stress, cell.n_nodes)
        run_ops(machine, ops)
        assert machine.fabric.faults_delayed > 0
        assert machine.fabric.faults_duplicated == 0


class TestShrink:
    def test_shrinks_to_the_culprit(self):
        ops = [FuzzOp(0, "load", 128 * i) for i in range(64)]
        bad = FuzzOp(1, "store", 128 * 17, arg=9)
        ops[40] = bad

        def reproduces(candidate):
            return bad in candidate

        assert shrink_ops(ops, reproduces) == [bad]

    def test_budget_caps_replays(self):
        ops = [FuzzOp(0, "load", 128 * i) for i in range(64)]
        calls = [0]

        def reproduces(candidate):
            calls[0] += 1
            return ops[-1] in candidate

        shrink_ops(ops, reproduces, budget=10)
        assert calls[0] <= 10


def install_dropped_inval_bug(monkeypatch):
    """Seed the classic protocol bug: a sharer acks an invalidation but
    keeps its copy."""
    orig = CacheHierarchy._do_probe

    def buggy(self, line_addr, kind, on_response):
        line = self.l2.lookup(line_addr)
        if kind == "inval" and line is not None and not line.state.writable:
            on_response(True, line.dirty, line.version)
            return
        orig(self, line_addr, kind, on_response)

    monkeypatch.setattr(CacheHierarchy, "_do_probe", buggy)


class TestFailurePipeline:
    """Acceptance: a seeded protocol bug is detected, dumped to a
    replayable artifact, and shrunk to a handful of ops."""

    def find_failure(self, tmp_path):
        for seed in range(20):
            cell = FuzzCell(seed=seed, stress=StressConfig(n_ops=120))
            result = run_fuzz_cell(cell, out_dir=tmp_path)
            if result.status != "ok":
                return result
        raise AssertionError("seeded bug never detected in 20 seeds")

    def test_detect_shrink_and_replay(self, tmp_path, monkeypatch):
        install_dropped_inval_bug(monkeypatch)
        result = self.find_failure(tmp_path)
        assert result.status == "violation"
        assert result.shrunk_to is not None and result.shrunk_to <= 20

        doc = load_artifact(result.artifact)
        assert doc["status"] == "violation"
        assert len(doc["shrunk_ops"]) == result.shrunk_to
        assert doc["snapshot"]["cycle"] > 0
        assert doc["trace_tail"], "artifact must carry the trace tail"

        # Replays only reproduce while the bug is still installed.
        reproduced, failure, ops = replay_artifact(result.artifact)
        assert reproduced and isinstance(failure, CoherenceViolation)
        assert len(ops) == result.shrunk_to

    def test_fixed_code_no_longer_reproduces(self, tmp_path, monkeypatch):
        with pytest.MonkeyPatch.context() as mp:
            install_dropped_inval_bug(mp)
            result = self.find_failure(tmp_path)
        # The monkey-patched bug is gone: the artifact must not reproduce.
        reproduced, failure, _ops = replay_artifact(result.artifact)
        assert not reproduced and failure is None


class TestCampaign:
    def test_clean_campaign_inline(self, tmp_path):
        cells = [
            FuzzCell(seed=s, stress=StressConfig(n_ops=80))
            for s in range(3)
        ]
        results = run_campaign(cells, jobs=0, out_dir=tmp_path)
        assert [r.status for r in results] == ["ok"] * 3
        summary = summarize_campaign(results)
        assert summary["n_failed"] == 0 and summary["artifacts"] == []

    @pytest.mark.slow
    def test_campaign_in_worker_pool(self, tmp_path):
        cells = [
            FuzzCell(seed=s, stress=StressConfig(n_ops=80), faults=PRESETS["on"])
            for s in range(4)
        ]
        results = run_campaign(cells, jobs=2, out_dir=tmp_path)
        assert [r.status for r in results] == ["ok"] * 4

    def test_smtp_cells_run(self, tmp_path):
        cell = FuzzCell(seed=1, model="smtp", stress=StressConfig(n_ops=60))
        result = run_fuzz_cell(cell, out_dir=tmp_path)
        assert result.status == "ok", result.error
