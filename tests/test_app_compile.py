"""Property tests for the application-tier superblock compiler.

Two contracts, held over random kernel shapes with hypothesis:

* **Register-window discipline.**  :class:`KernelBuilder` rotates
  integer results through logical r8..r23 and FP results through
  f8..f23; r0..r7 (and f0..f7) are the kernel's pinned registers.  No
  sequence of emissions may ever allocate a destination outside the
  window — the inlined constructor bodies must rotate exactly like the
  ``_int_dest``/``_fp_dest`` reference helpers.

* **Yield-form round-trip.**  All three coroutine yield forms (plain
  ``yield`` flush points, ``value = yield AWAIT``, ``yield ('sleep',
  n)``) must drive :class:`CompiledProgram` to emit the *identical*
  µop stream the interpreted :class:`ThreadProgram` emits — same
  kinds, registers, PCs, addresses, values, branch targets — and the
  compiled side's memoized superblock boundaries must point exactly at
  the branch µops.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.compile import (
    CompiledKernelBuilder,
    CompiledProgram,
    shared_templates,
)
from repro.apps.program import AWAIT, KernelBuilder, ThreadProgram
from repro.isa.uop import FP_BASE, Uop

PINNED_INT = set(range(0, 8))
PINNED_FP = set(range(FP_BASE, FP_BASE + 8))

#: Op mnemonics a random kernel shape is drawn from.
OPS = ("alu", "mul", "falu", "fdiv", "load", "fload", "store", "branch",
       "prefetch", "call_ret")


def _emit(k: KernelBuilder, op: str, pool: List[int]) -> None:
    """Emit one µop of kind ``op``, drawing dependences from ``pool``."""
    deps = tuple(pool[-2:])
    if op == "alu":
        pool.append(k.alu(*deps))
    elif op == "mul":
        pool.append(k.mul(*deps))
    elif op == "falu":
        pool.append(k.falu())
    elif op == "fdiv":
        pool.append(k.fdiv())
    elif op == "load":
        pool.append(k.load(0x4000 + 8 * len(pool), *deps))
    elif op == "fload":
        pool.append(k.load(0x8000 + 8 * len(pool), fp=True))
    elif op == "store":
        k.store(0x4000 + 8 * len(pool), *deps, value=len(pool))
    elif op == "branch":
        k.branch(len(pool) % 2 == 0, k.here() - 16, *deps)
    elif op == "prefetch":
        k.prefetch(0xC000 + 64 * len(pool), exclusive=len(pool) % 2 == 0)
    elif op == "call_ret":
        k.ret(k.call(0x100 + 4 * len(pool)))


# ----------------------------------------------------------------------
# Window rotation
# ----------------------------------------------------------------------

def test_window_constants():
    assert KernelBuilder._WINDOW_LEN == 16
    assert len(KernelBuilder.INT_WINDOW) == 16
    assert len(KernelBuilder.FP_WINDOW) == 16
    assert KernelBuilder.INT_WINDOW == tuple(range(8, 24))
    assert KernelBuilder.FP_WINDOW == tuple(range(FP_BASE + 8, FP_BASE + 24))
    assert not PINNED_INT & set(KernelBuilder.INT_WINDOW)
    assert not PINNED_FP & set(KernelBuilder.FP_WINDOW)


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=120),
    compiled=st.booleans(),
)
def test_rotation_never_clobbers_pinned_registers(ops, compiled):
    """Random kernel shapes: every allocated destination stays inside
    the rotating window, in reference rotation order, and r0..r7 /
    f0..f7 are never written."""
    if compiled:
        k: KernelBuilder = CompiledKernelBuilder(
            thread=0, pc_base=0x1000, templates={})
    else:
        k = KernelBuilder(thread=0, pc_base=0x1000)
    pool: List[int] = [3]  # a pinned source register in the dep pool
    _emit(k, "falu", pool)  # seed an FP value too
    n_int = n_fp = 0
    if pool[-1] >= FP_BASE:
        n_fp = 1
    for op in ops:
        _emit(k, op, pool)
    int_dests = []
    fp_dests = []
    for uop in k.buffer:
        if uop.dest is None:
            continue
        assert uop.dest not in PINNED_INT, f"{uop.kind} wrote pinned {uop.dest}"
        assert uop.dest not in PINNED_FP, f"{uop.kind} wrote pinned {uop.dest}"
        if uop.dest >= FP_BASE:
            assert uop.dest in KernelBuilder.FP_WINDOW
            fp_dests.append(uop.dest)
        else:
            assert uop.dest in KernelBuilder.INT_WINDOW
            int_dests.append(uop.dest)
    # Reference rotation: the windows are cycled in order, wrapping.
    assert int_dests == [
        KernelBuilder.INT_WINDOW[i % 16] for i in range(len(int_dests))]
    assert fp_dests == [
        KernelBuilder.FP_WINDOW[i % 16] for i in range(len(fp_dests))]
    assert k._int_rot == len(int_dests) % 16
    assert k._fp_rot == len(fp_dests) % 16


# ----------------------------------------------------------------------
# Yield-form round-trip through compilation
# ----------------------------------------------------------------------

#: One kernel segment: ops to emit, then one of the three yield forms.
SEGMENT = st.tuples(
    st.lists(st.sampled_from(OPS), min_size=0, max_size=12),
    st.sampled_from(("flush", "await_spin", "await_atomic", "sleep")),
)


def _make_kernel(segments):
    def body(k: KernelBuilder) -> Iterator:
        pool: List[int] = [2]
        for i, (ops, form) in enumerate(segments):
            for op in ops:
                _emit(k, op, pool)
            if form == "flush":
                yield
            elif form == "await_spin":
                k.spin_load(0x2000 + 128 * i)
                v = yield AWAIT
                k.store(0x2000 + 128 * i, value=v + 1)
            elif form == "await_atomic":
                k.atomic(0x3000 + 128 * i, "fai")
                v = yield AWAIT
                pool.append(k.alu())
                k.store(0x3000 + 128 * i, value=v)
            else:  # ('sleep', n)
                yield ("sleep", 1 + i % 7)
    return body


class _FakeWheel:
    """Collects sleep callbacks so the drain loop can fire them."""

    def __init__(self) -> None:
        self.pending: List = []

    def schedule(self, delay: int, cb) -> None:
        assert delay >= 1
        self.pending.append(cb)


def _fields(uop: Uop) -> Tuple:
    return (uop.kind, uop.srcs, uop.dest, uop.pc, uop.addr, uop.value,
            uop.taken, uop.target_pc, uop.atomic_op, uop.operand,
            uop.exclusive, uop.protocol)


def _drain(prog: ThreadProgram, wheel: _FakeWheel, values) -> List[Tuple]:
    """Pull the full µop stream, answering AWAITs from ``values`` and
    expiring sleeps as they park the program."""
    stream: List[Tuple] = []
    vals = iter(values)
    stall = 0
    while not prog.done:
        uop = prog.next_uop()
        if uop is not None:
            stall = 0
            stream.append(_fields(uop))
            if uop.on_value is not None:
                uop.on_value(next(vals))
            continue
        if wheel.pending:
            wheel.pending.pop(0)()
            continue
        stall += 1
        assert stall < 4, "program stalled with no wake source"
    return stream


@settings(max_examples=60, deadline=None)
@given(
    segments=st.lists(SEGMENT, min_size=1, max_size=8),
    values=st.lists(st.integers(min_value=0, max_value=2**20),
                    min_size=64, max_size=64),
)
def test_yield_forms_round_trip_through_compilation(segments, values):
    body = _make_kernel(segments)

    iw = _FakeWheel()
    interp = ThreadProgram(body, KernelBuilder(thread=0, pc_base=0x1000),
                           wheel=iw)
    interp_stream = _drain(interp, iw, values)

    cw = _FakeWheel()
    compiled = CompiledProgram(
        body,
        CompiledKernelBuilder(thread=0, pc_base=0x1000, templates={}),
        wheel=cw,
    )
    compiled_stream = _drain(compiled, cw, values)

    assert compiled_stream == interp_stream
    # Anything with an AWAIT emits at least the spin/atomic µop.
    if any(form.startswith("await") for _, form in segments):
        assert interp_stream


@settings(max_examples=30, deadline=None)
@given(segments=st.lists(SEGMENT, min_size=1, max_size=6))
def test_superblock_boundaries_point_at_branches(segments):
    """After every refill, ``breaks`` holds exactly the buffer
    positions of branch µops — the memo the fused fetch consumes."""
    body = _make_kernel(segments)
    prog = CompiledProgram(
        body, CompiledKernelBuilder(thread=0, pc_base=0x1000, templates={}),
        wheel=_FakeWheel(),
    )
    seen = 0
    while True:
        if not prog.peek_available():  # refills (and memoizes) if it can
            if prog._sleeping:
                prog._wake()
                continue
            break
        buf = prog.k.buffer
        expect = [i for i in range(len(buf)) if buf[i].is_branch]
        assert prog.breaks == expect
        # Consume up to the next boundary, as the fast fetch does.
        run_end = next((b for b in prog.breaks if b >= prog.pos), len(buf) - 1)
        while prog.pos <= run_end:
            uop = prog.next_uop()
            assert uop is not None
            seen += 1
            if uop.on_value is not None:
                uop.on_value(7)
        if prog._sleeping:
            prog._wake()
    assert prog.done


def test_shared_templates_survive_rebuilds():
    """Two builders at the same (kernel, placement) stamp from one
    decoded-µop cache; different placements get different caches."""
    store_a = shared_templates(("m:body", 0, 0x1000))
    store_b = shared_templates(("m:body", 0, 0x1000))
    assert store_a is store_b
    assert shared_templates(("m:body", 1, 0x1000)) is not store_a

    k1 = CompiledKernelBuilder(thread=0, pc_base=0x1000, templates=store_a)
    pool = [1]
    for op in ("alu", "falu", "load", "store", "branch"):
        _emit(k1, op, pool)
    n = len(store_a)
    assert n > 0
    first = [_fields(u) for u in k1.buffer]

    # A rebuilt builder (same placement) re-emits identical µops while
    # adding no new templates — the decode work is reused.
    k2 = CompiledKernelBuilder(thread=0, pc_base=0x1000, templates=store_a)
    pool = [1]
    for op in ("alu", "falu", "load", "store", "branch"):
        _emit(k2, op, pool)
    assert [_fields(u) for u in k2.buffer] == first
    assert len(store_a) == n
