"""The parallel sweep runner: cache keys, worker pool, degradation.

Cells here use the ``tiny`` preset on 1-node machines so every real
simulation finishes in well under a second.
"""

import json

import pytest

from repro.sim import sweep as sweep_mod
from repro.sim.sweep import (
    CellResult,
    ResultCache,
    SweepCell,
    code_version,
    make_grid,
    run_sweep,
    write_bench_json,
)

FAST = dict(preset="tiny")


def fast_cell(app="water", model="smtp", **kw):
    kw = {**FAST, **kw}
    return SweepCell.make(app, model, **kw)


class TestCacheKey:
    def test_stable_across_instances(self):
        assert fast_cell().cache_key() == fast_cell().cache_key()

    def test_every_axis_changes_the_key(self):
        base = fast_cell().cache_key()
        assert fast_cell(app="fft").cache_key() != base
        assert fast_cell(model="base").cache_key() != base
        assert fast_cell(n_nodes=2).cache_key() != base
        assert fast_cell(ways=2).cache_key() != base
        assert fast_cell(freq_ghz=4.0).cache_key() != base
        assert fast_cell(preset="bench").cache_key() != base
        assert fast_cell(max_cycles=1_000).cache_key() != base

    def test_model_flags_change_the_key(self):
        base = fast_cell().cache_key()
        assert fast_cell(look_ahead_scheduling=False).cache_key() != base
        assert fast_cell(protocol_bitops=False).cache_key() != base

    def test_code_version_changes_the_key(self, monkeypatch):
        base = fast_cell().cache_key()
        monkeypatch.setattr(sweep_mod, "_CODE_VERSION", "deadbeef00000000")
        assert fast_cell().cache_key() != base

    def test_code_version_is_cached_and_hexish(self):
        v = code_version()
        assert v == code_version()
        assert len(v) == 16
        int(v, 16)  # must be a hex digest prefix

    def test_app_execution_mode_changes_the_key(self, monkeypatch):
        # Interpreter-mode rows carry interpreter-mode elapsed_s; the
        # perf gate must never be fed those from a compiled-mode sweep
        # (or vice versa).
        base = fast_cell().cache_key()
        monkeypatch.setenv("REPRO_APP_INTERP", "1")
        assert fast_cell().cache_key() != base

    def test_app_compiler_version_changes_the_key(self, monkeypatch):
        from repro.apps import compile as acompile

        base = fast_cell().cache_key()
        monkeypatch.setattr(acompile, "APP_COMPILER_VERSION",
                            acompile.APP_COMPILER_VERSION + 1)
        assert fast_cell().cache_key() != base

    def test_flag_order_is_canonical(self):
        a = SweepCell.make("water", "smtp", protocol_bitops=True,
                           look_ahead_scheduling=True, **FAST)
        b = SweepCell.make("water", "smtp", look_ahead_scheduling=True,
                           protocol_bitops=True, **FAST)
        assert a == b and a.cache_key() == b.cache_key()


class TestResultCache:
    def test_miss_run_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep([fast_cell()], jobs=0, cache=cache)[0]
        assert cold.ok and not cold.cached
        warm = run_sweep([fast_cell()], jobs=0, cache=cache)[0]
        assert warm.ok and warm.cached
        assert warm.stats == cold.stats

    def test_param_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep([fast_cell()], jobs=0, cache=cache)
        other = run_sweep([fast_cell(ways=2)], jobs=0, cache=cache)[0]
        assert not other.cached

    def test_refresh_ignores_prior_results_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep([fast_cell()], jobs=0, cache=cache)
        fresh = ResultCache(tmp_path, refresh=True)
        redone = run_sweep([fast_cell()], jobs=0, cache=fresh)[0]
        assert not redone.cached  # prior process's result ignored
        again = run_sweep([fast_cell()], jobs=0, cache=fresh)[0]
        assert again.cached  # but this process's rewrite is reused

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = fast_cell(watchdog_cycles=1)
        first = run_sweep([bad], jobs=0, cache=cache)[0]
        assert first.status == "failed"
        assert list(tmp_path.glob("*.json")) == []

    def test_duplicate_cells_simulated_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        results = run_sweep([fast_cell(), fast_cell()], jobs=0, cache=cache)
        assert len(results) == 2
        assert results[0].stats == results[1].stats
        assert len(list(tmp_path.glob("*.json"))) == 1


    def test_stale_rows_not_reused_across_app_compiler_versions(
            self, tmp_path, monkeypatch):
        # Regression: rows cached by an older app compiler must be
        # re-simulated, not served, after a version bump.
        from repro.apps import compile as acompile

        cache = ResultCache(tmp_path)
        old_row = run_sweep([fast_cell()], jobs=0, cache=cache)[0]
        assert old_row.ok and not old_row.cached
        monkeypatch.setattr(acompile, "APP_COMPILER_VERSION",
                            acompile.APP_COMPILER_VERSION + 1)
        bumped = run_sweep([fast_cell()], jobs=0, cache=cache)[0]
        assert not bumped.cached, "stale pre-bump cache row was served"
        assert bumped.stats == old_row.stats  # semantics didn't change

    def test_stale_rows_not_reused_across_app_feed_modes(
            self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        run_sweep([fast_cell()], jobs=0, cache=cache)
        monkeypatch.setenv("REPRO_APP_INTERP", "1")
        interp_row = run_sweep([fast_cell()], jobs=0, cache=cache)[0]
        assert not interp_row.cached


class TestDegradation:
    def test_deadlock_yields_failure_row_not_dead_sweep(self, tmp_path):
        cells = [fast_cell(watchdog_cycles=1), fast_cell()]
        results = run_sweep(cells, jobs=0, cache=ResultCache(tmp_path))
        assert results[0].status == "failed"
        assert results[0].error_type == "DeadlockError"
        assert "forward progress" in results[0].error
        assert results[1].ok

    def test_deadlock_in_worker_process(self, tmp_path):
        cells = [fast_cell(watchdog_cycles=1), fast_cell()]
        results = run_sweep(cells, jobs=2, cache=ResultCache(tmp_path))
        assert results[0].status == "failed"
        assert results[0].error_type == "DeadlockError"
        assert results[1].ok

    def test_timeout_kills_cell_and_records_row(self):
        slow = SweepCell.make("fft", "base", preset="bench")
        result = run_sweep([slow], jobs=1, timeout=0.2)[0]
        assert result.status == "timeout"
        assert result.error_type == "SweepTimeout"
        assert result.elapsed_s < 5.0  # killed, not run to completion

    def test_timeout_retries_are_counted(self):
        slow = SweepCell.make("fft", "base", preset="bench")
        result = run_sweep([slow], jobs=1, timeout=0.2, retries=1)[0]
        assert result.status == "timeout"
        assert result.attempts == 2


class TestEquivalence:
    def test_serial_and_parallel_stats_identical(self, tmp_path):
        grid = make_grid(("water", "fft"), ("base", "smtp"), preset="tiny")
        serial = run_sweep(grid, jobs=0, cache=ResultCache(tmp_path / "s"))
        parallel = run_sweep(grid, jobs=2, cache=ResultCache(tmp_path / "p"))
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert s.stats == p.stats  # bit-identical summaries

    def test_grid_order_is_deterministic(self):
        grid = make_grid(("water", "fft"), ("base", "smtp"), nodes=(1, 2))
        labels = [c.label for c in grid]
        assert labels == [c.label for c in
                          make_grid(("water", "fft"), ("base", "smtp"),
                                    nodes=(1, 2))]
        assert len(grid) == 8


class TestBenchJson:
    def test_emitter_writes_named_trajectory_file(self, tmp_path):
        cell = fast_cell()
        results = [
            CellResult(cell, "ok", stats={"cycles": 123}, elapsed_s=0.5),
            CellResult(cell, "timeout", error="t", error_type="SweepTimeout"),
        ]
        path = write_bench_json(tmp_path, "smoke", results, jobs=4,
                                wall_clock_s=1.25)
        assert path == tmp_path / "BENCH_smoke.json"
        doc = json.loads(path.read_text())
        assert doc["name"] == "smoke"
        assert doc["n_cells"] == 2
        assert doc["n_ok"] == 1 and doc["n_failed"] == 1
        assert doc["jobs"] == 4
        assert doc["code_version"] == code_version()
        assert doc["cells"][0]["stats"]["cycles"] == 123
        assert doc["cells"][1]["status"] == "timeout"


class TestSweepCLI:
    def test_sweep_command_runs_and_emits_json(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main([
            "sweep", "--apps", "water", "--models", "smtp",
            "--preset", "tiny", "--jobs", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path), "--name", "clitest",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BENCH_clitest.json" in out
        doc = json.loads((tmp_path / "BENCH_clitest.json").read_text())
        assert doc["n_ok"] == 1
        assert doc["cells"][0]["app"] == "water"

    def test_named_smoke_grid_exists(self):
        from repro.sim.sweep import NAMED_GRIDS

        cells = NAMED_GRIDS["smoke"]()
        assert len(cells) == 10
        # Two default-protocol 2-node cells exercise the cross-node
        # regime the event scheduler accelerates most (a third 2-node
        # cell runs the MSI bundle for the cross-protocol comparison
        # row); the 16-node cell is protocol-heavy (most cycles inside
        # handlers) and anchors the compiled-handler speedup floor in
        # BENCH_smoke.json; the single bench-preset cell is app-heavy
        # and anchors the app-compilation floor; the SMTp 2-way n=4
        # cell runs the fused multi-threaded fast path and anchors the
        # pre_smt_compile floor.
        assert sum(1 for c in cells if c.n_nodes == 2) == 3
        assert sum(1 for c in cells if c.n_nodes == 16) == 1
        assert [(c.app, c.preset) for c in cells if c.preset != "tiny"] \
            == [("ocean", "bench")]
        assert sum(1 for c in cells if c.model == "smtp" and c.ways == 2) == 1

    def test_list_grids(self, capsys):
        from repro.__main__ import main

        assert main(["sweep", "--list-grids"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "fig2" in out

    def test_failed_cell_sets_exit_code(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main([
            "sweep", "--apps", "water", "--models", "smtp",
            "--preset", "tiny", "--jobs", "1", "--timeout", "0.01",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path), "--name", "failing",
        ])
        assert rc == 1


@pytest.mark.slow
class TestSmokeGrid:
    def test_smoke_grid_runs_clean(self, tmp_path):
        from repro.sim.sweep import NAMED_GRIDS

        results = run_sweep(NAMED_GRIDS["smoke"](), jobs=0,
                            cache=ResultCache(tmp_path))
        assert all(r.ok for r in results)


def _gate_fixture(elapsed_s, base_elapsed, base_ref=None):
    """One fresh result + a baseline doc with one matching row."""
    from repro.sim.sweep import gate_results

    cell = fast_cell()
    result = CellResult(cell, "ok", stats={"cycles": 1000},
                        elapsed_s=elapsed_s)
    row = result.to_dict()
    row["elapsed_s"] = base_elapsed
    doc = {"cells": [row]}
    if base_ref is not None:
        doc["reference_s"] = base_ref
    return gate_results, [result], doc


class TestGate:
    def test_regression_fails(self):
        gate, results, doc = _gate_fixture(1.0, 0.5)
        failures, lines = gate(results, doc)
        assert failures == 1
        assert any("FAIL" in ln for ln in lines)

    def test_within_headroom_passes(self):
        gate, results, doc = _gate_fixture(0.58, 0.5)
        failures, _ = gate(results, doc)
        assert failures == 0

    def test_speedup_passes(self):
        gate, results, doc = _gate_fixture(0.2, 0.5)
        failures, lines = gate(results, doc)
        assert failures == 0
        assert any("0.40x" in ln for ln in lines)

    def test_absolute_slack_excuses_tiny_cells(self):
        # 30ms vs 20ms is 1.5x but only 10ms — under the 20ms slack.
        gate, results, doc = _gate_fixture(0.030, 0.020)
        failures, _ = gate(results, doc)
        assert failures == 0

    def test_slower_box_is_normalized_not_failed(self):
        # 2x slower cell on a box whose calibration also reads 2x slow.
        gate, results, doc = _gate_fixture(1.0, 0.5, base_ref=0.05)
        failures, _ = gate(results, doc)  # no calibration: a real FAIL
        assert failures == 1
        failures, _ = gate(results, doc, reference_s=0.10)
        assert failures == 0

    def test_faster_box_never_tightens_the_gate(self):
        # Calibration says this box is 2x faster; an equal-time cell
        # must still pass (scale is clamped at 1.0).
        gate, results, doc = _gate_fixture(0.5, 0.5, base_ref=0.10)
        failures, _ = gate(results, doc, reference_s=0.05)
        assert failures == 0

    def test_cached_and_new_cells_never_fail(self):
        from repro.sim.sweep import gate_results

        cell = fast_cell()
        cached = CellResult(cell, "ok", stats={"cycles": 1}, cached=True)
        novel = CellResult(fast_cell(app="fft"), "ok",
                           stats={"cycles": 1}, elapsed_s=9.9)
        row = CellResult(cell, "ok", stats={"cycles": 1},
                         elapsed_s=0.001).to_dict()
        failures, lines = gate_results([cached, novel], {"cells": [row]})
        assert failures == 0
        assert any("SKIP" in ln for ln in lines)
        assert any("NEW" in ln for ln in lines)

    def test_best_of_records_minimum(self, monkeypatch):
        from repro.sim.sweep import run_cell

        monkeypatch.setenv("REPRO_BENCH_BEST_OF", "3")
        r = run_cell(fast_cell(app="water", model="base"))
        assert r.ok and r.elapsed_s > 0
