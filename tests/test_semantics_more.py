"""Deeper protocol-semantics coverage: the FunctionalRunner, handler
address arithmetic against varied layouts, and AMO metadata."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ProtocolError
from repro.protocol import semantics
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import boot_registers
from repro.protocol.isa import (
    ADDR,
    DIR_BASE,
    ENTRY_SHIFT,
    HDR,
    LINE_SHIFT,
    LOCAL_MASK,
    T0,
    T1,
    ZERO,
    HandlerBuilder,
    PInstr,
    POp,
)
from repro.protocol.semantics import FunctionalRunner


class TestFunctionalRunner:
    def _run(self, build, regs=None, pmem=None, max_steps=1000):
        pmem = pmem if pmem is not None else {}
        regs = regs or [0] * 32
        ops = []
        h = HandlerBuilder("t")
        build(h)
        h.done()
        runner = FunctionalRunner(
            regs, lambda a: pmem.get(a, 0), pmem.__setitem__,
            lambda i, v: ops.append(i.op), max_steps=max_steps,
        )
        runner.run(h.build())
        return regs, pmem, ops, runner

    def test_straight_line(self):
        regs, pmem, ops, r = self._run(
            lambda h: (h.li(T0, 7), h.addi(T1, T0, 3), h.st(T1, T0, 0))
        )
        assert pmem[7] == 10

    def test_loop_counts_steps(self):
        def build(h):
            h.li(T0, 5)
            h.label("top")
            h.addi(T0, T0, -1)
            h.bnez(T0, "top")

        regs, pmem, ops, r = self._run(build)
        assert regs[T0] == 0
        assert r.instructions_executed > 10

    def test_runaway_loop_aborts(self):
        def build(h):
            h.label("top")
            h.j("top")

        with pytest.raises(ProtocolError, match="exceeded"):
            self._run(build, max_steps=50)

    def test_zero_register_immutable(self):
        regs, _, _, _ = self._run(lambda h: h.li(ZERO, 99))
        assert regs[ZERO] == 0

    def test_uncached_callback_order(self):
        def build(h):
            h.li(T0, 1)
            h.sendh(T0)
            h.senda(T0)
            h.complete()

        _, _, ops, _ = self._run(build)
        assert ops == [POp.SENDH, POp.SENDA, POp.COMPLETE, POp.SWITCH, POp.LDCTXT]


class TestHandlerAddressArithmetic:
    """The dir_prologue shift/mask sequence must agree with
    DirectoryLayout.dir_entry_addr for any geometry."""

    @pytest.mark.parametrize("mem_bits", [20, 22, 26, 30])
    @pytest.mark.parametrize("entry_bytes", [4, 8])
    def test_prologue_matches_layout(self, mem_bits, entry_bytes):
        from repro.protocol.handlers import dir_prologue, make_header
        from repro.network.messages import MsgType

        layout = DirectoryLayout(
            local_memory_bytes=1 << mem_bits, line_bytes=128,
            entry_bytes=entry_bytes,
        )
        h = HandlerBuilder("probe_addr")
        dir_prologue(h)
        h.done()
        handler = h.build()
        for line in (0x0, 0x180, (1 << mem_bits) - 128, (5 << mem_bits) | 0x80):
            regs = boot_registers(layout, node_id=0)
            regs[ADDR] = line
            regs[HDR] = make_header(MsgType.GET, 1, 1)
            seen = {}
            runner = FunctionalRunner(
                regs, lambda a: seen.setdefault(a, 0), seen.__setitem__,
                lambda i, v: None,
            )
            runner.run(handler)
            expected = layout.dir_entry_addr(layout.line_addr(line))
            assert expected in seen, (
                f"handler read {sorted(map(hex, seen))}, expected "
                f"{expected:#x}"
            )

    @given(st.integers(0, (1 << 30) - 257))
    def test_layout_entry_unique_per_line(self, addr):
        layout = DirectoryLayout(1 << 30, 128, 4)
        a = layout.dir_entry_addr(layout.line_addr(addr))
        b = layout.dir_entry_addr(layout.line_addr(addr) + 128)
        assert b - a == 4


class TestAMOMetadata:
    def test_amo_is_uncached_no_operands(self):
        i = PInstr(POp.AMO)
        assert i.is_uncached
        assert i.reads() == []
        assert i.writes() is None

    def test_amo_steps_as_uncached(self):
        r = semantics.step(PInstr(POp.AMO), 0, [0] * 32, lambda a: 0)
        assert r.uncached
