"""Tournament predictor, BTB and RAS behaviour."""

from repro.pipeline.branch import BTB, ReturnAddressStack, TournamentPredictor


class TestPredictor:
    def test_learns_always_taken(self):
        p = TournamentPredictor(1)
        pc = 0x1000
        for _ in range(30):
            p.update(0, pc, True)
        assert p.predict(0, pc)

    def test_learns_always_not_taken(self):
        p = TournamentPredictor(1)
        pc = 0x1000
        for _ in range(8):
            p.update(0, pc, False)
        assert not p.predict(0, pc)

    def test_learns_loop_pattern(self):
        """A 4-iteration loop branch (TTTN repeating) should become
        mostly predictable via local history."""
        p = TournamentPredictor(1)
        pc = 0x2000
        pattern = [True, True, True, False] * 40
        correct = 0
        for outcome in pattern:
            if p.predict(0, pc) == outcome:
                correct += 1
            p.update(0, pc, outcome)
        assert correct / len(pattern) > 0.80

    def test_threads_have_private_histories(self):
        p = TournamentPredictor(2)
        pc = 0x3000
        for _ in range(20):
            p.update(0, pc, True)
            p.update(1, pc, False)
        # Shared pattern tables but private histories: at minimum the
        # two threads' predictions are made independently.
        p.predict(0, pc)
        p.predict(1, pc)
        assert p._global_history[0] != p._global_history[1]


class TestBTB:
    def test_miss_then_hit(self):
        b = BTB(sets=4, assoc=2)
        assert b.lookup(0x100) is None
        b.install(0x100, 0x900)
        assert b.lookup(0x100) == 0x900

    def test_update_target(self):
        b = BTB(sets=4, assoc=2)
        b.install(0x100, 0x900)
        b.install(0x100, 0xA00)
        assert b.lookup(0x100) == 0xA00

    def test_lru_within_set(self):
        b = BTB(sets=1, assoc=2)
        b.install(0x100, 1)
        b.install(0x200, 2)
        b.lookup(0x100)  # MRU
        b.install(0x300, 3)  # evicts 0x200
        assert b.lookup(0x200) is None
        assert b.lookup(0x100) == 1


class TestRAS:
    def test_push_pop(self):
        r = ReturnAddressStack(4)
        r.push(0x10)
        r.push(0x20)
        assert r.pop() == 0x20
        assert r.pop() == 0x10
        assert r.pop() is None

    def test_overflow_drops_oldest(self):
        r = ReturnAddressStack(2)
        r.push(1)
        r.push(2)
        r.push(3)
        assert r.pop() == 3
        assert r.pop() == 2
        assert r.pop() is None

    def test_snapshot_repair(self):
        r = ReturnAddressStack(8)
        r.push(1)
        r.push(2)
        snap = r.snapshot()
        r.push(3)
        r.pop()
        r.pop()  # stack corrupted by wrong path
        r.repair(snap)
        assert r.pop() == 2
        assert r.pop() == 1
