"""The protocol registry and the shipped variant bundles.

Covers the registry contract (resolution, duplicates, default-bundle
bit-identity with the legacy build), the MSI directory encoding, the
per-protocol verifier passes, the fuzz-replay protocol guard, the
sweep report's cross-protocol comparison rows, and the cross-protocol
differential: MSI and the default bitvector protocol must retire the
same instructions to the same final memory image (only timing may
differ).
"""

import pickle
from dataclasses import dataclass

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.network.messages import MsgType
from repro.protocol import directory as d
from repro.protocol import extensions, msi, registry
from repro.protocol.handlers import build_handler_table


def _instr_streams(table):
    return {
        name: [repr(i) for i in h.instrs]
        for name, h in table.by_name.items()
    }


class TestRegistry:
    def test_names(self):
        assert registry.names() == ("migratory", "msi", "smtp-bitvector")
        assert registry.DEFAULT_PROTOCOL == "smtp-bitvector"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="msi"):
            registry.get("mesi")

    def test_duplicate_register_raises(self):
        with pytest.raises(ConfigError, match="already registered"):
            registry.register(registry.get("msi"))

    def test_default_bundle_matches_legacy_build(self):
        legacy = build_handler_table()
        extensions.install(legacy)
        table = registry.get(registry.DEFAULT_PROTOCOL).build_table()
        assert {n: h.pc for n, h in table.by_name.items()} == {
            n: h.pc for n, h in legacy.by_name.items()
        }
        assert _instr_streams(table) == _instr_streams(legacy)

    @pytest.mark.parametrize("variant", ["msi", "migratory"])
    def test_variants_substitute_only_h_get(self, variant):
        default = registry.get(registry.DEFAULT_PROTOCOL).build_table()
        table = registry.get(variant).build_table()
        base, var = _instr_streams(default), _instr_streams(table)
        assert set(base) == set(var)
        differing = {n for n in base if base[n] != var[n]}
        assert differing == {"h_get"}

    def test_bundles_share_dispatch_tables(self):
        default = registry.get(registry.DEFAULT_PROTOCOL)
        for name in registry.names():
            b = registry.get(name)
            assert b.network_dispatch == default.network_dispatch
            assert b.probe_dispatch == default.probe_dispatch

    def test_dispatch_carries_am_rows(self):
        # AM rows are baked into every bundle's own dispatch copy, not
        # dependent on extensions.install mutating the module global.
        for name in registry.names():
            nd = registry.get(name).network_dispatch
            assert nd[MsgType.AM_OP] == "h_am_op"
            assert nd[MsgType.AM_REPLY] == "h_am_reply"

    def test_bundle_is_picklable(self):
        # Model-check worker payloads and machine checkpoints carry the
        # bundle object by value.
        for name in registry.names():
            clone = pickle.loads(pickle.dumps(registry.get(name)))
            assert clone.name == name
            assert clone.build_table().by_name.keys() == \
                registry.get(name).build_table().by_name.keys()

    def test_compile_any_bundle(self):
        from repro.protocol.compile import compile_bundle

        for name in registry.names():
            assert compile_bundle(registry.get(name)) == 25


class TestMsiEncoding:
    @given(
        st.sampled_from([msi.INVALID, msi.SHARED, msi.MODIFIED]),
        st.integers(0, 63),
        st.integers(0, 63),
        st.integers(0, (1 << 32) - 1),
    )
    def test_roundtrip_property(self, state, owner, waiter, vector):
        if state in (msi.INVALID, msi.SHARED):
            owner = 0
        if state in (msi.INVALID, msi.MODIFIED):
            vector = 0
        entry = msi.encode_msi(state, owner=owner, waiter=waiter,
                               vector=vector)
        got_state, got_owner, got_waiter, got_sharers = msi.decode_msi(entry)
        assert got_state == state
        assert got_owner == owner
        assert got_waiter == waiter
        assert got_sharers == [i for i in range(32) if vector >> i & 1]

    def test_invalid_is_zero(self):
        assert msi.encode_msi(msi.INVALID) == 0

    def test_shared_rejects_owner(self):
        with pytest.raises(ConfigError, match="no owner"):
            msi.encode_msi(msi.SHARED, owner=3, vector=0b1000)

    def test_modified_rejects_vector(self):
        with pytest.raises(ConfigError, match="no sharer vector"):
            msi.encode_msi(msi.MODIFIED, owner=3, vector=0b1)

    def test_non_msi_state_rejected(self):
        with pytest.raises(ConfigError, match="not an MSI"):
            msi.encode_msi(7)

    def test_describe(self):
        entry = msi.encode_msi(msi.SHARED, vector=0b101)
        assert msi.describe_msi(entry).startswith("S ")


class TestSuppressionScoping:
    def test_every_registered_protocol_has_a_list(self):
        from repro.analyze.suppressions import suppressions_for

        for name in registry.names():
            assert suppressions_for(name), name

    def test_unknown_protocol_rejected(self):
        from repro.analyze.suppressions import suppressions_for

        with pytest.raises(ConfigError, match="no suppression list"):
            suppressions_for("mesi")


class TestPerProtocolVerifier:
    @pytest.mark.parametrize("protocol", registry.names())
    def test_static_and_dispatch_clean(self, protocol):
        from repro.analyze.cli import build_report

        report = build_report(run_model=False, protocol=protocol)
        assert report.clean, [str(f) for f in report.findings]
        assert report.stats["protocol"] == protocol

    @pytest.mark.parametrize("protocol", ["msi", "migratory"])
    def test_model_check_clean(self, protocol):
        # The default bundle's n=2 exhaustive check runs in tier-1 via
        # `make analyze`; here the variants get the same treatment.
        from repro.analyze.model import check_model

        result = check_model(
            n_nodes=2, loads=1, stores=1, jobs=1, protocol=protocol
        )
        assert result.violation is None
        assert not result.truncated
        assert result.states > 1000


class TestReplayProtocolGuard:
    def _artifact(self, tmp_path, protocol):
        from repro.fuzz.artifact import write_artifact
        from repro.fuzz.campaign import FuzzCell
        from repro.fuzz.stress import FuzzOp, StressConfig

        cell = FuzzCell(
            seed=0, n_nodes=2, protocol=protocol,
            stress=StressConfig(n_ops=1, n_lines=1, max_outstanding=1),
            max_cycles=200_000,
        )
        path = tmp_path / f"art_{protocol}.json"
        write_artifact(
            path, cell, [FuzzOp(0, "load", 0x100000)],
            status="deadlock", error="synthetic", error_type="DeadlockError",
            snapshot=None, trace=None,
        )
        return path

    def test_mismatch_rejected_both_directions(self, tmp_path):
        from repro.fuzz.artifact import replay_artifact

        msi_artifact = self._artifact(tmp_path, "msi")
        default_artifact = self._artifact(tmp_path, "smtp-bitvector")
        with pytest.raises(ConfigError, match="recorded under protocol"):
            replay_artifact(msi_artifact, protocol="smtp-bitvector")
        with pytest.raises(ConfigError, match="recorded under protocol"):
            replay_artifact(default_artifact, protocol="msi")

    def test_matching_and_unspecified_accepted(self, tmp_path):
        from repro.fuzz.artifact import replay_artifact

        path = self._artifact(tmp_path, "msi")
        # The synthetic failure does not reproduce (a lone load cannot
        # deadlock) — the point is the guard lets the replay run.
        reproduced, failure, ops = replay_artifact(path, protocol="msi")
        assert not reproduced and failure is None and len(ops) == 1
        reproduced, _, _ = replay_artifact(path)
        assert not reproduced

    def test_cell_roundtrip_records_protocol(self):
        from repro.fuzz.campaign import FuzzCell

        cell = FuzzCell(seed=1, protocol="migratory")
        assert FuzzCell.from_dict(cell.to_dict()).protocol == "migratory"
        assert "proto=migratory" in cell.label
        # Pre-registry artifacts (no protocol key) replay on the default.
        legacy = {k: v for k, v in cell.to_dict().items() if k != "protocol"}
        assert FuzzCell.from_dict(legacy).protocol == "smtp-bitvector"


@dataclass
class _FakeResult:
    cell: object
    stats: dict
    ok: bool = True
    status: str = "ok"


class TestComparisonRows:
    def test_groups_cells_differing_only_in_protocol(self):
        from repro.sim.report import protocol_comparison_table
        from repro.sim.sweep import SweepCell

        base = SweepCell.make("fft", "base", n_nodes=2, preset="tiny")
        variant = SweepCell.make("fft", "base", n_nodes=2, preset="tiny",
                                 protocol="msi")
        lone = SweepCell.make("water", "base", n_nodes=2, preset="tiny")
        table = protocol_comparison_table([
            _FakeResult(base, {"cycles": 1000}),
            _FakeResult(variant, {"cycles": 1100}),
            _FakeResult(lone, {"cycles": 9999}),
        ])
        assert table is not None
        assert "msi" in table and "smtp-bitvector" in table
        assert "1.100x" in table  # normalized to the default bundle
        assert "water" not in table  # no partner cell to compare against

    def test_no_rows_without_a_pair(self):
        from repro.sim.report import protocol_comparison_table
        from repro.sim.sweep import SweepCell

        lone = SweepCell.make("fft", "base", n_nodes=2, preset="tiny")
        assert protocol_comparison_table(
            [_FakeResult(lone, {"cycles": 10})]
        ) is None

    def test_smoke_grid_contains_msi_cell(self):
        from repro.sim.sweep import NAMED_GRIDS

        protocols = [
            dict(c.flags).get("protocol") for c in NAMED_GRIDS["smoke"]()
        ]
        assert "msi" in protocols


class TestCrossProtocolDifferential:
    """MSI vs bitvector: same retired work, same final memory.

    Spin-loop retirement (``stats.spin_committed``) is excluded: a
    thread spins for however many iterations the contended line takes
    to arrive, which legitimately varies with protocol timing.  All
    *algorithmic* retirement and the final memory image must match
    exactly.
    """

    @pytest.mark.parametrize(
        "app", ("fft", "fftw", "lu", "ocean", "radix", "water")
    )
    def test_msi_matches_default_results(self, app):
        from repro.sim.driver import build_machine, run_machine
        from repro.sim.experiments import app_sources, preset_sizes

        outcomes = {}
        for protocol in ("smtp-bitvector", "msi"):
            machine = build_machine(
                "base", 2, 1, protocol=protocol, check_coherence=True
            )
            sources = app_sources(app, machine, dict(preset_sizes(app, "tiny")))
            stats = run_machine(machine, sources, 3_000_000)
            outcomes[protocol] = (
                dict(machine.words),
                stats.committed - stats.spin_committed,
            )
        default_words, default_work = outcomes["smtp-bitvector"]
        msi_words, msi_work = outcomes["msi"]
        assert msi_work == default_work
        assert msi_words == default_words
