"""Golden-stats regression: the smoke grid's cells, run serially, must
reproduce the committed snapshot bit-for-bit.

The simulator is deterministic, so any drift in cycles / committed
instructions / protocol work is a real behavior change — either a bug
or an intentional change that must update ``tests/golden/`` in the same
commit (regenerate with the snippet in the golden file's test below).
"""

import json
from pathlib import Path

import pytest

from repro.sim.sweep import NAMED_GRIDS, run_cell

GOLDEN = Path(__file__).parent / "golden" / "smoke_stats.json"

TRACKED = ("cycles", "committed", "protocol_instructions")


def current_stats():
    out = {}
    for cell in NAMED_GRIDS["smoke"]():
        result = run_cell(cell)
        assert result.ok, f"{cell.label}: {result.error}"
        out[cell.label] = {k: result.stats[k] for k in TRACKED}
    return out


@pytest.mark.slow
def test_smoke_grid_matches_golden_snapshot():
    golden = json.loads(GOLDEN.read_text())
    actual = current_stats()
    assert actual == golden, (
        "simulator statistics drifted from tests/golden/smoke_stats.json; "
        "if the change is intentional, regenerate the snapshot:\n"
        "  PYTHONPATH=src python - <<'EOF'\n"
        "import json, pathlib\n"
        "from tests.test_golden_stats import GOLDEN, current_stats\n"
        "GOLDEN.write_text(json.dumps(current_stats(), indent=1, "
        "sort_keys=True) + '\\n')\n"
        "EOF"
    )
