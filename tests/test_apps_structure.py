"""Structural signatures of the workloads, checked by draining the
thread programs up to their first synchronization point (full-run
behaviour is covered by test_apps.py on live machines)."""

import pytest

from repro.isa.uop import UopKind
from repro.sim.driver import build_machine
from repro.sim.experiments import app_sources

pytestmark = pytest.mark.slow


def count_uops(app, n_nodes=2, ways=1, **params):
    """Count µops each program emits before it first blocks on sync."""
    machine = build_machine("base", n_nodes, ways)
    sources = app_sources(app, machine, params)
    counts = {"load": 0, "store": 0, "prefetch": 0, "branch": 0, "fp": 0,
              "atomic": 0, "total": 0}
    for per_node in sources:
        for prog in per_node:
            for _ in range(500_000):
                u = prog.next_uop()
                if u is None:
                    break
                counts["total"] += 1
                if u.kind is UopKind.LOAD:
                    counts["load"] += 1
                elif u.kind is UopKind.STORE:
                    counts["store"] += 1
                elif u.kind is UopKind.PREFETCH:
                    counts["prefetch"] += 1
                elif u.kind in (UopKind.BRANCH, UopKind.CALL, UopKind.RETURN):
                    counts["branch"] += 1
                elif u.kind in (UopKind.FALU, UopKind.FDIV):
                    counts["fp"] += 1
                elif u.kind is UopKind.ATOMIC:
                    counts["atomic"] += 1
    return counts


class TestSignatures:
    def test_fft_is_fp_heavy_with_prefetch(self):
        # Thread 0 reaches its row FFTs and transpose before blocking.
        c = count_uops("fft", n_nodes=1, points=256, block=4)
        assert c["fp"] > c["total"] * 0.3
        assert c["prefetch"] > 0

    def test_radix_is_integer_only(self):
        c = count_uops("radix", n_nodes=1, keys=512, radix=16)
        assert c["fp"] == 0
        assert c["load"] > 0 and c["store"] > 0

    def test_water_fp_dominates_memory(self):
        c = count_uops("water", n_nodes=1, molecules=8, steps=1)
        assert c["fp"] > c["load"] * 2

    def test_lu_fp_at_least_matches_loads(self):
        c = count_uops("lu", n_nodes=1, n=32, block=8)
        assert c["fp"] >= c["load"] * 0.6

    def test_ocean_stencil_load_store_ratio(self):
        c = count_uops("ocean", n_nodes=1, grid=18, iters=1)
        assert 3.0 < c["load"] / max(1, c["store"]) < 8.0


class TestPlacement:
    def test_one_program_per_context(self):
        machine = build_machine("base", 4, 2)
        sources = app_sources("fft", machine, dict(points=256, block=4))
        assert [len(s) for s in sources] == [2, 2, 2, 2]

    def test_uneven_thread_counts_supported(self):
        machine = build_machine("base", 8, 1)
        sources = app_sources("ocean", machine, dict(grid=18, iters=1))
        assert len(sources) == 8

    def test_more_threads_than_rows_supported(self):
        machine = build_machine("base", 16, 2)  # 32 threads, 16 rows
        sources = app_sources("ocean", machine, dict(grid=18, iters=1))
        assert sum(len(s) for s in sources) == 32
