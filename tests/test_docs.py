"""Tier-1 enforcement of docs staleness (see tools/check_docs.py).

A renamed/removed CLI flag that the docs still describe — or a new
sweep/fuzz flag the operator's manual never learned about — fails the
suite, not just ``make docs-check``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import check_docs  # noqa: E402


def test_docs_match_live_cli_help(capsys):
    rc = check_docs.main()
    out = capsys.readouterr().out
    assert rc == 0, f"stale documentation:\n{out}"


def test_env_flag_inventory_is_checked_both_ways():
    """The checker sees the live REPRO_* flag set (so a new escape
    hatch shipping undocumented, or a doc describing a removed one,
    fails tier-1) and the app-compiler hatch is in it."""
    implemented = check_docs.implemented_env_flags()
    assert "REPRO_APP_INTERP" in implemented
    assert "REPRO_INTERP" in implemented
    assert "REPRO_DENSE_STEP" in implemented
    documented = set()
    for rel in check_docs.ENV_DOCS:
        documented |= set(
            check_docs.ENV_RE.findall((check_docs.REPO / rel).read_text()))
    assert implemented <= documented, (
        f"undocumented env flags: {sorted(implemented - documented)}")
