"""Tier-1 enforcement of docs staleness (see tools/check_docs.py).

A renamed/removed CLI flag that the docs still describe — or a new
sweep/fuzz flag the operator's manual never learned about — fails the
suite, not just ``make docs-check``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import check_docs  # noqa: E402


def test_docs_match_live_cli_help(capsys):
    rc = check_docs.main()
    out = capsys.readouterr().out
    assert rc == 0, f"stale documentation:\n{out}"
