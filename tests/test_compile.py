"""Differential tests for the compiled protocol handlers.

The closure-compiled threaded-code programs
(:mod:`repro.protocol.compile`) carry a bit-identity contract: for
every observable, they reproduce the reference interpreters exactly.
``REPRO_INTERP=1`` routes every client back to the interpreter, so
both implementations stay runnable and these tests diff them:

* a hypothesis property runs every shipped handler (extensions
  included) functionally in both modes over random headers, directory
  states, register perturbations and protocol-memory background
  values, and demands identical register files, ordered
  protocol-memory write logs, ordered uncached-op (send/probe/...)
  streams, executed-instruction counts — and, when a handler traps,
  the identical exception type and message;
* full event-mode ``run_app`` runs across all five Table 4 machine
  models diff ``Machine.collect_stats().to_dict()`` with compilation
  on vs off, with no fields excused — the compiled µop feed and PP
  timing walk must not move a single counter, including
  ``skipped_cycles`` (the event scheduler must make the same
  sleep/wake decisions in both modes).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.core.models import MODELS
from repro.network.messages import MsgType
from repro.protocol import directory as d
from repro.protocol import extensions
from repro.protocol.compile import COMPILER_VERSION, compiled_for, interp_forced
from repro.protocol.directory import DirectoryLayout
from repro.protocol.handlers import boot_registers, build_handler_table, make_header
from repro.protocol.isa import ADDR, HDR
from repro.protocol.semantics import FunctionalRunner
from repro.sim.driver import run_app

LAYOUT = DirectoryLayout(
    local_memory_bytes=1 << 22, line_bytes=128, entry_bytes=4
)

TABLE = build_handler_table()
extensions.install(TABLE)

MASK64 = (1 << 64) - 1


# ----------------------------------------------------------------------
# Property: every handler, functional execution, compiled == interpreted.
# ----------------------------------------------------------------------


def _run_functional(name, regs, pmem, fill, interp):
    """One functional handler run; returns every observable.

    ``interp`` selects the implementation through the real
    ``REPRO_INTERP`` switch (read at runner construction), so the test
    exercises the same routing production uses.
    """
    old = os.environ.pop("REPRO_INTERP", None)
    if interp:
        os.environ["REPRO_INTERP"] = "1"
    try:
        mem = dict(pmem)
        writes = []
        events = []

        def pmem_write(addr, value):
            writes.append((addr, value))
            mem[addr] = value

        def on_uncached(instr, value):
            events.append((instr.op, instr.rd, instr.rs1, instr.imm, value))

        runner = FunctionalRunner(
            regs, lambda a: mem.get(a, fill), pmem_write, on_uncached
        )
        error = None
        try:
            runner.run(TABLE[name])
        except ProtocolError as exc:
            error = (type(exc).__name__, str(exc))
        return {
            "regs": tuple(regs),
            "writes": tuple(writes),
            "pmem": mem,
            "events": tuple(events),
            "executed": runner.instructions_executed,
            "error": error,
        }
    finally:
        if old is None:
            os.environ.pop("REPRO_INTERP", None)
        else:
            os.environ["REPRO_INTERP"] = old


HANDLER_NAMES = sorted(TABLE.by_name)

DIR_ENTRIES = st.one_of(
    # Legal encodings: the paths handlers are written for.
    st.builds(
        d.encode,
        st.sampled_from(
            [d.UNOWNED, d.SHARED, d.EXCLUSIVE, d.BUSY_SHARED,
             d.BUSY_EXCLUSIVE]
        ),
        owner=st.integers(min_value=0, max_value=7),
        waiter=st.integers(min_value=0, max_value=7),
        vector=st.integers(min_value=0, max_value=(1 << 8) - 1),
    ),
    # Raw garbage: trap/default paths must diverge identically too.
    st.integers(min_value=0, max_value=MASK64),
)


@settings(max_examples=120, deadline=None)
@given(
    name=st.sampled_from(HANDLER_NAMES),
    node_id=st.integers(min_value=0, max_value=3),
    line_index=st.integers(min_value=0, max_value=1023),
    mtype=st.sampled_from(list(MsgType)),
    peer=st.integers(min_value=0, max_value=7),
    requester=st.integers(min_value=0, max_value=7),
    acks=st.integers(min_value=0, max_value=0x3F),
    entry=DIR_ENTRIES,
    fill=st.integers(min_value=0, max_value=MASK64),
    scratch=st.dictionaries(
        st.integers(min_value=3, max_value=15),
        st.integers(min_value=0, max_value=MASK64),
        max_size=4,
    ),
)
def test_compiled_matches_interpreter_functionally(
    name, node_id, line_index, mtype, peer, requester, acks, entry, fill,
    scratch,
):
    line = line_index * LAYOUT.line_bytes
    regs = boot_registers(LAYOUT, node_id)
    for idx, value in scratch.items():
        if idx < len(regs):
            regs[idx] = value
    regs[ADDR] = line
    regs[HDR] = make_header(mtype, peer=peer, requester=requester, acks=acks)
    pmem = {LAYOUT.dir_entry_addr(line): entry}

    compiled = _run_functional(name, list(regs), pmem, fill, interp=False)
    interp = _run_functional(name, list(regs), pmem, fill, interp=True)
    assert compiled == interp


def test_interp_env_switch_is_honoured(monkeypatch):
    monkeypatch.delenv("REPRO_INTERP", raising=False)
    assert not interp_forced()
    monkeypatch.setenv("REPRO_INTERP", "1")
    assert interp_forced()


def test_compiled_programs_are_cached_per_placement():
    handler = TABLE[HANDLER_NAMES[0]]
    first = compiled_for(handler)
    assert compiled_for(handler) is first
    assert first.pc == handler.pc
    assert COMPILER_VERSION >= 1


# ----------------------------------------------------------------------
# Full applications: compiled vs interpreted, all five machine models.
# ----------------------------------------------------------------------


def _run(model, interp, monkeypatch, app="water", n_nodes=1):
    if interp:
        monkeypatch.setenv("REPRO_INTERP", "1")
    else:
        monkeypatch.delenv("REPRO_INTERP", raising=False)
    return run_app(app, model, n_nodes=n_nodes, preset="tiny")


@pytest.mark.parametrize("model", MODELS)
def test_compiled_vs_interp_run_app(model, monkeypatch):
    interp = _run(model, True, monkeypatch)
    compiled = _run(model, False, monkeypatch)
    # No excused fields: stats must match bit for bit, including the
    # event scheduler's own skipped-cycle bookkeeping.
    assert compiled.to_dict() == interp.to_dict()


def test_compiled_vs_interp_run_app_multinode(monkeypatch):
    # Cross-node coherence traffic: the PP-engine regime the compiled
    # programs accelerate most.
    interp = _run("base", True, monkeypatch, app="fft", n_nodes=2)
    compiled = _run("base", False, monkeypatch, app="fft", n_nodes=2)
    assert compiled.to_dict() == interp.to_dict()
